"""Figure 10 — stretch of local RBPC vs. source-routed restoration.

On the weighted ISP topology: for every sampled single-link failure,
compare the route produced by *edge-bypass* and by *end-route* local
RBPC against the min-cost source-routed restoration path, both by cost
and by hop count.  The paper shows four histograms of the resulting
stretch factors; the headline is that the vast majority of local
restorations land at (or very near) stretch 1.

Run with ``python -m repro.experiments.figure10 [--scale small]``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional

from ..core.base_paths import BaseSet
from ..core.cache import shared_unique_base
from ..core.local_restoration import edge_bypass_route, end_route_route
from ..exceptions import NoPath, NoRestorationPath
from ..failures.sampler import link_failure_cases, sample_pairs
from ..graph.graph import Graph, Node
from ..graph.incremental import fast_shortest_path
from ..obs import TRACER, activate_from_args, add_obs_arguments, bench_observability
from ..kernels import add_kernel_argument, apply_kernel
from ..perf import COUNTERS
from ..policies import (
    active_failure_model_name,
    active_policy_name,
    add_policy_arguments,
    apply_policy_arguments,
    make_failure_model,
)
from .bench import (
    StageTimer,
    add_repair_fallback_argument,
    apply_repair_fallback,
    write_bench_json,
)
from .networks import cached_suite, scales
from .parallel import (
    figure10_stretch_chunk,
    make_executor,
    publish_suite,
    resolve_jobs,
    run_chunked,
)
from .reporting import format_histogram, percent_histogram

#: Histogram bucket edges for stretch factors above 1 (overflow at the end).
STRETCH_EDGES = [1.0 + 1e-9, 1.2, 1.4, 1.6, 1.8, 2.0]

#: Cost stretch below this counts as "exactly the optimum".
EXACT = 1.0 + 1e-9


def stretch_buckets(values: list[float]) -> list[tuple[str, float]]:
    """Histogram buckets with an explicit ``= 1.00`` (optimal) bucket.

    Hop-count stretch can dip below 1 (the paper notes this: the
    min-cost path may have more hops), so a ``< 1.00`` bucket leads.
    """
    total = len(values)
    if total == 0:
        return []
    below = 100.0 * sum(1 for v in values if v < 1.0 - 1e-9) / total
    exact = 100.0 * sum(1 for v in values if 1.0 - 1e-9 <= v <= EXACT) / total
    rest = percent_histogram([v for v in values if v > EXACT], STRETCH_EDGES)
    scale = (100.0 - below - exact) / 100.0
    rescaled = [(label, share * scale) for label, share in rest]
    buckets = [("< 1.00", below), ("= 1.00", exact)]
    return buckets + rescaled


@dataclass
class StretchSamples:
    """Raw stretch factors for one local strategy."""

    cost: list[float]
    hopcount: list[float]

    def share_at_most(self, threshold: float) -> float:
        """Percent of cases with cost stretch <= threshold."""
        if not self.cost:
            return float("nan")
        return 100.0 * sum(1 for v in self.cost if v <= threshold) / len(self.cost)


def collect_pair_samples(
    graph: Graph,
    weighted: bool,
    base: BaseSet,
    pair: tuple[Node, Node],
    model=None,
) -> list[tuple[str, Optional[float], Optional[float]]]:
    """Stretch samples for one demand pair's sampled 1-link failures.

    Returns ``(strategy, cost stretch or None, hop stretch or None)``
    tuples in deterministic case order — the unit the parallel runner
    fans out and reassembles.  A non-default failure *model* expands
    each sampled link into its correlated fault set: the optimum is
    recomputed on the surviving subgraph and a local route disturbed by
    a correlated casualty counts as a failed restoration (no sample) —
    both checks are no-ops under the default model, whose expansion
    returns the sampled scenario itself.
    """
    items: list[tuple[str, Optional[float], Optional[float]]] = []
    primary = base.path_for(*pair)
    for case in link_failure_cases(pair, primary, k=1):
        failed = next(iter(case.scenario.links))
        scenario = (
            model.expand(case.scenario) if model is not None else case.scenario
        )
        view = scenario.apply(graph)
        try:
            # Dispatches to the shared SPT cache: the pair's pre-failure
            # row is computed once and repaired per failure case, like
            # table2 — not one full search per case.
            optimal = fast_shortest_path(
                view, case.source, case.destination, weighted=weighted
            )
        except NoPath:
            continue  # disconnected: no scheme can restore
        optimal_cost = optimal.cost(graph)
        optimal_hops = optimal.hops
        for name, route_fn in (
            ("edge-bypass", edge_bypass_route),
            ("end-route", end_route_route),
        ):
            try:
                route = route_fn(graph, primary, failed, weighted=weighted)
            except NoRestorationPath:
                continue
            if scenario is not case.scenario and scenario.disturbs(route):
                continue
            cost = route.cost(graph) / optimal_cost if optimal_cost > 0 else None
            hops = route.hops / optimal_hops if optimal_hops > 0 else None
            items.append((name, cost, hops))
    return items


def _assemble(
    items: list[tuple[str, Optional[float], Optional[float]]],
) -> dict[str, StretchSamples]:
    samples = {
        "edge-bypass": StretchSamples([], []),
        "end-route": StretchSamples([], []),
    }
    for name, cost, hops in items:
        if cost is not None:
            samples[name].cost.append(cost)
        if hops is not None:
            samples[name].hopcount.append(hops)
    return samples


def collect(
    graph: Graph, weighted: bool, n_pairs: int, seed: int = 1, model=None
) -> dict[str, StretchSamples]:
    """Stretch samples for both strategies over sampled 1-link failures."""
    base = shared_unique_base(graph)
    pairs = sample_pairs(graph, n_pairs, seed=seed)
    items: list[tuple[str, Optional[float], Optional[float]]] = []
    for pair in pairs:
        items.extend(
            collect_pair_samples(graph, weighted, base, pair, model=model)
        )
    return _assemble(items)


def render(samples: dict[str, StretchSamples]) -> str:
    """Render the computed results as a paper-style text report."""
    blocks = []
    for name, data in samples.items():
        blocks.append(
            format_histogram(
                stretch_buckets(data.cost),
                title=f"Figure 10: {name} local RBPC — cost stretch "
                f"(n={len(data.cost)}, optimal: {data.share_at_most(EXACT):.1f}%)",
            )
        )
        blocks.append(
            format_histogram(
                stretch_buckets(data.hopcount),
                title=f"Figure 10: {name} local RBPC — hopcount stretch "
                f"(n={len(data.hopcount)})",
            )
        )
    return "\n\n".join(blocks)


def run(
    scale: str = "small",
    seed: int = 1,
    jobs: int = 1,
    failure_model: Optional[str] = None,
) -> dict[str, StretchSamples]:
    """Figure 10 runs on the weighted ISP network (as in the paper).

    With ``jobs > 1`` the demand pairs are fanned out over worker
    processes; chunk reassembly keeps the sample order — and hence
    every histogram — byte-identical to the sequential run.
    *failure_model* defaults to the active registry selection.
    """
    isp = cached_suite(scale=scale, seed=seed)[0]
    jobs = resolve_jobs(jobs)
    model_name = (
        failure_model if failure_model is not None else active_failure_model_name()
    )
    executor = make_executor(jobs)
    if executor is None:
        model = make_failure_model(model_name, isp.graph, seed=seed)
        return collect(
            isp.graph, isp.weighted, isp.sample_pairs, seed=seed, model=model
        )
    pairs = sample_pairs(isp.graph, isp.sample_pairs, seed=seed)
    publication = publish_suite([isp], with_base=True)
    try:
        with executor:
            items = run_chunked(
                executor,
                figure10_stretch_chunk,
                (scale, seed, publication.ref(0), model_name),
                len(pairs),
                jobs,
            )
    finally:
        publication.release()
    return _assemble(items)


def main(argv: list[str] | None = None) -> str:
    """CLI entry point; prints and returns the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=scales(), default="small")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the case fan-out (0 = auto)",
    )
    parser.add_argument(
        "--bench-json", type=str, default=None,
        help="path for the BENCH JSON (default results/BENCH_figure10.json; "
             "'-' disables)",
    )
    add_repair_fallback_argument(parser)
    add_kernel_argument(parser)
    add_policy_arguments(parser)
    add_obs_arguments(parser)
    args = parser.parse_args(argv)
    apply_repair_fallback(args)  # before any worker fork
    apply_kernel(args)  # before any worker fork
    apply_policy_arguments(args)  # before any worker fork
    activate_from_args(args)
    timer = StageTimer(prefix="figure10")
    before = COUNTERS.snapshot()
    with TRACER.span("figure10", scale=args.scale, seed=args.seed):
        with timer.stage("collect"):
            samples = run(scale=args.scale, seed=args.seed, jobs=args.jobs)
        with timer.stage("render"):
            report = render(samples)
    print(report)
    if args.bench_json != "-":
        counters = COUNTERS.delta(before).as_dict()
        payload = {
            "name": "figure10",
            "scale": args.scale,
            "seed": args.seed,
            "jobs": args.jobs,
            "policy": active_policy_name(),
            "failure_model": active_failure_model_name(),
            "wall_clock_s": round(timer.total(), 4),
            "stages": timer.as_dict(),
            "samples": {
                name: len(data.cost) for name, data in samples.items()
            },
            "counters": counters,
        }
        payload.update(bench_observability(args, counters))
        write_bench_json("figure10", payload, path=args.bench_json)
    else:
        bench_observability(args)
    return report


if __name__ == "__main__":
    main()
