"""Exception hierarchy for the RBPC reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish graph-level problems (missing nodes,
disconnected endpoints) from MPLS-level problems (label exhaustion,
forwarding loops) and restoration-level problems (no surviving path).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Base class for errors raised by :mod:`repro.graph`."""


class NodeNotFound(GraphError):
    """A referenced node does not exist in the graph."""


class EdgeNotFound(GraphError):
    """A referenced edge does not exist in the graph."""


class NoPath(GraphError):
    """Two nodes are not connected (by surviving edges)."""


class InvalidPath(GraphError):
    """A path object is malformed (non-contiguous hops, missing edges)."""


class NegativeWeight(GraphError):
    """An edge weight is negative; Dijkstra-family algorithms reject it."""


class MPLSError(ReproError):
    """Base class for errors raised by :mod:`repro.mpls`."""


class LabelSpaceExhausted(MPLSError):
    """A router ran out of labels in its label space."""


class LabelNotFound(MPLSError):
    """An incoming label has no ILM entry at the router that received it."""


class ForwardingLoop(MPLSError):
    """A packet revisited a (router, label-stack) state while forwarding."""


class TTLExpired(MPLSError):
    """A packet exceeded its TTL before reaching its destination."""


class LSPNotFound(MPLSError):
    """A referenced LSP is not provisioned in the MPLS domain."""


class SignalingError(MPLSError):
    """LDP-like signaling failed (e.g. setup across a failed link)."""


class RestorationError(ReproError):
    """Base class for errors raised by :mod:`repro.core`."""


class DecompositionError(RestorationError):
    """A path could not be decomposed into base paths (and edges)."""


class NoRestorationPath(RestorationError):
    """No surviving path exists between the endpoints after the failures."""


class RoutingError(ReproError):
    """Base class for errors raised by :mod:`repro.routing`."""


class TopologyError(ReproError):
    """Base class for errors raised by :mod:`repro.topology` generators."""
