"""Tests for Dinic's max-flow and edge-disjoint path extraction."""

from __future__ import annotations

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NodeNotFound
from repro.graph.graph import DiGraph, Graph
from repro.graph.maxflow import (
    edge_disjoint_paths,
    max_disjoint_path_count,
    max_flow,
)


def random_graph(seed: int, n: int = 12, extra: int = 14) -> Graph:
    rng = random.Random(seed)
    g = Graph()
    for i in range(1, n):
        g.add_edge(rng.randrange(i), i)
    for _ in range(extra):
        u, v = rng.sample(range(n), 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


class TestMaxFlow:
    def test_diamond_has_two(self, diamond):
        assert max_flow(diamond, 1, 4) == 2

    def test_line_has_one(self, line5):
        assert max_flow(line5, 0, 4) == 1

    def test_disconnected_is_zero(self):
        g = Graph.from_edges([(1, 2), (3, 4)])
        assert max_flow(g, 1, 3) == 0

    def test_capacity_scales(self, diamond):
        assert max_flow(diamond, 1, 4, capacity=3) == 6

    def test_missing_node_raises(self, diamond):
        with pytest.raises(NodeNotFound):
            max_flow(diamond, 1, 99)

    def test_same_node_rejected(self, diamond):
        with pytest.raises(ValueError):
            max_flow(diamond, 1, 1)

    def test_directed_asymmetry(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        assert max_flow(g, 1, 3) == 2
        assert max_flow(g, 3, 1) == 0

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 500), st.integers(0, 11), st.integers(0, 11))
    def test_matches_networkx_edge_connectivity(self, seed, a, b):
        g = random_graph(seed)
        if a == b:
            return
        gx = nx.Graph(list(g.edges()))
        expected = nx.edge_connectivity(gx, a, b)
        assert max_flow(g, a, b) == expected


class TestEdgeDisjointPaths:
    def test_paths_are_disjoint_and_maximal(self, diamond):
        paths = edge_disjoint_paths(diamond, 1, 4)
        assert len(paths) == 2
        used = set()
        for path in paths:
            for key in path.edge_keys():
                assert key not in used
                used.add(key)
            assert path.source == 1 and path.target == 4
            assert path.is_valid_in(diamond)

    def test_empty_when_disconnected(self):
        g = Graph.from_edges([(1, 2), (3, 4)])
        assert edge_disjoint_paths(g, 1, 3) == []

    def test_count_matches_flow(self):
        for seed in range(10):
            g = random_graph(seed)
            count = max_disjoint_path_count(g, 0, 11)
            paths = edge_disjoint_paths(g, 0, 11)
            assert len(paths) == count
            used = set()
            for path in paths:
                for key in path.edge_keys():
                    assert key not in used, f"seed {seed}: shared edge"
                    used.add(key)
                assert path.is_valid_in(g)

    def test_isp_dual_homing_gives_two(self):
        from repro.topology.isp import generate_isp_topology

        graph = generate_isp_topology(n=60, seed=3)
        nodes = sorted(graph.nodes, key=repr)
        access = [u for u in nodes if u[0] == "acc"]
        # Every dual-homed access router has exactly 2 disjoint routes out.
        count = max_disjoint_path_count(graph, access[0], access[-1])
        assert count == 2
