/* Native C kernels for the canonical path engine.
 *
 * Compiled at first use by repro/kernels/native_backend.py (system cc,
 * cached shared object) and driven through ctypes over the *same* flat
 * CSR buffers the pure-Python reference loops walk: int64 indptr /
 * indices, float64 weights, and the per-view dead-edge / dead-node
 * byte masks.  Every routine is a statement-for-statement emulation of
 * the reference backend (repro/kernels/python_backend.py): the same
 * lazy binary heap keyed by (distance, node index), the same canonical
 * (dist, index) tie rules, and counter accumulation at exactly the
 * same program points.  Bitwise output and counter parity therefore
 * needs no closed-form argument — both implementations execute the
 * same abstract instruction stream over IEEE-754 doubles (each label
 * is one `parent label + weight` add; compile without FP contraction).
 *
 * Counters are returned through out-parameters; the Python wrapper
 * flushes them into repro.perf.COUNTERS, keeping this file free of any
 * Python API dependency (it is plain C99, linked only against libm).
 * All functions return 0 on success and a negative status on failure
 * (-1 allocation, -2 row-callback error); the wrapper raises.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>

typedef int64_t i64;
typedef unsigned char u8;

/* ---------------------------------------------------------------- *
 * Binary heap of (key, index) pairs ordered exactly like CPython's
 * heapq over (float, int) tuples: smaller key first, ties by smaller
 * index.  The order is total over distinct nodes, so the pop sequence
 * is a pure function of the pushed multiset — internal layout
 * differences from heapq cannot change which item each pop returns.
 *
 * Each pair is packed into one unsigned 128-bit integer (key bits in
 * the high half, node index in the low half) so the heap order is a
 * single branch-free integer compare instead of a two-branch tuple
 * compare — the sift loops are branch-misprediction-bound, and this
 * cuts the measured Dijkstra wall time by ~30%.  The packing is
 * order-exact because every key pushed here is a non-negative path
 * length (0.0, sums of non-negative weights, or +inf from repair's
 * unreachable-boundary offers; never NaN or -0.0), and non-negative
 * IEEE-754 doubles order identically to their raw bit patterns.
 * ---------------------------------------------------------------- */

#ifndef __SIZEOF_INT128__
#error "the native kernel backend needs a compiler with unsigned __int128 (gcc/clang)"
#endif

typedef unsigned __int128 hkey;

typedef struct {
    hkey *a;
    i64 len;
    i64 cap;
} heap;

static inline hkey
hpack(double key, i64 idx)
{
    union { double d; uint64_t u; } bits;
    bits.d = key;
    return ((hkey)bits.u << 64) | (uint64_t)idx;
}

static inline double
hkey_of(hkey x)
{
    union { double d; uint64_t u; } bits;
    bits.u = (uint64_t)(x >> 64);
    return bits.d;
}

static inline i64
hidx_of(hkey x)
{
    return (i64)(uint64_t)x;
}

static int
heap_push(heap *h, double key, i64 idx)
{
    if (h->len == h->cap) {
        i64 cap = h->cap ? h->cap * 2 : 64;
        hkey *a = (hkey *)realloc(h->a, (size_t)cap * sizeof(hkey));
        if (a == NULL)
            return -1;
        h->a = a;
        h->cap = cap;
    }
    hkey item = hpack(key, idx);
    i64 i = h->len++;
    while (i > 0) {
        i64 parent = (i - 1) >> 1;
        if (item >= h->a[parent])
            break;
        h->a[i] = h->a[parent];
        i = parent;
    }
    h->a[i] = item;
    return 0;
}

static hkey
heap_pop(heap *h)
{
    hkey top = h->a[0];
    h->len--;
    if (h->len > 0) {
        /* heapq-style: sift the hole down to a leaf picking the
         * smaller child with a branch-free select (when the right
         * sibling is out of range, a[child + 1] is a[len] — the
         * just-detached last element, initialized memory — and the
         * bounds bit masks the compare off), then sift the displaced
         * last element back up.  One compare per level instead of
         * two, same pop order. */
        hkey last = h->a[h->len];
        i64 i = 0;
        i64 child = 1;
        while (child < h->len) {
            child += (i64)((child + 1 < h->len) &
                           (h->a[child + 1] < h->a[child]));
            h->a[i] = h->a[child];
            i = child;
            child = 2 * i + 1;
        }
        while (i > 0) {
            i64 parent = (i - 1) >> 1;
            if (last >= h->a[parent])
                break;
            h->a[i] = h->a[parent];
            i = parent;
        }
        h->a[i] = last;
    }
    return top;
}

/* ---------------------------------------------------------------- *
 * Canonical Dijkstra — the reference lazy-heap loop.
 * ---------------------------------------------------------------- */

/* Core over caller-provided scratch so the batched driver can reuse
 * allocations across sources.  `want`/`n_targets < 0` means
 * exhaustive; otherwise `want` marks the distinct live non-source
 * targets and `remaining` counts them. */
static int
dijkstra_core(const i64 *indptr, const i64 *indices, const double *weights,
              i64 n, const u8 *edge_dead, const u8 *node_dead, i64 source,
              u8 *want, i64 remaining, double *dist, i64 *pred,
              double *best, heap *h, i64 *out_exhausted,
              i64 *out_relaxations, i64 *out_settled)
{
    i64 settled = 0;
    i64 relaxations = 0;
    i64 exhausted = 1;
    i64 tracking = want != NULL;

    for (i64 i = 0; i < n; i++) {
        dist[i] = INFINITY;
        pred[i] = -1;
        best[i] = INFINITY;
    }
    best[source] = 0.0;
    h->len = 0;
    if (heap_push(h, 0.0, source))
        return -1;

    while (h->len) {
        hkey top = heap_pop(h);
        i64 u = hidx_of(top);
        if (!isinf(dist[u]))
            continue;
        double d_u = hkey_of(top);
        dist[u] = d_u;
        settled++;
        if (tracking) {
            if (want[u]) {
                want[u] = 0;
                remaining--;
            }
            if (remaining == 0) {
                exhausted = h->len == 0;
                break;
            }
        }
        i64 stop = indptr[u + 1];
        for (i64 slot = indptr[u]; slot < stop; slot++) {
            i64 v = indices[slot];
            if (node_dead[v] || edge_dead[slot])
                continue;
            relaxations++;
            if (!isinf(dist[v]))
                continue;
            double candidate = d_u + weights[slot];
            if (candidate < best[v]) {
                best[v] = candidate;
                pred[v] = u;
                if (heap_push(h, candidate, v))
                    return -1;
            }
        }
    }
    *out_exhausted = exhausted;
    *out_relaxations += relaxations;
    *out_settled += settled;
    return 0;
}

int
repro_dijkstra(const i64 *indptr, const i64 *indices, const double *weights,
               i64 n, const u8 *edge_dead, const u8 *node_dead, i64 source,
               const i64 *targets, i64 n_targets, double *dist, i64 *pred,
               i64 *out_exhausted, i64 *out_relaxations, i64 *out_settled)
{
    double *best = (double *)malloc((size_t)n * sizeof(double));
    if (best == NULL)
        return -1;
    u8 *want = NULL;
    i64 remaining = -1;
    if (n_targets >= 0) {
        want = (u8 *)calloc((size_t)n, 1);
        if (want == NULL) {
            free(best);
            return -1;
        }
        remaining = 0;
        for (i64 k = 0; k < n_targets; k++) {
            i64 t = targets[k];
            if (t != source && !node_dead[t] && !want[t]) {
                want[t] = 1;
                remaining++;
            }
        }
    }
    heap h = {NULL, 0, 0};
    *out_relaxations = 0;
    *out_settled = 0;
    int status = dijkstra_core(indptr, indices, weights, n, edge_dead,
                               node_dead, source, want, remaining, dist,
                               pred, best, &h, out_exhausted,
                               out_relaxations, out_settled);
    free(best);
    free(want);
    free(h.a);
    return status;
}

/* ---------------------------------------------------------------- *
 * Canonical index-ordered BFS with optional early target exit.
 * ---------------------------------------------------------------- */

static int
cmp_i64(const void *a, const void *b)
{
    i64 x = *(const i64 *)a;
    i64 y = *(const i64 *)b;
    return (x > y) - (x < y);
}

static int
bfs_core(const i64 *indptr, const i64 *indices, i64 n, const u8 *edge_dead,
         const u8 *node_dead, i64 source, i64 target, double *dist,
         i64 *pred, i64 *frontier, i64 *next_frontier, i64 *out_relaxations,
         i64 *out_settled)
{
    for (i64 i = 0; i < n; i++) {
        dist[i] = INFINITY;
        pred[i] = -1;
    }
    dist[source] = 0.0;
    i64 settled = 1;
    i64 relaxations = 0;
    if (source == target) {
        *out_settled += settled;
        return 0;
    }
    i64 flen = 1;
    frontier[0] = source;
    while (flen) {
        qsort(frontier, (size_t)flen, sizeof(i64), cmp_i64);
        i64 nlen = 0;
        for (i64 k = 0; k < flen; k++) {
            i64 u = frontier[k];
            double d_next = dist[u] + 1.0;
            i64 stop = indptr[u + 1];
            for (i64 slot = indptr[u]; slot < stop; slot++) {
                i64 v = indices[slot];
                if (node_dead[v] || edge_dead[slot])
                    continue;
                relaxations++;
                if (isinf(dist[v])) {
                    dist[v] = d_next;
                    pred[v] = u;
                    settled++;
                    if (v == target) {
                        *out_relaxations += relaxations;
                        *out_settled += settled;
                        return 0;
                    }
                    next_frontier[nlen++] = v;
                }
            }
        }
        i64 *swap = frontier;
        frontier = next_frontier;
        next_frontier = swap;
        flen = nlen;
    }
    *out_relaxations += relaxations;
    *out_settled += settled;
    return 0;
}

int
repro_bfs(const i64 *indptr, const i64 *indices, i64 n, const u8 *edge_dead,
          const u8 *node_dead, i64 source, i64 target, double *dist,
          i64 *pred, i64 *out_relaxations, i64 *out_settled)
{
    i64 *frontier = (i64 *)malloc(2 * (size_t)n * sizeof(i64));
    if (frontier == NULL)
        return -1;
    *out_relaxations = 0;
    *out_settled = 0;
    int status = bfs_core(indptr, indices, n, edge_dead, node_dead, source,
                          target, dist, pred, frontier, frontier + n,
                          out_relaxations, out_settled);
    free(frontier);
    return status;
}

/* ---------------------------------------------------------------- *
 * Batched exhaustive rows: one source per block row, scratch reused
 * across the whole batch.  Semantically identical to the caller's
 * per-source loop over repro_dijkstra / repro_bfs.
 * ---------------------------------------------------------------- */

int
repro_rows_many(const i64 *indptr, const i64 *indices, const double *weights,
                i64 n, const u8 *edge_dead, const u8 *node_dead,
                const i64 *sources, i64 n_sources, i64 unit,
                double *dist_block, i64 *pred_block, i64 *out_relaxations,
                i64 *out_settled)
{
    *out_relaxations = 0;
    *out_settled = 0;
    int status = 0;
    if (unit) {
        i64 *frontier = (i64 *)malloc(2 * (size_t)n * sizeof(i64));
        if (frontier == NULL)
            return -1;
        for (i64 k = 0; k < n_sources && status == 0; k++) {
            status = bfs_core(indptr, indices, n, edge_dead, node_dead,
                              sources[k], -1, dist_block + k * n,
                              pred_block + k * n, frontier, frontier + n,
                              out_relaxations, out_settled);
        }
        free(frontier);
        return status;
    }
    double *best = (double *)malloc((size_t)n * sizeof(double));
    if (best == NULL)
        return -1;
    heap h = {NULL, 0, 0};
    i64 exhausted = 1;
    for (i64 k = 0; k < n_sources && status == 0; k++) {
        status = dijkstra_core(indptr, indices, weights, n, edge_dead,
                               node_dead, sources[k], NULL, -1,
                               dist_block + k * n, pred_block + k * n, best,
                               &h, &exhausted, out_relaxations, out_settled);
    }
    free(best);
    free(h.a);
    return status;
}

/* ---------------------------------------------------------------- *
 * Ramalingam–Reps re-settle of a non-empty affected subtree — the
 * reference boundary-offer + bounded-heap loop.  `new_dist`/`new_pred`
 * arrive holding the full pre-failure labels and are repaired in
 * place; `aff` lists the affected node indices and `aff_mask` marks
 * them (source never affected, per the caller's contract).
 * ---------------------------------------------------------------- */

int
repro_repair(const i64 *indptr, const i64 *indices, const double *weights,
             i64 n, const u8 *edge_dead, const u8 *node_dead, const i64 *aff,
             i64 n_aff, const u8 *aff_mask, i64 unit, double *new_dist,
             i64 *new_pred, i64 *out_relaxations, i64 *out_settled)
{
    double *best_d = (double *)malloc((size_t)n * sizeof(double));
    i64 *best_p = (i64 *)malloc((size_t)n * sizeof(i64));
    if (best_d == NULL || best_p == NULL) {
        free(best_d);
        free(best_p);
        return -1;
    }
    /* best_* entries are only ever read for affected nodes; -1 marks
     * "no offer yet" (the reference dict's missing key). */
    for (i64 k = 0; k < n_aff; k++) {
        i64 x = aff[k];
        new_dist[x] = INFINITY;
        new_pred[x] = -1;
        best_p[x] = -1;
    }

    i64 relaxations = 0;
    /* Boundary offers: surviving edges from intact nodes into the
     * region, equal offers resolved by the canonical
     * (dist[parent], parent index) rule. */
    for (i64 k = 0; k < n_aff; k++) {
        i64 x = aff[k];
        if (node_dead[x])
            continue;
        i64 stop = indptr[x + 1];
        for (i64 slot = indptr[x]; slot < stop; slot++) {
            i64 u = indices[slot];
            if (aff_mask[u] || node_dead[u] || edge_dead[slot])
                continue;
            relaxations++;
            double candidate = new_dist[u] + (unit ? 1.0 : weights[slot]);
            i64 op = best_p[x];
            if (op < 0 || candidate < best_d[x] ||
                (candidate == best_d[x] &&
                 (new_dist[u] < new_dist[op] ||
                  (new_dist[u] == new_dist[op] && u < op)))) {
                best_d[x] = candidate;
                best_p[x] = u;
            }
        }
    }
    heap h = {NULL, 0, 0};
    for (i64 k = 0; k < n_aff; k++) {
        i64 x = aff[k];
        if (best_p[x] >= 0 && heap_push(&h, best_d[x], x))
            goto oom;
    }

    i64 settled = 0;
    while (h.len) {
        hkey top = heap_pop(&h);
        i64 x = hidx_of(top);
        double d_x = hkey_of(top);
        if (!isinf(new_dist[x]))
            continue;
        if (d_x != best_d[x])
            continue; /* stale entry superseded by a better offer */
        new_dist[x] = d_x;
        new_pred[x] = best_p[x];
        settled++;
        i64 stop = indptr[x + 1];
        for (i64 slot = indptr[x]; slot < stop; slot++) {
            i64 v = indices[slot];
            if (!aff_mask[v] || node_dead[v] || edge_dead[slot])
                continue;
            relaxations++;
            if (!isinf(new_dist[v]))
                continue;
            double candidate = d_x + (unit ? 1.0 : weights[slot]);
            i64 op = best_p[v];
            if (op < 0 || candidate < best_d[v] ||
                (candidate == best_d[v] &&
                 (d_x < new_dist[op] ||
                  (d_x == new_dist[op] && x < op)))) {
                best_d[v] = candidate;
                best_p[v] = x;
                if (heap_push(&h, candidate, v))
                    goto oom;
            }
        }
    }
    free(best_d);
    free(best_p);
    free(h.a);
    *out_relaxations = relaxations;
    *out_settled = settled;
    return 0;
oom:
    free(best_d);
    free(best_p);
    free(h.a);
    return -1;
}

/* ---------------------------------------------------------------- *
 * Min-pieces decomposition DP — forward pass, first-minimal-j ties.
 * Oracle rows are fetched lazily through the Python callback (memoized
 * here per j); a NULL row aborts with -2 and the wrapper re-raises the
 * captured Python exception.
 * ---------------------------------------------------------------- */

/* Fetch the oracle row for chain position j, *compacted to chain
 * positions*: entry i holds row[chain[i]].  The DP only ever reads a
 * row at chain positions, so the wrapper converts len(chain) doubles
 * per fetch instead of a whole n-node row — the difference between the
 * native DP winning and losing on ISP-scale graphs with short chains. */
typedef const double *(*row_cb)(i64 j);

static int
costs_equal(double a, double b, double eps)
{
    /* abs(a - b) <= eps * max(1.0, abs(a), abs(b)) — the tolerance of
     * repro.graph.shortest_paths.costs_equal, same double ops. */
    double scale = fabs(a);
    double fb = fabs(b);
    if (fb > scale)
        scale = fb;
    if (scale < 1.0)
        scale = 1.0;
    return fabs(a - b) <= eps * scale;
}

int
repro_decompose(i64 n, const double *cum, double eps,
                row_cb row_for, i64 *best, i64 *choice, i64 *out_probes)
{
    i64 unset = n + 1;
    const double **rows = (const double **)calloc((size_t)n,
                                                  sizeof(double *));
    if (rows == NULL)
        return -1;
    for (i64 i = 0; i < n; i++) {
        best[i] = unset;
        choice[i] = 0;
    }
    best[0] = 0;
    i64 probes = 0;
    for (i64 i = 1; i < n; i++) {
        double cum_i = cum[i];
        i64 bi = unset;
        i64 cj = 0;
        for (i64 j = 0; j < i; j++) {
            i64 bj = best[j];
            if (bj == unset)
                continue;
            probes++;
            if (i - j > 1) {
                const double *row = rows[j];
                if (row == NULL) {
                    row = row_for(j);
                    if (row == NULL) {
                        free(rows);
                        return -2;
                    }
                    rows[j] = row;
                }
                double d = row[i];
                if (isinf(d) || !costs_equal(cum_i - cum[j], d, eps))
                    continue;
            }
            i64 candidate = bj + 1;
            if (candidate < bi) {
                bi = candidate;
                cj = j;
            }
        }
        best[i] = bi;
        choice[i] = cj;
    }
    free(rows);
    *out_probes = probes;
    return 0;
}
