"""Directed base paths (Section 3, Remark).

"In the context of MPLS, it makes sense to have directed base paths
(since the label distribution protocol is a directed protocol)."  The
remark: Theorem 3's construction carries over with a base set of size
n(n-1) (one path per *ordered* pair).  These tests exercise the base
machinery on directed graphs, including the Figure 5 counterexample
where the unweighted k+1 bound provably fails.
"""

from __future__ import annotations

import random

import pytest

from repro.core.base_paths import UniqueShortestPathsBase, padded_graph
from repro.core.decomposition import min_pieces_decompose
from repro.exceptions import NoPath
from repro.graph.graph import DiGraph
from repro.graph.shortest_paths import shortest_path
from repro.topology.classic import directed_counterexample


def random_digraph(seed: int, n: int = 14) -> DiGraph:
    rng = random.Random(seed)
    g = DiGraph()
    # A directed cycle guarantees strong connectivity, then extra arcs.
    for i in range(n):
        g.add_edge(i, (i + 1) % n, weight=rng.choice([1, 2, 3]))
    for _ in range(2 * n):
        u, v = rng.sample(range(n), 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v, weight=rng.choice([1, 2, 3]))
    return g


class TestPaddedDigraph:
    def test_padding_preserves_directedness(self):
        g = random_digraph(1)
        padded = padded_graph(g, seed=1)
        assert padded.directed
        assert padded.number_of_edges() == g.number_of_edges()
        for u, v in g.edges():
            assert padded.has_edge(u, v)


class TestDirectedUniqueBase:
    def test_one_base_path_per_ordered_pair(self):
        g = random_digraph(2)
        base = UniqueShortestPathsBase(g, seed=1)
        count = sum(1 for _ in base.iter_canonical_paths())
        n = g.number_of_nodes()
        assert count == n * (n - 1)  # strongly connected

    def test_forward_and_reverse_pairs_are_independent(self):
        g = DiGraph()
        g.add_edge("a", "b", weight=1.0)
        g.add_edge("b", "c", weight=1.0)
        g.add_edge("c", "a", weight=1.0)
        base = UniqueShortestPathsBase(g)
        assert base.path_for("a", "b").hops == 1
        assert base.path_for("b", "a").hops == 2  # must go around

    def test_directed_membership(self):
        g = random_digraph(3)
        base = UniqueShortestPathsBase(g, seed=1)
        p = base.path_for(0, 7)
        assert base.is_base_path(p)
        # The reversed walk is generally not even a valid directed path.
        if not all(g.has_edge(v, u) for u, v in p.edges()):
            assert not base.is_base_path(p.reversed())

    def test_restoration_on_random_digraphs(self):
        rng = random.Random(5)
        for seed in range(5):
            g = random_digraph(seed)
            base = UniqueShortestPathsBase(g, seed=1)
            s, t = rng.sample(sorted(g.nodes), 2)
            primary = base.path_for(s, t)
            if primary.hops < 1:
                continue
            failed_arc = next(iter(primary.edges()))
            view = g.without(edges=[failed_arc])
            try:
                backup = shortest_path(view, s, t)
            except NoPath:
                continue
            decomposition = min_pieces_decompose(backup, base, allow_edges=True)
            assert decomposition.path == backup


class TestFigure5Blowup:
    """The directed counterexample: no k+1 analogue of Theorem 1."""

    @pytest.mark.parametrize("n", [10, 20, 40])
    def test_pieces_grow_linearly(self, n):
        g, failed, s, t = directed_counterexample(n)
        base = UniqueShortestPathsBase(g, include_all_edges=False)
        view = g.without(edges=[failed])
        backup = shortest_path(view, s, t, weighted=False)
        decomposition = min_pieces_decompose(backup, base, allow_edges=True)
        # One edge failure, yet Θ(n) components are required.
        assert decomposition.num_pieces >= (n - 3) // 3
