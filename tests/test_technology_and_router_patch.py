"""Tests for the technology cost model and local router-failure patching."""

from __future__ import annotations

import pytest

from repro.core.base_paths import UniqueShortestPathsBase, provision_base_set
from repro.core.decomposition import Decomposition
from repro.core.local_restoration import LocalRbpc
from repro.core.restoration import plan_restoration
from repro.core.technology import (
    ATM,
    MPLS,
    PROFILES,
    WDM,
    TechnologyProfile,
    concatenation_advantage,
    concatenation_restoration_cost,
    reestablishment_restoration_cost,
)
from repro.exceptions import NoRestorationPath
from repro.graph.paths import Path
from repro.mpls.network import MplsNetwork
from repro.topology.isp import generate_isp_topology


def two_piece_decomposition():
    return Decomposition(
        pieces=(Path([1, 2, 3]), Path([3, 4])), base_flags=(True, True)
    )


class TestTechnologyModel:
    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            TechnologyProfile("x", concat_cost=-1, setup_cost_per_hop=1, teardown_cost_per_hop=1)

    def test_concatenation_cost_counts_junctions(self):
        d = two_piece_decomposition()
        assert concatenation_restoration_cost(MPLS, d) == pytest.approx(0.1)
        single = Decomposition(pieces=(Path([1, 2]),), base_flags=(True,))
        assert concatenation_restoration_cost(MPLS, single) == 0.0

    def test_reestablishment_prices_both_circuits(self):
        primary = Path([1, 2, 3, 4])
        backup = Path([1, 5, 6, 4])
        cost = reestablishment_restoration_cost(MPLS, primary, backup)
        assert cost == pytest.approx(3 * 1.0 + 3 * 2.0)

    def test_paper_ordering_of_advantages(self):
        """RBPC's edge: huge in MPLS, big in WDM, modest in ATM (§1)."""
        d = two_piece_decomposition()
        primary = Path([1, 2, 5, 4])
        advantages = {
            p.name: concatenation_advantage(p, d, primary) for p in PROFILES
        }
        assert advantages["MPLS"] > advantages["WDM"] > advantages["ATM"]
        assert advantages["ATM"] > 1.0  # still wins, but less clearly
        assert advantages["MPLS"] > 20

    def test_zero_junction_advantage_is_infinite(self):
        single = Decomposition(pieces=(Path([1, 2]),), base_flags=(True,))
        assert concatenation_advantage(WDM, single, Path([1, 3, 2])) == float("inf")

    def test_advantage_on_real_restorations(self):
        graph = generate_isp_topology(n=40, seed=9)
        base = UniqueShortestPathsBase(graph)
        nodes = sorted(graph.nodes, key=repr)
        s, t = nodes[0], nodes[-1]
        primary = base.path_for(s, t)
        failed = next(iter(primary.edge_keys()))
        plan = plan_restoration(graph.without(edges=[failed]), base, s, t)
        for profile in PROFILES:
            assert concatenation_advantage(profile, plan, primary) > 1.0


class TestRouterFailurePatch:
    @pytest.fixture()
    def world(self):
        graph = generate_isp_topology(n=50, seed=29)
        net = MplsNetwork(graph)
        base = UniqueShortestPathsBase(graph)
        nodes = sorted(graph.nodes, key=repr)
        demand = max(
            ((s, t) for s in nodes[:10] for t in nodes[-10:] if s != t),
            key=lambda pair: base.path_for(*pair).hops,
        )
        registry = provision_base_set(net, base, pairs=[demand])
        primary = base.path_for(*demand)
        net.set_fec(*demand, [registry[primary]])
        return graph, net, base, registry, demand, primary

    def test_patch_restores_through_router_failure(self, world):
        graph, net, base, registry, demand, primary = world
        local = LocalRbpc(net, base, registry)
        victim = primary.interior_nodes()[len(primary.interior_nodes()) // 2]
        net.fail_router(victim)
        patch = local.patch_router_failure(registry[primary], victim)
        result = net.inject(*demand)
        assert result.delivered
        assert victim not in result.walk
        # R1 is the router immediately before the victim on the LSP.
        assert patch.router == primary.nodes[primary.index(victim) - 1]

    def test_non_interior_router_rejected(self, world):
        graph, net, base, registry, demand, primary = world
        local = LocalRbpc(net, base, registry)
        with pytest.raises(ValueError):
            local.patch_router_failure(registry[primary], demand[0])

    def test_revert_restores_primary(self, world):
        graph, net, base, registry, demand, primary = world
        local = LocalRbpc(net, base, registry)
        victim = primary.interior_nodes()[0]
        net.fail_router(victim)
        local.patch_router_failure(registry[primary], victim)
        net.restore_router(victim)
        local.revert(registry[primary])
        assert net.inject(*demand).walk == list(primary.nodes)

    def test_disconnecting_router_failure_raises(self):
        # Line: interior failure disconnects; no patch possible.
        from repro.graph.graph import Graph

        graph = Graph.from_edges([(1, 2), (2, 3), (3, 4)])
        net = MplsNetwork(graph)
        base = UniqueShortestPathsBase(graph)
        lsp = net.provision_lsp(Path([1, 2, 3, 4]))
        net.fail_router(3)
        local = LocalRbpc(net, base)
        with pytest.raises(NoRestorationPath):
            local.patch_router_failure(lsp.lsp_id, 3)
