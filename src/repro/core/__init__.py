"""The paper's contribution: base sets, decomposition, restoration schemes.

* :mod:`repro.core.base_paths` — base-set representations (all-pairs
  shortest paths, Theorem 3 unique sets, Corollary 4 expansion).
* :mod:`repro.core.decomposition` — greedy / optimal / Dijkstra-over-
  base-paths decomposition of restoration paths.
* :mod:`repro.core.restoration` — source-router RBPC.
* :mod:`repro.core.local_restoration` — end-route and edge-bypass
  local RBPC.
* :mod:`repro.core.hybrid` — local-then-source hybrid scheme.
* :mod:`repro.core.planner` — per-link FEC update precomputation.
* :mod:`repro.core.theory` — executable Theorems 1-3 / Corollary 4
  machinery.
"""

from .base_paths import (
    AllShortestPathsBase,
    BaseSet,
    ExplicitBaseSet,
    UniqueShortestPathsBase,
    expanded_base_set,
    padded_graph,
    provision_base_set,
    unique_shortest_path_base,
)
from .decomposition import (
    Decomposition,
    concatenation_shortest_path,
    greedy_decompose,
    min_base_paths_decompose,
    min_pieces_decompose,
)
from .hybrid import HybridTimeline, hybrid_timeline
from .local_restoration import (
    LocalPatch,
    LocalRbpc,
    LocalStrategy,
    bypass_path,
    edge_bypass_route,
    end_route_route,
    upstream_router,
)
from .planner import FailurePlanner, FecUpdate
from .restoration import (
    RestorationAction,
    SourceRouterRbpc,
    plan_restoration,
)
from .baselines import (
    BaselineOutcome,
    DisjointBackupScheme,
    KShortestPathsScheme,
    MaxFlowScheme,
)
from .technology import (
    ATM,
    MPLS,
    PROFILES,
    WDM,
    TechnologyProfile,
    concatenation_advantage,
    concatenation_restoration_cost,
    reestablishment_restoration_cost,
)
from .theory import (
    eulerian_path,
    gf2_dependent_subset,
    proof_bypasses,
    restoration_decomposition,
    theorem1_bound,
    theorem2_bound,
    verify_theorem1,
    verify_theorem2,
)

__all__ = [
    "ATM",
    "AllShortestPathsBase",
    "BaseSet",
    "BaselineOutcome",
    "Decomposition",
    "DisjointBackupScheme",
    "ExplicitBaseSet",
    "FailurePlanner",
    "FecUpdate",
    "HybridTimeline",
    "KShortestPathsScheme",
    "LocalPatch",
    "LocalRbpc",
    "LocalStrategy",
    "MPLS",
    "MaxFlowScheme",
    "PROFILES",
    "RestorationAction",
    "SourceRouterRbpc",
    "TechnologyProfile",
    "UniqueShortestPathsBase",
    "WDM",
    "bypass_path",
    "concatenation_advantage",
    "concatenation_restoration_cost",
    "concatenation_shortest_path",
    "edge_bypass_route",
    "end_route_route",
    "eulerian_path",
    "expanded_base_set",
    "gf2_dependent_subset",
    "greedy_decompose",
    "hybrid_timeline",
    "min_base_paths_decompose",
    "min_pieces_decompose",
    "padded_graph",
    "plan_restoration",
    "proof_bypasses",
    "provision_base_set",
    "reestablishment_restoration_cost",
    "restoration_decomposition",
    "theorem1_bound",
    "theorem2_bound",
    "unique_shortest_path_base",
    "upstream_router",
    "verify_theorem1",
    "verify_theorem2",
]
