"""The canonical (dist, index) path contract, pinned.

Three properties make the contract load-bearing for the whole library
(see DESIGN.md "Path contract"):

1. **History invariance** — canonical rows depend only on the graph,
   never on heap insertion history: building the same topology with
   shuffled edge-insertion order (identical node interning order)
   yields bit-identical dist/pred arrays.  This is what makes weighted
   Ramalingam–Reps repair legal (Bodwin–Parter, arXiv:2102.10174).
2. **Weighted repair equivalence** — on tie-heavy weighted graphs,
   repaired rows equal from-scratch canonical rows exactly, pred
   arrays included.
3. **Batched repair equivalence** — ``SptCache.repair_batch`` returns,
   per source, the same row as the single-source ``repaired_row``.

Plus the promoted ``REPAIR_FALLBACK_FRACTION`` knob's contract:
call-time resolution, CLI/env overrides, validation.
"""

from __future__ import annotations

import random

import pytest

from repro.graph.csr import (
    CsrGraph,
    as_view,
    bfs_csr,
    dijkstra_csr,
    dijkstra_csr_canonical,
)
from repro.graph.graph import Graph
from repro.graph.incremental import (
    SptCache,
    repair_fallback_fraction,
    repair_spt,
    set_repair_fallback_fraction,
)


def tie_heavy_graph(rng: random.Random, n: int = 36, extra: int = 40) -> Graph:
    """Connected graph with only two weight values: ties everywhere."""
    g = Graph()
    for v in range(n):  # fixed node interning order across variants
        g.add_node(v)
    nodes = list(range(n))
    order = nodes[1:]
    rng.shuffle(order)
    connected = [0]
    for v in order:
        g.add_edge(rng.choice(connected), v, rng.choice((1.0, 2.0)))
        connected.append(v)
    added = 0
    while added < extra:
        u, v = rng.sample(nodes, 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v, rng.choice((1.0, 2.0)))
            added += 1
    return g


def shuffled_copy(g: Graph, rng: random.Random) -> Graph:
    """Same nodes/edges/weights, edges inserted in a different order."""
    h = Graph()
    for v in g.nodes:  # identical interning order
        h.add_node(v)
    edges = list(g.weighted_edges())
    rng.shuffle(edges)
    for u, v, w in edges:
        h.add_edge(u, v, w)
    return h


class TestHistoryInvariance:
    @pytest.mark.parametrize("seed", range(5))
    def test_canonical_rows_survive_edge_order_shuffles(self, seed):
        rng = random.Random(seed)
        g = tie_heavy_graph(rng)
        csr = CsrGraph(g)
        sources = [csr.index[s] for s in rng.sample(range(36), 4)]
        reference = {
            s: dijkstra_csr_canonical(as_view(csr), s) for s in sources
        }
        for shuffle_seed in range(4):
            h = shuffled_copy(g, random.Random(900 + shuffle_seed))
            hcsr = CsrGraph(h)
            assert hcsr.nodes == csr.nodes  # interning order held fixed
            for s in sources:
                dist, pred, _ = dijkstra_csr_canonical(as_view(hcsr), s)
                want_dist, want_pred, _ = reference[s]
                assert dist == want_dist
                assert pred == want_pred

    @pytest.mark.parametrize("seed", range(3))
    def test_canonical_bfs_survives_edge_order_shuffles(self, seed):
        rng = random.Random(40 + seed)
        g = tie_heavy_graph(rng)
        csr = CsrGraph(g)
        src = csr.index[rng.randrange(36)]
        want = bfs_csr(as_view(csr), src)
        for shuffle_seed in range(3):
            h = shuffled_copy(g, random.Random(700 + shuffle_seed))
            assert bfs_csr(as_view(CsrGraph(h)), src) == want

    def test_legacy_mode_is_history_dependent_by_design(self):
        # The audit mode replays adjacency order; a shuffle that flips
        # which equal-cost parent is relaxed first flips its tree.  We
        # only assert legacy stays self-consistent and distance-equal —
        # its *pred* arrays carry no cross-build guarantee.
        rng = random.Random(11)
        g = tie_heavy_graph(rng)
        h = shuffled_copy(g, random.Random(12))
        ga, ha = CsrGraph(g), CsrGraph(h)
        for s in range(0, 36, 9):
            d1, _ = dijkstra_csr(as_view(ga), s, legacy=True)
            d2, _ = dijkstra_csr(as_view(ha), s, legacy=True)
            assert d1 == d2  # distances are tie-invariant


class TestWeightedRepairEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_tie_heavy_weighted_repair_matches_scratch(self, seed):
        """Mirrors test_incremental's deletion trials on graphs built
        to maximize equal-cost ties — the regime heap-history emulation
        could not repair and canonical ties can."""
        rng = random.Random(2000 + seed)
        g = tie_heavy_graph(rng)
        csr = CsrGraph(g)
        src = csr.index[rng.randrange(36)]
        dist, pred, _ = dijkstra_csr_canonical(as_view(csr), src)
        edges = [(u, v) for u, v, _ in g.weighted_edges()]
        for trial in range(6):
            k = rng.choice((1, 2, 3))
            view = csr.with_edges_removed(rng.sample(edges, k))
            got = repair_spt(view, src, dist, pred, fallback_fraction=2.0)
            want = dijkstra_csr_canonical(view, src)
            assert got[0] == want[0]  # distances bitwise
            assert got[1] == want[1]  # canonical parents exactly


class TestBatchedRepair:
    @pytest.mark.parametrize("weighted", [True, False])
    def test_repair_batch_matches_single_source_rows(self, weighted):
        rng = random.Random(31)
        g = tie_heavy_graph(rng)
        edges = [(u, v) for u, v, _ in g.weighted_edges()]
        for trial in range(5):
            cache = SptCache(g, weighted=weighted)
            sources = rng.sample(range(36), 6)
            fv = g.without(edges=rng.sample(edges, 2))
            view = cache.view_for(fv)
            # Independent cache: identical graph, per-source queries.
            solo = SptCache(g, weighted=weighted)
            rows = cache.repair_batch(sources, fv)
            assert set(rows) == set(sources)
            for s in sources:
                assert rows[s] == solo.repaired_row(s, view)

    def test_repair_batch_skips_dead_sources(self):
        g = tie_heavy_graph(random.Random(5))
        cache = SptCache(g, weighted=True)
        fv = g.without(nodes=[3])
        rows = cache.repair_batch([1, 3, 7], fv)
        assert 3 not in rows and set(rows) == {1, 7}


class TestFallbackKnob:
    def test_set_and_restore(self):
        old = repair_fallback_fraction()
        try:
            assert set_repair_fallback_fraction(0.5) == old
            assert repair_fallback_fraction() == 0.5
        finally:
            set_repair_fallback_fraction(old)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            set_repair_fallback_fraction(0.0)
        with pytest.raises(ValueError):
            set_repair_fallback_fraction(-1.0)

    def test_repair_spt_reads_knob_at_call_time(self):
        # A huge threshold suppresses the fallback even for a cut that
        # orphans most of the tree — proving the default is resolved
        # per call, not bound at import.
        from repro.graph.csr import INF
        from repro.perf import COUNTERS
        from repro.topology import path_graph

        g = path_graph(10)
        csr = CsrGraph(g)
        dist, pred, _ = dijkstra_csr_canonical(as_view(csr), csr.index[0])
        view = csr.with_edges_removed([(0, 1)])
        old = repair_fallback_fraction()
        try:
            set_repair_fallback_fraction(5.0)
            before = COUNTERS.spt_fallbacks
            got_dist, _ = repair_spt(view, csr.index[0], dist, pred)
            assert COUNTERS.spt_fallbacks == before  # no fallback fired
            assert all(got_dist[csr.index[v]] == INF for v in range(1, 10))
        finally:
            set_repair_fallback_fraction(old)

    def test_env_var_is_honored(self):
        import subprocess
        import sys

        code = (
            "from repro.graph.incremental import repair_fallback_fraction;"
            "print(repair_fallback_fraction())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "REPRO_REPAIR_FALLBACK": "0.75"},
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "0.75"


class TestBenchHeader:
    def test_payload_gets_policy_fields(self, tmp_path):
        import json

        from repro.experiments.bench import write_bench_json

        out = write_bench_json(
            "contract", {"name": "contract"}, path=str(tmp_path / "b.json")
        )
        payload = json.loads(out.read_text())
        assert payload["tie_order"] == "canonical"
        assert payload["repair_fallback"] == repair_fallback_fraction()

    def test_default_path_lands_in_results_dir(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        from repro.experiments.bench import write_bench_json

        out = write_bench_json("contract", {"name": "contract"})
        assert out == tmp_path / "results" / "BENCH_contract.json"
        assert out.exists()
