"""Soak test: overlapping failures and recoveries on the DES orchestrator.

A randomized storm of link-down/link-up events over several demands.
Invariants checked continuously and at the end:

* probing never crashes and never reports a false DELIVERED;
* no forwarding loops ever form (restoration stacks are loop-free by
  construction — this is the paper's "guaranteed not to introduce
  loops" claim under churn);
* after the storm ends and all links heal, every demand rides its
  primary again and all LSDBs converge to the true topology.
"""

from __future__ import annotations

import random

import pytest

from repro.core.base_paths import UniqueShortestPathsBase, provision_base_set
from repro.mpls.network import ForwardingStatus, MplsNetwork
from repro.routing.flooding import FloodingModel
from repro.sim.orchestrator import RestorationSimulation
from repro.topology.isp import generate_isp_topology


@pytest.mark.parametrize("storm_seed", [1, 2, 3])
def test_failure_storm_soak(storm_seed):
    graph = generate_isp_topology(n=50, seed=41)
    net = MplsNetwork(graph)
    base = UniqueShortestPathsBase(graph)
    nodes = sorted(graph.nodes, key=repr)
    rng = random.Random(storm_seed)

    demands = []
    while len(demands) < 4:
        s, t = rng.sample(nodes, 2)
        if base.path_for(s, t).hops >= 3 and (s, t) not in demands:
            demands.append((s, t))
    registry = provision_base_set(net, base, pairs=demands, include_edges=True)

    sim = RestorationSimulation(
        net, base, registry, model=FloodingModel(0.01, 0.005, 0.05)
    )
    managed = [sim.add_demand(s, t) for s, t in demands]

    # Storm: 6 failures at random times, each healing a while later.
    candidate_edges = sorted(
        {e for d in managed for e in d.primary.edge_keys()}, key=repr
    )
    events = []
    for i in range(min(6, len(candidate_edges))):
        edge = candidate_edges[rng.randrange(len(candidate_edges))]
        down = 1.0 + rng.random() * 4.0
        up = down + 1.0 + rng.random() * 3.0
        if any(e == edge for e, _, _ in events):
            continue
        events.append((edge, down, up))
        sim.schedule_link_failure(down, *edge)
        sim.schedule_link_recovery(up, *edge)

    # Probe at a grid of instants while the storm unfolds.
    horizon = max(up for _, _, up in events) + 2.0
    t = 0.5
    while t < horizon:
        sim.run_until(t)
        for s, d in demands:
            result = sim.inject(s, d)
            assert result.status is not ForwardingStatus.DROPPED_LOOP
            if result.delivered:
                assert result.walk[0] == s and result.walk[-1] == d
                walk_edges = set(zip(result.walk, result.walk[1:]))
                for u, v in walk_edges:
                    assert net.link_is_up(u, v), "delivered over a dead link?!"
        t += 0.25

    # Quiescence: everything healed, every demand on its primary.
    sim.run_until(horizon + 5.0)
    assert len(sim.queue) == 0
    assert not net.failed_links
    for demand in managed:
        assert not demand.locally_patched
        assert not demand.source_restored
        result = sim.inject(demand.source, demand.destination)
        assert result.delivered
        assert result.walk == list(demand.primary.nodes)
    for router in sim.routers.values():
        for u, v in graph.edges():
            assert router.believes_up(u, v)
