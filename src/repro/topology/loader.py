"""Save and load topologies as plain-text edge lists.

Format (one record per line, ``#`` comments allowed)::

    # directed: false
    u v 1.5

Node tokens are stored with ``repr`` and parsed back with
``ast.literal_eval``, so tuple node names like ``("core", 3)`` survive a
round trip.  The format is deliberately trivial — the point is only
that generated topologies can be pinned to disk so an experiment run is
exactly repeatable and shareable.
"""

from __future__ import annotations

import ast
from pathlib import Path as FilePath
from typing import Union

from ..exceptions import TopologyError
from ..graph.graph import DiGraph, Graph


def save_edgelist(graph, path: Union[str, FilePath]) -> None:
    """Write *graph* to *path* in the edge-list format."""
    path = FilePath(path)
    lines = [f"# directed: {str(bool(graph.directed)).lower()}"]
    for u, v, w in graph.weighted_edges():
        lines.append(f"{u!r}\t{v!r}\t{w!r}")
    path.write_text("\n".join(lines) + "\n")


def load_edgelist(path: Union[str, FilePath]) -> Graph:
    """Read a graph written by :func:`save_edgelist`."""
    path = FilePath(path)
    directed = False
    edges: list[tuple] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip().lower()
            if body.startswith("directed:"):
                directed = body.split(":", 1)[1].strip() == "true"
            continue
        parts = line.split("\t")
        if len(parts) != 3:
            raise TopologyError(f"{path}:{lineno}: expected 'u<TAB>v<TAB>w', got {raw!r}")
        try:
            u = ast.literal_eval(parts[0])
            v = ast.literal_eval(parts[1])
            w = float(ast.literal_eval(parts[2]))
        except (ValueError, SyntaxError) as exc:
            raise TopologyError(f"{path}:{lineno}: unparsable record {raw!r}") from exc
        edges.append((u, v, w))
    graph = DiGraph() if directed else Graph()
    for u, v, w in edges:
        graph.add_edge(u, v, weight=w)
    return graph
