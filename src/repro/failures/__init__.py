"""Failure models and the paper's sampling methodology."""

from .models import FailureScenario
from .sampler import (
    FAILURE_MODES,
    ISP_SAMPLE_PAIRS,
    LARGE_GRAPH_SAMPLE_PAIRS,
    FailureCase,
    cases_for_pair,
    link_failure_cases,
    random_link_scenarios,
    router_failure_cases,
    sample_pairs,
)

__all__ = [
    "FAILURE_MODES",
    "FailureCase",
    "FailureScenario",
    "ISP_SAMPLE_PAIRS",
    "LARGE_GRAPH_SAMPLE_PAIRS",
    "cases_for_pair",
    "link_failure_cases",
    "random_link_scenarios",
    "router_failure_cases",
    "sample_pairs",
]
