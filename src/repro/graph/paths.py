"""Path objects and the concatenation algebra at the heart of RBPC.

A :class:`Path` is an immutable sequence of nodes.  RBPC's entire
contribution is about expressing one path as a *concatenation* of others,
so paths support:

* ``p + q`` — concatenation (``p`` must end where ``q`` starts),
* ``p.prefix(i)`` / ``p.suffix(i)`` / ``p.subpath(i, j)``,
* hop count vs. weighted cost against a graph,
* validation against a graph (every hop must be a surviving edge),
* all contiguous subpaths (the paper's base sets are sub-path closed).

Paths are hashable and compare by their node sequences, so they can be
used directly as dictionary keys (e.g. label assignments per base LSP).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..exceptions import InvalidPath
from .graph import Edge, Node, edge_key


class Path:
    """An immutable walk through a graph, stored as its node sequence.

    A path must contain at least one node.  A single-node path is the
    *trivial path* (zero hops); the paper's decompositions never emit it
    but intermediate algorithms do.

    >>> p = Path([1, 2, 3])
    >>> q = Path([3, 4])
    >>> (p + q).nodes
    (1, 2, 3, 4)
    >>> p.hops
    2
    """

    __slots__ = ("_nodes", "_hash")

    def __init__(self, nodes: Iterable[Node]) -> None:
        self._nodes = tuple(nodes)
        if not self._nodes:
            raise InvalidPath("a path must contain at least one node")
        for a, b in zip(self._nodes, self._nodes[1:]):
            if a == b:
                raise InvalidPath(f"repeated consecutive node {a!r}")
        self._hash = hash(self._nodes)

    # -- basic accessors ----------------------------------------------------

    @property
    def nodes(self) -> tuple[Node, ...]:
        """The node sequence, source first."""
        return self._nodes

    @property
    def source(self) -> Node:
        """First node of the path."""
        return self._nodes[0]

    @property
    def target(self) -> Node:
        """Last node of the path."""
        return self._nodes[-1]

    @property
    def hops(self) -> int:
        """Number of edges on the path (0 for a trivial path)."""
        return len(self._nodes) - 1

    @property
    def is_trivial(self) -> bool:
        """True for a single-node, zero-hop path."""
        return len(self._nodes) == 1

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Iterate over the hops as directed ``(u, v)`` pairs."""
        return zip(self._nodes, self._nodes[1:])

    def edge_keys(self) -> Iterator[Edge]:
        """Iterate over the hops as canonical undirected edge keys."""
        for u, v in self.edges():
            yield edge_key(u, v)

    def is_simple(self) -> bool:
        """True if no node repeats."""
        return len(set(self._nodes)) == len(self._nodes)

    # -- costs ---------------------------------------------------------------

    def cost(self, graph) -> float:
        """Total weight of the path in *graph*.

        Raises if some hop is not an edge of *graph* — validating and
        costing in one pass.
        """
        return sum(graph.weight(u, v) for u, v in self.edges())

    def is_valid_in(self, graph) -> bool:
        """True if every hop of the path is a (surviving) edge of *graph*."""
        return all(graph.has_edge(u, v) for u, v in self.edges())

    def uses_edge(self, u: Node, v: Node, directed: bool = False) -> bool:
        """True if the path traverses edge *(u, v)* (either direction unless *directed*)."""
        if directed:
            return (u, v) in set(self.edges())
        return edge_key(u, v) in set(self.edge_keys())

    def uses_node(self, u: Node) -> bool:
        """True if the path visits *u*."""
        return u in self._nodes

    def interior_nodes(self) -> tuple[Node, ...]:
        """Nodes strictly between source and target."""
        return self._nodes[1:-1]

    # -- slicing and concatenation -------------------------------------------

    def index(self, node: Node) -> int:
        """Index of the first occurrence of *node*; raises ``ValueError``."""
        return self._nodes.index(node)

    def prefix(self, length: int) -> "Path":
        """The first *length* hops as a path (``length`` may be 0)."""
        if not 0 <= length <= self.hops:
            raise IndexError(f"prefix length {length} out of range 0..{self.hops}")
        return Path(self._nodes[: length + 1])

    def suffix_from(self, index: int) -> "Path":
        """The sub-path starting at node position *index* through the target."""
        if not 0 <= index < len(self._nodes):
            raise IndexError(f"index {index} out of range")
        return Path(self._nodes[index:])

    def subpath(self, i: int, j: int) -> "Path":
        """The sub-path from node position *i* to node position *j* inclusive."""
        if not (0 <= i <= j < len(self._nodes)):
            raise IndexError(f"subpath bounds ({i}, {j}) out of range")
        return Path(self._nodes[i : j + 1])

    def subpath_between(self, u: Node, v: Node) -> "Path":
        """The sub-path between the first occurrences of nodes *u* and *v*.

        *u* must occur no later than *v* on the path.
        """
        i, j = self._nodes.index(u), self._nodes.index(v)
        if i > j:
            raise InvalidPath(f"{u!r} occurs after {v!r} on {self!r}")
        return self.subpath(i, j)

    def reversed(self) -> "Path":
        """The same walk traversed target-to-source."""
        return Path(reversed(self._nodes))

    def concat(self, other: "Path") -> "Path":
        """Concatenate: ``self`` must end where *other* starts.

        This is the MPLS stack operation the paper builds on — the label
        stack [label(self), label(other)] routes along ``self.concat(other)``.
        """
        if self.target != other.source:
            raise InvalidPath(
                f"cannot concatenate: {self!r} ends at {self.target!r} but "
                f"{other!r} starts at {other.source!r}"
            )
        return Path(self._nodes + other._nodes[1:])

    def __add__(self, other: "Path") -> "Path":
        return self.concat(other)

    def all_subpaths(self, min_hops: int = 1) -> Iterator["Path"]:
        """Every contiguous sub-path with at least *min_hops* hops.

        Used to make base sets sub-path closed (Section 4.1: the basic set
        should contain "all subpaths of this shortest path").
        """
        n = len(self._nodes)
        for i in range(n):
            for j in range(i + min_hops, n):
                yield Path(self._nodes[i : j + 1])

    # -- dunder plumbing -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __getitem__(self, index):
        return self._nodes[index]

    def __contains__(self, node: Node) -> bool:
        return node in self._nodes

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Path):
            return self._nodes == other._nodes
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Path") -> bool:
        # Deterministic ordering for stable experiment output.
        return [repr(n) for n in self._nodes] < [repr(n) for n in other._nodes]

    def __repr__(self) -> str:
        inner = "->".join(repr(n) for n in self._nodes)
        return f"Path({inner})"


def concat_all(paths: Sequence[Path]) -> Path:
    """Concatenate a non-empty sequence of paths end to end.

    >>> concat_all([Path([1, 2]), Path([2, 3]), Path([3, 4])]).nodes
    (1, 2, 3, 4)
    """
    if not paths:
        raise InvalidPath("cannot concatenate an empty sequence of paths")
    result = paths[0]
    for piece in paths[1:]:
        result = result.concat(piece)
    return result


def is_concatenation_of(whole: Path, pieces: Sequence[Path]) -> bool:
    """True if *pieces*, concatenated in order, equal *whole* exactly."""
    if not pieces:
        return False
    try:
        return concat_all(pieces) == whole
    except InvalidPath:
        return False
