"""Topology-change events consumed by the routing and restoration layers."""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.graph import Edge, Node, edge_key


@dataclass(frozen=True)
class LinkDown:
    """Link *(u, v)* failed at time *time* (both directions)."""

    u: Node
    v: Node
    time: float = 0.0

    @property
    def edge(self) -> Edge:
        """The link as a canonical edge key."""
        return edge_key(self.u, self.v)


@dataclass(frozen=True)
class LinkUp:
    """Link *(u, v)* recovered at time *time*."""

    u: Node
    v: Node
    time: float = 0.0

    @property
    def edge(self) -> Edge:
        """The link as a canonical edge key."""
        return edge_key(self.u, self.v)


@dataclass(frozen=True)
class RouterDown:
    """Router failed at time *time* (all incident links go down)."""

    router: Node
    time: float = 0.0


@dataclass(frozen=True)
class RouterUp:
    """Router recovered at time *time*."""

    router: Node
    time: float = 0.0
