"""Synthetic ISP backbone topology generator.

The paper's first (and, it argues, most relevant) test network is a
snapshot of a large ISP's internal topology: ~200 routers, ~400 links,
average degree 3.56, treated as a single OSPF area, with symmetric
OSPF weights "proportional to bandwidth capacity".  That snapshot is
proprietary, so this module generates a structurally equivalent
network, built the way real backbones are:

* **PoP pairs** — the core is a ring of points of presence, each a
  *pair* of core routers joined by an intra-PoP link.  Consecutive
  PoPs are joined ladder-style (both rails), so the core is
  2-edge-connected by construction; random chords add meshing.
* **Dual-homed access routers** — every access router uplinks to both
  core routers *of one PoP*.  This is the dominant ISP edge pattern,
  and it is what gives the real ISP of the paper its signature
  statistic: Table 3 shows ~89% of links have a 2-hop bypass, which
  happens exactly when links sit in triangles — an access uplink is
  bypassed through the twin uplink plus the intra-PoP link, and an
  intra-PoP link through any shared access router.
* **Capacity-derived weights** — per-tier capacities translated to
  symmetric OSPF-style weights ``weight = REFERENCE_BW / capacity``;
  the *unweighted* experiments reuse the same topology with hop-count
  routing.

The generator is fully deterministic given ``seed``.
"""

from __future__ import annotations

import random

from ..exceptions import TopologyError
from ..graph.connectivity import is_connected, is_two_edge_connected
from ..graph.graph import Graph

#: Link capacities in Mbit/s (mostly-OC-48 core with some OC-192;
#: OC-48 / OC-12 / OC-3 access).  The mix is calibrated jointly against
#: Table 3 (min-cost bypasses must almost always be the 2-hop ones, so
#: the core must be mostly uniform) and Table 2's redundancy column
#: (equal-cost alternatives must be rare, so not perfectly uniform).
CORE_CAPACITIES = (2488, 2488, 9953)
ACCESS_CAPACITIES = (2488, 622, 155)

#: Reference bandwidth for OSPF-style inverse-capacity weights (Mbit/s).
REFERENCE_BW = 10_000.0


def _ospf_weight(capacity_mbps: float) -> float:
    """Cisco-convention inverse-capacity weight, floored at 1."""
    return max(1.0, round(REFERENCE_BW / capacity_mbps))


def generate_isp_topology(
    n: int = 200,
    seed: int = 1,
    core_fraction: float = 0.2,
    core_chord_factor: float = 0.25,
    weighted: bool = True,
    max_attempts: int = 20,
) -> Graph:
    """Generate a two-tier, PoP-pair-structured ISP backbone.

    Parameters
    ----------
    n:
        Total number of routers (paper: ~200).
    seed:
        RNG seed; the same seed always yields the same topology.
    core_fraction:
        Fraction of routers in the backbone core (rounded to PoP pairs).
    core_chord_factor:
        Random chords added across the core, as a multiple of the core
        size.  The defaults calibrate total links to ~2n (paper: ~400
        links for 200 nodes).
    weighted:
        With ``True``, links carry OSPF-style inverse-capacity weights;
        with ``False`` all weights are 1.
    max_attempts:
        Regeneration attempts until the whole graph is connected and
        the core 2-edge-connected (the ladder already guarantees it;
        retries exist for degenerate tiny parameterizations).

    Returns a connected :class:`~repro.graph.graph.Graph` whose core is
    2-edge-connected.  Node names are ``("core", i)`` / ``("acc", i)``.
    """
    if n < 10:
        raise TopologyError("generate_isp_topology needs n >= 10")
    if not 0.05 <= core_fraction <= 0.9:
        raise TopologyError("core_fraction out of range [0.05, 0.9]")

    for attempt in range(max_attempts):
        rng = random.Random(f"{seed}/{attempt}")
        graph = _generate_once(n, rng, core_fraction, core_chord_factor, weighted)
        core_subgraph = _core_subgraph(graph)
        if is_connected(graph) and is_two_edge_connected(core_subgraph):
            return graph
    raise TopologyError(
        f"failed to generate a 2-edge-connected core in {max_attempts} attempts"
    )


def _core_subgraph(graph: Graph) -> Graph:
    core = Graph()
    for u in graph.nodes:
        if u[0] == "core":
            core.add_node(u)
    for u, v, w in graph.weighted_edges():
        if u[0] == "core" and v[0] == "core":
            core.add_edge(u, v, weight=w)
    return core


def _generate_once(
    n: int,
    rng: random.Random,
    core_fraction: float,
    core_chord_factor: float,
    weighted: bool,
) -> Graph:
    n_pops = max(2, round(n * core_fraction / 2))
    n_core = 2 * n_pops
    n_access = n - n_core
    graph = Graph()

    def weight_for(capacities: tuple[int, ...]) -> float:
        """Draw an OSPF-style weight for the capacity tier."""
        if not weighted:
            return 1.0
        return _ospf_weight(rng.choice(capacities))

    # PoP pairs on a ring: intra-PoP links, the rail-0 ring, and an
    # irregular second inter-PoP link (straight rail-1 or a diagonal).
    # PoP i has cores 2i ("rail 0") and 2i+1 ("rail 1").  The paper's
    # ISP shows low redundancy (few equal-cost alternatives), so the
    # second link is deliberately irregular: a perfectly symmetric
    # ladder would make almost every backup path cost-equal.
    def core(pop: int, rail: int):
        """The core router of PoP *pop* on rail *rail*."""
        return ("core", 2 * pop + rail)

    for pop in range(n_pops):
        graph.add_edge(core(pop, 0), core(pop, 1), weight=weight_for(CORE_CAPACITIES))
        nxt = (pop + 1) % n_pops
        if n_pops == 2 and pop == 1:
            break  # avoid doubling the two inter-PoP edges of a 2-PoP ring
        graph.add_edge(core(pop, 0), core(nxt, 0), weight=weight_for(CORE_CAPACITIES))
        if rng.random() < 0.5:
            second = (core(pop, 1), core(nxt, 1))  # straight rail-1
        else:
            second = (core(pop, 1), core(nxt, 0))  # diagonal
        if not graph.has_edge(*second):
            graph.add_edge(*second, weight=weight_for(CORE_CAPACITIES))

    # Random core chords for extra meshing.
    core_nodes = [("core", i) for i in range(n_core)]
    n_chords = round(core_chord_factor * n_core)
    added, attempts = 0, 0
    while added < n_chords and attempts < 50 * max(1, n_chords):
        attempts += 1
        u, v = rng.sample(core_nodes, 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v, weight=weight_for(CORE_CAPACITIES))
            added += 1

    # Access routers: dual-homed to BOTH cores of one PoP, so each uplink
    # lies in a triangle (the paper ISP's dominant pattern).  The two
    # uplinks carry *different* capacities — a primary and a cheaper
    # secondary, as dual-homed customers usually buy — so the twin route
    # is a 2-hop bypass but not a cost-equal alternative (the paper's
    # weighted redundancy is only 16.5%).
    for i in range(n_access):
        node = ("acc", i)
        pop = rng.randrange(n_pops)
        primary_rail = rng.randrange(2)
        w_primary = weight_for(ACCESS_CAPACITIES)
        w_secondary = w_primary if not weighted else w_primary + weight_for(
            ACCESS_CAPACITIES
        )
        graph.add_edge(node, core(pop, primary_rail), weight=w_primary)
        graph.add_edge(node, core(pop, 1 - primary_rail), weight=w_secondary)
    return graph


def generate_isp_pair(n: int = 200, seed: int = 1, **kwargs) -> tuple[Graph, Graph]:
    """The paper's two ISP variants over one topology: weighted and unweighted.

    Both graphs share the exact same edge set; only the weights differ.
    """
    weighted = generate_isp_topology(n=n, seed=seed, weighted=True, **kwargs)
    unweighted = Graph()
    for u, v, _ in weighted.weighted_edges():
        unweighted.add_edge(u, v, weight=1.0)
    return weighted, unweighted
