"""Setuptools shim.

The offline environment has setuptools but no ``wheel`` package, so
PEP 517 editable installs fail with "invalid command 'bdist_wheel'".
This shim enables the legacy ``pip install -e . --no-use-pep517`` path.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
