"""Zero-copy shared-memory publication of CSR graph snapshots.

``--jobs`` fan-out used to ship *work references* (scale/seed/index) and
let every worker rebuild its own :class:`~repro.graph.csr.CsrGraph`
after fork — N copies of the 40k-node Internet map at paper scale.
This module publishes one snapshot's ``indptr`` / ``indices`` /
``weights`` buffers (plus the pickled node-interning table) into a
single :mod:`multiprocessing.shared_memory` segment; workers attach
**read-only memoryview casts** over the same pages, so the per-worker
cost drops to an ``mmap`` + header parse and the graph payload exists
once system-wide.  The casts honor the buffer protocol, so the
vectorized kernel backend (:mod:`repro.kernels.numpy_backend`) wraps
attached segments in ndarrays zero-copy too — a worker running under
``REPRO_KERNEL=numpy`` vectorizes directly over the shared pages.

Segment layout (little-endian)::

    [0:12)   preamble: magic b"RCSR", format version u32, header len u32
    [12:..)  JSON header: tie_order, dtypes/byte-lengths per section,
             n, nnz, directed, source_version
    ...      pickled nodes list, then indptr/indices/weights raw bytes,
             each section 8-byte aligned in that fixed order

A second segment type (magic ``b"RROW"``, its own
``SHM_ROW_FORMAT_VERSION``) publishes the parent's *warm rows* — the
pre-failure ``dist``/``pred`` buffers a ``SptCache`` or
``LazyDistanceOracle`` settled before the fan-out — as one contiguous
float64 block plus one int64 block behind a self-describing JSON header
(tie order, dtypes, row length ``n``, ascending source-index table,
graph ``source_version``, and a ``kind`` tag separating SPT rows from
oracle rows).  Workers attach :class:`RowTable` views and adopt
individual rows zero-copy and **read-only**; ``repair_spt`` copies
before mutating, so repairs stay worker-local (copy-on-repair).

Both sides derive section offsets from the header lengths with the same
alignment rule, so the header stays self-describing and the layout has
no pointer fields to corrupt.  Attach *validates* before it trusts:
magic/format-version mismatches and tie-order disagreements raise
:class:`ShmFormatError` (the canonical ``(dist, index)`` contract is
what makes cross-process rows byte-identical, so a segment published
under a different contract must be refused, not reinterpreted).

Lifecycle is explicit and leak-checked:

* :func:`publish_csr` (creator side) returns a :class:`SharedCsrSegment`
  handle — context-manager, ``close()`` + ``unlink()``, registered with
  an ``atexit`` safety net keyed by owner pid so forked children never
  unlink a parent's segment.
* :func:`attach_csr` (worker side) returns the attached
  :class:`~repro.graph.csr.CsrGraph` plus its segment handle; the graph
  keeps the handle alive, and ``close()`` releases every exported
  memoryview first (closing an shm with live exports is a
  ``BufferError``).  Python 3.11's attach path registers the segment
  with the ``resource_tracker``, which would *unlink the creator's
  segment* when an attacher exits — registration is suppressed for the
  attach (see :func:`_attach_untracked`).
* :func:`residual_segments` is the leak-check used by the tests: every
  name this process ever created, filtered to those whose backing
  ``/dev/shm`` entry still exists.

Publication degrades gracefully to ``None`` (callers keep the
per-worker rebuild path) when shared memory is unavailable, disabled
via ``REPRO_SHM=0``, or the payload exceeds ``REPRO_SHM_MAX_BYTES``;
every such decision bumps ``COUNTERS.shm_fallbacks`` so the obs-gate
can assert the attach path stays hot.
"""

from __future__ import annotations

import atexit
import json
import os
import pickle
import struct
from array import array
from typing import Optional

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

try:  # pragma: no cover
    from multiprocessing import resource_tracker as _resource_tracker
except ImportError:  # pragma: no cover
    _resource_tracker = None  # type: ignore[assignment]

from ..perf import COUNTERS
from .csr import CsrGraph

#: Bump on any layout change; attach refuses other versions outright.
SHM_FORMAT_VERSION = 1

#: The path-tie contract the published rows were computed under.  Must
#: match :func:`repro.graph.csr.dijkstra_csr_canonical`'s documented
#: order; recorded in the header and validated on attach.
SHM_TIE_ORDER = "canonical"

_MAGIC = b"RCSR"

#: Magic + format version for warm-row table segments (the second
#: segment type: pre-failure ``dist``/``pred`` rows published alongside
#: the CSR so workers attach instead of re-running warm-up searches).
#: Versioned independently of the CSR layout — the two formats evolve
#: at different speeds.
_ROW_MAGIC = b"RROW"
SHM_ROW_FORMAT_VERSION = 1

_PREAMBLE = struct.Struct("<4sII")
_ALIGN = 8

#: Default size knob: segments above this publish as fallback (the
#: paper-scale Internet map is ~5 MB; 1 GiB leaves huge headroom while
#: still refusing pathological payloads).
_DEFAULT_MAX_BYTES = 1 << 30


class ShmFormatError(RuntimeError):
    """Attached segment is not a compatible CSR publication."""


def shm_enabled() -> bool:
    """Shared-memory publication available and not disabled via env."""
    return _shared_memory is not None and os.environ.get("REPRO_SHM", "1") != "0"


def shm_max_bytes() -> int:
    """The segment size knob (``REPRO_SHM_MAX_BYTES``, bytes)."""
    raw = os.environ.get("REPRO_SHM_MAX_BYTES")
    if not raw:
        return _DEFAULT_MAX_BYTES
    try:
        return int(raw)
    except ValueError:
        return _DEFAULT_MAX_BYTES


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _attach_untracked(name: str):
    """``SharedMemory(name=...)`` without resource-tracker registration.

    On Python <= 3.12 every POSIX attach registers the name with the
    resource tracker, which *unlinks* it at process exit — a worker
    exiting would destroy the creator's segment under the other
    workers.  Unregistering after the fact is no better: the tracker
    keeps one cache entry per name shared by creator and attachers, so
    an attacher's unregister erases the creator's registration too.
    Instead the registration is suppressed for the duration of the
    attach (single-threaded by construction: workers attach during
    chunk setup, the creator never attaches concurrently).  Only the
    creator may unlink, and only the creator stays tracked.
    """
    if _resource_tracker is None:
        return _shared_memory.SharedMemory(name=name)
    original = _resource_tracker.register
    _resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        _resource_tracker.register = original


# -- lifecycle registry -------------------------------------------------------

#: name -> live SharedCsrSegment in this process (closed handles leave).
_LIVE: dict[str, "SharedCsrSegment"] = {}

#: Every segment name this process created, kept after close/unlink so
#: the leak-check can audit the full history.
_CREATED: set[str] = set()

_atexit_installed = False


def _install_atexit() -> None:
    global _atexit_installed
    if not _atexit_installed:
        atexit.register(_cleanup_live)
        _atexit_installed = True


def _cleanup_live() -> None:
    """atexit net: close (and, for creators, unlink) leftover handles.

    Entries inherited across ``fork`` belong to the parent pid and are
    skipped — a child must never unlink a segment it did not create and
    other processes may still be attached to.
    """
    pid = os.getpid()
    for seg in list(_LIVE.values()):
        if seg.owner_pid != pid:
            _LIVE.pop(seg.name, None)
            continue
        seg.close()
        if seg.creator:
            seg.unlink()


class SharedCsrSegment:
    """Lifecycle handle for one published or attached segment.

    ``close()`` releases every memoryview exported from the segment
    (they would otherwise raise ``BufferError``) and detaches the
    mapping; ``unlink()`` destroys the backing object and is restricted
    to the creator.  Both are idempotent.  The context manager closes,
    and additionally unlinks when this handle is the creator.
    """

    __slots__ = ("name", "creator", "owner_pid", "_shm", "_views", "_closed")

    def __init__(self, shm, creator: bool) -> None:
        self.name = shm.name
        self.creator = creator
        self.owner_pid = os.getpid()
        self._shm = shm
        self._views: list[memoryview] = []
        self._closed = False
        _LIVE[self.name] = self
        _install_atexit()

    def _export(self, view: memoryview) -> memoryview:
        """Track an exported view so ``close()`` can release it first."""
        self._views.append(view)
        return view

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for view in self._views:
            try:
                view.release()
            except Exception:
                pass
        self._views.clear()
        try:
            self._shm.close()
        except Exception:
            pass
        _LIVE.pop(self.name, None)

    def unlink(self) -> None:
        """Destroy the backing segment (creator only; close()s first)."""
        if not self.creator:
            return
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass

    def __enter__(self) -> "SharedCsrSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self.creator:
            self.unlink()


# -- publish / attach ---------------------------------------------------------


def publish_csr(csr: CsrGraph) -> Optional[SharedCsrSegment]:
    """Publish *csr*'s buffers into a fresh shared-memory segment.

    Returns the creator-side :class:`SharedCsrSegment`, or ``None``
    (bumping ``COUNTERS.shm_fallbacks``) when publication is disabled,
    unsupported, or the payload exceeds :func:`shm_max_bytes` — callers
    then keep the per-worker rebuild path.
    """
    if not shm_enabled():
        COUNTERS.shm_fallbacks += 1
        return None
    nodes_blob = pickle.dumps(csr.nodes, protocol=pickle.HIGHEST_PROTOCOL)
    sections = (
        ("nodes", nodes_blob, None),
        ("indptr", csr.indptr, csr.indptr.typecode),
        ("indices", csr.indices, csr.indices.typecode),
        ("weights", csr.weights, csr.weights.typecode),
    )
    meta: dict[str, dict] = {}
    payloads: list[tuple[str, bytes | memoryview]] = []
    for name, payload, typecode in sections:
        if typecode is None:
            raw: bytes | memoryview = payload  # already bytes
            entry = {"bytes": len(payload)}
        else:
            raw = memoryview(payload).cast("B")
            entry = {
                "bytes": raw.nbytes,
                "typecode": typecode,
                "itemsize": payload.itemsize,
            }
        meta[name] = entry
        payloads.append((name, raw))
    header = json.dumps(
        {
            "tie_order": SHM_TIE_ORDER,
            "sections": meta,
            "n": csr.n,
            "nnz": len(csr.indices),
            "directed": csr.directed,
            "source_version": csr.source_version,
        },
        sort_keys=True,
    ).encode("utf-8")
    offset = _aligned(_PREAMBLE.size + len(header))
    offsets: dict[str, int] = {}
    for name, raw in payloads:
        offsets[name] = offset
        offset = _aligned(offset + len(raw))
    total = max(offset, 1)
    if total > shm_max_bytes():
        COUNTERS.shm_fallbacks += 1
        return None
    try:
        shm = _shared_memory.SharedMemory(create=True, size=total)
    except Exception:
        COUNTERS.shm_fallbacks += 1
        return None
    buf = shm.buf
    buf[: _PREAMBLE.size] = _PREAMBLE.pack(_MAGIC, SHM_FORMAT_VERSION, len(header))
    buf[_PREAMBLE.size : _PREAMBLE.size + len(header)] = header
    for name, raw in payloads:
        if len(raw):
            buf[offsets[name] : offsets[name] + len(raw)] = raw
    _CREATED.add(shm.name)
    COUNTERS.shm_segments += 1
    return SharedCsrSegment(shm, creator=True)


def _parse_preamble(
    buf: memoryview, magic: bytes, version: int, what: str
) -> tuple[dict, int]:
    """Validate a segment preamble and return ``(header, data offset)``."""
    if len(buf) < _PREAMBLE.size:
        raise ShmFormatError(f"segment too small for a {what} preamble")
    got_magic, got_version, header_len = _PREAMBLE.unpack_from(buf, 0)
    if got_magic != magic:
        raise ShmFormatError(
            f"bad magic {got_magic!r}; not a {what} publication"
        )
    if got_version != version:
        raise ShmFormatError(
            f"unsupported {what} segment format v{got_version} "
            f"(this build speaks v{version})"
        )
    end = _PREAMBLE.size + header_len
    if end > len(buf):
        raise ShmFormatError(f"truncated {what} segment header")
    try:
        header = json.loads(bytes(buf[_PREAMBLE.size : end]).decode("utf-8"))
    except Exception as exc:
        raise ShmFormatError(
            f"unreadable {what} segment header: {exc}"
        ) from exc
    if header.get("tie_order") != SHM_TIE_ORDER:
        raise ShmFormatError(
            f"segment published under tie order "
            f"{header.get('tie_order')!r}, expected {SHM_TIE_ORDER!r}"
        )
    return header, _aligned(end)


def _parse_header(buf: memoryview) -> tuple[dict, int]:
    """Validate the CSR preamble and return ``(header, data offset)``."""
    return _parse_preamble(buf, _MAGIC, SHM_FORMAT_VERSION, "CSR")


def attach_csr(name: str) -> tuple[CsrGraph, SharedCsrSegment]:
    """Attach segment *name* and rebuild a zero-copy :class:`CsrGraph`.

    The returned graph's ``indptr``/``indices``/``weights`` are
    memoryview casts over the shared pages — no buffer payload is
    copied (only the pickled node table is materialized, it must be
    real objects).  The graph holds its :class:`SharedCsrSegment` via
    ``keepalive`` so the mapping outlives local references; close the
    segment explicitly (or let the atexit net) at worker teardown.

    Raises :class:`ShmFormatError` on magic/version/tie-order/layout
    mismatch (the segment is detached first) and whatever the platform
    raises when *name* does not exist.
    """
    shm = _attach_untracked(name)
    seg = SharedCsrSegment(shm, creator=False)
    try:
        base = seg._export(memoryview(shm.buf))
        header, offset = _parse_header(base)
        sections = header["sections"]
        raws: dict[str, memoryview] = {}
        for sec_name in ("nodes", "indptr", "indices", "weights"):
            entry = sections[sec_name]
            end = offset + entry["bytes"]
            if end > len(base):
                raise ShmFormatError(f"truncated section {sec_name!r}")
            raws[sec_name] = base[offset:end]
            offset = _aligned(end)
        nodes = pickle.loads(bytes(raws["nodes"]))
        arrays = {}
        for sec_name in ("indptr", "indices", "weights"):
            entry = sections[sec_name]
            typecode = entry["typecode"]
            if array(typecode).itemsize != entry["itemsize"]:
                raise ShmFormatError(
                    f"section {sec_name!r} published with itemsize "
                    f"{entry['itemsize']}, local {typecode!r} has "
                    f"{array(typecode).itemsize}"
                )
            arrays[sec_name] = seg._export(raws[sec_name].cast(typecode))
    except Exception:
        seg.close()
        raise
    csr = CsrGraph.from_buffers(
        nodes=nodes,
        indptr=arrays["indptr"],
        indices=arrays["indices"],
        weights=arrays["weights"],
        directed=bool(header["directed"]),
        source_version=header.get("source_version"),
        keepalive=seg,
    )
    COUNTERS.shm_attach += 1
    return csr, seg


# -- worker-side attach memo --------------------------------------------------

#: name -> (CsrGraph, segment): one attach per worker process per
#: segment, shared across that worker's chunks.
_ATTACHED: dict[str, tuple[CsrGraph, SharedCsrSegment]] = {}


def attach_csr_cached(name: str) -> CsrGraph:
    """Per-process memoized :func:`attach_csr` (worker fan-out path)."""
    cached = _ATTACHED.get(name)
    if cached is not None and not cached[1].closed:
        return cached[0]
    csr, seg = attach_csr(name)
    _ATTACHED[name] = (csr, seg)
    return csr


def detach_all() -> None:
    """Close every memoized worker-side attachment (teardown/tests)."""
    for _csr, seg in list(_ATTACHED.values()):
        seg.close()
    _ATTACHED.clear()
    for _table, seg in list(_ATTACHED_ROWS.values()):
        seg.close()
    _ATTACHED_ROWS.clear()


# -- warm-row table segments --------------------------------------------------

#: dist rows are always packed as float64, pred rows as signed 64-bit —
#: the exact layouts the canonical kernels produce, re-validated by
#: itemsize on attach like the CSR sections.
_ROW_DIST_TYPECODE = "d"
_ROW_PRED_TYPECODE = "q"


class RowTable:
    """Read-only view over an attached warm-row publication.

    One contiguous ``dist`` block (S x n float64) and one ``pred``
    block (S x n int64) over the shared pages; :meth:`row` hands out
    zero-copy **read-only** memoryview slices, so an adopter can never
    scribble on another worker's warm state — ``repair_spt`` copies
    before it mutates (copy-on-repair), which these views enforce at
    the buffer level.
    """

    __slots__ = (
        "kind", "n", "weighted", "source_version", "sources",
        "_index", "_dist", "_pred", "segment",
    )

    def __init__(
        self,
        kind: str,
        n: int,
        weighted: bool,
        source_version,
        sources: tuple[int, ...],
        dist: memoryview,
        pred: memoryview,
        segment: "SharedCsrSegment",
    ) -> None:
        self.kind = kind
        self.n = n
        self.weighted = weighted
        self.source_version = source_version
        self.sources = sources
        self._index = {s: i for i, s in enumerate(sources)}
        self._dist = dist
        self._pred = pred
        self.segment = segment

    def __len__(self) -> int:
        return len(self.sources)

    def __contains__(self, source_idx: int) -> bool:
        return source_idx in self._index

    def row(self, source_idx: int) -> tuple[memoryview, memoryview]:
        """The ``(dist, pred)`` read-only views for *source_idx*."""
        slot = self._index[source_idx]
        lo, hi = slot * self.n, (slot + 1) * self.n
        seg = self.segment
        return (
            seg._export(self._dist[lo:hi]),
            seg._export(self._pred[lo:hi]),
        )


def publish_rows(
    kind: str,
    n: int,
    weighted: bool,
    source_version,
    rows: dict,
) -> Optional[SharedCsrSegment]:
    """Publish warm ``dist``/``pred`` rows into a fresh ``RROW`` segment.

    *rows* maps CSR source index -> ``(dist, pred)`` sequences of
    length *n* (lists, arrays, or memoryviews — packed into float64 /
    int64 blocks in ascending source order).  *kind* tags the consumer
    ("spt" for :class:`~repro.graph.incremental.SptCache` rows,
    "oracle" for distance-oracle rows) so an adopter can refuse rows
    computed under different query semantics.  Returns ``None`` on the
    same fallback conditions as :func:`publish_csr` (and for an empty
    *rows* — a header-only segment helps nobody).
    """
    if not rows:
        return None
    if not shm_enabled():
        COUNTERS.shm_fallbacks += 1
        return None
    sources = sorted(rows)
    dist_block = array(_ROW_DIST_TYPECODE)
    pred_block = array(_ROW_PRED_TYPECODE)
    for s in sources:
        dist, pred = rows[s]
        if len(dist) != n or len(pred) != n:
            COUNTERS.shm_fallbacks += 1
            return None
        dist_block.extend(dist)
        pred_block.extend(pred)
    header = json.dumps(
        {
            "tie_order": SHM_TIE_ORDER,
            "kind": kind,
            "n": n,
            "weighted": bool(weighted),
            "sources": sources,
            "source_version": source_version,
            "dist": {
                "typecode": _ROW_DIST_TYPECODE,
                "itemsize": dist_block.itemsize,
                "bytes": dist_block.itemsize * len(dist_block),
            },
            "pred": {
                "typecode": _ROW_PRED_TYPECODE,
                "itemsize": pred_block.itemsize,
                "bytes": pred_block.itemsize * len(pred_block),
            },
        },
        sort_keys=True,
    ).encode("utf-8")
    dist_off = _aligned(_PREAMBLE.size + len(header))
    dist_raw = memoryview(dist_block).cast("B")
    pred_off = _aligned(dist_off + len(dist_raw))
    pred_raw = memoryview(pred_block).cast("B")
    total = max(_aligned(pred_off + len(pred_raw)), 1)
    if total > shm_max_bytes():
        COUNTERS.shm_fallbacks += 1
        return None
    try:
        shm = _shared_memory.SharedMemory(create=True, size=total)
    except Exception:
        COUNTERS.shm_fallbacks += 1
        return None
    buf = shm.buf
    buf[: _PREAMBLE.size] = _PREAMBLE.pack(
        _ROW_MAGIC, SHM_ROW_FORMAT_VERSION, len(header)
    )
    buf[_PREAMBLE.size : _PREAMBLE.size + len(header)] = header
    buf[dist_off : dist_off + len(dist_raw)] = dist_raw
    buf[pred_off : pred_off + len(pred_raw)] = pred_raw
    _CREATED.add(shm.name)
    COUNTERS.shm_row_segments += 1
    COUNTERS.warm_rows_published += len(sources)
    return SharedCsrSegment(shm, creator=True)


def attach_rows(name: str) -> tuple[RowTable, SharedCsrSegment]:
    """Attach an ``RROW`` segment and wrap it in a :class:`RowTable`.

    Zero-copy: the table's blocks are read-only memoryview casts over
    the shared pages.  Raises :class:`ShmFormatError` on magic /
    format-version / tie-order / dtype / layout mismatch (detaching
    first), and whatever the platform raises when *name* is gone.
    """
    shm = _attach_untracked(name)
    seg = SharedCsrSegment(shm, creator=False)
    try:
        base = seg._export(memoryview(shm.buf))
        header, offset = _parse_preamble(
            base, _ROW_MAGIC, SHM_ROW_FORMAT_VERSION, "warm-row"
        )
        n = int(header["n"])
        sources = tuple(int(s) for s in header["sources"])
        blocks: dict[str, memoryview] = {}
        for sec_name in ("dist", "pred"):
            entry = header[sec_name]
            typecode = entry["typecode"]
            if array(typecode).itemsize != entry["itemsize"]:
                raise ShmFormatError(
                    f"section {sec_name!r} published with itemsize "
                    f"{entry['itemsize']}, local {typecode!r} has "
                    f"{array(typecode).itemsize}"
                )
            end = offset + entry["bytes"]
            if end > len(base):
                raise ShmFormatError(f"truncated section {sec_name!r}")
            view = base[offset:end].cast(typecode)
            if len(view) != len(sources) * n:
                raise ShmFormatError(
                    f"section {sec_name!r} holds {len(view)} items, "
                    f"expected {len(sources)} rows of {n}"
                )
            blocks[sec_name] = seg._export(view.toreadonly())
            offset = _aligned(end)
    except Exception:
        seg.close()
        raise
    table = RowTable(
        kind=header["kind"],
        n=n,
        weighted=bool(header["weighted"]),
        source_version=header.get("source_version"),
        sources=sources,
        dist=blocks["dist"],
        pred=blocks["pred"],
        segment=seg,
    )
    COUNTERS.shm_row_attach += 1
    return table, seg


#: name -> (RowTable, segment): one attach per worker process per row
#: segment.  Kept separate from the CSR memo — the two formats have
#: different value types and the leak checks audit them independently.
_ATTACHED_ROWS: dict[str, tuple[RowTable, SharedCsrSegment]] = {}


def attach_rows_cached(name: str) -> RowTable:
    """Per-process memoized :func:`attach_rows` (worker fan-out path)."""
    cached = _ATTACHED_ROWS.get(name)
    if cached is not None and not cached[1].closed:
        return cached[0]
    table, seg = attach_rows(name)
    _ATTACHED_ROWS[name] = (table, seg)
    return table


# -- leak checking ------------------------------------------------------------


def segment_exists(name: str) -> bool:
    """Does a backing shared-memory object for *name* still exist?"""
    if _shared_memory is None:
        return False
    try:
        probe = _attach_untracked(name)
    except FileNotFoundError:
        return False
    except Exception:
        return False
    probe.close()
    return True


def created_segment_names() -> frozenset[str]:
    """Every segment name this process has created (closed or not)."""
    return frozenset(_CREATED)


def residual_segments() -> list[str]:
    """Leak check: created-here names whose backing object still exists.

    An empty list after pool shutdown means every published segment was
    unlinked; the tests assert exactly this on normal *and* exception
    teardown paths.
    """
    return [name for name in sorted(_CREATED) if segment_exists(name)]
