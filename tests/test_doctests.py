"""Run the library's doctests — the examples in docstrings must stay true."""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.graph.graph
import repro.graph.heap
import repro.graph.paths
import repro.graph.spt
import repro.mpls.labels
import repro.topology.classic

MODULES = [
    repro,
    repro.graph.graph,
    repro.graph.heap,
    repro.graph.paths,
    repro.graph.spt,
    repro.mpls.labels,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
    assert result.attempted > 0, f"no doctests found in {module.__name__}"
