"""Tests for the run ledger — schema pin, append/round-trip, comparability."""

from __future__ import annotations

import json

import pytest

from repro import __version__

# Aliased: pytest's ``bench_*`` collection pattern (for benchmarks/)
# would otherwise pick the bare import up as a test function.
from repro.experiments.bench import bench_header as make_bench_header
from repro.experiments.bench import write_bench_json
from repro.obs.ledger import (
    COMPARABILITY_KEYS,
    LEDGER_SCHEMA,
    append_entry,
    comparability_key,
    comparable_history,
    git_sha,
    ledger_enabled,
    ledger_path_for,
    make_entry,
    read_entries,
    record_run,
)

PAYLOAD = {
    "scale": "tiny",
    "seed": 7,
    "cases": 240,
    "modes": ["link"],
    "tie_order": "canonical",
    "shm_enabled": True,
    "kernel_backend": "python",
    "jobs": 1,
    "wall_clock_s": 0.21,
    "stages": {"cases": 0.12},
    "counters": {"probe_calls": 100},
    "memory": {"max_rss_kb": 26000, "tracemalloc_peak_kb": None},
    "git_sha": "abc123def456",
    "repro_version": "1.0.0",
}


class TestSchema:
    """The envelope contract downstream readers rely on."""

    def test_schema_tag(self):
        assert LEDGER_SCHEMA == "repro.obs.ledger/1"

    def test_entry_envelope_keys_pinned(self):
        entry = make_entry("table2", PAYLOAD, "results/BENCH_table2.json")
        assert set(entry) == {
            "schema", "ts", "git_sha", "repro_version", "name", "config",
            "wall_clock_s", "stages", "counters", "memory", "bench_path",
        }
        assert entry["schema"] == LEDGER_SCHEMA
        assert entry["name"] == "table2"
        assert entry["git_sha"] == "abc123def456"
        assert entry["repro_version"] == "1.0.0"
        assert entry["bench_path"] == "results/BENCH_table2.json"

    def test_config_carries_comparability_fields_only(self):
        entry = make_entry("table2", PAYLOAD)
        assert entry["config"] == {
            "scale": "tiny", "seed": 7, "cases": 240, "modes": ["link"],
            "tie_order": "canonical", "shm_enabled": True,
            "kernel_backend": "python", "jobs": 1,
        }
        # Measurements never leak into the comparability config.
        assert "wall_clock_s" not in entry["config"]
        assert "counters" not in entry["config"]

    def test_make_entry_does_not_mutate_payload(self):
        payload = dict(PAYLOAD)
        make_entry("table2", payload)
        assert payload == PAYLOAD

    def test_foreign_schema_rejected(self):
        line = json.dumps({"schema": "repro.obs.ledger/999"})
        with pytest.raises(ValueError, match="unsupported ledger schema"):
            read_entries([line])


class TestAppendRoundTrip:
    def test_append_then_read(self, tmp_path):
        path = tmp_path / "history" / "ledger.jsonl"
        first = make_entry("table2", PAYLOAD)
        second = make_entry("table2", dict(PAYLOAD, seed=8))
        append_entry(first, path)
        append_entry(second, path)
        entries = read_entries(path)
        assert entries == [first, second]

    def test_record_run_appends(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "1")
        bench = tmp_path / "results" / "BENCH_x.json"
        out = record_run("x", PAYLOAD, bench)
        assert out == tmp_path / "results" / "history" / "ledger.jsonl"
        [entry] = read_entries(out)
        assert entry["name"] == "x"

    def test_kill_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert not ledger_enabled()
        assert record_run("x", PAYLOAD, tmp_path / "BENCH_x.json") is None
        assert not (tmp_path / "history").exists()

    def test_path_override(self, tmp_path, monkeypatch):
        override = tmp_path / "elsewhere.jsonl"
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(override))
        assert ledger_path_for("results/BENCH_x.json") == override

    def test_default_path_next_to_bench(self):
        assert ledger_path_for("results/BENCH_x.json") == (
            ledger_path_for("results/BENCH_y.json")
        )
        assert str(ledger_path_for("results/BENCH_x.json")).endswith(
            "results/history/ledger.jsonl"
        )

    def test_record_run_is_best_effort(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "1")
        # Point the ledger at an unwritable location: a path *under* an
        # existing file cannot be created.
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(blocker / "ledger.jsonl"))
        assert record_run("x", PAYLOAD) is None  # swallowed, not raised


class TestComparability:
    def test_same_config_is_comparable(self):
        a = make_entry("table2", PAYLOAD)
        b = make_entry("table2", dict(PAYLOAD, wall_clock_s=99.0))
        assert comparability_key(a) == comparability_key(b)
        assert comparable_history([a, b], b) == [a]

    @pytest.mark.parametrize("field,value", [
        ("scale", "small"), ("seed", 8), ("cases", 9),
        ("modes", ["link", "router"]), ("kernel_backend", "numpy"),
        ("jobs", 4), ("shm_enabled", False),
    ])
    def test_policy_change_breaks_comparability(self, field, value):
        a = make_entry("table2", PAYLOAD)
        b = make_entry("table2", dict(PAYLOAD, **{field: value}))
        assert comparability_key(a) != comparability_key(b)
        assert comparable_history([a, b], b) == []

    def test_different_name_not_comparable(self):
        a = make_entry("table2", PAYLOAD)
        b = make_entry("table3", PAYLOAD)
        assert comparability_key(a) != comparability_key(b)

    def test_absent_fields_compare_as_none(self):
        # Entries predating a comparability field stay comparable.
        a = make_entry("x", {"scale": "tiny"})
        b = make_entry("x", {"scale": "tiny"})
        assert comparability_key(a) == comparability_key(b)
        assert len(comparability_key(a)) == len(COMPARABILITY_KEYS)


class TestProvenanceStamps:
    """Satellite: git sha + version in every BENCH header."""

    def test_bench_header_carries_sha_and_version(self):
        header = make_bench_header()
        assert header["repro_version"] == __version__
        assert "git_sha" in header  # None outside a repo, a str inside

    def test_git_sha_in_repo(self):
        sha = git_sha()
        if sha is not None:  # running inside the repo checkout
            assert len(sha) == 12
            assert all(c in "0123456789abcdef" for c in sha)

    def test_write_bench_json_stamps_and_records(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "1")
        out = write_bench_json(
            "x",
            {"name": "x", "scale": "tiny", "counters": {}},
            path=str(tmp_path / "results" / "BENCH_x.json"),
        )
        payload = json.loads(out.read_text())
        assert payload["repro_version"] == __version__
        assert "git_sha" in payload
        assert payload["memory"]["max_rss_kb"] > 0
        [entry] = read_entries(tmp_path / "results" / "history" / "ledger.jsonl")
        assert entry["name"] == "x"
        assert entry["config"]["scale"] == "tiny"

    def test_write_bench_json_respects_kill_switch(self, tmp_path):
        # conftest sets REPRO_LEDGER=0 for every test by default.
        write_bench_json(
            "x", {"name": "x"}, path=str(tmp_path / "BENCH_x.json")
        )
        assert not (tmp_path / "history").exists()


class TestDiffShaWarning:
    """Satellite: ``repro.obs diff`` warns (never fails) on sha mismatch."""

    def _write(self, path, sha):
        payload = {
            "name": "x", "scale": "tiny", "seed": 1, "cases": 4,
            "counters": {"probe_calls": 10}, "wall_clock_s": 0.1,
            "git_sha": sha,
        }
        path.write_text(json.dumps(payload))
        return path

    def test_sha_mismatch_warns_but_compares(self, tmp_path, capsys):
        from repro.obs.cli import main

        old = self._write(tmp_path / "old.json", "aaaaaaaaaaaa")
        new = self._write(tmp_path / "new.json", "bbbbbbbbbbbb")
        assert main(["diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "note: comparing across commits" in out
        assert "OK: no hard regressions" in out

    def test_same_sha_no_note(self, tmp_path, capsys):
        from repro.obs.cli import main

        old = self._write(tmp_path / "old.json", "aaaaaaaaaaaa")
        new = self._write(tmp_path / "new.json", "aaaaaaaaaaaa")
        assert main(["diff", str(old), str(new)]) == 0
        assert "comparing across commits" not in capsys.readouterr().out
