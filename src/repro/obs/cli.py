"""``python -m repro.obs`` — render traces, timelines, and bench diffs.

Subcommands:

``tree TRACE.jsonl``
    Render a span trace (written by ``--trace-jsonl``) as an indented
    tree with durations and share-of-parent percentages.

``timeline EVENTS.jsonl [MORE.jsonl ...]``
    Render one or more structured event logs (:mod:`repro.obs.events`)
    as a single time-ordered table; globs are expanded, files are
    merged by time.  ``--kind`` filters.

``summary BENCH.json [MORE.json ...]``
    Summarize the ``metrics`` section of bench payloads (or bare
    metrics dicts): counters, gauges, histograms with ASCII bars,
    memory gauges, and the derived oracle/kernel hit rates.  Globs are
    expanded; several files render one after another with headers.

``diff OLD.json NEW.json``
    Compare two ``BENCH_*.json`` files.  Work-counter growth beyond
    ``--max-counter-growth`` (default 10%) is a **hard** regression —
    exit code 1 — because counters are deterministic; wall-clock growth
    is a soft warning unless ``--fail-on-wall`` is given (clocks are
    noisy on shared CI runners).  Exit code 2 means the two files are
    not comparable (different experiment/scale/case count).  A
    ``git_sha`` mismatch only *warns* — comparing commits is the point.

``trend [--ledger PATH]``
    Gate the latest ledger entry against all comparable history
    (:mod:`repro.obs.ledger`).  Exit 0 = within thresholds, 1 = hard
    counter regression (or wall/memory with their ``--fail-on-*``
    flags), 2 = no comparable history to trend against.

``report [--ledger PATH] [--heartbeat-dir DIR] --out report.html``
    Render a static HTML run report (:mod:`repro.obs.report`): stages,
    counter deltas, memory, comparable history, straggler table.

``watch DIR``
    Render the live progress of a ``--heartbeat-dir DIR`` run: chunks
    done, items/sec, ETA, straggler chunks.  One-shot by default;
    ``--follow`` refreshes until the fan-out completes.

``ledger [--ledger PATH]``
    List the ledger's entries, newest last.
"""

from __future__ import annotations

import argparse
import glob as _glob
import json
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Optional

from . import heartbeat as hb
from .events import EventLog
from .ledger import comparable_history, read_entries
from .metrics import rates_from_counters
from .report import (
    MISPREDICT_FACTOR,
    STRAGGLER_FACTOR,
    render_report,
    straggler_rows,
)
from .trace import read_jsonl as read_trace_jsonl


def _load_json(path: str) -> dict[str, Any]:
    """Read a JSON payload; legacy root ``BENCH_*.json`` paths are gone.

    Bench outputs moved from the working directory into ``results/``
    (PR 4); the one-release resolution shim for root-level paths has
    been dropped.  A missing file whose basename exists under
    ``results/`` raises with a pointer there instead of silently
    resolving the old layout.
    """
    p = Path(path)
    if not p.exists():
        moved = p.parent / "results" / p.name
        if moved.exists():
            raise SystemExit(
                f"error: {path} does not exist; bench outputs live under "
                f"results/ — did you mean {moved}?"
            )
        raise SystemExit(f"error: {path} does not exist")
    return json.loads(p.read_text())


def _expand_paths(patterns: list[str]) -> list[str]:
    """Expand globs (sorted per pattern); non-glob paths pass through.

    A glob pattern matching nothing is an error — silently summarizing
    zero files reads as success.  Duplicates (a file named directly and
    matched by a glob) collapse to their first occurrence.
    """
    out: list[str] = []
    for pattern in patterns:
        if any(ch in pattern for ch in "*?["):
            matches = sorted(_glob.glob(pattern))
            if not matches:
                raise SystemExit(f"error: no files match {pattern!r}")
            out.extend(matches)
        else:
            out.append(pattern)
    seen: set[str] = set()
    unique = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000:.2f}ms"


# -- tree ---------------------------------------------------------------------


def cmd_tree(args: argparse.Namespace) -> int:
    records = read_trace_jsonl(args.trace)
    if not records:
        print("(empty trace)")
        return 0
    by_id = {r["id"]: r for r in records}
    for r in records:
        t1 = r["t1"] if r["t1"] is not None else r["t0"]
        duration = t1 - r["t0"]
        if duration * 1000 < args.min_ms:
            continue
        parent = by_id.get(r["parent"]) if r["parent"] is not None else None
        share = ""
        if parent is not None and parent["t1"] is not None:
            parent_duration = parent["t1"] - parent["t0"]
            if parent_duration > 0:
                share = f"  ({100.0 * duration / parent_duration:.1f}% of {parent['name']})"
        indent = "  " * r["depth"]
        meta = f"  {r['meta']}" if "meta" in r else ""
        print(f"{indent}{r['name']}  {_fmt_seconds(duration)}{share}{meta}")
    return 0


# -- timeline -----------------------------------------------------------------


def cmd_timeline(args: argparse.Namespace) -> int:
    paths = _expand_paths(args.events)
    merged: list[tuple[float, int, int, Any]] = []
    kinds: dict[str, int] = {}
    total = 0
    for order, path in enumerate(paths):
        log = EventLog.read_jsonl(path)
        total += len(log)
        for e in (log.filter(*args.kind) if args.kind else list(log)):
            # (time, file order, seq): stable for identical timestamps
            # across files, preserves emission order within one.
            merged.append((e.time, order, e.seq, e))
        for kind, n in log.kinds().items():
            kinds[kind] = kinds.get(kind, 0) + n
    merged.sort(key=lambda item: item[:3])
    events = [item[3] for item in merged]
    if args.limit is not None:
        events = events[: args.limit]
    for e in events:
        detail = " ".join(f"{k}={e.detail[k]!r}" for k in sorted(e.detail))
        print(f"t={e.time:<12.6f} {str(e.actor):<16} {e.kind:<22} {detail}")
    counts = ", ".join(f"{k}:{n}" for k, n in sorted(kinds.items()))
    suffix = f" from {len(paths)} files" if len(paths) > 1 else ""
    print(f"-- {total} events ({counts}){suffix}")
    return 0


# -- summary ------------------------------------------------------------------

_BAR_WIDTH = 40


def _render_histogram(name: str, hist: dict[str, Any]) -> None:
    print(f"histogram {name}: count={hist['count']} sum={hist['sum']:.6g} "
          f"min={hist['min']} max={hist['max']}")
    total = sum(hist["counts"])
    if not total:
        return
    edges = hist["edges"]
    labels = [f"<= {e:g}" for e in edges] + [f"> {edges[-1]:g}"]
    width = max(len(label) for label in labels)
    for label, count in zip(labels, hist["counts"]):
        bar = "#" * round(_BAR_WIDTH * count / total)
        print(f"  {label:<{width}}  {count:>8}  {bar}")


def _summarize_one(payload: dict[str, Any]) -> bool:
    metrics = payload.get("metrics", payload)
    shown = False
    for name, value in sorted(metrics.get("counters", {}).items()):
        print(f"counter {name}: {value}")
        shown = True
    for name, value in sorted(metrics.get("gauges", {}).items()):
        print(f"gauge {name}: {value}")
        shown = True
    for name, hist in sorted(metrics.get("histograms", {}).items()):
        _render_histogram(name, hist)
        shown = True
    memory = payload.get("memory")
    if isinstance(memory, dict) and memory:
        print("memory:")
        for name in sorted(memory):
            print(f"  {name}: {memory[name]}")
        shown = True
    perf = payload.get("counters")
    if isinstance(perf, dict):
        print("derived rates (from perf counters):")
        for name, value in rates_from_counters(perf).items():
            rendered = "n/a" if value is None else f"{value:.4g}"
            print(f"  {name}: {rendered}")
        shown = True
    return shown


def cmd_summary(args: argparse.Namespace) -> int:
    paths = _expand_paths(args.bench)
    for path in paths:
        if len(paths) > 1:
            print(f"== {path} ==")
        if not _summarize_one(_load_json(path)):
            print("(no metrics found)")
    return 0


# -- diff ---------------------------------------------------------------------


def _growth(old: float, new: float) -> Optional[float]:
    """Relative growth; None when the old value is zero and new is too."""
    if old == 0:
        return None if new == 0 else float("inf")
    return (new - old) / old


def cmd_diff(args: argparse.Namespace) -> int:
    old = _load_json(args.old)
    new = _load_json(args.new)

    # Provenance, not policy: different commits are exactly what a
    # diff compares, so a sha mismatch is a note, never an exit code.
    old_sha, new_sha = old.get("git_sha"), new.get("git_sha")
    if old_sha and new_sha and old_sha != new_sha:
        print(f"note: comparing across commits ({old_sha} vs {new_sha})")

    # policy / failure_model / tie_order / repair_fallback /
    # shm_enabled / kernel_backend / jobs: policy fields stamped by
    # write_bench_json — runs under different restoration policies,
    # failure models, tie rules, fallback thresholds, shared-memory
    # availability, kernel backends, or fan-out widths do different
    # work or time it differently (worker-side counters merge into the
    # totals; backends share counters but not wall-clock), so their
    # numbers must not be diffed (files predating the fields compare
    # as before).
    for key in (
        "name", "scale", "seed", "cases",
        "policy", "failure_model",
        "tie_order", "repair_fallback", "shm_enabled", "kernel_backend",
        "jobs",
    ):
        if key in old and key in new and old[key] != new[key]:
            print(
                f"NOT COMPARABLE: {key} differs "
                f"({old[key]!r} vs {new[key]!r})"
            )
            return 2

    exit_code = 0

    # Work counters: deterministic, hence a hard gate.
    old_counters = old.get("counters", {})
    new_counters = new.get("counters", {})
    regressions = []
    for name in sorted(set(old_counters) | set(new_counters)):
        o, n = old_counters.get(name, 0), new_counters.get(name, 0)
        growth = _growth(o, n)
        if growth is None or o == n:
            continue
        marker = ""
        if growth > args.max_counter_growth:
            marker = "  REGRESSION"
            regressions.append(name)
        pct = f"{growth * 100:+.1f}%" if growth != float("inf") else "+inf"
        print(f"counter {name}: {o} -> {n} ({pct}){marker}")
    if regressions:
        print(
            f"FAIL: {len(regressions)} counter(s) grew more than "
            f"{args.max_counter_growth * 100:.0f}%: {', '.join(regressions)}"
        )
        exit_code = 1

    # Wall clock: noisy, soft by default.
    old_wall, new_wall = old.get("wall_clock_s"), new.get("wall_clock_s")
    if old_wall and new_wall is not None:
        growth = _growth(old_wall, new_wall) or 0.0
        print(f"wall_clock_s: {old_wall} -> {new_wall} ({growth * 100:+.1f}%)")
        if growth > args.max_wall_growth:
            if args.fail_on_wall:
                print(
                    f"FAIL: wall clock grew more than "
                    f"{args.max_wall_growth * 100:.0f}%"
                )
                exit_code = max(exit_code, 1)
            else:
                print(
                    f"WARN: wall clock grew more than "
                    f"{args.max_wall_growth * 100:.0f}% (soft; "
                    f"pass --fail-on-wall to gate on it)"
                )
    for name in sorted(set(old.get("stages", {})) | set(new.get("stages", {}))):
        o = old.get("stages", {}).get(name, 0.0)
        n = new.get("stages", {}).get(name, 0.0)
        growth = _growth(o, n)
        pct = "" if growth in (None, float("inf")) else f" ({growth * 100:+.1f}%)"
        print(f"stage {name}: {o} -> {n}{pct}")

    if exit_code == 0:
        print("OK: no hard regressions")
    return exit_code


# -- trend --------------------------------------------------------------------

#: Default ledger the history commands read (relative to the cwd).
DEFAULT_LEDGER = "results/history/ledger.jsonl"


def _load_ledger(args: argparse.Namespace) -> list[dict[str, Any]]:
    path = Path(args.ledger)
    if not path.exists():
        raise SystemExit(f"error: ledger {path} does not exist")
    entries = read_entries(path)
    name = getattr(args, "name", None)
    if name:
        entries = [e for e in entries if e.get("name") == name]
    return entries


def cmd_trend(args: argparse.Namespace) -> int:
    entries = _load_ledger(args)
    if not entries:
        print("NO HISTORY: ledger has no entries"
              + (f" named {args.name!r}" if args.name else ""))
        return 2
    latest = entries[-1]
    history = comparable_history(entries, latest)
    sha = latest.get("git_sha") or "?"
    print(f"latest: {latest.get('name')} @ {sha} "
          f"(ts {latest.get('ts')}, {len(history)} comparable prior runs)")
    if not history:
        print("NO HISTORY: no prior comparable entry "
              "(config or workload changed)")
        return 2

    exit_code = 0

    # Counters: deterministic per config, so trend against the
    # *minimum* over history — the best the same work has ever cost.
    regressions = []
    latest_counters = latest.get("counters", {}) or {}
    for name in sorted(latest_counters):
        past = [
            e["counters"][name] for e in history
            if name in (e.get("counters") or {})
        ]
        if not past:
            continue
        best, now = min(past), latest_counters[name]
        growth = _growth(best, now)
        if growth is None or best == now:
            continue
        marker = ""
        if growth > args.max_counter_growth:
            marker = "  REGRESSION"
            regressions.append(name)
        pct = f"{growth * 100:+.1f}%" if growth != float("inf") else "+inf"
        print(f"counter {name}: best {best} -> {now} ({pct}){marker}")
    if regressions:
        print(
            f"FAIL: {len(regressions)} counter(s) grew more than "
            f"{args.max_counter_growth * 100:.0f}% over the best comparable "
            f"run: {', '.join(regressions)}"
        )
        exit_code = 1

    # Wall clock and memory: noisy measurements, trended against the
    # *median* over history, soft unless their --fail-on-* flag is set.
    def _soft_gate(label: str, now: Optional[float],
                   past: list[float], max_growth: float,
                   hard: bool) -> None:
        nonlocal exit_code
        if now is None or not past:
            return
        baseline = statistics.median(past)
        growth = _growth(baseline, now)
        if growth is None:
            return
        print(f"{label}: median {baseline:g} -> {now:g} "
              f"({growth * 100:+.1f}%)")
        if growth > max_growth:
            if hard:
                print(f"FAIL: {label} grew more than {max_growth * 100:.0f}%")
                exit_code = max(exit_code, 1)
            else:
                print(f"WARN: {label} grew more than "
                      f"{max_growth * 100:.0f}% (soft; pass "
                      f"--fail-on-{'wall' if 'wall' in label else 'memory'} "
                      f"to gate on it)")

    _soft_gate(
        "wall_clock_s", latest.get("wall_clock_s"),
        [e["wall_clock_s"] for e in history
         if e.get("wall_clock_s") is not None],
        args.max_wall_growth, args.fail_on_wall,
    )
    _soft_gate(
        "max_rss_kb", (latest.get("memory") or {}).get("max_rss_kb"),
        [e["memory"]["max_rss_kb"] for e in history
         if (e.get("memory") or {}).get("max_rss_kb") is not None],
        args.max_memory_growth, args.fail_on_memory,
    )

    if exit_code == 0:
        print("OK: latest run within thresholds of comparable history")
    return exit_code


# -- report -------------------------------------------------------------------


def cmd_report(args: argparse.Namespace) -> int:
    entries = _load_ledger(args)
    heartbeats = None
    if args.heartbeat_dir:
        heartbeats = hb.merge_heartbeats(hb.read_heartbeats(args.heartbeat_dir))
    html_text = render_report(entries, heartbeats)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(html_text)
    print(f"wrote {out} ({len(entries)} ledger entries"
          + (f", {len(heartbeats)} heartbeats" if heartbeats else "") + ")")
    return 0


# -- watch --------------------------------------------------------------------


def _render_watch(records: list[dict[str, Any]],
                  straggler_factor: float,
                  cost_model: bool = False) -> bool:
    """Print one progress snapshot; True when every fan-out completed."""
    if not records:
        print("(no heartbeats yet)")
        return False
    merged = hb.merge_heartbeats(records)
    labels: dict[str, dict[str, Any]] = {}
    for r in merged:
        state = labels.setdefault(r.get("label", "?"), {
            "total": None, "chunks": None, "jobs": None,
            "done_items": 0, "chunks_done": 0, "started": None,
            "ended": None, "progress": {},
        })
        kind = r["kind"]
        if kind == "fanout-start":
            state["total"] = r.get("total")
            state["chunks"] = r.get("chunks")
            state["jobs"] = r.get("jobs")
            state["started"] = r.get("ts")
        elif kind == "chunk-end":
            state["chunks_done"] += 1
            state["done_items"] += r.get("items", 0) or 0
        elif kind == "scenario-progress" and r.get("chunk"):
            # Latest in-chunk tick; superseded by the chunk-end count.
            state["progress"][tuple(r["chunk"])] = r.get("done", 0)
        elif kind == "fanout-end":
            state["ended"] = r.get("ts")

    all_done = True
    now = time.time()
    for label, state in labels.items():
        done = state["done_items"]
        total = state["total"]
        finished = state["ended"] is not None
        if not finished:
            all_done = False
        eta = ""
        if not finished and state["started"] and done and total:
            elapsed = max(now - state["started"], 1e-9)
            rate = done / elapsed
            if rate > 0:
                eta = f"  ETA {max(total - done, 0) / rate:.0f}s"
        chunks = (f"{state['chunks_done']}/{state['chunks']}"
                  if state["chunks"] is not None else str(state["chunks_done"]))
        pct = f" ({100.0 * done / total:.0f}%)" if total else ""
        status = "done" if finished else "running"
        print(f"{label}: {status}  chunks {chunks}  "
              f"items {done}/{total if total is not None else '?'}{pct}{eta}")

    rows, median = straggler_rows(records, straggler_factor)
    flagged = [r for r in rows if r["straggler"]]
    if flagged:
        print(f"stragglers (> {straggler_factor:g}x median {median:.4f}s):")
        for r in sorted(flagged, key=lambda r: -r["wall_s"]):
            chunk = r.get("chunk") or ["?", "?"]
            print(f"  {r.get('label', '?')} chunk [{chunk[0]}, {chunk[1]}) "
                  f"items={r.get('items', '?')} wall={r['wall_s']:.4f}s")
    if cost_model:
        scored = [r for r in rows if r.get("predicted_s") is not None]
        if scored:
            print("cost model (predicted vs actual chunk wall; "
                  f"> {MISPREDICT_FACTOR:g}x off flagged MISPREDICT):")
            for r in sorted(scored, key=lambda r: -r["wall_s"]):
                chunk = r.get("chunk") or ["?", "?"]
                ratio = r.get("cost_ratio")
                ratio_s = f"{ratio:.2f}x" if ratio is not None else "?"
                off = ratio is not None and (
                    ratio > MISPREDICT_FACTOR
                    or ratio < 1 / MISPREDICT_FACTOR
                )
                print(f"  {r.get('label', '?')} chunk "
                      f"[{chunk[0]}, {chunk[1]}) cost={r.get('cost', '?')} "
                      f"predicted={r['predicted_s']:.4f}s "
                      f"actual={r['wall_s']:.4f}s ratio={ratio_s}"
                      + ("  MISPREDICT" if off else ""))
        else:
            print("cost model: (no cost-weighted chunks yet)")
    return all_done


def cmd_watch(args: argparse.Namespace) -> int:
    directory = Path(args.dir)
    if not directory.exists():
        raise SystemExit(f"error: heartbeat dir {directory} does not exist")
    while True:
        records = hb.read_heartbeats(directory)
        done = _render_watch(records, args.straggler_factor,
                             cost_model=getattr(args, "cost_model", False))
        if done or not args.follow:
            return 0
        time.sleep(args.interval)
        print(f"-- refresh ({time.strftime('%H:%M:%S')}) --")


# -- ledger -------------------------------------------------------------------


def cmd_ledger(args: argparse.Namespace) -> int:
    entries = _load_ledger(args)
    if not entries:
        print("(empty ledger)")
        return 0
    for e in entries:
        when = time.strftime("%Y-%m-%d %H:%M:%S",
                             time.gmtime(e.get("ts", 0)))
        config = e.get("config", {})
        bits = " ".join(
            f"{k}={config[k]}" for k in ("scale", "jobs", "kernel_backend")
            if k in config
        )
        wall = e.get("wall_clock_s")
        wall_s = f"{wall:g}s" if wall is not None else "?"
        print(f"{when}Z  {e.get('name'):<16} sha={e.get('git_sha') or '?'} "
              f"wall={wall_s}  {bits}")
    print(f"-- {len(entries)} entries")
    return 0


# -- entry point --------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tree = sub.add_parser("tree", help="render a span trace JSONL as a tree")
    tree.add_argument("trace", help="path to a --trace-jsonl file")
    tree.add_argument(
        "--min-ms", type=float, default=0.0,
        help="hide spans shorter than this many milliseconds",
    )
    tree.set_defaults(func=cmd_tree)

    timeline = sub.add_parser(
        "timeline", help="render structured event logs as one timeline"
    )
    timeline.add_argument(
        "events", nargs="+",
        help="events JSONL file(s) or glob(s); merged by time",
    )
    timeline.add_argument(
        "--kind", action="append", default=None,
        help="only show events of this kind (repeatable)",
    )
    timeline.add_argument("--limit", type=int, default=None)
    timeline.set_defaults(func=cmd_timeline)

    summary = sub.add_parser(
        "summary", help="summarize the metrics of BENCH_*.json files"
    )
    summary.add_argument(
        "bench", nargs="+",
        help="BENCH_*.json / metrics JSON file(s) or glob(s)",
    )
    summary.set_defaults(func=cmd_summary)

    diff = sub.add_parser("diff", help="compare two BENCH_*.json files")
    diff.add_argument("old", help="baseline BENCH_*.json")
    diff.add_argument("new", help="fresh BENCH_*.json")
    diff.add_argument(
        "--max-counter-growth", type=float, default=0.10,
        help="hard-fail when a work counter grows more than this fraction "
             "(default 0.10)",
    )
    diff.add_argument(
        "--max-wall-growth", type=float, default=0.50,
        help="wall-clock growth fraction that triggers the warning/failure "
             "(default 0.50)",
    )
    diff.add_argument(
        "--fail-on-wall", action="store_true",
        help="treat wall-clock growth beyond --max-wall-growth as a failure",
    )
    diff.set_defaults(func=cmd_diff)

    def _ledger_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--ledger", default=DEFAULT_LEDGER, metavar="PATH",
            help=f"ledger JSONL to read (default {DEFAULT_LEDGER})",
        )
        p.add_argument(
            "--name", default=None,
            help="only consider entries for this experiment name",
        )

    trend = sub.add_parser(
        "trend", help="gate the latest ledger entry against its history"
    )
    _ledger_args(trend)
    trend.add_argument(
        "--max-counter-growth", type=float, default=0.10,
        help="hard-fail when a work counter grows more than this fraction "
             "over the best comparable run (default 0.10)",
    )
    trend.add_argument(
        "--max-wall-growth", type=float, default=0.50,
        help="wall-clock growth over the comparable median that triggers "
             "the warning/failure (default 0.50)",
    )
    trend.add_argument(
        "--max-memory-growth", type=float, default=0.50,
        help="peak-RSS growth over the comparable median that triggers "
             "the warning/failure (default 0.50)",
    )
    trend.add_argument(
        "--fail-on-wall", action="store_true",
        help="treat wall-clock growth beyond the threshold as a failure",
    )
    trend.add_argument(
        "--fail-on-memory", action="store_true",
        help="treat peak-RSS growth beyond the threshold as a failure",
    )
    trend.set_defaults(func=cmd_trend)

    report = sub.add_parser(
        "report", help="render a static HTML report from the ledger"
    )
    _ledger_args(report)
    report.add_argument(
        "--heartbeat-dir", default=None, metavar="DIR",
        help="include the straggler table from this heartbeat channel",
    )
    report.add_argument(
        "--out", default="report.html", metavar="PATH",
        help="where to write the HTML (default report.html)",
    )
    report.set_defaults(func=cmd_report)

    watch = sub.add_parser(
        "watch", help="render live progress from a --heartbeat-dir channel"
    )
    watch.add_argument("dir", help="heartbeat directory to watch")
    watch.add_argument(
        "--follow", action="store_true",
        help="refresh until every fan-out reports completion",
    )
    watch.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between refreshes with --follow (default 1.0)",
    )
    watch.add_argument(
        "--straggler-factor", type=float, default=STRAGGLER_FACTOR,
        help="flag chunks slower than this multiple of their label's "
             f"median chunk wall time (default {STRAGGLER_FACTOR})",
    )
    watch.add_argument(
        "--cost-model", action="store_true",
        help="show predicted vs actual wall per cost-weighted chunk and "
             f"flag predictions off by more than {MISPREDICT_FACTOR:g}x",
    )
    watch.set_defaults(func=cmd_watch)

    ledger = sub.add_parser("ledger", help="list the run ledger's entries")
    _ledger_args(ledger)
    ledger.set_defaults(func=cmd_ledger)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """Run a subcommand; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
