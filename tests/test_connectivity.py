"""Tests for components, bridges, and articulation points (vs networkx)."""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.graph.graph import Graph
from repro.graph.connectivity import (
    articulation_points,
    bridges,
    connected_components,
    edge_disconnects,
    is_connected,
    is_two_edge_connected,
    largest_component,
)


class TestComponents:
    def test_single_component(self, triangle):
        assert is_connected(triangle)
        assert connected_components(triangle) == [{1, 2, 3}]

    def test_two_components(self):
        g = Graph.from_edges([(1, 2), (3, 4), (4, 5)])
        comps = sorted(connected_components(g), key=len)
        assert comps == [{1, 2}, {3, 4, 5}]
        assert not is_connected(g)
        assert largest_component(g) == {3, 4, 5}

    def test_empty_graph(self):
        g = Graph()
        assert connected_components(g) == []
        assert not is_connected(g)
        assert largest_component(g) == set()

    def test_isolated_node(self):
        g = Graph()
        g.add_node(1)
        assert is_connected(g)

    def test_components_respect_view(self, square):
        view = square.without(edges=[(1, 2), (3, 4)])
        comps = sorted(map(sorted, connected_components(view)))
        assert comps == [[1, 4], [2, 3]]


class TestBridges:
    def test_cycle_has_no_bridges(self, square):
        assert bridges(square) == set()
        assert is_two_edge_connected(square)

    def test_tree_edges_are_all_bridges(self, line5):
        assert bridges(line5) == {(0, 1), (1, 2), (2, 3), (3, 4)}
        assert not is_two_edge_connected(line5)

    def test_barbell(self):
        # Two triangles joined by a single edge: only that edge is a bridge.
        g = Graph.from_edges(
            [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6), (3, 4)]
        )
        assert bridges(g) == {(3, 4)}
        assert edge_disconnects(g, 3, 4)
        assert not edge_disconnects(g, 1, 2)

    def test_bridges_in_view(self, square):
        # Removing one cycle edge turns the rest into bridges.
        view = square.without(edges=[(1, 2)])
        assert bridges(view) == {(2, 3), (3, 4), (1, 4)}


class TestArticulationPoints:
    def test_cycle_has_none(self, square):
        assert articulation_points(square) == set()

    def test_path_interior_nodes(self, line5):
        assert articulation_points(line5) == {1, 2, 3}

    def test_star_center(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert articulation_points(g) == {0}

    def test_barbell_joint(self):
        g = Graph.from_edges(
            [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6), (3, 4)]
        )
        assert articulation_points(g) == {3, 4}


@st.composite
def random_graphs(draw):
    n = draw(st.integers(3, 20))
    g = Graph()
    g.add_node(0)
    for i in range(1, n):
        if draw(st.booleans()):
            g.add_edge(draw(st.integers(0, i - 1)), i)
        else:
            g.add_node(i)
    for u, v in draw(
        st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=30)
    ):
        if u < n and v < n and u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def _to_nx(g):
    gx = nx.Graph()
    for u in g.nodes:
        gx.add_node(u)
    for u, v in g.edges():
        gx.add_edge(u, v)
    return gx


@settings(max_examples=80, deadline=None)
@given(random_graphs())
def test_bridges_match_networkx(g):
    assert bridges(g) == {tuple(sorted(e)) for e in nx.bridges(_to_nx(g))}


@settings(max_examples=80, deadline=None)
@given(random_graphs())
def test_articulation_points_match_networkx(g):
    assert articulation_points(g) == set(nx.articulation_points(_to_nx(g)))


@settings(max_examples=80, deadline=None)
@given(random_graphs())
def test_components_match_networkx(g):
    ours = sorted(map(sorted, connected_components(g)))
    theirs = sorted(map(sorted, nx.connected_components(_to_nx(g))))
    assert ours == theirs
