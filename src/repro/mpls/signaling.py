"""Signaling cost accounting — the overhead RBPC exists to avoid.

The paper's motivation is that establishing/tearing down an LSP is "a
costly process in terms of signaling and in terms of overhead placed on
the routers": label distribution messages travel the whole path, ILM
entries are written at every hop, and loop prevention adds rounds.
RBPC's claim is that restoration needs *zero* of this — only a FEC (or
one ILM) update at one router.

This module keeps a ledger of those costs so experiments can put
numbers on the comparison: every LSP setup/teardown and every table
write is recorded, and the ablation benchmarks compare "restore by
concatenation" against "tear down and re-establish" in messages and
table-touches.

The cost model (per RFC 3036-style downstream-on-demand LDP over a path
with ``h`` hops): setup = ``2h`` messages (a label request downstream
and a label mapping upstream per hop) plus ``h + 1`` ILM writes;
teardown = ``h`` label-withdraw messages plus ``h + 1`` ILM deletes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class SignalingEvent:
    """One ledger record."""

    kind: str  # "lsp_setup" | "lsp_teardown" | "fec_update" | "ilm_update"
    messages: int
    table_writes: int
    detail: str = ""


@dataclass
class SignalingLedger:
    """Accumulates signaling events and exposes totals."""

    events: list[SignalingEvent] = field(default_factory=list)

    def record_lsp_setup(self, hops: int, detail: str = "") -> None:
        """Ledger an LSP establishment over *hops* links."""
        self.events.append(
            SignalingEvent("lsp_setup", messages=2 * hops, table_writes=hops + 1, detail=detail)
        )

    def record_lsp_teardown(self, hops: int, detail: str = "") -> None:
        """Ledger an LSP teardown over *hops* links."""
        self.events.append(
            SignalingEvent("lsp_teardown", messages=hops, table_writes=hops + 1, detail=detail)
        )

    def record_fec_update(self, count: int = 1, detail: str = "") -> None:
        """A purely local FEC rewrite: no messages at all."""
        self.events.append(
            SignalingEvent("fec_update", messages=0, table_writes=count, detail=detail)
        )

    def record_ilm_update(self, count: int = 1, detail: str = "") -> None:
        """A purely local ILM rewrite (local RBPC): no messages."""
        self.events.append(
            SignalingEvent("ilm_update", messages=0, table_writes=count, detail=detail)
        )

    @property
    def total_messages(self) -> int:
        """Sum of signaling messages across all events."""
        return sum(e.messages for e in self.events)

    @property
    def total_table_writes(self) -> int:
        """Sum of table writes across all events."""
        return sum(e.table_writes for e in self.events)

    def by_kind(self, kind: str) -> Iterator[SignalingEvent]:
        """Iterate over events of one kind."""
        return (e for e in self.events if e.kind == kind)

    def count(self, kind: str) -> int:
        """Number of events of one kind."""
        return sum(1 for _ in self.by_kind(kind))

    def snapshot(self) -> tuple[int, int]:
        """``(total_messages, total_table_writes)`` — diffable checkpoint."""
        return self.total_messages, self.total_table_writes

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()
