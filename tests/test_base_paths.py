"""Tests for base-set representations (Section 3/4.1 semantics)."""

from __future__ import annotations

import pytest

from repro.core.base_paths import (
    AllShortestPathsBase,
    ExplicitBaseSet,
    UniqueShortestPathsBase,
    expanded_base_set,
    padded_graph,
    provision_base_set,
    unique_shortest_path_base,
)
from repro.exceptions import NoPath
from repro.graph.graph import Graph
from repro.graph.paths import Path
from repro.graph.shortest_paths import costs_equal, shortest_path_length
from repro.mpls.network import MplsNetwork


class TestAllShortestPathsBase:
    def test_any_shortest_path_is_base(self, diamond):
        base = AllShortestPathsBase(diamond)
        assert base.is_base_path(Path([1, 2, 4]))
        assert base.is_base_path(Path([1, 3, 4]))

    def test_non_shortest_rejected(self, diamond):
        base = AllShortestPathsBase(diamond)
        assert not base.is_base_path(Path([1, 2, 3, 4]))

    def test_invalid_path_rejected(self, diamond):
        base = AllShortestPathsBase(diamond)
        assert not base.is_base_path(Path([1, 4]))

    def test_trivial_rejected(self, diamond):
        assert not AllShortestPathsBase(diamond).is_base_path(Path([1]))

    def test_edges_always_base_by_default(self, weighted_diamond):
        base = AllShortestPathsBase(weighted_diamond)
        # Edge (2,3) costs 5 but dist(2,3) is 2 — still admitted as an edge.
        assert base.is_base_path(Path([2, 3]))
        strict = AllShortestPathsBase(weighted_diamond, include_all_edges=False)
        assert not strict.is_base_path(Path([2, 3]))

    def test_path_for_returns_shortest(self, weighted_diamond):
        base = AllShortestPathsBase(weighted_diamond)
        p = base.path_for(1, 4)
        assert p.cost(weighted_diamond) == 2.0

    def test_has_pair(self, diamond):
        base = AllShortestPathsBase(diamond)
        assert base.has_pair(1, 4)
        assert not base.has_pair(1, 1)

    def test_disconnected_pair(self):
        g = Graph.from_edges([(1, 2), (3, 4)])
        base = AllShortestPathsBase(g)
        assert not base.has_pair(1, 3)
        assert not base.is_base_path(Path([1, 3]))

    def test_iter_canonical_covers_all_ordered_pairs(self, triangle):
        base = AllShortestPathsBase(triangle)
        assert len(list(base.iter_canonical_paths())) == 6


class TestUniqueShortestPathsBase:
    def test_exactly_one_of_two_ties_is_base(self, diamond):
        base = UniqueShortestPathsBase(diamond, seed=1)
        candidates = [Path([1, 2, 4]), Path([1, 3, 4])]
        memberships = [base.is_base_path(p) for p in candidates]
        assert memberships.count(True) == 1

    def test_canonical_path_is_base(self, diamond):
        base = UniqueShortestPathsBase(diamond, seed=1)
        assert base.is_base_path(base.path_for(1, 4))

    def test_subpath_closure(self, small_isp):
        base = UniqueShortestPathsBase(small_isp, seed=2)
        nodes = sorted(small_isp.nodes, key=repr)
        path = base.path_for(nodes[0], nodes[-1])
        for sub in path.all_subpaths(min_hops=1):
            assert base.is_base_path(sub)

    def test_canonical_is_truly_shortest(self, small_isp):
        base = UniqueShortestPathsBase(small_isp, seed=1)
        nodes = sorted(small_isp.nodes, key=repr)
        for s, t in [(nodes[0], nodes[10]), (nodes[3], nodes[40])]:
            p = base.path_for(s, t)
            assert costs_equal(p.cost(small_isp), shortest_path_length(small_isp, s, t))

    def test_edges_admitted(self, weighted_diamond):
        base = UniqueShortestPathsBase(weighted_diamond)
        assert base.is_base_path(Path([2, 3]))


class TestExplicitBaseSet:
    def test_membership_exact(self, diamond):
        base = ExplicitBaseSet(diamond, [Path([1, 2, 4])])
        assert base.is_base_path(Path([1, 2, 4]))
        assert not base.is_base_path(Path([1, 3, 4]))

    def test_add_validates(self, diamond):
        base = ExplicitBaseSet(diamond)
        with pytest.raises(ValueError):
            base.add(Path([1, 9]))
        with pytest.raises(ValueError):
            base.add(Path([1]))

    def test_canonical_is_first_added(self, diamond):
        base = ExplicitBaseSet(diamond, [Path([1, 2, 4]), Path([1, 3, 4])])
        assert base.path_for(1, 4) == Path([1, 2, 4])
        assert len(base) == 2

    def test_include_all_edges(self, diamond):
        base = ExplicitBaseSet(diamond, include_all_edges=True)
        assert base.is_base_path(Path([1, 2]))
        assert base.path_for(1, 2) == Path([1, 2])
        assert base.has_pair(1, 2)

    def test_missing_pair_raises(self, diamond):
        with pytest.raises(NoPath):
            ExplicitBaseSet(diamond).path_for(1, 4)

    def test_close_under_subpaths(self, line5):
        base = ExplicitBaseSet(line5, [Path([0, 1, 2, 3, 4])])
        base.close_under_subpaths()
        assert base.is_base_path(Path([1, 2, 3]))
        assert base.is_base_path(Path([2, 3]))
        # 4+3+2+1 = 10 subpaths with >= 1 hop
        assert len(base) == 10


class TestPaddedGraph:
    def test_pads_preserve_topology(self, diamond):
        padded = padded_graph(diamond, seed=1)
        assert sorted(padded.edges()) == sorted(diamond.edges())

    def test_pads_are_tiny_and_positive(self, diamond):
        padded = padded_graph(diamond, seed=1)
        for u, v, w in padded.weighted_edges():
            assert diamond.weight(u, v) <= w < diamond.weight(u, v) + 1e-4

    def test_pads_break_ties(self, diamond):
        padded = padded_graph(diamond, seed=1, scale=1e-6)
        a = Path([1, 2, 4]).cost(padded)
        b = Path([1, 3, 4]).cost(padded)
        assert a != b

    def test_empty_graph(self):
        assert padded_graph(Graph()).number_of_nodes() == 0


class TestExplicitFactories:
    def test_unique_base_has_one_path_per_pair(self, square):
        base = unique_shortest_path_base(square, seed=1)
        # 4 nodes -> 12 ordered pairs, one canonical path each.
        assert len(list(base.iter_canonical_paths())) == 12

    def test_unique_base_subpath_closed_flag(self, line5):
        base = unique_shortest_path_base(line5, seed=1, subpath_closed=True)
        assert base.is_base_path(Path([1, 2, 3]))

    def test_expanded_base_is_larger(self, square):
        unique = unique_shortest_path_base(square, seed=1)
        expanded = expanded_base_set(square, seed=1)
        assert len(expanded) > len(unique)

    def test_expanded_contains_edge_extensions(self, line5):
        expanded = expanded_base_set(line5, seed=1)
        # The path 0..3 extended by edge (3,4) must be present.
        assert expanded.is_base_path(Path([0, 1, 2, 3, 4]))


class TestProvisioning:
    def test_provisions_each_path_once(self, diamond):
        net = MplsNetwork(diamond)
        base = AllShortestPathsBase(diamond)
        registry = provision_base_set(net, base, pairs=[(1, 4), (4, 1)])
        assert len(registry) == 2
        for path, lsp_id in registry.items():
            assert net.get_lsp(lsp_id).path == path

    def test_provision_all_canonical(self, triangle):
        net = MplsNetwork(triangle)
        base = AllShortestPathsBase(triangle)
        registry = provision_base_set(net, base)
        assert len(registry) == 6
        assert net.total_ilm_size() == 12  # 6 one-hop LSPs x 2 routers
