"""Tests for ``python -m repro.obs`` — tree/timeline/summary/diff."""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import main
from repro.obs.events import EventLog
from repro.obs.trace import Tracer


def write_bench(path, **overrides):
    payload = {
        "name": "table2",
        "scale": "tiny",
        "seed": 1,
        "cases": 229,
        "wall_clock_s": 1.0,
        "stages": {"cases": 0.8, "render": 0.2},
        "counters": {"dijkstra_runs": 100, "probe_calls": 1000},
    }
    payload.update(overrides)
    path.write_text(json.dumps(payload))
    return path


class TestDiff:
    def test_identical_files_pass(self, tmp_path, capsys):
        old = write_bench(tmp_path / "old.json")
        new = write_bench(tmp_path / "new.json")
        assert main(["diff", str(old), str(new)]) == 0
        assert "OK: no hard regressions" in capsys.readouterr().out

    def test_counter_growth_within_threshold_passes(self, tmp_path):
        old = write_bench(tmp_path / "old.json")
        new = write_bench(
            tmp_path / "new.json",
            counters={"dijkstra_runs": 105, "probe_calls": 1000},
        )
        assert main(["diff", str(old), str(new)]) == 0

    def test_counter_growth_beyond_threshold_fails(self, tmp_path, capsys):
        old = write_bench(tmp_path / "old.json")
        new = write_bench(
            tmp_path / "new.json",
            counters={"dijkstra_runs": 150, "probe_calls": 1000},
        )
        assert main(["diff", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "dijkstra_runs" in out

    def test_threshold_is_configurable(self, tmp_path):
        old = write_bench(tmp_path / "old.json")
        new = write_bench(
            tmp_path / "new.json",
            counters={"dijkstra_runs": 150, "probe_calls": 1000},
        )
        assert main(
            ["diff", str(old), str(new), "--max-counter-growth", "0.60"]
        ) == 0

    def test_new_nonzero_counter_is_a_regression(self, tmp_path):
        old = write_bench(tmp_path / "old.json")
        new = write_bench(
            tmp_path / "new.json",
            counters={"dijkstra_runs": 100, "probe_calls": 1000, "path_probes": 5},
        )
        assert main(["diff", str(old), str(new)]) == 1

    def test_counter_shrink_passes(self, tmp_path):
        old = write_bench(tmp_path / "old.json")
        new = write_bench(
            tmp_path / "new.json",
            counters={"dijkstra_runs": 10, "probe_calls": 1000},
        )
        assert main(["diff", str(old), str(new)]) == 0

    def test_incomparable_files_exit_2(self, tmp_path, capsys):
        old = write_bench(tmp_path / "old.json")
        new = write_bench(tmp_path / "new.json", scale="small")
        assert main(["diff", str(old), str(new)]) == 2
        assert "NOT COMPARABLE" in capsys.readouterr().out

    def test_case_count_drift_exit_2(self, tmp_path):
        old = write_bench(tmp_path / "old.json")
        new = write_bench(tmp_path / "new.json", cases=230)
        assert main(["diff", str(old), str(new)]) == 2

    def test_wall_clock_growth_soft_warns(self, tmp_path, capsys):
        old = write_bench(tmp_path / "old.json")
        new = write_bench(tmp_path / "new.json", wall_clock_s=2.0)
        assert main(["diff", str(old), str(new)]) == 0
        assert "WARN" in capsys.readouterr().out

    def test_wall_clock_gate_opt_in(self, tmp_path, capsys):
        old = write_bench(tmp_path / "old.json")
        new = write_bench(tmp_path / "new.json", wall_clock_s=2.0)
        assert main(["diff", str(old), str(new), "--fail-on-wall"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_policy_header_mismatch_exit_2(self, tmp_path, capsys):
        for key, old_value, new_value in (
            ("shm_enabled", True, False),
            ("jobs", 1, 4),
        ):
            old = write_bench(tmp_path / "old.json", **{key: old_value})
            new = write_bench(tmp_path / "new.json", **{key: new_value})
            assert main(["diff", str(old), str(new)]) == 2
            assert "NOT COMPARABLE" in capsys.readouterr().out

    def test_policy_header_absent_in_old_still_compares(self, tmp_path):
        # Files predating the shm_enabled/jobs header fields diff as
        # before; the comparability check needs the key on both sides.
        old = write_bench(tmp_path / "old.json")
        new = write_bench(tmp_path / "new.json", shm_enabled=True, jobs=2)
        assert main(["diff", str(old), str(new)]) == 0


class TestLegacyRootPathsDropped:
    """Pre-``results/`` bench layouts are rejected, not resolved."""

    def test_missing_file_errors(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit, match="does not exist"):
            main(["summary", "BENCH_table2.json"])

    def test_root_path_with_moved_file_points_to_results(
        self, tmp_path, monkeypatch
    ):
        # The old root-level layout is NOT silently resolved anymore:
        # the error names the results/ file so the caller updates.
        monkeypatch.chdir(tmp_path)
        results = tmp_path / "results"
        results.mkdir()
        write_bench(results / "BENCH_table2.json")
        with pytest.raises(SystemExit, match="did you mean"):
            main(["summary", "BENCH_table2.json"])

    def test_results_path_still_reads(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        results = tmp_path / "results"
        results.mkdir()
        write_bench(results / "BENCH_table2.json")
        assert main(["summary", "results/BENCH_table2.json"]) == 0
        assert "counter" in capsys.readouterr().out


class TestRenderers:
    def test_tree_renders_nested_spans(self, tmp_path, capsys):
        tracer = Tracer(enabled=True)
        with tracer.span("table2", scale="tiny"):
            with tracer.span("table2.cases"):
                pass
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        assert main(["tree", str(path)]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "  table2.cases" in out

    def test_tree_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["tree", str(path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_timeline_filters_by_kind(self, tmp_path, capsys):
        log = EventLog()
        log.emit(1.0, "r1", "link-down", text="x")
        log.emit(1.01, "r2", "detected", up=False)
        log.emit(1.02, "r2", "local-patch", lsp_id=7)
        path = log.write_jsonl(tmp_path / "events.jsonl")
        assert main(["timeline", str(path), "--kind", "detected"]) == 0
        out = capsys.readouterr().out
        assert "detected" in out
        assert "local-patch" not in out.splitlines()[0]
        assert "3 events" in out  # footer counts the whole log

    def test_summary_renders_metrics_and_rates(self, tmp_path, capsys):
        payload = {
            "counters": {"probe_calls": 10, "o1_probes": 10},
            "metrics": {
                "counters": {"sim.delivery.delivered": 4},
                "gauges": {"sim.flood_convergence_s": 0.2},
                "histograms": {
                    "lat": {
                        "edges": [0.01, 0.1],
                        "counts": [2, 1, 0],
                        "count": 3,
                        "sum": 0.05,
                        "min": 0.001,
                        "max": 0.09,
                    }
                },
            },
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload))
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "counter sim.delivery.delivered: 4" in out
        assert "gauge sim.flood_convergence_s: 0.2" in out
        assert "histogram lat" in out
        assert "o1_probe_rate: 1" in out

    def test_summary_without_metrics(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"name": "x"}))
        assert main(["summary", str(path)]) == 0
        assert "no metrics" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
