"""Benchmark + regeneration of Table 3 (edge-bypass hop counts).

Times the full per-link bypass enumeration per network and asserts the
paper's headline: two-hop bypasses dominate the ISP (~89%), and in
every topology more than ~90% of links have a bypass of 2 or 3 hops.
"""

from __future__ import annotations

from repro.experiments.table3 import bypass_distribution


def bench_table3_isp_weighted(benchmark, isp200):
    percents, bridge_pct = benchmark(bypass_distribution, isp200, True)
    assert bridge_pct == 0.0, "the generated ISP must be bridge-free"
    assert percents.get(2, 0) > 75.0, "2-hop bypasses must dominate (paper: 89%)"
    assert percents.get(2, 0) + percents.get(3, 0) > 90.0


def bench_table3_isp_unweighted(benchmark, tiny_suite):
    isp_unweighted = tiny_suite[1]
    percents, _ = benchmark(bypass_distribution, isp_unweighted.graph, False)
    assert percents.get(2, 0) > 60.0


def bench_table3_as_graph(benchmark, as500):
    percents, _ = benchmark(bypass_distribution, as500, False)
    # Paper: AS graph has 61% 2-hop, 31% 3-hop.
    assert percents.get(2, 0) > 40.0
    assert percents.get(2, 0) + percents.get(3, 0) > 80.0


def bench_table3_internet(benchmark, tiny_suite):
    internet = tiny_suite[2]
    percents, _ = benchmark(bypass_distribution, internet.graph, False)
    assert percents.get(2, 0) + percents.get(3, 0) > 75.0
