"""Observability for the restoration pipeline: traces, events, metrics.

The instruments, and where they report:

* :mod:`repro.obs.trace` — hierarchical span tracer (:data:`TRACER`).
  Experiments open spans through
  :class:`~repro.experiments.bench.StageTimer`; ``--trace-jsonl``
  dumps the tree for ``python -m repro.obs tree``.
* :mod:`repro.obs.events` — versioned structured event log
  (:class:`EventLog`); the simulation's single timeline source of
  truth, rendered by ``python -m repro.obs timeline``.
* :mod:`repro.obs.metrics` — counters/gauges/histograms
  (:data:`METRICS`), merged across ``--jobs`` workers like
  :data:`repro.perf.COUNTERS` and published in ``BENCH_*.json``.
* :mod:`repro.obs.ledger` — append-only run manifests
  (``results/history/ledger.jsonl``); the cross-run history behind
  ``python -m repro.obs trend`` and ``report``.
* :mod:`repro.obs.profile` — opt-in per-stage ``cProfile`` capture
  (``--profile-out``) plus tracemalloc/RSS memory gauges (``--mem``;
  RSS is stamped on every bench regardless).
* :mod:`repro.obs.heartbeat` — live worker telemetry side channel
  (``--heartbeat-dir``), rendered by ``python -m repro.obs watch``.

Everything is off by default and costs one attribute check when off;
experiment CLIs expose the knobs via :func:`add_obs_arguments` /
:func:`activate_from_args`.

See ``docs/observability.md`` for the span API, the event schema and
its versioning policy, the metrics glossary, the ledger/telemetry
formats, and CLI examples.
"""

from __future__ import annotations

import argparse
from typing import Any, Optional

from . import heartbeat
from .events import SCHEMA, SCHEMA_VERSION, Event, EventLog
from .ledger import LEDGER_SCHEMA, git_sha, record_run
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    METRICS,
    MetricsRegistry,
    rates_from_counters,
)
from .profile import (
    PROFILER,
    StageProfiler,
    memory_report,
    publish_memory_gauges,
    start_memory_tracking,
    stop_memory_tracking,
)
from .trace import NULL_SPAN, Span, TRACER, Tracer

__all__ = [
    "Counter",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "LEDGER_SCHEMA",
    "METRICS",
    "MetricsRegistry",
    "NULL_SPAN",
    "PROFILER",
    "SCHEMA",
    "SCHEMA_VERSION",
    "Span",
    "StageProfiler",
    "TRACER",
    "Tracer",
    "activate_from_args",
    "add_obs_arguments",
    "bench_observability",
    "git_sha",
    "heartbeat",
    "memory_report",
    "publish_memory_gauges",
    "rates_from_counters",
    "record_run",
    "start_memory_tracking",
    "stop_memory_tracking",
]


def add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared observability CLI flags."""
    parser.add_argument(
        "--obs", action="store_true",
        help="enable span tracing and the metrics registry for this run",
    )
    parser.add_argument(
        "--trace-jsonl", type=str, default=None, metavar="PATH",
        help="write the span trace as JSONL to PATH (implies --obs; "
             "render with `python -m repro.obs tree PATH`)",
    )
    parser.add_argument(
        "--profile-out", type=str, default=None, metavar="PATH",
        help="profile each stage with cProfile and write collapsed-stack "
             "flamegraph text to PATH (implies --obs)",
    )
    parser.add_argument(
        "--mem", action="store_true",
        help="track Python-heap peak memory with tracemalloc (implies "
             "--obs; peak RSS is recorded on every run regardless)",
    )
    parser.add_argument(
        "--heartbeat-dir", type=str, default=None, metavar="DIR",
        help="stream live worker telemetry (chunk lifecycle + progress "
             "JSONL) into DIR; follow with `python -m repro.obs watch DIR`",
    )


def activate_from_args(args: argparse.Namespace) -> bool:
    """Enable the obs instruments per the parsed flags.

    Returns True when observability is on for this run.  The switch is
    authoritative either way — an uninstrumented run turns the layer
    off — and state is reset so one process can host several
    instrumented runs.  Must run before any worker pool is created:
    the heartbeat directory travels to workers via the environment.
    """
    profile_out = getattr(args, "profile_out", None)
    mem = bool(getattr(args, "mem", False))
    enabled = bool(
        getattr(args, "obs", False)
        or getattr(args, "trace_jsonl", None)
        or profile_out
        or mem
    )
    if enabled:
        TRACER.reset()
        TRACER.enabled = True
        METRICS.reset()
        METRICS.enabled = True
    else:
        TRACER.enabled = False
        METRICS.enabled = False
    PROFILER.reset()
    PROFILER.enabled = bool(profile_out)
    if mem:
        start_memory_tracking()
    hb_dir = getattr(args, "heartbeat_dir", None)
    if hb_dir:
        # Flag wins, but a pre-set REPRO_HEARTBEAT_DIR (e.g. exported
        # by a wrapper script) is left alone when the flag is absent.
        heartbeat.set_heartbeat_dir(hb_dir)
    return enabled


def bench_observability(
    args: argparse.Namespace, counters: Optional[dict[str, int]] = None
) -> dict[str, Any]:
    """The ``BENCH_*.json`` extras for an instrumented run.

    Publishes the memory gauges into the registry, writes the trace
    and collapsed-stack profile files when their flags were given, and
    returns the payload keys to merge (``metrics`` and derived
    ``rates``).  Empty when observability is off.
    """
    extras: dict[str, Any] = {}
    if METRICS.enabled:
        publish_memory_gauges(METRICS)
        extras["metrics"] = METRICS.as_dict()
    if counters is not None:
        extras["rates"] = rates_from_counters(counters)
    trace_path = getattr(args, "trace_jsonl", None)
    if trace_path:
        out = TRACER.write_jsonl(trace_path)
        print(f"[obs] wrote trace {out}")
    profile_out = getattr(args, "profile_out", None)
    if profile_out and PROFILER.enabled:
        out = PROFILER.write_collapsed(profile_out)
        print(f"[obs] wrote collapsed-stack profile {out}")
    return extras
