"""Addressable binary min-heap used by the shortest-path algorithms.

The standard library ``heapq`` does not support *decrease-key*, which the
textbook Dijkstra formulation needs.  This module provides
:class:`AddressableHeap`, a binary heap keyed by arbitrary hashable items
with ``O(log n)`` push, pop and decrease-key.  It is deliberately small and
dependency-free: the whole repro stack (routing, restoration, experiments)
sits on top of it.

A lazy-deletion wrapper around ``heapq`` would work as well; the
addressable heap is used so the per-operation costs measured in the
benchmarks are the classical ones.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, TypeVar

Item = TypeVar("Item", bound=Hashable)


class AddressableHeap(Generic[Item]):
    """Binary min-heap with decrease-key, keyed by hashable items.

    Each item may appear at most once.  Priorities are compared with ``<``
    and may be any mutually comparable values (ints, floats, tuples).

    >>> heap = AddressableHeap()
    >>> heap.push("a", 3)
    >>> heap.push("b", 1)
    >>> heap.decrease_key("a", 0)
    >>> heap.pop()
    ('a', 0)
    >>> heap.pop()
    ('b', 1)
    """

    __slots__ = ("_entries", "_index")

    def __init__(self) -> None:
        # _entries[i] = (priority, item); _index[item] = i
        self._entries: list[tuple[object, Item]] = []
        self._index: dict[Item, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, item: Item) -> bool:
        return item in self._index

    def __iter__(self) -> Iterator[Item]:
        """Iterate over items in arbitrary (heap) order."""
        return iter(self._index)

    def priority(self, item: Item):
        """Return the current priority of *item*.

        Raises ``KeyError`` if the item is not in the heap.
        """
        return self._entries[self._index[item]][0]

    def push(self, item: Item, priority) -> None:
        """Insert *item* with *priority*.

        Raises ``ValueError`` if the item is already present; use
        :meth:`push_or_decrease` for the common Dijkstra relaxation idiom.
        """
        if item in self._index:
            raise ValueError(f"item already in heap: {item!r}")
        self._entries.append((priority, item))
        self._index[item] = len(self._entries) - 1
        self._sift_up(len(self._entries) - 1)

    def pop(self) -> tuple[Item, object]:
        """Remove and return ``(item, priority)`` with the smallest priority.

        Raises ``IndexError`` on an empty heap.
        """
        if not self._entries:
            raise IndexError("pop from empty heap")
        priority, item = self._entries[0]
        del self._index[item]
        last = self._entries.pop()
        if self._entries:
            self._entries[0] = last
            self._index[last[1]] = 0
            self._sift_down(0)
        return item, priority

    def peek(self) -> tuple[Item, object]:
        """Return ``(item, priority)`` with the smallest priority, not removing it."""
        if not self._entries:
            raise IndexError("peek at empty heap")
        priority, item = self._entries[0]
        return item, priority

    def decrease_key(self, item: Item, priority) -> None:
        """Lower the priority of *item* to *priority*.

        Raises ``KeyError`` if absent and ``ValueError`` if the new priority
        is larger than the current one.
        """
        pos = self._index[item]
        current = self._entries[pos][0]
        if current < priority:  # type: ignore[operator]
            raise ValueError(
                f"new priority {priority!r} is larger than current {current!r}"
            )
        self._entries[pos] = (priority, item)
        self._sift_up(pos)

    def push_or_decrease(self, item: Item, priority) -> bool:
        """Relaxation helper: insert, or lower the key if it improves.

        Returns ``True`` if the heap changed (item inserted or key
        lowered), ``False`` if the item was already present with an equal
        or smaller priority.
        """
        pos = self._index.get(item)
        if pos is None:
            self._entries.append((priority, item))
            self._index[item] = len(self._entries) - 1
            self._sift_up(len(self._entries) - 1)
            return True
        if priority < self._entries[pos][0]:  # type: ignore[operator]
            self._entries[pos] = (priority, item)
            self._sift_up(pos)
            return True
        return False

    # -- internal sifting -------------------------------------------------

    def _sift_up(self, pos: int) -> None:
        entries = self._entries
        entry = entries[pos]
        while pos > 0:
            parent = (pos - 1) >> 1
            if entries[parent][0] <= entry[0]:  # type: ignore[operator]
                break
            entries[pos] = entries[parent]
            self._index[entries[pos][1]] = pos
            pos = parent
        entries[pos] = entry
        self._index[entry[1]] = pos

    def _sift_down(self, pos: int) -> None:
        entries = self._entries
        size = len(entries)
        entry = entries[pos]
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size and entries[right][0] < entries[child][0]:  # type: ignore[operator]
                child = right
            if entries[child][0] >= entry[0]:  # type: ignore[operator]
                break
            entries[pos] = entries[child]
            self._index[entries[pos][1]] = pos
            pos = child
        entries[pos] = entry
        self._index[entry[1]] = pos
