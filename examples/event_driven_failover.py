#!/usr/bin/env python
"""Scenario: watch a failover unfold on a simulated control-plane clock.

Runs the hybrid scheme (Section 4.2) under the discrete-event
simulator: a link fails mid-path, the adjacent router patches locally
at detection time, the LSA flood spreads, the source re-routes onto a
true shortest path, then the link heals and everything reverts.
Packets are injected at interesting instants to show exactly what a
flow experiences.

Run:  python examples/event_driven_failover.py
"""

from repro.core import UniqueShortestPathsBase, provision_base_set
from repro.mpls import MplsNetwork
from repro.routing import FloodingModel
from repro.sim import RestorationSimulation
from repro.topology import generate_isp_topology


def probe(sim, source, destination, label):
    result = sim.inject(source, destination)
    status = "delivered" if result.delivered else result.status.value
    hops = len(result.walk) - 1 if result.delivered else "-"
    print(f"  t={sim.now * 1000:7.1f} ms  [{label:<22}] {status} ({hops} hops)")


def main() -> None:
    graph = generate_isp_topology(n=80, seed=8)
    net = MplsNetwork(graph)
    base = UniqueShortestPathsBase(graph)

    nodes = sorted(graph.nodes, key=repr)
    source, destination = max(
        ((s, t) for s in nodes[:20] for t in nodes[-20:] if s != t),
        key=lambda pair: base.path_for(*pair).hops,
    )
    registry = provision_base_set(net, base, pairs=[(source, destination)])

    model = FloodingModel(detection_delay=0.010, per_hop_delay=0.005, spf_delay=0.050)
    sim = RestorationSimulation(net, base, registry, model=model)
    demand = sim.add_demand(source, destination)
    print(
        f"demand {source} -> {destination} "
        f"({demand.primary.hops}-hop primary)\n"
    )

    failed = list(demand.primary.edges())[demand.primary.hops - 1]
    sim.schedule_link_failure(1.0, *failed)
    sim.schedule_link_recovery(3.0, *failed)

    sim.run_until(0.9)
    probe(sim, source, destination, "steady state")
    sim.run_until(1.005)
    probe(sim, source, destination, "failed, undetected")
    sim.run_until(1.020)
    probe(sim, source, destination, "local patch active")
    sim.run_until(2.0)
    probe(sim, source, destination, "source re-routed")
    sim.run_until(4.0)
    probe(sim, source, destination, "link healed, reverted")

    print("\ncontrol-plane timeline:")
    for entry in sim.timeline:
        print(
            f"  t={entry.time * 1000:7.1f} ms  {entry.action:<22} "
            f"actor={entry.actor!r} {entry.detail}"
        )


if __name__ == "__main__":
    main()
