"""All-pairs shortest paths (APSP) — the raw material of every base set.

The base LSP sets of Section 4 are all-pairs shortest paths; RBPC's
decision procedure "is this sub-path a basic path?" reduces to "is it a
shortest path?", which is answered from an APSP distance oracle.

For the graph sizes in the paper (200 — 40k nodes) a distance *matrix*
is only feasible for the small graphs, so this module provides both:

* :class:`ApspDistances` — dense oracle, one Dijkstra per node, built
  eagerly (ISP-sized graphs).
* :class:`LazyDistanceOracle` — per-source Dijkstra computed on first
  use and cached (Internet-sized graphs, where experiments touch only a
  sample of sources).
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..exceptions import NoPath
from .graph import Node
from .paths import Path
from .shortest_paths import costs_equal, dijkstra, reconstruct_path


class ApspDistances:
    """Eager all-pairs distances and predecessor maps.

    >>> from repro.graph.graph import Graph
    >>> g = Graph.from_edges([(1, 2), (2, 3)])
    >>> apsp = ApspDistances.compute(g)
    >>> apsp.distance(1, 3)
    2.0
    """

    __slots__ = ("_dist", "_pred")

    def __init__(
        self,
        dist: dict[Node, dict[Node, float]],
        pred: dict[Node, dict[Node, Node]],
    ) -> None:
        self._dist = dist
        self._pred = pred

    @classmethod
    def compute(
        cls, graph, sources: Optional[list[Node]] = None, break_ties_by_hops: bool = False
    ) -> "ApspDistances":
        """One Dijkstra per source (all nodes, unless *sources* restricts)."""
        dist: dict[Node, dict[Node, float]] = {}
        pred: dict[Node, dict[Node, Node]] = {}
        for s in sources if sources is not None else graph.nodes:
            dist[s], pred[s] = dijkstra(graph, s, break_ties_by_hops=break_ties_by_hops)
        return cls(dist, pred)

    @property
    def sources(self) -> Iterator[Node]:
        """Iterate over the sources this oracle covers."""
        return iter(self._dist)

    def distance(self, u: Node, v: Node) -> float:
        """Shortest distance u→v; raises :class:`NoPath` if unreachable."""
        row = self._dist.get(u)
        if row is None:
            raise NoPath(f"source {u!r} not covered by this APSP")
        if v not in row:
            raise NoPath(f"no path from {u!r} to {v!r}")
        return row[v]

    def has_path(self, u: Node, v: Node) -> bool:
        """True if a path exists (and the source is covered)."""
        row = self._dist.get(u)
        return row is not None and v in row

    def path(self, u: Node, v: Node) -> Path:
        """One shortest path u→v."""
        if u not in self._pred:
            raise NoPath(f"source {u!r} not covered by this APSP")
        return reconstruct_path(self._pred[u], u, v)

    def is_shortest(self, path: Path, cost: float) -> bool:
        """True if a path of weight *cost* between the endpoints is shortest."""
        return costs_equal(cost, self.distance(path.source, path.target))

    def average_distance(self) -> float:
        """Mean distance over all covered, connected, distinct pairs."""
        total, count = 0.0, 0
        for s, row in self._dist.items():
            for t, d in row.items():
                if s != t:
                    total += d
                    count += 1
        return total / count if count else 0.0


class LazyDistanceOracle:
    """Distance oracle computing per-source Dijkstra on demand.

    Suitable for Internet-scale graphs where only sampled sources are
    queried.  The cache is unbounded by design — an experiment's working
    set is its sample of sources.
    """

    __slots__ = ("_graph", "_dist", "_pred", "break_ties_by_hops")

    def __init__(self, graph, break_ties_by_hops: bool = False) -> None:
        self._graph = graph
        self._dist: dict[Node, dict[Node, float]] = {}
        self._pred: dict[Node, dict[Node, Node]] = {}
        self.break_ties_by_hops = break_ties_by_hops

    def _ensure(self, source: Node) -> None:
        if source not in self._dist:
            self._dist[source], self._pred[source] = dijkstra(
                self._graph, source, break_ties_by_hops=self.break_ties_by_hops
            )

    def distance(self, u: Node, v: Node) -> float:
        """Shortest distance source->target; raises NoPath if unreachable."""
        self._ensure(u)
        if v not in self._dist[u]:
            raise NoPath(f"no path from {u!r} to {v!r}")
        return self._dist[u][v]

    def has_path(self, u: Node, v: Node) -> bool:
        """True if a path exists (and the source is covered)."""
        self._ensure(u)
        return v in self._dist[u]

    def path(self, u: Node, v: Node) -> Path:
        """One shortest path for the pair, reconstructed from the cache."""
        self._ensure(u)
        return reconstruct_path(self._pred[u], u, v)

    def cached_sources(self) -> list[Node]:
        """Sources whose Dijkstra results are currently cached."""
        return list(self._dist)
