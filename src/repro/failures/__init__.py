"""Failure models and the paper's sampling methodology."""

from .models import FailureScenario
from .sampler import (
    FAILURE_MODES,
    ISP_SAMPLE_PAIRS,
    LARGE_GRAPH_SAMPLE_PAIRS,
    FailureCase,
    cases_for_pair,
    link_failure_cases,
    random_link_scenarios,
    router_failure_cases,
    sample_pairs,
)

_GENERATOR_EXPORTS = frozenset(
    {
        "FailureModel",
        "IndependentLinkFailures",
        "RegionalFailures",
        "RouterLinkFailures",
        "SrlgFailures",
    }
)


def __getattr__(name: str):
    # The generator classes register with repro.policies, which itself
    # imports this package — resolve them lazily to keep the import
    # graph acyclic.
    if name in _GENERATOR_EXPORTS:
        from . import generators

        return getattr(generators, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FAILURE_MODES",
    "FailureCase",
    "FailureModel",
    "FailureScenario",
    "ISP_SAMPLE_PAIRS",
    "IndependentLinkFailures",
    "LARGE_GRAPH_SAMPLE_PAIRS",
    "RegionalFailures",
    "RouterLinkFailures",
    "SrlgFailures",
    "cases_for_pair",
    "link_failure_cases",
    "random_link_scenarios",
    "router_failure_cases",
    "sample_pairs",
]
