"""Link-state routing substrate (the OSPF stand-in).

* :mod:`repro.routing.lsdb` — per-router link-state databases.
* :mod:`repro.routing.spf` — SPF computation and route queries.
* :mod:`repro.routing.flooding` — failure-notification timing model.
* :mod:`repro.routing.events` — topology-change event types.
"""

from .events import LinkDown, LinkUp, RouterDown, RouterUp
from .flooding import (
    FloodingModel,
    action_time,
    flood_times,
    local_restoration_time,
    source_restoration_time,
)
from .lsdb import LinkStateAd, LinkStateDatabase
from .spf import SpfRouter, spf_tree

__all__ = [
    "FloodingModel",
    "LinkDown",
    "LinkStateAd",
    "LinkStateDatabase",
    "LinkUp",
    "RouterDown",
    "RouterUp",
    "SpfRouter",
    "action_time",
    "flood_times",
    "local_restoration_time",
    "source_restoration_time",
    "spf_tree",
]
