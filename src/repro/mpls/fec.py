"""Forwarding Equivalence Class (FEC) map — the ingress routing table.

Packets entering the MPLS cloud unlabeled are classified into a FEC
(here: by destination router) and stamped with a label stack.  An entry
therefore names a *sequence of LSPs*: the stack carries the head label
of each, pushed in reverse so the first LSP's label ends on top —
exactly the paper's Figure 6/7 mechanism, where source-router RBPC is
nothing but swapping one FEC entry for another with a longer LSP list.

The FEC map keeps the original entry around when a restoration entry is
installed, so link recovery is the documented "reverse the change".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..graph.graph import Node


@dataclass(frozen=True)
class FecEntry:
    """Ingress instruction for one destination: which LSPs to ride, in order.

    ``lsp_ids[0]`` is traversed first.  ``restoration`` marks entries
    installed by a restoration scheme (vs. the provisioned default).
    """

    destination: Node
    lsp_ids: tuple[int, ...]
    restoration: bool = False


class FecMap:
    """Per-router FEC table with save/restore for restoration overrides."""

    __slots__ = ("_entries", "_saved")

    def __init__(self) -> None:
        self._entries: dict[Node, FecEntry] = {}
        self._saved: dict[Node, FecEntry] = {}

    def install(self, entry: FecEntry) -> None:
        """Install the provisioned (default) entry for a destination."""
        self._entries[entry.destination] = entry

    def override(self, entry: FecEntry) -> None:
        """Install a restoration entry, remembering the one it replaces.

        The first override for a destination saves the provisioned
        entry; later overrides (multi-failure updates) keep that
        original save so a full recovery restores the pre-failure state.
        """
        destination = entry.destination
        if destination in self._entries and destination not in self._saved:
            self._saved[destination] = self._entries[destination]
        self._entries[destination] = entry

    def restore(self, destination: Node) -> None:
        """Undo the override for *destination* (no-op if none active)."""
        original = self._saved.pop(destination, None)
        if original is not None:
            self._entries[destination] = original

    def restore_all(self) -> None:
        """Revert every active override."""
        for destination in list(self._saved):
            self.restore(destination)

    def lookup(self, destination: Node) -> Optional[FecEntry]:
        """Entry for the key, or None."""
        return self._entries.get(destination)

    def overridden_destinations(self) -> list[Node]:
        """Destinations with an active restoration override."""
        return list(self._saved)

    def size(self) -> int:
        """Number of installed entries."""
        return len(self._entries)

    def __contains__(self, destination: Node) -> bool:
        return destination in self._entries

    def __iter__(self) -> Iterator[FecEntry]:
        return iter(self._entries.values())
