"""Per-router link-state database (LSDB).

Each router keeps its own copy of the topology, learned from link-state
advertisements.  In steady state all LSDBs agree with the real
topology; after a failure, a router's LSDB lags until the flood reaches
it (:mod:`repro.routing.flooding`) — the exact window in which local
RBPC acts while source-router RBPC cannot yet.

The LSDB is sequence-numbered per link, like OSPF LSAs: a stale
re-ordered advertisement never overwrites fresher state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.graph import Edge, Graph, Node, edge_key


@dataclass(frozen=True)
class LinkStateAd:
    """One advertisement: the state of one link, with a sequence number."""

    u: Node
    v: Node
    weight: float
    up: bool
    sequence: int

    @property
    def edge(self) -> Edge:
        """The link as a canonical edge key."""
        return edge_key(self.u, self.v)


class LinkStateDatabase:
    """A router's view of every link in the area."""

    __slots__ = ("_links",)

    def __init__(self) -> None:
        # edge -> (weight, up, sequence)
        self._links: dict[Edge, tuple[float, bool, int]] = {}

    @classmethod
    def from_graph(cls, graph: Graph) -> "LinkStateDatabase":
        """Bootstrap a database that matches *graph* exactly (sequence 0)."""
        db = cls()
        for u, v, w in graph.weighted_edges():
            db._links[edge_key(u, v)] = (w, True, 0)
        return db

    def apply(self, ad: LinkStateAd) -> bool:
        """Apply an advertisement; returns True if the database changed.

        Stale advertisements (sequence not newer than what is stored)
        are ignored, as OSPF does.
        """
        current = self._links.get(ad.edge)
        if current is not None and ad.sequence <= current[2]:
            return False
        self._links[ad.edge] = (ad.weight, ad.up, ad.sequence)
        return True

    def link_state(self, u: Node, v: Node) -> tuple[float, bool, int]:
        """``(weight, up, sequence)`` for the link; KeyError if unknown."""
        return self._links[edge_key(u, v)]

    def is_up(self, u: Node, v: Node) -> bool:
        """True if the database believes the link is up."""
        entry = self._links.get(edge_key(u, v))
        return entry is not None and entry[1]

    def known_links(self) -> list[Edge]:
        """Every link the database has state for."""
        return list(self._links)

    def to_graph(self) -> Graph:
        """Materialize the *believed-up* topology as a graph for SPF."""
        graph = Graph()
        for (u, v), (w, up, _) in self._links.items():
            if up:
                graph.add_edge(u, v, weight=w)
        return graph

    def down_links(self) -> set[Edge]:
        """Links the database believes are down."""
        return {edge for edge, (_, up, _) in self._links.items() if not up}
