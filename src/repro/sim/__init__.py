"""Discrete-event simulation of the hybrid restoration control plane.

* :mod:`repro.sim.event_queue` — deterministic DES core.
* :mod:`repro.sim.orchestrator` — link failures, detection, LSA
  flooding, local patches and source re-routes on a shared clock.
"""

from .event_queue import EventQueue
from .orchestrator import Demand, RestorationSimulation, TimelineEntry

__all__ = ["Demand", "EventQueue", "RestorationSimulation", "TimelineEntry"]
