"""Self-contained graph substrate: structures, shortest paths, connectivity.

Public surface re-exported here; see the submodules for the full API:

* :mod:`repro.graph.graph` — :class:`Graph`, :class:`DiGraph`,
  :class:`FilteredView`, :func:`edge_key`.
* :mod:`repro.graph.paths` — :class:`Path` and concatenation helpers.
* :mod:`repro.graph.heap` — :class:`AddressableHeap`.
* :mod:`repro.graph.shortest_paths` — Dijkstra/BFS/bidirectional search.
* :mod:`repro.graph.spt` — shortest-path DAGs and path counting.
* :mod:`repro.graph.all_pairs` — APSP oracles.
* :mod:`repro.graph.connectivity` — components, bridges, cut vertices.
"""

from .all_pairs import ApspDistances, LazyDistanceOracle
from .connectivity import (
    articulation_points,
    bridges,
    connected_components,
    is_connected,
    is_two_edge_connected,
    largest_component,
)
from .graph import DiGraph, Edge, FilteredView, Graph, Node, edge_key
from .heap import AddressableHeap
from .ksp import (
    edge_disjoint_backup,
    node_disjoint_backup,
    suurballe_disjoint_pair,
    yen_k_shortest_paths,
)
from .maxflow import edge_disjoint_paths, max_disjoint_path_count, max_flow
from .paths import Path, concat_all, is_concatenation_of
from .shortest_paths import (
    bfs_shortest_paths,
    bidirectional_dijkstra,
    costs_equal,
    dijkstra,
    is_shortest_path,
    reconstruct_path,
    shortest_path,
    shortest_path_length,
    single_source_distances,
)
from .spt import (
    ShortestPathDag,
    all_shortest_paths,
    count_shortest_paths,
    max_shortest_path_multiplicity,
)

__all__ = [
    "AddressableHeap",
    "ApspDistances",
    "DiGraph",
    "Edge",
    "FilteredView",
    "Graph",
    "LazyDistanceOracle",
    "Node",
    "Path",
    "ShortestPathDag",
    "all_shortest_paths",
    "articulation_points",
    "bfs_shortest_paths",
    "bidirectional_dijkstra",
    "bridges",
    "concat_all",
    "connected_components",
    "costs_equal",
    "count_shortest_paths",
    "dijkstra",
    "edge_disjoint_backup",
    "edge_disjoint_paths",
    "edge_key",
    "is_concatenation_of",
    "is_connected",
    "is_shortest_path",
    "is_two_edge_connected",
    "largest_component",
    "max_disjoint_path_count",
    "max_flow",
    "max_shortest_path_multiplicity",
    "node_disjoint_backup",
    "reconstruct_path",
    "shortest_path",
    "shortest_path_length",
    "single_source_distances",
    "suurballe_disjoint_pair",
    "yen_k_shortest_paths",
]
