"""Stage profiling and memory gauges — *why* a stage is slow or big.

Two instruments, both reporting through the existing obs surfaces:

* **Stage profiler** (:data:`PROFILER`) — opt-in ``cProfile`` capture
  per :class:`~repro.experiments.bench.StageTimer` stage.  Each
  outermost stage block runs under its own profile; the accumulated
  stats export as *collapsed-stack* text (``stage;file:func count``
  lines, one sample unit per microsecond of tottime) that any
  flamegraph renderer ingests directly.  Enabled by ``--profile-out
  PATH`` on every experiment CLI; off by default and free when off
  (one attribute check per stage, zero per inner call).

  ``cProfile`` cannot nest, so re-entrant/nested stages profile the
  *outermost* block only — the same outermost-occurrence rule
  ``StageTimer`` itself uses for its sums.

* **Memory gauges** (:func:`memory_report`) — the run's peak RSS via
  ``resource.getrusage`` (one syscall, always on, stamped into every
  ``BENCH_*.json`` under ``"memory"``) and the Python-heap peak via
  ``tracemalloc`` (real overhead, so opt-in: ``--mem``).  When the
  metrics registry is enabled the same numbers land as
  ``mem.max_rss_kb`` / ``mem.tracemalloc_peak_kb`` gauges, which merge
  across ``--jobs`` workers by max — a cross-process high-water mark.

Neither instrument may perturb payloads: memory and profile data live
in the obs sections of the bench output and in side files, never in
rows or counters (pinned by the no-perturbation test).
"""

from __future__ import annotations

import cProfile
import pstats
import resource
import sys
import tracemalloc
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Union


def max_rss_kb() -> int:
    """Lifetime peak resident set size of this process, in KiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalized here
    so gauges and ledger entries agree across platforms.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def start_memory_tracking() -> None:
    """Begin tracking Python-heap allocations (idempotent)."""
    if not tracemalloc.is_tracing():
        tracemalloc.start()


def stop_memory_tracking() -> None:
    """Stop tracking and release the trace buffers (idempotent)."""
    if tracemalloc.is_tracing():
        tracemalloc.stop()


def memory_report() -> dict[str, Any]:
    """The run's memory gauges, cheap enough to stamp on every bench.

    ``tracemalloc_peak_kb`` is ``None`` unless tracking was started
    (``--mem``): reading the peak is free, *collecting* it is not, so
    the default path costs one ``getrusage`` call and nothing else.
    """
    tracing = tracemalloc.is_tracing()
    peak_kb: Optional[float] = None
    if tracing:
        _, peak = tracemalloc.get_traced_memory()
        peak_kb = round(peak / 1024.0, 1)
    return {
        "max_rss_kb": max_rss_kb(),
        "tracemalloc_peak_kb": peak_kb,
        "tracemalloc_enabled": tracing,
    }


def publish_memory_gauges(metrics) -> None:
    """Fold the current memory gauges into a metrics registry.

    ``set_max`` keeps the worker-merge semantics: the published value
    is the high-water mark across every process that reported.
    """
    report = memory_report()
    metrics.gauge("mem.max_rss_kb").set_max(float(report["max_rss_kb"]))
    if report["tracemalloc_peak_kb"] is not None:
        metrics.gauge("mem.tracemalloc_peak_kb").set_max(
            report["tracemalloc_peak_kb"]
        )


class StageProfiler:
    """Accumulates one ``cProfile`` capture per named stage."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._stats: dict[str, pstats.Stats] = {}
        self._active = 0

    @contextmanager
    def record(self, name: str) -> Iterator[None]:
        """Profile a stage block (outermost occurrence only).

        Disabled profilers — and blocks nested inside an already
        profiled one, which ``cProfile`` cannot capture — yield
        immediately.
        """
        if not self.enabled or self._active:
            yield
            return
        profile = cProfile.Profile()
        self._active += 1
        try:
            profile.enable()
            try:
                yield
            finally:
                profile.disable()
        finally:
            # A stage that raises still keeps its partial capture —
            # the same contract as StageTimer's partial timings.
            self._active -= 1
            existing = self._stats.get(name)
            if existing is None:
                self._stats[name] = pstats.Stats(profile)
            else:
                existing.add(profile)

    def reset(self) -> None:
        """Drop every captured profile (fresh run / test isolation)."""
        self._stats.clear()
        self._active = 0

    def stage_names(self) -> list[str]:
        """Stages captured so far, in first-capture order."""
        return list(self._stats)

    def collapsed_stacks(self, min_us: int = 1) -> list[str]:
        """Flamegraph-collapsed lines: ``stage;file:func sample_count``.

        One sample unit per microsecond of a function's *own* time
        (tottime), namespaced under its stage — a two-level flame:
        stages across the base, functions above them.  Lines are
        sorted for deterministic output; entries under *min_us* are
        dropped.
        """
        lines = []
        for stage, stats in self._stats.items():
            for (filename, lineno, func), row in stats.stats.items():  # type: ignore[attr-defined]
                tottime = row[2]
                us = int(round(tottime * 1e6))
                if us < min_us:
                    continue
                where = f"{Path(filename).name}:{lineno}({func})"
                lines.append(f"{stage};{where} {us}")
        return sorted(lines)

    def write_collapsed(self, path: Union[str, Path]) -> Path:
        """Write the collapsed-stack text to *path*; returns the path."""
        out = Path(path)
        out.write_text("".join(line + "\n" for line in self.collapsed_stacks()))
        return out

    def top_functions(
        self, stage: str, limit: int = 10
    ) -> list[tuple[str, int, float, float]]:
        """``(function, calls, tottime, cumtime)`` rows for one stage,
        by descending tottime — the report's hot-function table."""
        stats = self._stats.get(stage)
        if stats is None:
            return []
        rows = []
        for (filename, lineno, func), row in stats.stats.items():  # type: ignore[attr-defined]
            ncalls, tottime, cumtime = row[1], row[2], row[3]
            where = f"{Path(filename).name}:{lineno}({func})"
            rows.append((where, int(ncalls), float(tottime), float(cumtime)))
        rows.sort(key=lambda r: (-r[2], r[0]))
        return rows[:limit]


#: The process-wide stage profiler; disabled by default, hooked by
#: :class:`~repro.experiments.bench.StageTimer`.
PROFILER = StageProfiler()
