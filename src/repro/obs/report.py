"""Static HTML run report — the ledger and telemetry, human-shaped.

``python -m repro.obs report`` renders the latest ledger entry (and
its comparable history) plus an optional heartbeat channel into one
self-contained HTML file: run header, per-stage timings, counter
deltas against the previous comparable run, memory gauges, the
wall-clock trend across history, and the per-chunk straggler table.
No dependencies, no scripts, inline CSS only — the file is a CI
artifact that must open anywhere.
"""

from __future__ import annotations

import html
import statistics
import time
from typing import Any, Optional

from .ledger import COMPARABILITY_KEYS, comparable_history

#: A chunk whose actual wall lands beyond this factor of the cost
#: model's prediction (either direction) is flagged as a misprediction
#: in the worker-chunk tables.
MISPREDICT_FACTOR = 2.0

#: Chunks slower than this multiple of the median chunk wall time are
#: flagged as stragglers (the default ``watch``/``report`` threshold).
STRAGGLER_FACTOR = 1.5

_CSS = """
body { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
       margin: 2rem auto; max-width: 64rem; color: #1a1a1a; }
h1, h2 { font-weight: 600; }
table { border-collapse: collapse; margin: 0.75rem 0 1.5rem; }
th, td { border: 1px solid #d0d0d0; padding: 0.25rem 0.6rem;
         text-align: left; font-size: 0.85rem; }
th { background: #f2f2f2; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tr.flag td { background: #fff3e6; }
.up { color: #b01f1f; } .down { color: #1f7a33; }
.muted { color: #707070; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _table(headers: list[str], rows: list[list[str]],
           flags: Optional[list[bool]] = None) -> str:
    """Rows are pre-rendered cell HTML; *flags* marks straggler rows."""
    out = ["<table><tr>"]
    out.extend(f"<th>{_esc(h)}</th>" for h in headers)
    out.append("</tr>")
    for i, row in enumerate(rows):
        cls = ' class="flag"' if flags and flags[i] else ""
        out.append(f"<tr{cls}>" + "".join(row) + "</tr>")
    out.append("</table>")
    return "".join(out)


def _num(value: Any) -> str:
    return f'<td class="num">{_esc(value)}</td>'


def _cell(value: Any) -> str:
    return f"<td>{_esc(value)}</td>"


def _delta_cell(old: Optional[float], new: Optional[float]) -> str:
    if not old or new is None:
        return '<td class="num muted">–</td>'
    growth = (new - old) / old
    cls = "up" if growth > 0 else "down" if growth < 0 else "muted"
    return f'<td class="num {cls}">{growth * 100:+.1f}%</td>'


def _entry_header_rows(entry: dict[str, Any]) -> list[list[str]]:
    config = entry.get("config", {})
    rows = [
        [_cell("name"), _cell(entry.get("name"))],
        [_cell("git sha"), _cell(entry.get("git_sha") or "?")],
        [_cell("repro version"), _cell(entry.get("repro_version") or "?")],
        [_cell("recorded"), _cell(time.strftime(
            "%Y-%m-%d %H:%M:%S", time.gmtime(entry.get("ts", 0))) + " UTC")],
    ]
    for key in COMPARABILITY_KEYS:
        if key != "name" and key in config:
            rows.append([_cell(key), _cell(config[key])])
    return rows


def straggler_rows(
    heartbeats: list[dict[str, Any]], factor: float = STRAGGLER_FACTOR
) -> tuple[list[dict[str, Any]], float]:
    """Chunk-end records annotated for straggler display.

    Returns ``(rows, median_wall)`` where each row is the chunk-end
    record plus a ``straggler`` bool (wall > factor x median over its
    label's chunks).  Chunks carrying a cost-model estimate (the
    ``cost`` field cost-weighted fan-outs emit) additionally get
    ``predicted_s`` — the label's total chunk wall apportioned by cost
    share — and ``cost_ratio`` (actual / predicted; ``None`` when the
    prediction rounds to zero), the estimator score ``repro.obs
    report`` / ``watch --cost-model`` display.
    """
    ends = [r for r in heartbeats
            if r.get("kind") == "chunk-end" and r.get("wall_s") is not None]
    by_label: dict[str, list[float]] = {}
    cost_totals: dict[str, tuple[int, float]] = {}
    for r in ends:
        label = r.get("label", "")
        by_label.setdefault(label, []).append(r["wall_s"])
        if r.get("cost") is not None:
            total_cost, total_wall = cost_totals.get(label, (0, 0.0))
            cost_totals[label] = (
                total_cost + max(1, r["cost"]), total_wall + r["wall_s"]
            )
    medians = {
        label: statistics.median(walls) for label, walls in by_label.items()
    }
    rows = []
    for r in ends:
        label = r.get("label", "")
        median = medians.get(label, 0.0)
        row = dict(r, straggler=median > 0 and r["wall_s"] > factor * median)
        if r.get("cost") is not None:
            total_cost, total_wall = cost_totals[label]
            predicted = (
                total_wall * max(1, r["cost"]) / total_cost
                if total_cost else 0.0
            )
            row["predicted_s"] = predicted
            row["cost_ratio"] = (
                r["wall_s"] / predicted if predicted > 1e-9 else None
            )
        rows.append(row)
    overall = statistics.median([r["wall_s"] for r in ends]) if ends else 0.0
    return rows, overall


def render_report(
    entries: list[dict[str, Any]],
    heartbeats: Optional[list[dict[str, Any]]] = None,
    title: str = "repro run report",
) -> str:
    """The full HTML document for the latest of *entries*."""
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
    ]
    if not entries:
        parts.append("<p>(empty ledger)</p></body></html>")
        return "".join(parts)

    latest = entries[-1]
    history = comparable_history(entries, latest)
    previous = history[-1] if history else None

    parts.append("<h2>Run</h2>")
    parts.append(_table(["field", "value"], _entry_header_rows(latest)))

    stages = latest.get("stages", {})
    if stages:
        prev_stages = (previous or {}).get("stages", {})
        rows = [
            [_cell(name), _num(f"{secs:.4f}"),
             _delta_cell(prev_stages.get(name), secs)]
            for name, secs in stages.items()
        ]
        total = latest.get("wall_clock_s")
        if total is not None:
            rows.append([_cell("<b>wall clock</b>"), _num(f"{total:.4f}"),
                         _delta_cell((previous or {}).get("wall_clock_s"),
                                     total)])
        parts.append("<h2>Stages</h2>")
        parts.append(_table(["stage", "seconds", "vs previous"], rows))

    counters = latest.get("counters", {})
    if counters:
        prev_counters = (previous or {}).get("counters", {})
        rows = [
            [_cell(name), _num(value),
             _delta_cell(prev_counters.get(name), value)]
            for name, value in sorted(counters.items())
        ]
        parts.append("<h2>Work counters</h2>")
        parts.append(_table(["counter", "value", "vs previous"], rows))

    memory = latest.get("memory", {})
    if memory:
        prev_memory = (previous or {}).get("memory", {})
        rows = []
        for key in ("max_rss_kb", "tracemalloc_peak_kb"):
            value = memory.get(key)
            if value is None:
                continue
            rows.append([_cell(key), _num(value),
                         _delta_cell(prev_memory.get(key), value)])
        if rows:
            parts.append("<h2>Memory</h2>")
            parts.append(_table(["gauge", "KiB", "vs previous"], rows))

    if history:
        parts.append("<h2>Comparable history</h2>")
        rows = []
        for entry in history + [latest]:
            marker = " (this run)" if entry is latest else ""
            rows.append([
                _cell(time.strftime("%Y-%m-%d %H:%M",
                                    time.gmtime(entry.get("ts", 0))) + marker),
                _cell(entry.get("git_sha") or "?"),
                _num(entry.get("wall_clock_s")),
                _num(entry.get("memory", {}).get("max_rss_kb", "–")),
            ])
        parts.append(_table(["recorded (UTC)", "sha", "wall s", "rss KiB"],
                            rows))

    if heartbeats:
        rows_data, median = straggler_rows(heartbeats)
        if rows_data:
            with_cost = any("predicted_s" in r for r in rows_data)
            parts.append("<h2>Worker chunks</h2>")
            parts.append(
                f"<p class='muted'>median chunk wall {median:.4f}s; rows "
                f"beyond {STRAGGLER_FACTOR}x their label's median are "
                f"flagged as stragglers"
                + (f"; cost-model predictions off by more than "
                   f"{MISPREDICT_FACTOR:g}x are flagged as mispredictions"
                   if with_cost else "")
                + ".</p>"
            )
            rows, flags = [], []
            for r in sorted(rows_data,
                            key=lambda r: -r.get("wall_s", 0.0))[:50]:
                chunk = r.get("chunk") or ["?", "?"]
                marks = []
                if r["straggler"]:
                    marks.append("STRAGGLER")
                ratio = r.get("cost_ratio")
                mispredicted = ratio is not None and (
                    ratio > MISPREDICT_FACTOR or ratio < 1 / MISPREDICT_FACTOR
                )
                if mispredicted:
                    marks.append("MISPREDICT")
                row = [
                    _cell(r.get("label", "")),
                    _cell(f"[{chunk[0]}, {chunk[1]})"),
                    _num(r.get("items", "–")),
                    _num(f"{r.get('wall_s', 0.0):.4f}"),
                ]
                if with_cost:
                    predicted = r.get("predicted_s")
                    row.append(
                        _num(f"{predicted:.4f}")
                        if predicted is not None else _num("–")
                    )
                    row.append(
                        _num(f"{ratio:.2f}x") if ratio is not None
                        else _num("–")
                    )
                row.append(_cell(" ".join(marks)))
                rows.append(row)
                flags.append(bool(r["straggler"] or mispredicted))
            headers = ["worker", "chunk", "items", "wall s"]
            if with_cost:
                headers += ["predicted s", "actual/pred"]
            parts.append(_table(headers + [""], rows, flags))

    parts.append("</body></html>")
    return "".join(parts)
