"""Runtime-selectable kernel backends for the canonical path engine.

Every hot loop of the reproduction — canonical Dijkstra/BFS row
building (:mod:`repro.graph.csr`), decremental SPT re-settling
(:mod:`repro.graph.incremental`), and the flat ILM decomposition DP
(:mod:`repro.experiments.ilm_accounting`) — dispatches through the
backend selected here.  Three backends ship:

``python``
    The reference implementation: the original pure-Python loops over
    flat buffers, unchanged in behaviour and counter accounting.  Zero
    dependencies — a fresh clone runs on it out of the box.

``numpy``
    Vectorized kernels over ndarray casts of the same CSR buffers
    (zero-copy via the buffer protocol, including shared-memory
    segments attached by :mod:`repro.graph.shm`).  Distances are
    computed by batched Bellman–Ford relaxation to fixpoint and
    predecessors by a vectorized canonical tight-parent extraction —
    legal because the library-wide ``(dist, index)`` tie contract makes
    both a pure function of the final labels (see
    ``docs/performance.md``).  Outputs and perf counters are
    bit-for-bit identical to the reference backend; the equivalence is
    pinned by ``tests/test_kernels.py``.

``native``
    The reference loops compiled: C kernels built at first use with the
    system ``cc`` (cached shared object, zero Python dependencies)
    and driven through ``ctypes`` over the same CSR buffers and masks.
    Runs the *same algorithm* as the reference backend instruction for
    instruction, so outputs and counters stay bit-identical at every
    input size — including the targeted searches, single-source rows,
    and small repairs the numpy backend gates back to Python.

Selection: the ``REPRO_KERNEL`` environment variable (``python``,
``numpy``, ``native``, or ``auto`` — the default), or ``--kernel`` on
every experiment CLI (:func:`add_kernel_argument` / :func:`apply_kernel`).
``auto`` prefers native when a C toolchain is present, then numpy when
it imports, and silently falls back to the reference backend otherwise
— both accelerated backends stay optional, never dependencies.  The
active backend name is stamped into every ``BENCH_*.json`` header as
``kernel_backend`` and treated as an obs-diff comparability key.
"""

from __future__ import annotations

import os
from typing import Any, Optional

#: Recognized values for REPRO_KERNEL / --kernel.
KERNEL_CHOICES = ("auto", "python", "numpy", "native")

_BACKEND = None  # resolved backend module, cached per process


def _resolve(name: str):
    """Import and return the backend module for *name*.

    Explicit names fail loudly (``native`` without a toolchain, or
    ``numpy`` without numpy, raise ``ImportError``); ``auto`` walks
    native → numpy → python, taking the first backend that imports.
    """
    if name == "python":
        from . import python_backend

        return python_backend
    if name == "numpy":
        from . import numpy_backend

        return numpy_backend
    if name == "native":
        from . import native_backend

        return native_backend
    if name == "auto":
        try:
            from . import native_backend

            return native_backend
        except ImportError:
            pass
        try:
            from . import numpy_backend

            return numpy_backend
        except ImportError:
            from . import python_backend

            return python_backend
    raise ValueError(
        f"unknown kernel backend {name!r}; choose from {KERNEL_CHOICES}"
    )


def kernel_backend():
    """The active backend module (resolved once per process).

    First call reads ``REPRO_KERNEL`` (default ``auto``); later calls
    return the cached resolution.  ``REPRO_KERNEL=numpy`` without numpy
    installed raises ``ImportError`` — an explicit request must not
    silently degrade; only ``auto`` falls back.
    """
    global _BACKEND
    if _BACKEND is None:
        name = os.environ.get("REPRO_KERNEL", "auto").strip().lower() or "auto"
        _BACKEND = _resolve(name)
    return _BACKEND


def backend_name() -> str:
    """Name of the active backend (``python``/``numpy``/``native``)."""
    return kernel_backend().NAME


def set_backend(name: str) -> str:
    """Select a backend process-wide; returns the previously active name.

    Accepts any of :data:`KERNEL_CHOICES`.  Also exports the *resolved*
    name into ``REPRO_KERNEL`` so worker processes — forked or spawned —
    inherit a deterministic choice rather than re-running ``auto``.
    """
    global _BACKEND
    old = backend_name()
    _BACKEND = _resolve(name)
    os.environ["REPRO_KERNEL"] = _BACKEND.NAME
    return old


def available_backends() -> list[str]:
    """Backends importable in this environment, reference first."""
    names = ["python"]
    try:
        from . import numpy_backend  # noqa: F401

        names.append("numpy")
    except ImportError:
        pass
    try:
        from . import native_backend  # noqa: F401

        names.append("native")
    except ImportError:
        pass
    return names


def add_kernel_argument(parser: Any) -> None:
    """Attach the documented ``--kernel`` knob to a CLI parser."""
    parser.add_argument(
        "--kernel", choices=list(KERNEL_CHOICES), default=None,
        help="kernel backend for the canonical path engine (default: env "
             "REPRO_KERNEL or 'auto' — native when a C toolchain is "
             "present, else numpy when importable, else the pure-python "
             "reference; outputs are bit-identical in every case)",
    )


def apply_kernel(args: Any) -> None:
    """Install ``--kernel`` process-wide (call before forking workers)."""
    value = getattr(args, "kernel", None)
    if value is not None:
        set_backend(value)
