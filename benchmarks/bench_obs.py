"""Overhead budget of the observability layer (``repro.obs``).

The contract (docs/observability.md): instrumentation is *unmeasurable*
when disabled — hot paths pay one attribute check and get back a shared
null context manager — and costs at most a few percent when enabled.
These benchmarks time both paths on the real Table 2 pipeline and pin
the disabled fast path directly.
"""

from __future__ import annotations

import time

from repro.experiments.table2 import run as run_table2
from repro.obs.metrics import METRICS
from repro.obs.trace import NULL_SPAN, TRACER, Tracer


def _run_table2_tiny():
    return run_table2(scale="tiny", seed=1, modes=("link",), jobs=1)


def _obs_on():
    TRACER.reset()
    TRACER.enabled = True
    METRICS.reset()
    METRICS.enabled = True


def _obs_off():
    TRACER.enabled = False
    TRACER.reset()
    METRICS.enabled = False
    METRICS.reset()


def _min_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_disabled_span_is_free(benchmark):
    """Disabled ``span()`` returns the shared singleton — no allocation."""
    tracer = Tracer(enabled=False)
    assert tracer.span("hot.path") is NULL_SPAN

    def hot_loop():
        span = tracer.span
        for _ in range(10_000):
            with span("hot.path"):
                pass

    benchmark(hot_loop)
    # Absolute ceiling: well under a microsecond per disabled span.
    per_call = _min_of(hot_loop, 3) / 10_000
    assert per_call < 1e-6, f"disabled span costs {per_call * 1e9:.0f}ns"


def bench_enabled_span_tree(benchmark):
    """Enabled spans: build a 10k-node tree, then reset."""
    tracer = Tracer(enabled=True)

    def build():
        tracer.reset()
        with tracer.span("root"):
            for _ in range(10_000):
                with tracer.span("leaf"):
                    pass

    benchmark(build)
    assert len(list(tracer.iter_spans())) == 10_001


def bench_table2_tiny_obs_disabled(benchmark):
    _obs_off()
    rows = benchmark(_run_table2_tiny)
    assert rows["link"]


def bench_table2_tiny_obs_enabled(benchmark):
    _obs_on()
    try:
        rows = benchmark(_run_table2_tiny)
        assert rows["link"]
    finally:
        _obs_off()


def bench_obs_overhead_budget():
    """Enabled tracing + metrics stay within the documented budget.

    Min-of-N wall clocks of the same tiny Table 2 run with the layer
    off and on; the ISSUE budget is <= 5% — asserted with a small
    absolute epsilon so a sub-100ms baseline doesn't turn scheduler
    jitter into failures.
    """
    _obs_off()
    _run_table2_tiny()  # warm the shared topology/oracle caches
    disabled = _min_of(_run_table2_tiny, 5)
    _obs_on()
    try:
        enabled = _min_of(_run_table2_tiny, 5)
    finally:
        _obs_off()
    budget = disabled * 1.05 + 0.025
    assert enabled <= budget, (
        f"obs overhead too high: {disabled:.4f}s off vs {enabled:.4f}s on "
        f"(budget {budget:.4f}s)"
    )
