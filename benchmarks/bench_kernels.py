"""Kernel backend benchmarks: numpy and native vs. the reference loops.

Times the dispatch points of :mod:`repro.kernels` head to head on the
experiment suite's own topology generators, asserting bit-identical
outputs while it measures:

* **batched row building** — ``rows_many`` over a block of sources vs.
  the per-source reference kernels (heap Dijkstra on weighted graphs,
  frontier BFS on unit graphs), on the ISP, Internet, and AS families;
* **single-source full rows** — one exhaustive ``dijkstra_canonical``
  call at a time, the shape ``SptCache`` misses and oracle promotions
  pay for (numpy's ``SINGLE_MIN_N`` gate applies; native has none);
* **targeted early-exit searches** — ``dijkstra_canonical`` with a
  small target set, the ``fast_shortest_path`` probe shape numpy hands
  back to the reference loop by design;
* **SPT re-settle** — Ramalingam–Reps repair vs. the boundary-offer
  loop, on hub failures with large affected subtrees;
* **flat ILM decomposition** — the accelerated DP vs. the forward
  reference DP on long concatenation chains.

Emits ``results/BENCH_kernels.json`` in the established BENCH schema
(per-section timings, per-backend speedup ratios, the work-counter
delta).  ``--smoke`` shrinks sizes and repeats to a CI-friendly run
that still asserts every equivalence.  Backends that cannot load are
skipped with a note in the payload (``backends_skipped``) — a fresh
clone without numpy or a C toolchain must pass every CLI.
"""

from __future__ import annotations

import argparse
import random
import statistics
import time

from repro.graph.csr import as_view, shared_csr
from repro.kernels import available_backends
from repro.kernels import python_backend as pyk
from repro.perf import COUNTERS
from repro.topology import (
    generate_as_graph,
    generate_internet_graph,
    generate_isp_topology,
)

#: Accelerated backends measured this run, and why any were skipped.
BACKENDS: dict = {}
SKIPPED: dict[str, str] = {}

try:
    from repro.kernels import numpy_backend as npk

    BACKENDS["numpy"] = npk
except ImportError:  # pragma: no cover - exercised on clones without numpy
    npk = None
    SKIPPED["numpy"] = "numpy not importable ([accel] extra)"

try:
    from repro.kernels import native_backend as natk

    BACKENDS["native"] = natk
except ImportError as exc:  # pragma: no cover - exercised without a toolchain
    natk = None
    SKIPPED["native"] = str(exc).splitlines()[0][:200]


def _timed(fn, repeat: int):
    """Median wall seconds over *repeat* calls (first call warms caches)."""
    fn()
    samples = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def _reference_rows(view, sources, unit):
    rows = {}
    for s in sources:
        if unit:
            rows[s] = pyk.bfs(view, s)
        else:
            dist, pred, _ = pyk.dijkstra_canonical(view, s)
            rows[s] = (dist, pred)
    return rows


def _row_section(results, label, graph, unit, n_sources, repeat):
    view = as_view(shared_csr(graph))
    sources = list(range(min(n_sources, view.csr.n)))
    expected = _reference_rows(view, sources, unit)
    results[f"{label}_python_s"] = _timed(
        lambda: _reference_rows(view, sources, unit), repeat
    )
    for name, mod in BACKENDS.items():
        got = mod.rows_many(view, sources, unit)
        assert got == expected, f"{label}: {name} disagrees"
        results[f"{label}_{name}_s"] = _timed(
            lambda mod=mod: mod.rows_many(view, sources, unit), repeat
        )


def _single_source_section(results, label, graph, n_sources, repeat):
    """One exhaustive canonical Dijkstra per call — no batching to hide in."""
    view = as_view(shared_csr(graph))
    sources = list(range(min(n_sources, view.csr.n)))
    expected = [pyk.dijkstra_canonical(view, s) for s in sources]

    def run(mod):
        return [mod.dijkstra_canonical(view, s) for s in sources]

    results[f"{label}_python_s"] = _timed(lambda: run(pyk), repeat)
    for name, mod in BACKENDS.items():
        assert run(mod) == expected, f"{label}: {name} disagrees"
        results[f"{label}_{name}_s"] = _timed(
            lambda mod=mod: run(mod), repeat
        )


def _targeted_section(results, label, graph, n_queries, repeat):
    """Early-exit probes with a single target — the oracle's query shape."""
    view = as_view(shared_csr(graph))
    n = view.csr.n
    rng = random.Random(3)
    queries = [
        (rng.randrange(n), [rng.randrange(n)]) for _ in range(n_queries)
    ]
    expected = [
        pyk.dijkstra_canonical(view, s, targets) for s, targets in queries
    ]

    def run(mod):
        return [
            mod.dijkstra_canonical(view, s, targets) for s, targets in queries
        ]

    results[f"{label}_python_s"] = _timed(lambda: run(pyk), repeat)
    for name, mod in BACKENDS.items():
        assert run(mod) == expected, f"{label}: {name} disagrees"
        results[f"{label}_{name}_s"] = _timed(
            lambda mod=mod: run(mod), repeat
        )


def _repair_entry(name, mod):
    """numpy's vectorized body is called directly (its size gate would
    route the benchmark back to the loop being measured); native has no
    gate, so the public entry point is the native path already."""
    return mod._repair_resettle_vec if name == "numpy" else mod.repair_resettle


def _repair_section(results, graph, repeat):
    """Hub failure: kill the highest-degree tree edge near the source."""
    csr = shared_csr(graph)
    base = as_view(csr)
    nodes = csr.nodes
    dist, pred, _ = pyk.dijkstra_canonical(base, 0)
    children: dict[int, list[int]] = {}
    for v in range(csr.n):
        if pred[v] >= 0:
            children.setdefault(pred[v], []).append(v)

    def subtree(root):
        out, stack = set(), [root]
        while stack:
            x = stack.pop()
            if x not in out:
                out.add(x)
                stack.extend(children.get(x, ()))
        return out

    victim = max(
        (v for v in range(csr.n) if pred[v] >= 0), key=lambda v: len(subtree(v))
    )
    affected = subtree(victim)
    affected.discard(0)
    view = base.without(edges=[(nodes[pred[victim]], nodes[victim])])
    results["repair_affected_nodes"] = len(affected)
    ref = pyk.repair_resettle(view, 0, list(dist), list(pred), set(affected), False)
    results["repair_python_s"] = _timed(
        lambda: pyk.repair_resettle(
            view, 0, list(dist), list(pred), set(affected), False
        ),
        repeat,
    )
    for name, mod in BACKENDS.items():
        entry = _repair_entry(name, mod)
        got = entry(view, 0, list(dist), list(pred), set(affected), False)
        assert got == ref, f"repair: {name} disagrees"
        results[f"repair_{name}_s"] = _timed(
            lambda entry=entry: entry(
                view, 0, list(dist), list(pred), set(affected), False
            ),
            repeat,
        )


def _decompose_entry(name, mod):
    return mod._decompose_flat_vec if name == "numpy" else mod.decompose_flat


def _decompose_section(results, graph, anchors, repeat):
    """A concatenation of shortest paths — the chain shape per-link ILM
    accounting actually decomposes (few pieces, long spans); a random
    walk would be adversarial instead (one piece per hop, so the matrix
    DP's min-plus fixpoint needs ~len(chain) rounds)."""
    csr = shared_csr(graph)
    view = as_view(csr)
    indptr, indices, weights = csr.indptr, csr.indices, csr.weights
    rng = random.Random(7)
    preds = {}
    waypoints = [rng.randrange(csr.n) for _ in range(anchors)]
    chain = [waypoints[0]]
    for a, b in zip(waypoints, waypoints[1:]):
        if a not in preds:
            preds[a] = pyk.dijkstra_canonical(view, a)[1]
        seg, t = [], b
        while t != -1:
            seg.append(t)
            t = preds[a][t]
        chain.extend(reversed(seg[:-1]))

    def edge_weight(u, v):
        for s in range(indptr[u], indptr[u + 1]):
            if indices[s] == v:
                return weights[s]
        raise KeyError((u, v))

    cum = [0.0]
    for u, v in zip(chain, chain[1:]):
        cum.append(cum[-1] + edge_weight(u, v))
    chain = tuple(chain)
    rows = {
        j: pyk.dijkstra_canonical(view, chain[j])[0] for j in range(len(chain))
    }
    row_for = rows.__getitem__
    results["decompose_chain_len"] = len(chain)
    ref = pyk.decompose_flat(chain, cum, row_for)
    results["decompose_python_s"] = _timed(
        lambda: pyk.decompose_flat(chain, cum, row_for), repeat
    )
    for name, mod in BACKENDS.items():
        entry = _decompose_entry(name, mod)
        assert entry(chain, cum, row_for) == ref, f"decompose: {name} disagrees"
        results[f"decompose_{name}_s"] = _timed(
            lambda entry=entry: entry(chain, cum, row_for), repeat
        )


def main(argv=None) -> None:
    from repro.experiments.bench import write_bench_json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument("--sources", type=int, default=200,
                        help="row-building batch size per network")
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode: tiny graphs, fewer repeats; every "
             "backend-vs-python equivalence assertion still runs",
    )
    parser.add_argument(
        "--bench-json", type=str, default=None,
        help="path for the BENCH JSON (default results/BENCH_kernels.json; "
             "'-' disables)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        sizes = {"isp": 120, "internet": 300, "as": 300,
                 "repair_isp": 400, "anchors": 6,
                 "single_sources": 8, "targeted_queries": 20}
        args.repeat = min(args.repeat, 2)
        args.sources = min(args.sources, 60)
    else:
        sizes = {"isp": 200, "internet": 4000, "as": 2000,
                 "repair_isp": 2000, "anchors": 16,
                 "single_sources": 24, "targeted_queries": 120}

    before = COUNTERS.snapshot()
    wall_start = time.perf_counter()
    results: dict[str, float] = {}

    isp_w = generate_isp_topology(n=sizes["isp"], seed=args.seed)
    isp_u = generate_isp_topology(n=sizes["isp"], seed=args.seed, weighted=False)
    _row_section(results, "rows_isp_weighted", isp_w, False,
                 args.sources, args.repeat)
    _row_section(results, "rows_isp_unit", isp_u, True,
                 args.sources, args.repeat)
    _row_section(results, "rows_internet", generate_internet_graph(
        n=sizes["internet"], seed=args.seed), True, args.sources, args.repeat)
    _row_section(results, "rows_as_graph", generate_as_graph(
        n=sizes["as"], seed=args.seed), True, args.sources, args.repeat)
    repair_graph = generate_isp_topology(n=sizes["repair_isp"], seed=args.seed)
    _single_source_section(results, "single_source", repair_graph,
                           sizes["single_sources"], args.repeat)
    _targeted_section(results, "targeted", repair_graph,
                      sizes["targeted_queries"], args.repeat)
    _repair_section(results, repair_graph, args.repeat)
    _decompose_section(results, repair_graph, sizes["anchors"], args.repeat)

    speedups: dict[str, dict[str, float]] = {name: {} for name in BACKENDS}
    for key in sorted(results):
        for name in BACKENDS:
            suffix = f"_{name}_s"
            if key.endswith(suffix):
                stem = key[: -len(suffix)]
                speedups[name][stem] = round(
                    results[f"{stem}_python_s"] / max(results[key], 1e-12), 2
                )

    payload = {
        "name": "kernels",
        "seed": args.seed,
        "repeat": args.repeat,
        "sources": args.sources,
        "sizes": sizes,
        "smoke": bool(args.smoke),
        "backends_measured": available_backends(),
        "backends_skipped": SKIPPED,
        "wall_clock_s": round(time.perf_counter() - wall_start, 4),
        "results": {
            k: (round(v, 6) if isinstance(v, float) else v)
            for k, v in results.items()
        },
        "speedups": speedups,
        "counters": COUNTERS.delta(before).as_dict(),
    }
    if args.bench_json != "-":
        out = write_bench_json("kernels", payload, path=args.bench_json)
        print(f"wrote {out}")
    for name, ratios in speedups.items():
        for stem, ratio in ratios.items():
            print(f"{stem} [{name}]: {ratio}x")


if __name__ == "__main__":
    main()
