"""Micro-benchmarks of the computational kernels under the experiments.

Not tied to a specific table; these keep the substrate's costs honest
(and catch accidental quadratic regressions) at the scales the
experiment drivers use them.
"""

from __future__ import annotations

from repro.core.base_paths import UniqueShortestPathsBase
from repro.graph.all_pairs import ApspDistances
from repro.graph.connectivity import bridges
from repro.graph.shortest_paths import bidirectional_dijkstra, dijkstra
from repro.graph.spt import ShortestPathDag


def bench_dijkstra_isp(benchmark, isp200):
    nodes = sorted(isp200.nodes, key=repr)
    dist, _ = benchmark(dijkstra, isp200, nodes[0])
    assert len(dist) == isp200.number_of_nodes()


def bench_dijkstra_powerlaw(benchmark, as500):
    nodes = sorted(as500.nodes, key=repr)
    dist, _ = benchmark(dijkstra, as500, nodes[0])
    assert len(dist) == as500.number_of_nodes()


def bench_bidirectional_dijkstra(benchmark, as500):
    nodes = sorted(as500.nodes, key=repr)
    s, t = nodes[0], nodes[-1]
    expected, _ = dijkstra(as500, s, target=t)
    cost, path = benchmark(bidirectional_dijkstra, as500, s, t)
    assert cost == expected[t]


def bench_dijkstra_on_failure_view(benchmark, isp200):
    """Dijkstra through a FilteredView must not be much slower than raw."""
    nodes = sorted(isp200.nodes, key=repr)
    source = nodes[0]
    # Fail two links not incident to the source (both uplinks of one
    # access router would isolate it, not stress the view).
    edges = [e for e in sorted(isp200.edges(), key=repr) if source not in e]
    view = isp200.without(edges=edges[:2])
    dist, _ = benchmark(dijkstra, view, source)
    assert len(dist) >= isp200.number_of_nodes() - 4


def bench_apsp_isp(benchmark, isp200):
    sources = sorted(isp200.nodes, key=repr)[:40]
    apsp = benchmark(ApspDistances.compute, isp200, sources)
    assert apsp.average_distance() > 0


def bench_shortest_path_dag(benchmark, isp200):
    nodes = sorted(isp200.nodes, key=repr)
    dag = benchmark(ShortestPathDag.compute, isp200, nodes[0])
    reachable = [t for t in dag.dist if t != nodes[0]]
    assert all(dag.count_paths_to(t) >= 1 for t in reachable[:20])


def bench_bridges_isp(benchmark, isp200):
    found = benchmark(bridges, isp200)
    assert found == set()  # PoP-pair design is bridge-free


def bench_base_membership_probe(benchmark, isp200):
    """The decomposition DP's inner loop: one is-base-path probe."""
    base = UniqueShortestPathsBase(isp200)
    nodes = sorted(isp200.nodes, key=repr)
    path = base.path_for(nodes[0], nodes[-1])
    base.is_base_path(path)  # warm the oracle

    result = benchmark(base.is_base_path, path)
    assert result
