"""The §1 technology trade-off, measured on real ISP restorations.

For every sampled single-link failure, price restoring by
concatenation vs. by circuit re-establishment under the MPLS, WDM and
ATM cost profiles.  The paper's qualitative ordering must hold: the
advantage is enormous in MPLS, still large in WDM (setup/teardown of
lightpaths dwarfs the O-E-O junction cost), and modest in ATM ("the
detailed trade-offs for ATM are less clear").
"""

from __future__ import annotations

import pytest

from repro.core.restoration import plan_restoration
from repro.core.technology import ATM, MPLS, PROFILES, WDM, concatenation_advantage
from repro.exceptions import NoRestorationPath
from repro.failures.models import FailureScenario


@pytest.fixture(scope="module")
def restorations(isp200, isp200_base, isp200_pairs):
    plans = []
    for s, t in isp200_pairs[:25]:
        primary = isp200_base.path_for(s, t)
        for failed in primary.edge_keys():
            view = FailureScenario.link_set([failed]).apply(isp200)
            try:
                plan = plan_restoration(view, isp200_base, s, t)
            except NoRestorationPath:
                continue
            if plan.num_pieces >= 2:
                plans.append((primary, plan))
    assert len(plans) > 30
    return plans


def bench_technology_comparison(benchmark, restorations):
    def run():
        return {
            profile.name: [
                concatenation_advantage(profile, plan, primary)
                for primary, plan in restorations
            ]
            for profile in PROFILES
        }

    advantages = benchmark(run)
    geometric_means = {}
    for name, values in advantages.items():
        finite = [v for v in values if v != float("inf")]
        assert finite, name
        product = 1.0
        for v in finite:
            product *= v ** (1.0 / len(finite))
        geometric_means[name] = product

    # Paper ordering: MPLS >> WDM >> ATM, all above break-even.
    assert geometric_means["MPLS"] > geometric_means["WDM"] > geometric_means["ATM"]
    assert geometric_means["ATM"] > 1.0
    assert geometric_means["MPLS"] > 50
    assert geometric_means["WDM"] > 10
