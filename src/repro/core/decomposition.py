"""Decomposing a restoration path into base paths — the RBPC kernel.

Given the new shortest path ``SP'_st`` computed after failures, the
restoration scheme must express it as a concatenation of surviving base
paths (Section 4.1).  Three algorithms are provided:

* :func:`greedy_decompose` — the paper's algorithm: repeatedly take the
  *largest* prefix of the remaining suffix that is a base path, found
  by binary search on prefix lengths.  Binary search is sound whenever
  base-path-ness is prefix-monotone along the path — true for
  all-shortest-path base sets, because a prefix of a shortest path is a
  shortest path; a linear probe is available for arbitrary sets.
* :func:`min_pieces_decompose` — dynamic program computing the
  *smallest* number of pieces (what Table 2's "PC length" reports:
  "determined the smallest number of basic LSP's whose concatenation
  is the backup path").
* :func:`concatenation_shortest_path` — the paper's fallback when a
  sparse base set cannot cover the chosen shortest path: run Dijkstra
  on the auxiliary graph "in which the surviving base paths are edges",
  minimizing true cost with piece count as tie-break.

Pieces that are single edges but not base paths are permitted when
*allow_edges* is set (the Theorem 2 / weighted situation) and are
reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import DecompositionError, NoPath
from ..graph.graph import Node
from ..graph.heap import AddressableHeap
from ..graph.paths import Path, concat_all
from .base_paths import AllShortestPathsBase, BaseSet, ExplicitBaseSet


@dataclass(frozen=True)
class Decomposition:
    """A restoration path expressed as an ordered sequence of pieces.

    ``base_flags[i]`` tells whether ``pieces[i]`` is a base path
    (otherwise it is a bare edge admitted by *allow_edges* — the
    Theorem 2 "k edges").
    """

    pieces: tuple[Path, ...]
    base_flags: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.pieces) != len(self.base_flags):
            raise ValueError("pieces and base_flags must align")

    @property
    def num_pieces(self) -> int:
        """Total component count — the paper's "PC length"."""
        return len(self.pieces)

    @property
    def num_base_paths(self) -> int:
        """Pieces that are base paths (vs. bare edges)."""
        return sum(self.base_flags)

    @property
    def num_extra_edges(self) -> int:
        """Pieces that are bare edges, not base paths (Theorem 2's k edges)."""
        return len(self.pieces) - self.num_base_paths

    @property
    def path(self) -> Path:
        """The full restoration path (concatenation of the pieces)."""
        return concat_all(list(self.pieces))

    def cost(self, graph) -> float:
        """Total weight of the restoration path in *graph*."""
        return self.path.cost(graph)

    def __repr__(self) -> str:
        return (
            f"<Decomposition pieces={self.num_pieces} "
            f"base={self.num_base_paths} edges={self.num_extra_edges}>"
        )


def _is_piece(sub: Path, base_set: BaseSet, allow_edges: bool) -> tuple[bool, bool]:
    """``(admissible, is_base)`` for a candidate piece."""
    if base_set.is_base_path(sub):
        return True, True
    if allow_edges and sub.hops == 1 and base_set.graph.has_edge(*sub.nodes):
        return True, False
    return False, False


def greedy_decompose(
    path: Path,
    base_set: BaseSet,
    allow_edges: bool = True,
    prefix_probe: Optional[str] = None,
) -> Decomposition:
    """The paper's greedy largest-prefix decomposition.

    *prefix_probe* is ``"binary"`` (default for
    :class:`AllShortestPathsBase`, where prefix membership is monotone)
    or ``"linear"`` (default otherwise — correct for any base set).
    Raises :class:`DecompositionError` if no progress can be made.

    Membership probes go through the base set's sub-path prober (O(1)
    prefix-sum arithmetic for the implicit shortest-path sets — see
    ``repro.core.decomp_kernel``); the probe sequence, and therefore the
    result, is identical to :func:`greedy_decompose_reference`.
    """
    if path.is_trivial:
        return Decomposition(pieces=(), base_flags=())
    if prefix_probe is None:
        prefix_probe = (
            "binary" if isinstance(base_set, AllShortestPathsBase) else "linear"
        )
    if prefix_probe not in ("binary", "linear"):
        raise ValueError(f"unknown prefix_probe {prefix_probe!r}")

    probe = base_set.subpath_probe(path)
    n = path.hops
    pos = 0
    pieces: list[Path] = []
    flags: list[bool] = []
    while pos < n:
        if prefix_probe == "binary":
            lo, hi = 0, n - pos
            # Invariant: subpath(pos, pos+lo) is base or lo == 0.
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if probe.is_base(pos, pos + mid):
                    lo = mid
                else:
                    hi = mid - 1
            length = lo
        else:
            length = 0
            for cand in range(1, n - pos + 1):
                if probe.is_base(pos, pos + cand):
                    length = cand
        if length >= 1:
            pieces.append(path.subpath(pos, pos + length))
            flags.append(True)
            pos += length
        else:
            admissible, is_base = probe.piece(pos, pos + 1, allow_edges)
            if not admissible:
                raise DecompositionError(
                    f"no base path or admissible edge covers "
                    f"{path.subpath(pos, pos + 1)!r}"
                )
            pieces.append(path.subpath(pos, pos + 1))
            flags.append(is_base)
            pos += 1
    return Decomposition(pieces=tuple(pieces), base_flags=tuple(flags))


def greedy_decompose_reference(
    path: Path,
    base_set: BaseSet,
    allow_edges: bool = True,
    prefix_probe: Optional[str] = None,
) -> Decomposition:
    """Pre-kernel implementation of :func:`greedy_decompose`.

    Allocates a :class:`Path` per membership probe.  Kept as the
    specification the equivalence tests check the kernel against.
    """
    if path.is_trivial:
        return Decomposition(pieces=(), base_flags=())
    if prefix_probe is None:
        prefix_probe = (
            "binary" if isinstance(base_set, AllShortestPathsBase) else "linear"
        )
    if prefix_probe not in ("binary", "linear"):
        raise ValueError(f"unknown prefix_probe {prefix_probe!r}")

    pieces: list[Path] = []
    flags: list[bool] = []
    remaining = path
    while not remaining.is_trivial:
        length = _largest_base_prefix(remaining, base_set, probe=prefix_probe)
        if length >= 1:
            piece = remaining.prefix(length)
            pieces.append(piece)
            flags.append(True)
        else:
            piece = remaining.prefix(1)
            admissible, is_base = _is_piece(piece, base_set, allow_edges)
            if not admissible:
                raise DecompositionError(
                    f"no base path or admissible edge covers {piece!r}"
                )
            pieces.append(piece)
            flags.append(is_base)
        remaining = remaining.suffix_from(piece.hops)
    return Decomposition(pieces=tuple(pieces), base_flags=tuple(flags))


def _largest_base_prefix(path: Path, base_set: BaseSet, probe: str) -> int:
    """Largest ``L`` such that ``path.prefix(L)`` is a base path (0 if none)."""
    if probe == "binary":
        lo, hi = 0, path.hops
        # Invariant: prefix(lo) is a base path or lo == 0; prefix(> hi) unknown.
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if base_set.is_base_path(path.prefix(mid)):
                lo = mid
            else:
                hi = mid - 1
        return lo
    best = 0
    for length in range(1, path.hops + 1):
        if base_set.is_base_path(path.prefix(length)):
            best = length
    return best


def min_pieces_decompose(
    path: Path,
    base_set: BaseSet,
    allow_edges: bool = True,
) -> Decomposition:
    """Optimal decomposition: the fewest pieces covering *path* exactly.

    Dynamic program over node positions; among decompositions with the
    same piece count, the one with fewer bare edges wins.  This is the
    quantity Table 2's "avg. PC length" averages.

    The O(L²) probe loop runs on the base set's sub-path prober, so for
    the implicit shortest-path sets each probe is O(1) arithmetic with
    no :class:`Path` allocation; results are identical to
    :func:`min_pieces_decompose_reference`.
    """
    if path.is_trivial:
        return Decomposition(pieces=(), base_flags=())
    probe = base_set.subpath_probe(path)
    n = len(path.nodes)
    INF = (n + 1, n + 1)
    # best[i] = (pieces, extra_edges) to cover path[0..i]; choice[i] = (j, is_base)
    best: list[tuple[int, int]] = [INF] * n
    choice: list[Optional[tuple[int, bool]]] = [None] * n
    best[0] = (0, 0)
    for i in range(1, n):
        for j in range(i):
            if best[j] == INF:
                continue
            admissible, is_base = probe.piece(j, i, allow_edges)
            if not admissible:
                continue
            candidate = (best[j][0] + 1, best[j][1] + (0 if is_base else 1))
            if candidate < best[i]:
                best[i] = candidate
                choice[i] = (j, is_base)
    if best[n - 1] == INF:
        raise DecompositionError(f"{path!r} cannot be covered by the base set")
    pieces: list[Path] = []
    flags: list[bool] = []
    i = n - 1
    while i > 0:
        j, is_base = choice[i]  # type: ignore[misc]
        pieces.append(path.subpath(j, i))
        flags.append(is_base)
        i = j
    pieces.reverse()
    flags.reverse()
    return Decomposition(pieces=tuple(pieces), base_flags=tuple(flags))


def min_pieces_decompose_reference(
    path: Path,
    base_set: BaseSet,
    allow_edges: bool = True,
) -> Decomposition:
    """Pre-kernel implementation of :func:`min_pieces_decompose`.

    Allocates a :class:`Path` per DP probe.  Kept as the specification
    the equivalence tests check the kernel against.
    """
    if path.is_trivial:
        return Decomposition(pieces=(), base_flags=())
    n = len(path.nodes)
    INF = (n + 1, n + 1)
    best: list[tuple[int, int]] = [INF] * n
    choice: list[Optional[tuple[int, bool]]] = [None] * n
    best[0] = (0, 0)
    for i in range(1, n):
        for j in range(i):
            if best[j] == INF:
                continue
            sub = path.subpath(j, i)
            admissible, is_base = _is_piece(sub, base_set, allow_edges)
            if not admissible:
                continue
            candidate = (best[j][0] + 1, best[j][1] + (0 if is_base else 1))
            if candidate < best[i]:
                best[i] = candidate
                choice[i] = (j, is_base)
    if best[n - 1] == INF:
        raise DecompositionError(f"{path!r} cannot be covered by the base set")
    pieces: list[Path] = []
    flags: list[bool] = []
    i = n - 1
    while i > 0:
        j, is_base = choice[i]  # type: ignore[misc]
        pieces.append(path.subpath(j, i))
        flags.append(is_base)
        i = j
    pieces.reverse()
    flags.reverse()
    return Decomposition(pieces=tuple(pieces), base_flags=tuple(flags))


def min_base_paths_decompose(
    path: Path,
    base_set: BaseSet,
    max_edges: int,
) -> Decomposition:
    """Fewest *base paths* covering *path*, using at most *max_edges* bare edges.

    This is the quantity Theorem 3 bounds: after ``k`` failures there
    is a covering with at most ``k + 1`` base paths interleaved with at
    most ``k`` edges — which :func:`min_pieces_decompose` may miss,
    since a piece-minimal covering can trade an allowed edge for an
    extra base path.  DP state: (position, edges used so far).
    """
    if path.is_trivial:
        return Decomposition(pieces=(), base_flags=())
    if max_edges < 0:
        raise ValueError("max_edges must be >= 0")
    probe = base_set.subpath_probe(path)
    nodes = path.nodes
    n = len(nodes)
    INF = n + 1
    # best[i][e] = min base pieces covering path[0..i] with e bare edges.
    best = [[INF] * (max_edges + 1) for _ in range(n)]
    choice: list[list[Optional[tuple[int, int, bool]]]] = [
        [None] * (max_edges + 1) for _ in range(n)
    ]
    best[0][0] = 0
    for i in range(1, n):
        for j in range(i):
            is_base = probe.is_base(j, i)
            is_edge = i - j == 1 and base_set.graph.has_edge(nodes[j], nodes[i])
            if not is_base and not is_edge:
                continue
            for e in range(max_edges + 1):
                if best[j][e] >= INF:
                    continue
                if is_base and best[j][e] + 1 < best[i][e]:
                    best[i][e] = best[j][e] + 1
                    choice[i][e] = (j, e, True)
                if is_edge and e < max_edges and best[j][e] < best[i][e + 1]:
                    best[i][e + 1] = best[j][e]
                    choice[i][e + 1] = (j, e, False)
    final_e = min(
        range(max_edges + 1), key=lambda e: (best[n - 1][e], e), default=0
    )
    if best[n - 1][final_e] >= INF:
        raise DecompositionError(
            f"{path!r} cannot be covered with <= {max_edges} bare edges"
        )
    pieces: list[Path] = []
    flags: list[bool] = []
    i, e = n - 1, final_e
    while i > 0:
        j, prev_e, is_base = choice[i][e]  # type: ignore[misc]
        pieces.append(path.subpath(j, i))
        flags.append(is_base)
        i, e = j, prev_e
    pieces.reverse()
    flags.reverse()
    return Decomposition(pieces=tuple(pieces), base_flags=tuple(flags))


def min_base_paths_decompose_reference(
    path: Path,
    base_set: BaseSet,
    max_edges: int,
) -> Decomposition:
    """Pre-kernel implementation of :func:`min_base_paths_decompose`.

    Allocates a :class:`Path` per DP probe.  Kept as the specification
    the equivalence tests check the kernel against.
    """
    if path.is_trivial:
        return Decomposition(pieces=(), base_flags=())
    if max_edges < 0:
        raise ValueError("max_edges must be >= 0")
    n = len(path.nodes)
    INF = n + 1
    best = [[INF] * (max_edges + 1) for _ in range(n)]
    choice: list[list[Optional[tuple[int, int, bool]]]] = [
        [None] * (max_edges + 1) for _ in range(n)
    ]
    best[0][0] = 0
    for i in range(1, n):
        for j in range(i):
            sub = path.subpath(j, i)
            is_base = base_set.is_base_path(sub)
            is_edge = sub.hops == 1 and base_set.graph.has_edge(*sub.nodes)
            if not is_base and not is_edge:
                continue
            for e in range(max_edges + 1):
                if best[j][e] >= INF:
                    continue
                if is_base and best[j][e] + 1 < best[i][e]:
                    best[i][e] = best[j][e] + 1
                    choice[i][e] = (j, e, True)
                if is_edge and e < max_edges and best[j][e] < best[i][e + 1]:
                    best[i][e + 1] = best[j][e]
                    choice[i][e + 1] = (j, e, False)
    final_e = min(
        range(max_edges + 1), key=lambda e: (best[n - 1][e], e), default=0
    )
    if best[n - 1][final_e] >= INF:
        raise DecompositionError(
            f"{path!r} cannot be covered with <= {max_edges} bare edges"
        )
    pieces: list[Path] = []
    flags: list[bool] = []
    i, e = n - 1, final_e
    while i > 0:
        j, prev_e, is_base = choice[i][e]  # type: ignore[misc]
        pieces.append(path.subpath(j, i))
        flags.append(is_base)
        i, e = j, prev_e
    pieces.reverse()
    flags.reverse()
    return Decomposition(pieces=tuple(pieces), base_flags=tuple(flags))


def concatenation_shortest_path(
    surviving_view,
    base_set: ExplicitBaseSet,
    source: Node,
    target: Node,
    allow_edges: bool = True,
) -> Decomposition:
    """Min-cost restoration route over the *surviving-base-paths graph*.

    Used when the base set is sparse (one path per pair, Theorem 3) so
    a given shortest path of ``G'`` may not decompose at all: instead,
    search the auxiliary graph whose arcs are surviving base paths
    (plus surviving raw edges when *allow_edges*), minimizing
    ``(true cost, piece count)`` lexicographically.

    Requires an enumerable (:class:`ExplicitBaseSet`) base set.
    Raises :class:`~repro.exceptions.NoPath` when no concatenation
    connects the endpoints.
    """
    # Index surviving base paths by their source.
    by_source: dict[Node, list[Path]] = {}
    for path in base_set.iter_all_paths():
        if path.is_valid_in(surviving_view):
            by_source.setdefault(path.source, []).append(path)

    graph = base_set.graph
    dist: dict[Node, tuple[float, int]] = {}
    via: dict[Node, tuple[Node, Path, bool]] = {}
    heap: AddressableHeap[Node] = AddressableHeap()
    heap.push(source, (0.0, 0))
    while heap:
        u, priority = heap.pop()
        if u in dist:
            continue
        dist[u] = priority  # type: ignore[assignment]
        if u == target:
            break
        cost_u, pieces_u = priority  # type: ignore[misc]
        explicit = by_source.get(u, [])
        moves: list[tuple[Path, bool]] = [(p, True) for p in explicit]
        already = {p for p in explicit if p.hops == 1}
        if surviving_view.has_node(u):
            for v, _ in surviving_view.adjacency(u):
                edge_path = Path([u, v])
                if edge_path in already:
                    continue
                is_base = base_set.is_base_path(edge_path)
                if is_base or allow_edges:
                    moves.append((edge_path, is_base))
        for move, is_base in moves:
            v = move.target
            if v in dist:
                continue
            candidate = (cost_u + move.cost(graph), pieces_u + 1)
            if heap.push_or_decrease(v, candidate):
                via[v] = (u, move, is_base)
    if target not in dist:
        raise NoPath(
            f"no concatenation of surviving base paths joins {source!r} to {target!r}"
        )
    pieces: list[Path] = []
    flags: list[bool] = []
    node = target
    while node != source:
        prev, move, is_base = via[node]
        pieces.append(move)
        flags.append(is_base)
        node = prev
    pieces.reverse()
    flags.reverse()
    return Decomposition(pieces=tuple(pieces), base_flags=tuple(flags))
