"""Run the complete evaluation: every table and figure, in paper order.

``python -m repro.experiments.runner [--scale small] [--out results.txt]``
"""

from __future__ import annotations

import argparse
from pathlib import Path as FilePath

from ..obs import TRACER, activate_from_args, add_obs_arguments, bench_observability
from ..kernels import add_kernel_argument, apply_kernel
from ..perf import COUNTERS
from ..policies import (
    active_failure_model_name,
    active_policy_name,
    add_policy_arguments,
    apply_policy_arguments,
)
from . import figure10, table1, table2, table3, theory_figures
from .bench import (
    StageTimer,
    add_repair_fallback_argument,
    apply_repair_fallback,
    write_bench_json,
)
from .networks import cached_suite, scales


def run_all(
    scale: str = "small",
    seed: int = 1,
    ilm: str = "per-pair",
    jobs: int = 1,
    timer: StageTimer | None = None,
) -> str:
    """Run every table and figure in paper order; returns the report.

    With *timer* given, each section's wall-clock lands in a stage of
    its own — the consolidated ``BENCH_runner.json`` is built from it.
    """
    if timer is None:
        timer = StageTimer(prefix="runner")
    sections = []
    for name, stage, runner in (
        ("Table 1", "table1", lambda: table1.render(table1.collect(cached_suite(scale=scale, seed=seed)))),
        ("Table 2", "table2", lambda: table2.render(table2.run(scale=scale, seed=seed, ilm_accounting=ilm, jobs=jobs))),
        ("Table 3", "table3", lambda: table3.render(table3.run(scale=scale, seed=seed, jobs=jobs))),
        ("Figure 10", "figure10", lambda: figure10.render(figure10.run(scale=scale, seed=seed, jobs=jobs))),
        ("Figures 2-5", "theory_figures", lambda: theory_figures.render(theory_figures.run())),
    ):
        with timer.stage(stage):
            body = runner()
        sections.append(f"==== {name} ({timer.as_dict()[stage]:.1f}s) ====\n{body}")
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> str:
    """CLI entry point; prints and returns the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=scales(), default="small")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", type=str, default=None)
    parser.add_argument("--ilm", choices=("per-pair", "per-link"), default="per-pair")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the experiment fan-outs (0 = auto)",
    )
    parser.add_argument(
        "--bench-json", type=str, default=None,
        help="path for the consolidated BENCH JSON "
             "(default results/BENCH_runner.json; '-' disables)",
    )
    add_repair_fallback_argument(parser)
    add_kernel_argument(parser)
    add_policy_arguments(parser)
    add_obs_arguments(parser)
    args = parser.parse_args(argv)
    apply_repair_fallback(args)  # before any worker fork
    apply_kernel(args)  # before any worker fork
    apply_policy_arguments(args)  # before any worker fork
    activate_from_args(args)
    timer = StageTimer(prefix="runner")
    before = COUNTERS.snapshot()
    with TRACER.span("runner", scale=args.scale, seed=args.seed):
        report = run_all(
            scale=args.scale,
            seed=args.seed,
            ilm=args.ilm,
            jobs=args.jobs,
            timer=timer,
        )
    print(report)
    if args.out:
        FilePath(args.out).write_text(report + "\n")
    if args.bench_json != "-":
        counters = COUNTERS.delta(before).as_dict()
        payload = {
            "name": "runner",
            "scale": args.scale,
            "seed": args.seed,
            "jobs": args.jobs,
            "policy": active_policy_name(),
            "failure_model": active_failure_model_name(),
            "ilm_accounting": args.ilm,
            "ilm_max_scenarios": table2.ILM_MAX_SCENARIOS,
            "wall_clock_s": round(timer.total(), 4),
            "sections": timer.as_dict(),
            "stages": timer.as_dict(),
            "counters": counters,
        }
        payload.update(bench_observability(args, counters))
        write_bench_json("runner", payload, path=args.bench_json)
    else:
        bench_observability(args)
    return report


if __name__ == "__main__":
    main()
