"""Run ledger — append-only history of every bench-emitting run.

``BENCH_<name>.json`` is a *snapshot*: one file per experiment, freely
overwritten, great for "what did the last run do" and useless for "is
this faster than every run before it".  The ledger is the *history*:
every call to :func:`~repro.experiments.bench.write_bench_json`
appends one manifest line to ``results/history/ledger.jsonl`` — git
sha, package version, the full policy header (``kernel_backend``,
``shm_enabled``, ``jobs``, ``tie_order``, ``repair_fallback``),
per-stage wall times, the merged work counters, and the run's memory
gauges.  ``BENCH_*.json`` thereby becomes a view over the ledger
rather than the only record, and ``python -m repro.obs trend`` can
exit-code a regression against *all* comparable history, not just one
hand-picked baseline file.

Format
------

One JSON object per line (JSONL), schema-tagged
``"repro.obs.ledger/1"``.  The envelope keys are pinned by
``tests/test_obs_ledger.py``::

    {"schema", "ts", "git_sha", "repro_version", "name", "config",
     "wall_clock_s", "stages", "counters", "memory", "bench_path"}

``config`` carries the comparability fields (see
:data:`COMPARABILITY_KEYS`); runs whose config differs do different
work and are never trended against each other.  The versioning policy
mirrors :mod:`repro.obs.events`: additive keys are free, envelope
changes bump the schema suffix.

Where it writes
---------------

The default ledger lives next to the bench output —
``<bench dir>/history/ledger.jsonl`` — so a run writing
``results/BENCH_table2.json`` appends to
``results/history/ledger.jsonl`` while a test writing into a tmp dir
keeps its history there too.  ``REPRO_LEDGER_PATH`` overrides the path
outright; ``REPRO_LEDGER=0`` disables appending (the test suite's
default, so invoking experiment CLIs never dirties the committed
history).  Appending is strictly best-effort: a ledger failure never
breaks the run that produced the result.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path
from typing import Any, Iterable, Optional, Union

#: Schema tag on (and required of) every ledger line.
LEDGER_SCHEMA = "repro.obs.ledger/1"

#: Config fields two runs must share before their numbers may be
#: trended against each other.  Mirrors the ``repro.obs diff``
#: comparability gate (policy fields change the work done); ``cases``
#: guards against workload drift inside one name/scale/seed.
COMPARABILITY_KEYS = (
    "name",
    "scale",
    "seed",
    "cases",
    "modes",
    "policy",
    "failure_model",
    "ilm_accounting",
    "tie_order",
    "repair_fallback",
    "shm_enabled",
    "kernel_backend",
    "jobs",
)

_GIT_SHA_CACHE: Optional[tuple[Optional[str]]] = None


def git_sha() -> Optional[str]:
    """The working tree's short commit sha, or None outside a repo.

    Cached per process — one subprocess spawn per run, not per bench
    emission.
    """
    global _GIT_SHA_CACHE
    if _GIT_SHA_CACHE is None:
        try:
            sha = subprocess.run(
                ["git", "rev-parse", "--short=12", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
            ).stdout.strip()
            _GIT_SHA_CACHE = (sha or None,)
        except Exception:
            _GIT_SHA_CACHE = (None,)
    return _GIT_SHA_CACHE[0]


def ledger_enabled() -> bool:
    """False iff ``REPRO_LEDGER=0`` (the kill switch tests default to)."""
    return os.environ.get("REPRO_LEDGER", "1") != "0"


def ledger_path_for(bench_path: Optional[Union[str, Path]] = None) -> Path:
    """Where the ledger for a bench output at *bench_path* lives.

    ``REPRO_LEDGER_PATH`` wins; otherwise ``history/ledger.jsonl`` next
    to the bench file (or under ``results/`` in the cwd when no bench
    path is known).
    """
    override = os.environ.get("REPRO_LEDGER_PATH")
    if override:
        return Path(override)
    if bench_path is not None:
        return Path(bench_path).parent / "history" / "ledger.jsonl"
    return Path.cwd() / "results" / "history" / "ledger.jsonl"


def make_entry(
    name: str,
    payload: dict[str, Any],
    bench_path: Optional[Union[str, Path]] = None,
) -> dict[str, Any]:
    """Build one ledger manifest from a ``BENCH_*.json`` payload.

    Pure function of its inputs except for the timestamp and sha stamp;
    never mutates *payload*.
    """
    config = {
        key: payload[key]
        for key in COMPARABILITY_KEYS
        if key != "name" and key in payload
    }
    return {
        "schema": LEDGER_SCHEMA,
        "ts": round(time.time(), 3),
        "git_sha": payload.get("git_sha", git_sha()),
        "repro_version": payload.get("repro_version"),
        "name": name,
        "config": config,
        "wall_clock_s": payload.get("wall_clock_s"),
        "stages": payload.get("stages", {}),
        "counters": payload.get("counters", {}),
        "memory": payload.get("memory", {}),
        "bench_path": str(bench_path) if bench_path is not None else None,
    }


def append_entry(
    entry: dict[str, Any], path: Union[str, Path]
) -> Path:
    """Append one manifest line to the ledger at *path* (created on
    demand, parents included); returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    with out.open("a") as fh:
        fh.write(line + "\n")
    return out


def record_run(
    name: str,
    payload: dict[str, Any],
    bench_path: Optional[Union[str, Path]] = None,
) -> Optional[Path]:
    """The :func:`~repro.experiments.bench.write_bench_json` hook.

    Appends a manifest for *payload* to the run's ledger unless
    disabled; best-effort — any failure is swallowed (the ledger is
    observability, never a reason to lose a result).
    """
    if not ledger_enabled():
        return None
    try:
        path = ledger_path_for(bench_path)
        return append_entry(make_entry(name, payload, bench_path), path)
    except Exception:
        return None


def read_entries(
    source: Union[str, Path, Iterable[str]]
) -> list[dict[str, Any]]:
    """Parse ledger manifests from a path or an iterable of lines.

    Raises :class:`ValueError` on a foreign schema tag so a future
    format fails loudly instead of trending garbage.
    """
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    else:
        lines = source
    entries = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        schema = entry.get("schema")
        if schema != LEDGER_SCHEMA:
            raise ValueError(
                f"unsupported ledger schema {schema!r} "
                f"(expected {LEDGER_SCHEMA!r})"
            )
        entries.append(entry)
    return entries


def comparability_key(entry: dict[str, Any]) -> tuple:
    """The tuple two entries must share to be trend-comparable.

    Built from :data:`COMPARABILITY_KEYS`; a key absent from the
    entry's config contributes ``None`` (files predating a field stay
    comparable with each other, as in ``repro.obs diff``).
    """
    config = entry.get("config", {})
    values: list[Any] = [entry.get("name")]
    for key in COMPARABILITY_KEYS:
        if key == "name":
            continue
        value = config.get(key)
        if isinstance(value, list):
            value = tuple(value)
        values.append(value)
    return tuple(values)


def comparable_history(
    entries: list[dict[str, Any]], latest: dict[str, Any]
) -> list[dict[str, Any]]:
    """Entries (excluding *latest* itself) comparable with *latest*,
    in ledger (append) order."""
    key = comparability_key(latest)
    return [
        e for e in entries
        if e is not latest and comparability_key(e) == key
    ]
