"""Tests for the MPLS simulator: labels, tables, LSPs, forwarding."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    InvalidPath,
    LabelNotFound,
    LabelSpaceExhausted,
    LSPNotFound,
    SignalingError,
)
from repro.graph.graph import Graph
from repro.graph.paths import Path
from repro.mpls.fec import FecEntry, FecMap
from repro.mpls.ilm import IlmEntry, IncomingLabelMap
from repro.mpls.labels import MIN_LABEL, LabelAllocator
from repro.mpls.network import ForwardingStatus, MplsNetwork
from repro.mpls.packet import Packet


class TestLabelAllocator:
    def test_allocates_from_min(self):
        alloc = LabelAllocator()
        assert alloc.allocate() == MIN_LABEL

    def test_unique_until_release(self):
        alloc = LabelAllocator()
        labels = {alloc.allocate() for _ in range(100)}
        assert len(labels) == 100

    def test_release_and_reuse(self):
        alloc = LabelAllocator()
        label = alloc.allocate()
        alloc.release(label)
        assert alloc.allocate() == label

    def test_release_unallocated_raises(self):
        with pytest.raises(ValueError):
            LabelAllocator().release(MIN_LABEL)

    def test_exhaustion(self):
        alloc = LabelAllocator(max_label=MIN_LABEL + 1)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(LabelSpaceExhausted):
            alloc.allocate()

    def test_in_use_and_capacity(self):
        alloc = LabelAllocator(max_label=MIN_LABEL + 9)
        assert alloc.capacity == 10
        a = alloc.allocate()
        assert alloc.in_use == 1
        assert alloc.is_allocated(a)


class TestIlm:
    def test_install_lookup_remove(self):
        ilm = IncomingLabelMap()
        entry = IlmEntry(push=(17,), next_hop="b")
        ilm.install(16, entry)
        assert ilm.lookup(16) is entry
        assert 16 in ilm
        ilm.remove(16)
        assert 16 not in ilm

    def test_lookup_missing_raises(self):
        with pytest.raises(LabelNotFound):
            IncomingLabelMap().lookup(16)

    def test_remove_missing_raises(self):
        with pytest.raises(LabelNotFound):
            IncomingLabelMap().remove(16)

    def test_size_and_high_water(self):
        ilm = IncomingLabelMap()
        ilm.install(16, IlmEntry())
        ilm.install(17, IlmEntry())
        ilm.remove(16)
        assert ilm.size() == 1
        assert ilm.high_water_mark == 2

    def test_entry_kind_properties(self):
        assert IlmEntry(push=(17,), next_hop="b").is_swap
        assert IlmEntry().is_pop
        assert not IlmEntry(push=(1, 2), next_hop="b").is_swap

    def test_entries_for_lsp(self):
        ilm = IncomingLabelMap()
        ilm.install(16, IlmEntry(lsp_id=1))
        ilm.install(17, IlmEntry(lsp_id=2))
        assert ilm.entries_for_lsp(1) == [16]


class TestFecMap:
    def test_install_and_lookup(self):
        fec = FecMap()
        fec.install(FecEntry("d", (1,)))
        assert fec.lookup("d").lsp_ids == (1,)
        assert fec.lookup("missing") is None

    def test_override_and_restore(self):
        fec = FecMap()
        fec.install(FecEntry("d", (1,)))
        fec.override(FecEntry("d", (2, 3), restoration=True))
        assert fec.lookup("d").lsp_ids == (2, 3)
        assert fec.overridden_destinations() == ["d"]
        fec.restore("d")
        assert fec.lookup("d").lsp_ids == (1,)

    def test_double_override_restores_original(self):
        fec = FecMap()
        fec.install(FecEntry("d", (1,)))
        fec.override(FecEntry("d", (2,), restoration=True))
        fec.override(FecEntry("d", (3,), restoration=True))
        fec.restore("d")
        assert fec.lookup("d").lsp_ids == (1,)

    def test_restore_without_override_is_noop(self):
        fec = FecMap()
        fec.install(FecEntry("d", (1,)))
        fec.restore("d")
        assert fec.lookup("d").lsp_ids == (1,)

    def test_restore_all(self):
        fec = FecMap()
        fec.install(FecEntry("d1", (1,)))
        fec.install(FecEntry("d2", (2,)))
        fec.override(FecEntry("d1", (9,), restoration=True))
        fec.override(FecEntry("d2", (9,), restoration=True))
        fec.restore_all()
        assert fec.lookup("d1").lsp_ids == (1,)
        assert fec.lookup("d2").lsp_ids == (2,)


class TestPacket:
    def test_stack_discipline(self):
        p = Packet(destination="d")
        p.push(16)
        p.push(17)
        assert p.top_label == 17
        assert p.pop() == 17
        assert p.top_label == 16

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            Packet(destination="d").pop()

    def test_routers_visited_collapses_repeats(self):
        p = Packet(destination="d")
        p.record("a")
        p.record("a")
        p.record("b")
        assert p.routers_visited() == ["a", "b"]

    def test_max_stack_depth(self):
        p = Packet(destination="d")
        p.push(1)
        p.push(2)
        p.record("a")
        p.pop()
        p.record("b")
        assert p.max_stack_depth == 2


@pytest.fixture
def net():
    """Line 1-2-3-4 plus detour 2-5-3."""
    g = Graph.from_edges([(1, 2), (2, 3), (3, 4), (2, 5), (5, 3)])
    return MplsNetwork(g)


class TestProvisioning:
    def test_provision_installs_ilm_entries(self, net):
        lsp = net.provision_lsp(Path([1, 2, 3, 4]))
        assert set(lsp.labels) == {1, 2, 3, 4}
        for router in (1, 2, 3, 4):
            assert lsp.labels[router] in net.routers[router].ilm

    def test_php_skips_tail_label(self, net):
        lsp = net.provision_lsp(Path([1, 2, 3]), php=True)
        assert 3 not in lsp.labels
        assert net.routers[3].ilm.size() == 0

    def test_trivial_path_rejected(self, net):
        with pytest.raises(InvalidPath):
            net.provision_lsp(Path([1]))

    def test_provision_over_failed_link_rejected(self, net):
        net.fail_link(2, 3)
        with pytest.raises(SignalingError):
            net.provision_lsp(Path([1, 2, 3]))

    def test_teardown_releases_everything(self, net):
        lsp = net.provision_lsp(Path([1, 2, 3]))
        sizes_before = net.total_ilm_size()
        assert sizes_before == 3
        net.teardown_lsp(lsp.lsp_id)
        assert net.total_ilm_size() == 0
        assert net.routers[1].allocator.in_use == 0
        with pytest.raises(LSPNotFound):
            net.get_lsp(lsp.lsp_id)

    def test_lsps_between(self, net):
        lsp = net.provision_lsp(Path([1, 2, 3]))
        assert net.lsps_between(1, 3) == [lsp]
        assert net.lsps_between(3, 1) == []

    def test_find_lsp(self, net):
        lsp = net.provision_lsp(Path([1, 2, 3]))
        assert net.find_lsp(Path([1, 2, 3])) is lsp
        assert net.find_lsp(Path([1, 2, 5])) is None

    def test_signaling_ledger_records_setup(self, net):
        before = net.ledger.total_messages
        net.provision_lsp(Path([1, 2, 3, 4]))
        assert net.ledger.total_messages == before + 6  # 2 * 3 hops


class TestForwarding:
    def test_delivery_along_lsp(self, net):
        lsp = net.provision_lsp(Path([1, 2, 3, 4]))
        net.set_fec(1, 4, [lsp.lsp_id])
        result = net.inject(1, 4)
        assert result.delivered
        assert result.walk == [1, 2, 3, 4]

    def test_delivery_with_php(self, net):
        lsp = net.provision_lsp(Path([1, 2, 3, 4]), php=True)
        net.set_fec(1, 4, [lsp.lsp_id])
        result = net.inject(1, 4)
        assert result.delivered
        assert result.walk == [1, 2, 3, 4]

    def test_concatenation_via_stack(self, net):
        a = net.provision_lsp(Path([1, 2, 5]))
        b = net.provision_lsp(Path([5, 3, 4]))
        net.set_fec(1, 4, [a.lsp_id, b.lsp_id])
        result = net.inject(1, 4)
        assert result.delivered
        assert result.walk == [1, 2, 5, 3, 4]
        assert result.packet.max_stack_depth == 2

    def test_send_on_lsps(self, net):
        a = net.provision_lsp(Path([1, 2, 5]))
        b = net.provision_lsp(Path([5, 3, 4]))
        result = net.send_on_lsps([a.lsp_id, b.lsp_id])
        assert result.delivered
        assert result.walk == [1, 2, 5, 3, 4]

    def test_drop_on_failed_link(self, net):
        lsp = net.provision_lsp(Path([1, 2, 3, 4]))
        net.set_fec(1, 4, [lsp.lsp_id])
        net.fail_link(2, 3)
        result = net.inject(1, 4)
        assert result.status is ForwardingStatus.DROPPED_LINK_DOWN
        assert result.drop_router == 2

    def test_drop_on_failed_router(self, net):
        lsp = net.provision_lsp(Path([1, 2, 3, 4]))
        net.set_fec(1, 4, [lsp.lsp_id])
        net.fail_router(3)
        result = net.inject(1, 4)
        assert result.status is ForwardingStatus.DROPPED_ROUTER_DOWN

    def test_drop_without_fec_entry(self, net):
        result = net.inject(1, 4)
        assert result.status is ForwardingStatus.DROPPED_NO_FEC_ENTRY

    def test_drop_without_ilm_entry(self, net):
        lsp = net.provision_lsp(Path([1, 2, 3]))
        net.set_fec(1, 3, [lsp.lsp_id])
        net.routers[2].ilm.remove(lsp.labels[2])
        result = net.inject(1, 3)
        assert result.status is ForwardingStatus.DROPPED_NO_ILM_ENTRY

    def test_ttl_expiry(self, net):
        lsp = net.provision_lsp(Path([1, 2, 3, 4]))
        net.set_fec(1, 4, [lsp.lsp_id])
        result = net.inject(1, 4, ttl=2)
        assert result.status is ForwardingStatus.DROPPED_TTL_EXPIRED

    def test_self_delivery(self, net):
        result = net.inject(1, 1)
        assert result.delivered
        assert result.walk == [1]

    def test_loop_detection(self, net):
        # Hand-craft two swap entries that bounce a label between 1 and 2.
        net.routers[1].ilm.install(999, IlmEntry(push=(998,), next_hop=2))
        net.routers[2].ilm.install(998, IlmEntry(push=(999,), next_hop=1))
        packet_lsp = net.provision_lsp(Path([1, 2]))
        # Overwrite the FEC chain to start with the looping label.
        net.routers[1].fec.install(FecEntry(4, (packet_lsp.lsp_id,)))
        net.routers[1].ilm.install(
            packet_lsp.labels[1], IlmEntry(push=(998,), next_hop=2)
        )
        result = net.inject(1, 4)
        assert result.status is ForwardingStatus.DROPPED_LOOP


class TestFecValidation:
    def test_chain_must_be_contiguous(self, net):
        a = net.provision_lsp(Path([1, 2]))
        b = net.provision_lsp(Path([5, 3]))
        with pytest.raises(InvalidPath):
            net.set_fec(1, 3, [a.lsp_id, b.lsp_id])

    def test_chain_must_start_at_router(self, net):
        a = net.provision_lsp(Path([2, 3]))
        with pytest.raises(InvalidPath):
            net.set_fec(1, 3, [a.lsp_id])

    def test_chain_must_end_at_destination(self, net):
        a = net.provision_lsp(Path([1, 2]))
        with pytest.raises(InvalidPath):
            net.set_fec(1, 3, [a.lsp_id])

    def test_empty_chain_rejected(self, net):
        with pytest.raises(InvalidPath):
            net.set_fec(1, 3, [])

    def test_restoration_override_and_revert(self, net):
        primary = net.provision_lsp(Path([1, 2, 3, 4]))
        a = net.provision_lsp(Path([1, 2, 5]))
        b = net.provision_lsp(Path([5, 3, 4]))
        net.set_fec(1, 4, [primary.lsp_id])
        net.set_fec(1, 4, [a.lsp_id, b.lsp_id], restoration=True)
        net.fail_link(2, 3)
        assert net.inject(1, 4).delivered
        net.restore_link(2, 3)
        net.revert_fec(1, 4)
        assert net.inject(1, 4).walk == [1, 2, 3, 4]
