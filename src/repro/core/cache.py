"""Shared base-set / distance-oracle cache for the experiment pipeline.

Table 2, Table 3, Figure 10 and the benchmarks all evaluate the same
four topologies, and each of them used to rebuild the padded graph and
re-run identical Dijkstras from scratch.  This module gives every
consumer the *same* base-set object (and therefore the same warm
distance-oracle rows) for the same configuration.

Cache key: **graph identity** (the exact :class:`~repro.graph.graph.Graph`
object, held weakly so caching never extends a graph's lifetime) plus
the parameters that change what the base set answers — the padding
*seed*, *pad_scale*, *include_all_edges*, and the tie-break mode (the
class of base set: unique-choice padded vs. all-shortest-paths).
Graph identity is the right key because base sets are defined on a
specific object: two structurally equal graphs built separately get
separate entries, which is exactly what the deterministic experiment
suite wants (it shares topology *objects* via
:func:`repro.experiments.networks.cached_suite`).

Worker processes of the parallel runner each hold their own module-level
cache; per-worker warm-up happens naturally on first use (and is free
under ``fork`` start methods, which inherit the parent's warm cache).
"""

from __future__ import annotations

import weakref
from typing import Union

from ..graph.graph import DiGraph, Graph
from ..graph.incremental import SptCache
from .base_paths import AllShortestPathsBase, UniqueShortestPathsBase

#: graph -> {config key -> base set}.  Weak keys: dropping the last
#: strong reference to a graph evicts its base sets.
_CACHE: "weakref.WeakKeyDictionary[Graph, dict[tuple, Union[AllShortestPathsBase, UniqueShortestPathsBase]]]" = (
    weakref.WeakKeyDictionary()
)


def shared_unique_base(
    graph: Union[Graph, DiGraph],
    seed: int = 1,
    pad_scale: float = 1e-5,
    include_all_edges: bool = True,
) -> UniqueShortestPathsBase:
    """The process-wide :class:`UniqueShortestPathsBase` for this config.

    Repeated calls with the same graph object and parameters return the
    same instance, so its padded graph and oracle rows are computed at
    most once per process.
    """
    key = ("unique", seed, pad_scale, include_all_edges)
    per_graph = _CACHE.setdefault(graph, {})
    base = per_graph.get(key)
    if base is None:
        base = UniqueShortestPathsBase(
            graph, seed=seed, pad_scale=pad_scale, include_all_edges=include_all_edges
        )
        per_graph[key] = base
    return base  # type: ignore[return-value]


def shared_all_sp_base(
    graph: Union[Graph, DiGraph], include_all_edges: bool = True
) -> AllShortestPathsBase:
    """The process-wide :class:`AllShortestPathsBase` for this config."""
    key = ("all", include_all_edges)
    per_graph = _CACHE.setdefault(graph, {})
    base = per_graph.get(key)
    if base is None:
        base = AllShortestPathsBase(graph, include_all_edges=include_all_edges)
        per_graph[key] = base
    return base  # type: ignore[return-value]


#: graph -> {weighted flag -> SptCache}.  Separate from the base-set
#: cache because SPT caches exist for graphs that never get a base set
#: (e.g. the bypass searches of Table 3).
_SPT_CACHE: "weakref.WeakKeyDictionary[Graph, dict[bool, SptCache]]" = (
    weakref.WeakKeyDictionary()
)


def shared_spt_cache(graph: Graph, weighted: bool = True) -> SptCache:
    """The process-wide :class:`~repro.graph.incremental.SptCache`.

    Keyed by graph identity + weighted flag, so every failure case of an
    experiment repairs the *same* pre-failure rows instead of paying a
    fresh search.  Workers of the parallel runner build their own per
    process, exactly like the base-set cache.
    """
    per_graph = _SPT_CACHE.setdefault(graph, {})
    cache = per_graph.get(weighted)
    if cache is not None and cache.csr.source_version != getattr(
        graph, "version", None
    ):
        # Graph mutated since the snapshot: stale rows are wrong answers.
        cache = None
    if cache is None:
        cache = SptCache(graph, weighted=weighted)
        per_graph[weighted] = cache
    return cache


def cache_stats() -> dict[str, int]:
    """Entry counts, for tests and BENCH output."""
    return {
        "graphs": len(_CACHE),
        "base_sets": sum(len(v) for v in _CACHE.values()),
        "spt_caches": sum(len(v) for v in _SPT_CACHE.values()),
    }


def clear_cache() -> None:
    """Drop every cached base set and SPT cache (test isolation)."""
    _CACHE.clear()
    _SPT_CACHE.clear()
