#!/usr/bin/env python
"""Quickstart: restore an MPLS path by concatenation in ~40 lines.

Builds a small network, provisions base LSPs, breaks a link, and shows
source-router RBPC re-routing packets by pushing a two-label stack —
the paper's Figure 6 scenario, end to end.

Run:  python examples/quickstart.py
"""

from repro.core import SourceRouterRbpc, UniqueShortestPathsBase, provision_base_set
from repro.graph import Graph
from repro.mpls import MplsNetwork

# A small metro ring with a shortcut: 5 routers.
graph = Graph.from_edges(
    [
        ("sea", "pdx"),
        ("pdx", "sfo"),
        ("sfo", "lax"),
        ("lax", "den"),
        ("den", "sea"),
        ("pdx", "den"),  # shortcut
    ]
)

net = MplsNetwork(graph)
base = UniqueShortestPathsBase(graph)

# Provision base LSPs (one per ordered pair — 20 LSPs on 5 routers).
registry = provision_base_set(net, base)
print(f"provisioned {len(registry)} base LSPs; "
      f"largest ILM has {net.max_ilm_size()} entries")

# Steady state: traffic sea -> lax rides the shortest path.
primary = base.path_for("sea", "lax")
net.set_fec("sea", "lax", [registry[primary]])
result = net.inject("sea", "lax")
print(f"primary route: {' -> '.join(result.walk)}  ({result.status.name})")

# A link on the path fails: packets black-hole.
failed = list(primary.edges())[0]
net.fail_link(*failed)
result = net.inject("sea", "lax")
print(f"after failing {failed}: {result.status.name} at {result.drop_router}")

# Source-router RBPC: one FEC rewrite, zero signaling messages.
messages_before = net.ledger.total_messages
scheme = SourceRouterRbpc(net, base, registry)
action = scheme.restore("sea", "lax")
print(
    f"restored with {action.decomposition.num_pieces} concatenated base LSPs "
    f"({net.ledger.total_messages - messages_before} signaling messages sent)"
)
result = net.inject("sea", "lax")
print(
    f"restored route: {' -> '.join(result.walk)}  "
    f"(max label-stack depth {result.packet.max_stack_depth})"
)

# The link heals: revert the single FEC entry.
net.restore_link(*failed)
scheme.recover("sea", "lax")
result = net.inject("sea", "lax")
print(f"recovered route: {' -> '.join(result.walk)}")
