"""Smoke tests for the experiment command-line entry points.

Each table/figure module is a deliverable CLI; these tests invoke the
``main`` functions at tiny scale and assert the reports carry the
paper-shaped content.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import ablation, figure10, runner, table1, table2, table3, theory_figures


def test_table1_main(capsys, tmp_path):
    bench = tmp_path / "BENCH_table1.json"
    report = table1.main(["--scale", "tiny", "--bench-json", str(bench)])
    assert "Table 1" in report
    assert "ISP" in report and "AS Graph" in report
    assert capsys.readouterr().out.strip()
    payload = json.loads(bench.read_text())
    assert payload["name"] == "table1"
    assert set(payload["stages"]) == {"topologies", "stats", "render"}
    assert "counters" in payload and "rates" in payload


def test_table2_main_single_mode():
    report = table2.main(["--scale", "tiny", "--modes", "link"])
    assert "After one link failure" in report
    assert "ISP, Weighted" in report
    assert "paper" in report  # side-by-side column


def test_table2_rejects_bad_ilm_mode():
    with pytest.raises(SystemExit):
        table2.main(["--ilm", "per-galaxy"])


def test_table2_evaluate_rejects_bad_accounting():
    from repro.experiments.networks import suite

    with pytest.raises(ValueError):
        table2.evaluate_network(
            suite(scale="tiny")[0], ilm_accounting="per-galaxy"
        )


def test_table3_main():
    report = table3.main(["--scale", "tiny"])
    assert "Table 3" in report
    assert "Bypass hops" in report


def test_figure10_main():
    report = figure10.main(["--scale", "tiny"])
    assert "edge-bypass" in report and "end-route" in report
    assert "= 1.00" in report


def test_theory_figures_main():
    report = theory_figures.main([])
    assert "MISMATCH" not in report
    assert report.count("OK") >= 16


def test_runner_writes_output(tmp_path):
    out = tmp_path / "report.txt"
    bench = tmp_path / "BENCH_runner.json"
    report = runner.main(
        ["--scale", "tiny", "--out", str(out), "--bench-json", str(bench)]
    )
    assert out.exists()
    for section in ("Table 1", "Table 2", "Table 3", "Figure 10", "Figures 2-5"):
        assert section in report
    payload = json.loads(bench.read_text())
    assert payload["name"] == "runner"
    assert set(payload["sections"]) == {
        "table1", "table2", "table3", "figure10", "theory_figures",
    }
    assert payload["wall_clock_s"] >= sum(payload["sections"].values()) * 0.99


def test_table2_obs_records_trace_and_metrics(tmp_path):
    bench = tmp_path / "BENCH_table2.json"
    trace = tmp_path / "trace.jsonl"
    table2.main(
        [
            "--scale", "tiny", "--modes", "link",
            "--bench-json", str(bench),
            "--obs", "--trace-jsonl", str(trace),
        ]
    )
    payload = json.loads(bench.read_text())
    metrics = payload["metrics"]
    assert metrics["histograms"]["table2.path_stretch"]["count"] == payload["cases"]
    assert metrics["histograms"]["table2.pc_length"]["count"] > 0
    records = [json.loads(line) for line in trace.read_text().splitlines()]
    assert records[0]["name"] == "table2" and records[0]["parent"] is None
    names = {r["name"] for r in records}
    assert {"table2.cases", "table2.render"} <= names


def test_obs_flags_default_off(tmp_path):
    bench = tmp_path / "BENCH_table3.json"
    table3.main(["--scale", "tiny", "--max-links", "5", "--bench-json", str(bench)])
    payload = json.loads(bench.read_text())
    assert "metrics" not in payload  # nothing recorded without --obs
    assert "rates" in payload  # derived rates are always published


def test_ablation_main():
    report = ablation.main(["--size", "40", "--pairs", "6"])
    assert "Decomposition" in report
    assert "RBPC" in report
    assert "Suurballe" in report
