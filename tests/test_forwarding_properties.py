"""Property tests of the forwarding engine: every packet terminates.

The data plane must never hang, crash, or mis-report, no matter what
(mis)configuration it is given: random label stacks, random failures,
torn-down LSPs mid-chain.  The status taxonomy must stay truthful —
``DELIVERED`` iff the packet really stands at its destination with an
empty stack.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.base_paths import UniqueShortestPathsBase, provision_base_set
from repro.graph.graph import Graph
from repro.mpls.ilm import IlmEntry
from repro.mpls.network import ForwardingStatus, MplsNetwork
from repro.topology.isp import generate_isp_topology


@st.composite
def random_mpls_worlds(draw):
    """A small ISP with random LSPs chained into random FEC entries."""
    seed = draw(st.integers(0, 50))
    graph = generate_isp_topology(n=20, seed=seed)
    net = MplsNetwork(graph)
    base = UniqueShortestPathsBase(graph)
    nodes = sorted(graph.nodes, key=repr)
    rng = random.Random(draw(st.integers(0, 10_000)))

    lsp_ids = []
    for _ in range(draw(st.integers(1, 6))):
        s, t = rng.sample(nodes, 2)
        path = base.path_for(s, t)
        if path.hops >= 1:
            lsp_ids.append(net.provision_lsp(path, php=rng.random() < 0.3).lsp_id)

    # Random (possibly invalid) FEC chains: set_fec validates, so build
    # only valid chains but allow later teardowns to invalidate them.
    for lsp_id in lsp_ids:
        lsp = net.get_lsp(lsp_id)
        try:
            net.set_fec(lsp.head, lsp.tail, [lsp_id])
        except Exception:
            pass

    # Random failures and teardowns.
    for _ in range(draw(st.integers(0, 3))):
        u, v = rng.choice(sorted(graph.edges(), key=repr))
        net.fail_link(u, v)
    if lsp_ids and rng.random() < 0.4:
        victim = rng.choice(lsp_ids)
        net.teardown_lsp(victim)

    return net, nodes, rng


@settings(max_examples=40, deadline=None)
@given(random_mpls_worlds())
def test_every_injection_terminates_with_definite_status(world):
    net, nodes, rng = world
    for _ in range(10):
        s, t = rng.sample(nodes, 2)
        result = net.inject(s, t)
        assert isinstance(result.status, ForwardingStatus)
        if result.delivered:
            assert result.walk[-1] == t
            assert result.packet.label_stack == []
        else:
            assert result.drop_router is not None


@settings(max_examples=25, deadline=None)
@given(random_mpls_worlds(), st.integers(0, 2**20 - 1))
def test_garbage_label_stacks_never_crash(world, label):
    net, nodes, rng = world
    s, t = rng.sample(nodes, 2)
    result = net.send_with_stack(s, [label], t)
    assert isinstance(result.status, ForwardingStatus)


def test_adversarial_ilm_rewiring_is_loop_safe():
    """Randomly rewired swap entries must hit the loop/TTL guards, not hang."""
    graph = generate_isp_topology(n=15, seed=3)
    net = MplsNetwork(graph)
    base = UniqueShortestPathsBase(graph)
    registry = provision_base_set(net, base)
    rng = random.Random(7)
    nodes = sorted(graph.nodes, key=repr)
    # Corrupt half the ILM entries to point at random neighbors/labels.
    for name in nodes:
        router = net.routers[name]
        for label in list(router.ilm.labels()):
            if rng.random() < 0.5:
                neighbor = rng.choice(sorted(graph.neighbors(name), key=repr))
                router.ilm.install(
                    label,
                    IlmEntry(push=(rng.randrange(16, 4000),), next_hop=neighbor),
                )
    terminal = {
        ForwardingStatus.DELIVERED,
        ForwardingStatus.DROPPED_LOOP,
        ForwardingStatus.DROPPED_TTL_EXPIRED,
        ForwardingStatus.DROPPED_NO_ILM_ENTRY,
        ForwardingStatus.DROPPED_NO_FEC_ENTRY,
        ForwardingStatus.DROPPED_LINK_DOWN,
        ForwardingStatus.DROPPED_ROUTER_DOWN,
    }
    for path, lsp_id in list(registry.items())[:40]:
        result = net.send_on_lsps([lsp_id])
        assert result.status in terminal


def test_delivery_status_is_never_false_positive():
    """DELIVERED must mean standing at the IP destination, stack empty."""
    from repro.graph.paths import Path

    graph = Graph.from_edges([(1, 2), (2, 3), (1, 3)])
    net = MplsNetwork(graph)
    lsp = net.provision_lsp(Path([1, 2, 3]))
    # Send to a *different* IP destination than the LSP tail.
    result = net.send_on_lsps([lsp.lsp_id], destination=1)
    assert not result.delivered
    assert result.status is ForwardingStatus.DROPPED_NO_FEC_ENTRY
