"""Parallel experiment fan-out — chunked failure cases over processes.

The experiments are embarrassingly parallel across demand pairs (and,
for Table 3, across links): each unit rebuilds nothing and mutates
nothing, so the only engineering is in keeping the output *bit-identical*
to the sequential run:

* **Work references, not work payloads.**  A worker receives
  ``(scale, seed, network index, mode, chunk bounds)`` — never a graph.
  It rebuilds the deterministic topology via
  :func:`~repro.experiments.networks.cached_suite` (cached per process,
  and inherited for free under ``fork`` start methods) and takes its
  base set from the shared cache (:mod:`repro.core.cache`), so oracle
  rows warm up once per worker and amortize across its chunks.
* **Deterministic ordering.**  Chunks are keyed by their start index;
  the parent reassembles results in index order, so the concatenated
  case list is exactly the sequential one and every downstream
  aggregate (metrics averages, histogram buckets) is byte-identical.
* **Counter fan-in.**  Each chunk returns the deltas of the global
  :data:`~repro.perf.COUNTERS` *and* of the metrics registry
  (:data:`repro.obs.METRICS`) it accumulated; the parent merges both,
  so ``BENCH_*.json`` totals include work done in workers and
  histograms are jobs-invariant.

``--jobs 1`` (the default everywhere) bypasses this module entirely and
runs the plain sequential loops; ``--jobs 0`` means "auto" —
``min(cpu_count, 8)``.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Callable, Iterator, Optional

from ..obs.metrics import METRICS
from ..perf import COUNTERS


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``--jobs`` value: 0 means auto, otherwise as given."""
    if jobs < 0:
        raise ValueError(f"--jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return min(os.cpu_count() or 1, 8)
    return jobs


def make_executor(jobs: int) -> Optional[ProcessPoolExecutor]:
    """A process pool for *jobs* workers, or None when sequential."""
    jobs = resolve_jobs(jobs)
    if jobs <= 1:
        return None
    return ProcessPoolExecutor(max_workers=jobs)


def chunk_bounds(n_items: int, jobs: int) -> Iterator[tuple[int, int]]:
    """Deterministic ``(start, end)`` chunking of ``range(n_items)``.

    Four chunks per worker balances straggler smoothing against
    per-chunk dispatch overhead.
    """
    if n_items <= 0:
        return
    per_chunk = max(1, -(-n_items // (max(1, jobs) * 4)))
    for start in range(0, n_items, per_chunk):
        yield start, min(start + per_chunk, n_items)


def run_chunked(
    executor: Executor,
    worker: Callable[..., tuple[list, dict, dict]],
    common_args: tuple,
    n_items: int,
    jobs: int,
) -> list:
    """Fan ``worker(*common_args, start, end)`` out over chunks.

    The worker returns ``(items, counter_delta, metrics_delta)``; this
    reassembles the item lists in chunk order (sequential-identical)
    and merges every delta into the parent's :data:`COUNTERS` and
    :data:`METRICS`.
    """
    futures = {
        executor.submit(worker, *common_args, start, end): start
        for start, end in chunk_bounds(n_items, jobs)
    }
    by_start: dict[int, list] = {}
    for future, start in futures.items():
        items, delta, metrics_delta = future.result()
        by_start[start] = items
        COUNTERS.merge(delta)
        METRICS.merge(metrics_delta)
    ordered: list = []
    for start in sorted(by_start):
        ordered.extend(by_start[start])
    return ordered


# -- worker entry points ------------------------------------------------------
#
# Top-level functions (picklable under spawn), importing experiment
# modules lazily to dodge the circular import (experiments import this
# module for their --jobs plumbing).


def _network(scale: str, seed: int, index: int):
    from .networks import cached_suite

    return cached_suite(scale=scale, seed=seed)[index]


def table2_case_chunk(
    scale: str, seed: int, index: int, mode: str, start: int, end: int
) -> tuple[list, dict, dict]:
    """Evaluate the failure cases of demand pairs ``[start:end)``."""
    from ..core.cache import shared_unique_base
    from ..failures.sampler import cases_for_pair, sample_pairs
    from .table2 import run_case

    before = COUNTERS.snapshot()
    m_before = METRICS.snapshot()
    network = _network(scale, seed, index)
    graph = network.graph
    base = shared_unique_base(graph)
    pairs = sample_pairs(graph, network.sample_pairs, seed=seed)
    results = []
    for pair in pairs[start:end]:
        primary = base.path_for(*pair)
        for case in cases_for_pair(pair, primary, mode):
            results.append(run_case(graph, base, case, network.weighted))
    return results, COUNTERS.delta(before).as_dict(), METRICS.delta(m_before)


def table3_bypass_chunk(
    scale: str, seed: int, index: int, start: int, end: int
) -> tuple[list, dict, dict]:
    """Bypass hop counts (None for bridges) of links ``[start:end)``."""
    from ..core.local_restoration import bypass_path
    from ..exceptions import NoRestorationPath

    before = COUNTERS.snapshot()
    m_before = METRICS.snapshot()
    network = _network(scale, seed, index)
    graph = network.graph
    edges = list(graph.edges())[start:end]
    hops: list[Optional[int]] = []
    for u, v in edges:
        try:
            hops.append(bypass_path(graph, u, v, weighted=network.weighted).hops)
        except NoRestorationPath:
            hops.append(None)
    return hops, COUNTERS.delta(before).as_dict(), METRICS.delta(m_before)


def figure10_stretch_chunk(
    scale: str, seed: int, start: int, end: int
) -> tuple[list, dict, dict]:
    """Per-pair stretch sample tuples for demand pairs ``[start:end)``.

    Each item is ``(strategy name, cost stretch or None, hop stretch or
    None)`` in the exact order the sequential ``collect`` loop appends.
    """
    from .figure10 import collect_pair_samples

    before = COUNTERS.snapshot()
    m_before = METRICS.snapshot()
    network = _network(scale, seed, 0)  # Figure 10 runs on the weighted ISP
    from ..core.cache import shared_unique_base
    from ..failures.sampler import sample_pairs

    base = shared_unique_base(network.graph)
    pairs = sample_pairs(network.graph, network.sample_pairs, seed=seed)
    items: list[tuple[str, Optional[float], Optional[float]]] = []
    for pair in pairs[start:end]:
        items.extend(
            collect_pair_samples(network.graph, network.weighted, base, pair)
        )
    return items, COUNTERS.delta(before).as_dict(), METRICS.delta(m_before)
