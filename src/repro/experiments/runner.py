"""Run the complete evaluation: every table and figure, in paper order.

``python -m repro.experiments.runner [--scale small] [--out results.txt]``
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path as FilePath

from . import figure10, table1, table2, table3, theory_figures
from .networks import cached_suite, scales


def run_all(
    scale: str = "small", seed: int = 1, ilm: str = "per-pair", jobs: int = 1
) -> str:
    """Run every table and figure in paper order; returns the report."""
    sections = []
    for name, runner in (
        ("Table 1", lambda: table1.render(table1.collect(cached_suite(scale=scale, seed=seed)))),
        ("Table 2", lambda: table2.render(table2.run(scale=scale, seed=seed, ilm_accounting=ilm, jobs=jobs))),
        ("Table 3", lambda: table3.render(table3.run(scale=scale, seed=seed, jobs=jobs))),
        ("Figure 10", lambda: figure10.render(figure10.run(scale=scale, seed=seed, jobs=jobs))),
        ("Figures 2-5", lambda: theory_figures.render(theory_figures.run())),
    ):
        start = time.perf_counter()
        body = runner()
        elapsed = time.perf_counter() - start
        sections.append(f"==== {name} ({elapsed:.1f}s) ====\n{body}")
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> str:
    """CLI entry point; prints and returns the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=scales(), default="small")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", type=str, default=None)
    parser.add_argument("--ilm", choices=("per-pair", "per-link"), default="per-pair")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the experiment fan-outs (0 = auto)",
    )
    args = parser.parse_args(argv)
    report = run_all(scale=args.scale, seed=args.seed, ilm=args.ilm, jobs=args.jobs)
    print(report)
    if args.out:
        FilePath(args.out).write_text(report + "\n")
    return report


if __name__ == "__main__":
    main()
