"""Event-driven restoration orchestration: the hybrid scheme, live.

:class:`RestorationSimulation` runs the full control-plane story of
Section 4.2's hybrid scheme on a discrete-event clock:

1. a link fails at time *t* (data plane: packets crossing it drop);
2. at ``t + detection_delay`` the two adjacent routers detect it —
   each immediately applies **local RBPC** to every disrupted LSP it
   is upstream of, and originates a link-state advertisement;
3. the LSA floods hop by hop (``per_hop_delay`` each), every router
   updating its own LSDB (stale sequence numbers are ignored, so
   crossing floods are safe);
4. ``spf_delay`` after a demand's *source* learns of the failure, it
   applies **source-router RBPC**, swapping the interim local patch
   for a true shortest-path restoration;
5. link recovery reverses everything in the same pattern.

At any simulated instant, :meth:`inject` sends a real packet through
the MPLS tables as they exist *right then* — the tests assert the
exact delivery timeline (black hole → stretched local route →
shortest restored route → primary again).

Every control-plane action, LSA hop, ILM mutation, and packet
injection is recorded in a structured, versioned event log
(:attr:`RestorationSimulation.events`, a
:class:`~repro.obs.events.EventLog`) — the single timeline source of
truth, byte-deterministic for a given seed and schedule, serializable
with ``events.write_jsonl()`` and rendered by
``python -m repro.obs timeline``.  The legacy :attr:`timeline`
property derives the old ``TimelineEntry`` view from it.  When the
metrics registry (:data:`repro.obs.METRICS`) is enabled, the
simulation also feeds it restoration-latency and flood-convergence
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.base_paths import BaseSet
from ..core.local_restoration import LocalRbpc, LocalStrategy, upstream_router
from ..core.restoration import SourceRouterRbpc
from ..exceptions import NoRestorationPath
from ..graph.graph import Edge, Node, edge_key
from ..graph.paths import Path
from ..mpls.network import ForwardingResult, MplsNetwork
from ..obs.events import EventLog
from ..obs.metrics import DEPTH_EDGES, METRICS
from ..routing.flooding import FloodingModel
from ..routing.lsdb import LinkStateAd, LinkStateDatabase
from ..routing.spf import SpfRouter
from .event_queue import EventQueue

#: Event kinds that constitute the legacy control-plane timeline (the
#: :attr:`RestorationSimulation.timeline` view).  Data-plane probes
#: (``delivery``), flood propagation (``lsa-hop``) and table mutations
#: (``ilm-install``/``ilm-remove``) are part of the event log only.
CONTROL_PLANE_KINDS = frozenset(
    {
        "link-down",
        "link-up",
        "detected",
        "local-patch",
        "local-patch-failed",
        "local-revert",
        "source-restore",
        "source-restore-failed",
        "source-recover",
    }
)


@dataclass(frozen=True)
class TimelineEntry:
    """One control-plane action, for post-hoc inspection.

    Legacy flat view; the structured record behind it is the
    :class:`~repro.obs.events.Event` in
    :attr:`RestorationSimulation.events`.
    """

    time: float
    actor: Node
    action: str
    detail: str = ""


@dataclass
class Demand:
    """A managed demand: its LSP and restoration state."""

    source: Node
    destination: Node
    primary: Path
    lsp_id: int
    locally_patched: bool = False
    source_restored: bool = False


class RestorationSimulation:
    """Hybrid local+source RBPC over a simulated control plane."""

    def __init__(
        self,
        network: MplsNetwork,
        base: BaseSet,
        lsp_registry: dict[Path, int],
        model: FloodingModel = FloodingModel(),
        local_strategy: LocalStrategy = LocalStrategy.EDGE_BYPASS,
        weighted: bool = True,
        *,
        policy=None,
    ) -> None:
        self.network = network
        self.base = base
        self.model = model
        self.local_strategy = local_strategy
        #: The active :class:`~repro.policies.base.RestorationPolicy`,
        #: consulted for its reaction hooks: ``uses_local_patch`` gates
        #: step 2's interim patches, ``uses_source_restore`` gates step
        #: 4's source re-route.  ``None`` (the default) behaves exactly
        #: like the concatenation policy — both hooks on.
        self.policy = policy
        self.queue = EventQueue()
        self.local = LocalRbpc(network, base, lsp_registry, weighted=weighted)
        self.source_scheme = SourceRouterRbpc(network, base, lsp_registry, weighted=weighted)
        self.events = EventLog()
        self.demands: dict[tuple[Node, Node], Demand] = {}
        # Per-router routing processes over private LSDB copies.
        self.routers: dict[Node, SpfRouter] = {
            u: SpfRouter(u, LinkStateDatabase.from_graph(network.graph))
            for u in network.graph.nodes
        }
        self._sequence = 0
        self._down_at: dict[Edge, float] = {}
        # Timestamp ILM mutations (LSP provisioning, local patches,
        # reverts) into the event log as they happen.
        network.set_observer(self._mpls_event)

    # -- demand management -----------------------------------------------------

    def add_demand(self, source: Node, destination: Node) -> Demand:
        """Register a demand riding its pre-provisioned primary LSP."""
        primary = self.base.path_for(source, destination)
        lsp = self.network.find_lsp(primary)
        if lsp is None:
            lsp = self.network.get_lsp(
                self.source_scheme.lsp_registry[primary]
            ) if primary in self.source_scheme.lsp_registry else None
        if lsp is None:
            lsp = self.network.provision_lsp(primary)
            self.source_scheme.lsp_registry[primary] = lsp.lsp_id
        self.network.set_fec(source, destination, [lsp.lsp_id])
        demand = Demand(source, destination, primary, lsp.lsp_id)
        self.demands[(source, destination)] = demand
        return demand

    # -- event scheduling ----------------------------------------------------------

    def schedule_link_failure(self, time: float, u: Node, v: Node) -> None:
        """Schedule link *(u, v)* to fail at *time*."""
        self.queue.schedule(time, lambda: self._link_failed(u, v))

    def schedule_link_recovery(self, time: float, u: Node, v: Node) -> None:
        """Schedule link *(u, v)* to heal at *time*."""
        self.queue.schedule(time, lambda: self._link_recovered(u, v))

    def run_until(self, time: float) -> None:
        """Dispatch all events up to *time*."""
        self.queue.run_until(time)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.queue.now

    # -- observability ---------------------------------------------------------

    @property
    def timeline(self) -> list[TimelineEntry]:
        """The control-plane actions as legacy ``TimelineEntry`` objects.

        Derived from :attr:`events`; the structured log is the source
        of truth (serialize *that*, not this).
        """
        return [
            TimelineEntry(e.time, e.actor, e.kind, e.detail.get("text", ""))
            for e in self.events
            if e.kind in CONTROL_PLANE_KINDS
        ]

    def _emit(self, actor: Any, kind: str, **detail: Any) -> None:
        self.events.emit(self.queue.now, actor, kind, **detail)

    def _mpls_event(self, kind: str, actor: Node, detail: dict[str, Any]) -> None:
        self.events.emit(self.queue.now, actor, kind, **detail)

    # -- data plane probe -------------------------------------------------------------

    def inject(self, source: Node, destination: Node) -> ForwardingResult:
        """Forward one packet through the tables as they stand *now*.

        Each probe lands in the event log as a ``delivery`` event with
        the terminal status and the walk, so the full delivery timeline
        can be reconstructed from the log alone.
        """
        result = self.network.inject(source, destination)
        self._emit(
            source,
            "delivery",
            destination=destination,
            status=result.status.name,
            walk=result.walk,
            hops=result.hops,
        )
        if METRICS.enabled:
            METRICS.counter(f"sim.delivery.{result.status.name.lower()}").inc()
        return result

    # -- internals: failure handling ---------------------------------------------------

    def _link_failed(self, u: Node, v: Node) -> None:
        self.network.fail_link(u, v)
        key = edge_key(u, v)
        self._down_at[key] = self.queue.now
        self._emit("-", "link-down", text=f"{(u, v)}", link=key)
        self.queue.schedule_in(
            self.model.detection_delay, lambda: self._detected(u, v, up=False)
        )

    def _link_recovered(self, u: Node, v: Node) -> None:
        self.network.restore_link(u, v)
        self._emit("-", "link-up", text=f"{(u, v)}", link=edge_key(u, v))
        self.queue.schedule_in(
            self.model.detection_delay, lambda: self._detected(u, v, up=True)
        )

    def _detected(self, u: Node, v: Node, up: bool) -> None:
        self._sequence += 1
        ad = LinkStateAd(
            u, v, self.network.graph.weight(u, v), up=up, sequence=self._sequence
        )
        for detector in (u, v):
            self._emit(
                detector,
                "detected",
                text=f"{(u, v)} {'up' if up else 'down'}",
                link=edge_key(u, v),
                up=up,
            )
            if not up:
                self._apply_local_patches(detector, edge_key(u, v))
            else:
                self._revert_local_patches(detector, edge_key(u, v))
            self._receive_ad(detector, ad)
        if up:
            self._down_at.pop(edge_key(u, v), None)

    def _apply_local_patches(self, router: Node, failed: Edge) -> None:
        if self.policy is not None and not self.policy.uses_local_patch:
            return
        for demand in self.demands.values():
            if demand.locally_patched or demand.source_restored:
                continue
            if not demand.primary.uses_edge(*failed):
                continue
            # Only the upstream-adjacent router owns the patch.
            try:
                if upstream_router(demand.primary, failed) != router:
                    continue
                self.local.patch(demand.lsp_id, failed, strategy=self.local_strategy)
            except NoRestorationPath:
                self._emit(
                    router,
                    "local-patch-failed",
                    text=f"lsp {demand.lsp_id}",
                    lsp_id=demand.lsp_id,
                )
                continue
            demand.locally_patched = True
            self._emit(
                router,
                "local-patch",
                text=f"lsp {demand.lsp_id} around {failed}",
                lsp_id=demand.lsp_id,
                link=failed,
            )
            if METRICS.enabled:
                down_at = self._down_at.get(failed)
                if down_at is not None:
                    METRICS.histogram("sim.local_patch_latency_s").observe(
                        self.queue.now - down_at
                    )

    def _revert_local_patches(self, router: Node, healed: Edge) -> None:
        for demand in self.demands.values():
            if demand.locally_patched and demand.primary.uses_edge(*healed):
                self.local.revert(demand.lsp_id)
                demand.locally_patched = False
                self._emit(
                    router,
                    "local-revert",
                    text=f"lsp {demand.lsp_id}",
                    lsp_id=demand.lsp_id,
                )

    def _receive_ad(self, router: Node, ad: LinkStateAd) -> None:
        changed = self.routers[router].receive(ad)
        if not changed:
            return  # stale or duplicate: do not re-flood
        link = edge_key(ad.u, ad.v)
        self._emit(
            router, "lsa-hop", link=link, up=ad.up, sequence=ad.sequence
        )
        if METRICS.enabled and not ad.up:
            down_at = self._down_at.get(link)
            if down_at is not None:
                latency = self.queue.now - down_at
                METRICS.histogram("sim.flood_learn_latency_s").observe(latency)
                METRICS.gauge("sim.flood_convergence_s").set_max(latency)
        # Re-flood to all neighbors over surviving links.
        for neighbor in self.network.operational_view.neighbors(router):
            self.queue.schedule_in(
                self.model.per_hop_delay,
                lambda n=neighbor, a=ad: self._receive_ad(n, a),
            )
        # Sources react spf_delay after learning.
        affected = [
            d for d in self.demands.values()
            if d.source == router and d.primary.uses_edge(ad.u, ad.v)
        ]
        if affected:
            self.queue.schedule_in(
                self.model.spf_delay,
                lambda ads=ad, ds=tuple(affected): self._source_reacts(router, ads, ds),
            )

    def _source_reacts(self, router: Node, ad: LinkStateAd, demands) -> None:
        if self.policy is not None and not self.policy.uses_source_restore:
            return
        for demand in demands:
            if ad.up:
                if demand.source_restored:
                    self.source_scheme.recover(demand.source, demand.destination)
                    demand.source_restored = False
                    self._emit(
                        router,
                        "source-recover",
                        text=f"-> {demand.destination!r}",
                        destination=demand.destination,
                    )
                continue
            try:
                action = self.source_scheme.restore(demand.source, demand.destination)
            except NoRestorationPath:
                self._emit(
                    router,
                    "source-restore-failed",
                    text=f"-> {demand.destination!r}",
                    destination=demand.destination,
                )
                continue
            demand.source_restored = True
            pieces = action.decomposition.num_pieces
            self._emit(
                router,
                "source-restore",
                text=f"-> {demand.destination!r} via {pieces} pieces",
                destination=demand.destination,
                pieces=pieces,
            )
            if METRICS.enabled:
                down_at = self._down_at.get(edge_key(ad.u, ad.v))
                if down_at is not None:
                    METRICS.histogram("sim.source_restore_latency_s").observe(
                        self.queue.now - down_at
                    )
                METRICS.histogram(
                    "sim.label_stack_depth", DEPTH_EDGES
                ).observe(pieces)
            # The local patch is superseded; retire it.
            if demand.locally_patched:
                self.local.revert(demand.lsp_id)
                demand.locally_patched = False
