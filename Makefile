# Convenience targets; everything also works as the plain commands in
# the README (PYTHONPATH=src python -m pytest ...).

.PHONY: test clean bench-smoke native

test:
	PYTHONPATH=src python -m pytest -x -q

# Pre-build the native kernel backend's shared object into the keyed
# cache (~/.cache/repro or $REPRO_NATIVE_CACHE) so the first timed run
# doesn't pay the one-off compile.  Needs a C compiler on PATH; fails
# loudly without one (auto-selection would just fall back instead).
native:
	PYTHONPATH=src python -c "from repro.kernels import native_backend as n; print(n.library_path())"

# Stale src/**/__pycache__ directories are the classic editable-install
# footgun: bytecode compiled against a previous checkout can shadow a
# renamed or deleted module and produce "works here, fails there" runs.
# CI runs this before installing (see .github/workflows/ci.yml); run it
# locally after switching branches.
clean:
	find src tests benchmarks -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache

bench-smoke:
	PYTHONPATH=src python benchmarks/bench_csr.py --smoke
	PYTHONPATH=src python benchmarks/bench_shm.py --smoke
	PYTHONPATH=src python benchmarks/bench_kernels.py --smoke
