"""Smoke tests for the experiment command-line entry points.

Each table/figure module is a deliverable CLI; these tests invoke the
``main`` functions at tiny scale and assert the reports carry the
paper-shaped content.
"""

from __future__ import annotations

import pytest

from repro.experiments import ablation, figure10, runner, table1, table2, table3, theory_figures


def test_table1_main(capsys):
    report = table1.main(["--scale", "tiny"])
    assert "Table 1" in report
    assert "ISP" in report and "AS Graph" in report
    assert capsys.readouterr().out.strip()


def test_table2_main_single_mode():
    report = table2.main(["--scale", "tiny", "--modes", "link"])
    assert "After one link failure" in report
    assert "ISP, Weighted" in report
    assert "paper" in report  # side-by-side column


def test_table2_rejects_bad_ilm_mode():
    with pytest.raises(SystemExit):
        table2.main(["--ilm", "per-galaxy"])


def test_table2_evaluate_rejects_bad_accounting():
    from repro.experiments.networks import suite

    with pytest.raises(ValueError):
        table2.evaluate_network(
            suite(scale="tiny")[0], ilm_accounting="per-galaxy"
        )


def test_table3_main():
    report = table3.main(["--scale", "tiny"])
    assert "Table 3" in report
    assert "Bypass hops" in report


def test_figure10_main():
    report = figure10.main(["--scale", "tiny"])
    assert "edge-bypass" in report and "end-route" in report
    assert "= 1.00" in report


def test_theory_figures_main():
    report = theory_figures.main([])
    assert "MISMATCH" not in report
    assert report.count("OK") >= 16


def test_runner_writes_output(tmp_path):
    out = tmp_path / "report.txt"
    report = runner.main(["--scale", "tiny", "--out", str(out)])
    assert out.exists()
    for section in ("Table 1", "Table 2", "Table 3", "Figure 10", "Figures 2-5"):
        assert section in report


def test_ablation_main():
    report = ablation.main(["--size", "40", "--pairs", "6"])
    assert "Decomposition" in report
    assert "RBPC" in report
    assert "Suurballe" in report
