"""Baseline restoration schemes from the related work RBPC argues against.

Section 1: *"Previous work proposed to address this costly
establishment by compromising the 'quality' of the backup paths (e.g.,
use non-shortest paths); for the simpler aim of maintaining
connectivity, it is sufficient to use a small number of pre-established
paths [16, 3]."*  These baselines make that trade-off concrete so the
benchmarks can measure it:

* :class:`DisjointBackupScheme` — one pre-established backup LSP per
  demand, edge-disjoint from the primary (Suurballe-optimal pair, or
  primary-preserving).  Instant switchover on any primary failure, but
  the backup is fixed: its quality is whatever disjointness allowed,
  and a failure hitting *both* paths is unrecoverable without
  re-signaling.
* :class:`KShortestPathsScheme` — the k cheapest simple paths
  pre-established per demand [7]; on failure, traffic takes the first
  surviving one.
* :class:`MaxFlowScheme` — every edge-disjoint path pre-established;
  maximal coverage, maximal footprint.

All three implement the uniform
:class:`~repro.policies.base.RestorationPolicy` contract —
``provision(source, target)`` returns the pre-established routes
(primary first) as one flat tuple, ``restore`` is the shared failover
(first surviving provisioned route), and ``ilm_entries`` charges
exactly what was provisioned — so the comparison benchmarks and the
``--policy`` flag treat them interchangeably with the paper's scheme.
"""

from __future__ import annotations

from ..exceptions import NoPath
from ..graph.graph import Graph, Node
from ..graph.ksp import (
    edge_disjoint_backup,
    node_disjoint_backup,
    suurballe_disjoint_pair,
    yen_k_shortest_paths,
)
from ..graph.paths import Path
from ..policies.base import RestorationOutcome, RestorationPolicy

#: The historical name of the per-(demand, scenario) outcome shape;
#: the policy layer generalized it without changing the fields.
BaselineOutcome = RestorationOutcome


class DisjointBackupScheme(RestorationPolicy):
    """Pre-established edge-disjoint backup per demand ([16, 3]-style)."""

    name = "disjoint"
    title = "Suurballe disjoint backup"

    def __init__(
        self,
        graph: Graph,
        base=None,
        weighted: bool = True,
        suurballe: bool = True,
        disjointness: str = "edge",
    ) -> None:
        if disjointness not in ("edge", "node"):
            raise ValueError(f"unknown disjointness {disjointness!r}")
        super().__init__(graph, base, weighted)
        self.suurballe = suurballe
        #: "edge" protects against link failures; "node" additionally
        #: against single interior-router failures (primary-preserving
        #: mode only — Suurballe optimizes the edge-disjoint pair).
        self.disjointness = disjointness

    def provision(self, source: Node, target: Node) -> tuple[Path, ...]:
        """Compute (and cache) the primary/backup routes for a demand.

        With *suurballe*, both paths come from the optimal disjoint
        pair (the primary may then differ from the shortest path — the
        quality compromise the paper describes); otherwise the primary
        is the base path and the backup avoids all its edges.  The plan
        is a bare ``(primary,)`` when the endpoints are separated by a
        cut edge.
        """
        plan = self._plans.get((source, target))
        if plan is not None:
            return plan
        if self.suurballe and self.disjointness == "edge":
            try:
                primary, backup = suurballe_disjoint_pair(self.graph, source, target)
            except NoPath:
                primary = self.base.path_for(source, target)
                backup = None
        else:
            primary = self.base.path_for(source, target)
            if self.disjointness == "node":
                backup = node_disjoint_backup(self.graph, primary)
            else:
                backup = edge_disjoint_backup(self.graph, primary)
        plan = (primary,) if backup is None else (primary, backup)
        self._plans[(source, target)] = plan
        return plan


class MaxFlowScheme(RestorationPolicy):
    """All edge-disjoint paths pre-established per demand ([7]'s max-flow).

    The maximal pre-provisioning a topology allows: every edge-disjoint
    path between the endpoints becomes an LSP, and traffic fails over
    to the cheapest surviving one.  Coverage is the best any
    fixed-path scheme can do against link failures (by Menger), at the
    price of the largest pre-provisioned footprint and arbitrarily
    stretched survivors.
    """

    name = "maxflow"
    title = "max-flow disjoint paths"

    def provision(self, source: Node, target: Node) -> tuple[Path, ...]:
        """Compute (and cache) this scheme's plan for the demand."""
        plan = self._plans.get((source, target))
        if plan is None:
            from ..graph.maxflow import edge_disjoint_paths

            plan = tuple(
                sorted(
                    edge_disjoint_paths(self.graph, source, target),
                    key=lambda p: p.cost(self.graph),
                )
            )
            self._plans[(source, target)] = plan
        return plan


class KShortestPathsScheme(RestorationPolicy):
    """k pre-established cheapest simple paths per demand ([7]-style)."""

    name = "ksp"
    title = "k-shortest-paths"

    def __init__(
        self, graph: Graph, base=None, k: int = 3, weighted: bool = True
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        super().__init__(graph, base, weighted)
        self.k = k
        self.title = f"{k}-shortest-paths"

    def provision(self, source: Node, target: Node) -> tuple[Path, ...]:
        """Compute (and cache) this scheme's plan for the demand."""
        plan = self._plans.get((source, target))
        if plan is None:
            plan = tuple(
                yen_k_shortest_paths(self.graph, source, target, self.k)
            )
            self._plans[(source, target)] = plan
        return plan


__all__ = [
    "BaselineOutcome",
    "DisjointBackupScheme",
    "KShortestPathsScheme",
    "MaxFlowScheme",
    "RestorationOutcome",
]
