"""Benchmark the per-link FEC update planner (Section 4.1, Figure 7).

"This process could be computed online but will be fastest if
pre-computed and indexed by the specific link failure."  The two
benchmarks quantify exactly that gap: cold per-link planning vs. the
precomputed index lookup.
"""

from __future__ import annotations

import pytest

from repro.core.planner import FailurePlanner


@pytest.fixture(scope="module")
def planner_inputs(isp200, isp200_base, isp200_pairs):
    demands = isp200_pairs[:30]
    links = sorted(
        {
            key
            for s, t in demands
            for key in isp200_base.path_for(s, t).edge_keys()
        },
        key=repr,
    )
    return demands, links


def bench_online_planning(benchmark, isp200, isp200_base, planner_inputs):
    """Cold computation of every link's update set (the online path)."""
    demands, links = planner_inputs

    def run():
        planner = FailurePlanner(isp200, isp200_base, demands)
        return sum(len(planner.updates_for_link(*link)) for link in links)

    total = benchmark(run)
    assert total > 0


def bench_indexed_lookup(benchmark, isp200, isp200_base, planner_inputs):
    """Lookup against a fully precomputed index (the paper's fast path)."""
    demands, links = planner_inputs
    planner = FailurePlanner(isp200, isp200_base, demands)
    for link in links:
        planner.updates_for_link(*link)  # warm the index

    def run():
        return sum(len(planner.updates_for_link(*link)) for link in links)

    total = benchmark(run)
    assert total > 0


def test_precompute_equals_lazy(isp200, isp200_base, planner_inputs):
    demands, links = planner_inputs
    lazy = FailurePlanner(isp200, isp200_base, demands)
    eager = FailurePlanner(isp200, isp200_base, demands, precompute=True)
    for link in links[:10]:
        lazy_updates = {
            (u.source, u.destination): u.decomposition.path
            for u in lazy.updates_for_link(*link)
        }
        eager_updates = {
            (u.source, u.destination): u.decomposition.path
            for u in eager.updates_for_link(*link)
        }
        assert lazy_updates == eager_updates
