# Convenience targets; everything also works as the plain commands in
# the README (PYTHONPATH=src python -m pytest ...).

.PHONY: test clean bench-smoke

test:
	PYTHONPATH=src python -m pytest -x -q

# Stale src/**/__pycache__ directories are the classic editable-install
# footgun: bytecode compiled against a previous checkout can shadow a
# renamed or deleted module and produce "works here, fails there" runs.
# CI runs this before installing (see .github/workflows/ci.yml); run it
# locally after switching branches.
clean:
	find src tests benchmarks -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache

bench-smoke:
	PYTHONPATH=src python benchmarks/bench_csr.py --smoke
	PYTHONPATH=src python benchmarks/bench_shm.py --smoke
	PYTHONPATH=src python benchmarks/bench_kernels.py --smoke
