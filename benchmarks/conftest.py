"""Shared fixtures and JSON output for the benchmark harness.

Benchmarks regenerate the paper's tables and figures at a reduced but
shape-preserving scale (see ``repro.experiments.networks``), so the
whole harness completes in minutes on a laptop.  Run the full paper
scale with ``python -m repro.experiments.runner --scale paper``.

Every benchmark session also emits a machine-readable summary —
per-benchmark timing stats plus the global perf counters — to
``results/BENCH_benchmarks.json`` under the repository root by
default.  Point it elsewhere with ``--json-out PATH``; disable with
``--json-out -``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.cache import shared_unique_base
from repro.experiments.networks import suite
from repro.failures.sampler import sample_pairs
from repro.perf import COUNTERS
from repro.topology.isp import generate_isp_topology
from repro.topology.powerlaw import generate_as_graph

REPO_ROOT = Path(__file__).resolve().parent.parent


def pytest_addoption(parser):
    parser.addoption(
        "--json-out",
        action="store",
        default=None,
        help=(
            "where to write the machine-readable benchmark summary "
            "(default: results/BENCH_benchmarks.json under the repo root; "
            "'-' disables)"
        ),
    )


def pytest_sessionstart(session):
    session.config._bench_counters_start = COUNTERS.snapshot()


def pytest_sessionfinish(session, exitstatus):
    target = session.config.getoption("--json-out", default=None)
    if target == "-":
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None) or []
    entries = []
    for bench in benchmarks:
        stats = getattr(bench, "stats", None)
        if not stats:  # disabled / never ran: Stats() is falsy when empty
            continue
        entries.append(
            {
                "name": bench.name,
                "fullname": bench.fullname,
                "group": bench.group,
                "rounds": stats.rounds,
                "mean_s": stats.mean,
                "min_s": stats.min,
                "max_s": stats.max,
                "stddev_s": stats.stddev,
            }
        )
    if not entries:
        return  # collection-only / --benchmark-disable runs: nothing to report
    start = getattr(session.config, "_bench_counters_start", None)
    counters = (COUNTERS.delta(start) if start else COUNTERS).as_dict()
    payload = {
        "name": "benchmarks",
        "exit_status": int(exitstatus),
        "benchmarks": sorted(entries, key=lambda e: e["fullname"]),
        "counters": counters,
    }
    from repro.experiments.bench import write_bench_json

    if target:
        out = Path(target)
    else:
        (REPO_ROOT / "results").mkdir(exist_ok=True)
        out = REPO_ROOT / "results" / "BENCH_benchmarks.json"
    write_bench_json("benchmarks", payload, path=out)
    print(f"\n[bench] wrote {out}")


@pytest.fixture(scope="session")
def tiny_suite():
    """The four evaluation networks at CI scale."""
    return suite(scale="tiny", seed=1)


@pytest.fixture(scope="session")
def isp200():
    """The ISP at full published scale (200 routers)."""
    return generate_isp_topology(n=200, seed=1)


@pytest.fixture(scope="session")
def isp200_base(isp200):
    # Served from the shared cache so repeated benchmark modules (and
    # the experiment drivers, if mixed in one process) reuse one padded
    # graph + oracle per topology.
    return shared_unique_base(isp200)


@pytest.fixture(scope="session")
def isp200_pairs(isp200):
    return sample_pairs(isp200, 40, seed=1)


@pytest.fixture(scope="session")
def as500():
    """A 500-node AS-graph stand-in for micro-benchmarks."""
    return generate_as_graph(n=500, seed=1)
