"""Decremental shortest-path-tree repair (Ramalingam–Reps style).

The experiments delete 1–2 edges (or 1–2 routers) from a big graph and
ask for post-failure shortest paths.  Recomputing from scratch settles
every node; but deleting k edges only invalidates the *subtree hanging
below them* in the pre-failure SPT — usually a few dozen nodes.  This
module repairs cached pre-failure distance/predecessor arrays instead:

1. **Affected set** — walk the pre-failure predecessor tree (children
   lists are rebuilt in O(n) from the pred array) and collect the
   descendants of every deleted tree edge / failed node.  Nodes outside
   this set keep their exact distance *and* canonical predecessor:
   their old shortest path is untouched, and no distance anywhere ever
   decreases under deletion, so no new parent can beat the old one.
2. **Boundary offers** — every surviving edge from an unaffected node
   into the affected set is a candidate re-attachment; seed a bounded
   heap with those offers.
3. **Re-settle** — run Dijkstra restricted to the affected set, keyed
   ``(dist, node index)`` like
   :func:`~repro.graph.csr.dijkstra_csr_canonical`, so the repaired
   arrays are **bitwise identical** to a from-scratch canonical run
   (distances are sums of the same floats in a different order — but
   each label is a single ``parent + weight`` addition of already-final
   values, so no reassociation occurs).
4. **Fallback** — if the affected set exceeds
   :data:`REPAIR_FALLBACK_FRACTION` of the reachable nodes, repair
   would approach full-recompute cost while paying extra bookkeeping;
   abandon it and recompute (counted in ``COUNTERS.spt_fallbacks``).

:class:`SptCache` wraps the bookkeeping per graph: it owns the CSR
snapshot, memoizes pre-failure rows per source, and exposes
:meth:`SptCache.backup_path` — the restoration-path query the
experiment hot loops use.  Under the canonical ``(dist, index)`` tie
contract (:mod:`repro.graph.csr`), repaired rows are exact for
**weighted and unweighted** graphs alike — the canonical predecessor
is a local property of the final labels, so repair needs no heap
history to replay (the restorable-tiebreaking insight of Bodwin–Parter,
arXiv:2102.10174).  A backup path is therefore just the predecessor
chain of one repaired source row; when the fallback threshold trips,
one targeted early-exit canonical search yields the identical chain
(tight parents settle before their children, so the settled prefix is
final).  :meth:`SptCache.repair_batch` amortizes one failure scenario
across every source it touches: the dead-edge slots are decoded once
and every affected source is re-settled in the same pass — the
multi-source consumer is the per-scenario ILM accounting.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from ..exceptions import NoPath
from ..kernels import kernel_backend
from ..perf import COUNTERS
from .csr import (
    INF,
    CsrGraph,
    CsrView,
    bfs_csr,
    dijkstra_csr_canonical,
    shared_csr,
)
from .graph import Node
from .paths import Path
from .shortest_paths import shortest_path

#: Repair aborts in favour of a full recompute once the affected set
#: exceeds this fraction of the source's reachable nodes.  Repair does
#: strictly more per-node work than a fresh run (children lists, offer
#: scans), and the targeted alternative may exit early, so past ~half
#: the graph the fresh run wins; typical failure cases are far below
#: this, making the fallback a safety valve for pathological cuts
#: (e.g. failing a hub router).  The default was re-tuned from 0.25
#: when weighted repair became legal under the canonical tie contract
#: (sweep in docs/performance.md).
#:
#: This is a documented knob: set the ``REPRO_REPAIR_FALLBACK``
#: environment variable (a float in (0, 1], or > 1 to disable the
#: fallback entirely) or pass ``--repair-fallback`` to the experiment
#: CLIs (which calls :func:`set_repair_fallback_fraction`).  The active
#: value is recorded in every ``BENCH_*.json`` header.
REPAIR_FALLBACK_FRACTION = float(os.environ.get("REPRO_REPAIR_FALLBACK", 0.5))


def repair_fallback_fraction() -> float:
    """The active fallback threshold (env default, CLI-overridable)."""
    return REPAIR_FALLBACK_FRACTION


def set_repair_fallback_fraction(value: float) -> float:
    """Override the fallback threshold process-wide; returns the old value.

    Called by the ``--repair-fallback`` CLI flag before any worker
    processes fork, so the whole fan-out shares one policy.
    """
    global REPAIR_FALLBACK_FRACTION
    if value <= 0:
        raise ValueError(f"repair fallback fraction must be > 0, got {value}")
    old = REPAIR_FALLBACK_FRACTION
    REPAIR_FALLBACK_FRACTION = value
    return old


def _children_lists(pred: list[int], n: int) -> list[list[int]]:
    """Invert a predecessor array into per-node children lists, O(n)."""
    children: list[list[int]] = [[] for _ in range(n)]
    for v in range(n):
        p = pred[v]
        if p >= 0:
            children[p].append(v)
    return children


def dead_edge_pairs(view: CsrView) -> list[tuple[int, int]]:
    """Recover (tail, head) index pairs for a view's dead edge slots.

    Tails are delimited by ``indptr``; slots are few (k failures), so a
    binary search per slot is fine.
    """
    csr = view.csr
    indptr, indices, n = csr.indptr, csr.indices, csr.n
    pairs = []
    for slot in view.dead_edges:
        head = indices[slot]
        lo, hi = 0, n
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if indptr[mid] <= slot:
                lo = mid
            else:
                hi = mid
        pairs.append((lo, head))
    return pairs


def affected_subtree(
    dist: list[float],
    pred: list[int],
    n: int,
    dead_edge_pairs: Iterable[tuple[int, int]],
    dead_nodes: Iterable[int],
    children: Optional[list[list[int]]] = None,
) -> set[int]:
    """Nodes whose pre-failure shortest path used a deleted edge/node.

    *dead_edge_pairs* are (u, v) index pairs (either orientation);
    a tree edge is cut when ``pred[v] == u`` or ``pred[u] == v``.  The
    affected set is the union of subtrees rooted at the cut points plus
    every failed node's subtree (failed nodes themselves are included so
    callers can blank their labels).

    *children* lets callers reuse a prebuilt children-list inversion of
    *pred* (it depends only on the pre-failure tree, so per-source
    caches amortize the O(n) inversion across failure cases).
    """
    if children is None:
        children = _children_lists(pred, n)
    roots: list[int] = []
    for u, v in dead_edge_pairs:
        if pred[v] == u:
            roots.append(v)
        if pred[u] == v:
            roots.append(u)
    for x in dead_nodes:
        if dist[x] != INF:
            roots.append(x)
    affected: set[int] = set()
    stack = [r for r in roots if r not in affected]
    while stack:
        x = stack.pop()
        if x in affected:
            continue
        affected.add(x)
        stack.extend(children[x])
    return affected


def _full_row(
    view: CsrView, source: int, unit: bool
) -> tuple[list[float], list[int]]:
    """From-scratch post-failure row: canonical Dijkstra or BFS (*unit*)."""
    if unit:
        return bfs_csr(view, source)
    full_dist, full_pred, _ = dijkstra_csr_canonical(view, source)
    return full_dist, full_pred


def repair_spt(
    view: CsrView,
    source: int,
    dist: list[float],
    pred: list[int],
    fallback_fraction: Optional[float] = None,
    affected: Optional[set[int]] = None,
    unit: bool = False,
) -> tuple[list[float], list[int]]:
    """Repair a canonical pre-failure SPT after the deletions in *view*.

    *dist* / *pred* must be the **pre-failure** arrays produced by
    :func:`~repro.graph.csr.dijkstra_csr_canonical` (exhausted run) on
    *view*'s underlying snapshot with no mask — or by
    :func:`~repro.graph.csr.bfs_csr` with ``unit=True``, which makes the
    repair relax hop counts instead of stored edge weights.  Returns
    fresh ``(dist, pred)`` arrays for the masked graph — distances
    bitwise identical to re-running from scratch on *view*.  The inputs
    are never mutated.

    *affected* may carry a precomputed :func:`affected_subtree` result;
    the caller then guarantees *source* is not in it and has already
    applied its own fallback policy (no threshold check happens here).
    *fallback_fraction* defaults to the process-wide
    :data:`REPAIR_FALLBACK_FRACTION` knob, read at call time.

    Each repair bumps ``COUNTERS.spt_repairs``; the number of re-settled
    vertices (the honest per-failure work) accumulates into
    ``COUNTERS.spt_nodes_resettled``; threshold aborts into
    ``COUNTERS.spt_fallbacks`` before delegating to the full kernel.
    """
    n = view.csr.n

    if affected is None:
        if fallback_fraction is None:
            fallback_fraction = REPAIR_FALLBACK_FRACTION
        affected = affected_subtree(
            dist, pred, n, dead_edge_pairs(view), view.dead_nodes
        )
        if source in affected:
            # The source itself failed; nothing to repair from.
            return _full_row(view, source, unit)
        reachable = sum(1 for d in dist if d != INF)
        if affected and len(affected) > fallback_fraction * max(1, reachable):
            COUNTERS.spt_fallbacks += 1
            return _full_row(view, source, unit)

    COUNTERS.spt_repairs += 1
    if not affected:
        # No deleted edge was a tree edge: the SPT survives as-is.
        return list(dist), list(pred)

    # Boundary offers + bounded re-settle live in the kernel backend
    # (:mod:`repro.kernels`): the reference backend runs the historical
    # heap loop, the vectorized one relaxes the affected region to
    # fixpoint — both return bit-identical arrays and counters.
    return kernel_backend().repair_resettle(
        view, source, dist, pred, affected, unit
    )


class SptCache:
    """Per-graph cache of pre-failure SPT rows with repair-based queries.

    Owns the CSR snapshot of an (undirected) graph and memoizes one
    canonical pre-failure ``(dist, pred)`` row per requested source.
    Failure-case queries then cost one :func:`repair_spt` per cached
    endpoint instead of a full search.  The cache holds rows for the
    *unmasked* graph only — masks arrive per query.
    """

    __slots__ = (
        "csr", "weighted", "_rows", "_children", "_reachable", "_spent",
        "_sizes",
    )

    def __init__(self, graph, weighted: bool = True) -> None:
        self.csr = shared_csr(graph)
        self.weighted = weighted
        self._rows: dict[int, tuple[list[float], list[int]]] = {}
        # Per-source inversions of the pre-failure pred array and
        # reachable-node counts: both depend only on the cached row, so
        # they amortize across every failure case touching that source.
        self._children: dict[int, list[list[int]]] = {}
        self._reachable: dict[int, int] = {}
        # Per-source subtree sizes of the pre-failure SPT (cost model).
        self._sizes: dict[int, list[int]] = {}
        # Rent-to-buy ledger for backup_path: settle work spent on
        # targeted searches per source *before* its row exists.
        self._spent: dict[int, int] = {}

    def row(self, source: Node) -> tuple[list[float], list[int]]:
        """The pre-failure canonical ``(dist, pred)`` arrays for *source*."""
        return self._row(self.csr.index[source])

    def _row(self, i: int) -> tuple[list[float], list[int]]:
        row = self._rows.get(i)
        if row is None:
            base = CsrView(self.csr)
            if self.weighted:
                dist, pred, _ = dijkstra_csr_canonical(base, i)
            else:
                dist, pred = bfs_csr(base, i)
            row = (dist, pred)
            self._rows[i] = row
            COUNTERS.warm_row_builds += 1
        return row

    def warm_rows(self, source_idxs: Iterable[int]) -> None:
        """Batch-build missing pre-failure rows where the backend can.

        Vectorized backends settle many sources per relaxation round
        (:func:`repro.kernels.kernel_backend`'s ``rows_many``); the
        reference backend declines and the rows stay lazily built by
        :meth:`_row`.  Either way the cached rows — and the counter
        increments — are bit-identical.
        """
        missing = [
            i for i in dict.fromkeys(source_idxs) if i not in self._rows
        ]
        if len(missing) > 1:
            built = kernel_backend().rows_many(
                CsrView(self.csr), missing, not self.weighted
            )
            if built:
                self._rows.update(built)
                COUNTERS.warm_row_builds += len(built)

    def ensure_rows(self, source_idxs: Iterable[int]) -> None:
        """Guarantee every listed source has a cached pre-failure row.

        :meth:`warm_rows` plus a lazy-build sweep for whatever the
        backend declined to batch (the reference backend batches
        nothing) — the publisher-side primitive: a parent warms the
        exact row set here, then ships it via
        :func:`repro.graph.shm.publish_rows`.
        """
        idxs = list(dict.fromkeys(source_idxs))
        self.warm_rows(idxs)
        for i in idxs:
            self._row(i)

    def export_rows(self) -> dict[int, tuple[list[float], list[int]]]:
        """Every cached pre-failure row, keyed by CSR source index.

        The publication payload for :func:`repro.graph.shm.publish_rows`
        — all cached rows are full canonical rows of the unmasked
        graph, so they are safe to ship as-is.
        """
        return dict(self._rows)

    def adopt_rows(self, table) -> int:
        """Install warm rows from an attached shm ``RowTable``.

        Fills **only missing** sources with the table's zero-copy
        read-only ``(dist, pred)`` views — locally built or repaired
        rows are never overwritten.  Adoption is bookkeeping, not
        search work: it bumps ``COUNTERS.warm_rows_adopted`` and leaves
        ``csr_settled``/``csr_relaxations`` untouched, so worker-side
        counter deltas keep measuring real work.  A table published for
        a different graph shape, query semantics, or consumer kind is
        refused outright (``ValueError``) — adopting wrong rows would
        silently corrupt every downstream repair.  Returns the number
        of rows installed.
        """
        if table.kind != "spt":
            raise ValueError(
                f"cannot adopt {table.kind!r} rows into an SptCache"
            )
        if table.n != self.csr.n:
            raise ValueError(
                f"row table has n={table.n}, cache has n={self.csr.n}"
            )
        if table.weighted != self.weighted:
            raise ValueError(
                f"row table weighted={table.weighted}, "
                f"cache weighted={self.weighted}"
            )
        if (
            table.source_version is not None
            and self.csr.source_version is not None
            and table.source_version != self.csr.source_version
        ):
            raise ValueError(
                f"row table published for graph version "
                f"{table.source_version}, cache snapshot is version "
                f"{self.csr.source_version}"
            )
        adopted = 0
        for i in table.sources:
            if i not in self._rows:
                self._rows[i] = table.row(i)
                adopted += 1
        COUNTERS.warm_rows_adopted += adopted
        return adopted

    def _affected(
        self,
        i: int,
        view: CsrView,
        pairs: Optional[list[tuple[int, int]]] = None,
    ) -> set[int]:
        """Affected subtree of *i*'s cached row under *view*'s mask.

        *pairs* lets batched callers reuse one ``dead_edge_pairs``
        decode of the scenario across every source it touches.
        """
        dist, pred = self._row(i)
        children = self._children.get(i)
        if children is None:
            children = self._children[i] = _children_lists(pred, self.csr.n)
        if pairs is None:
            pairs = dead_edge_pairs(view)
        return affected_subtree(
            dist, pred, self.csr.n, pairs, view.dead_nodes,
            children=children,
        )

    def subtree_sizes(self, i: int) -> list[int]:
        """Subtree size of every node in *i*'s pre-failure SPT.

        ``sizes[v]`` counts the nodes whose shortest path from the
        source routes through *v* (including *v* itself); unreachable
        nodes get 0.  Computed in one pass over the reachable nodes in
        descending-distance order — under positive edge weights a
        child's label is strictly larger than its parent's, so each
        node's total is final before it is pushed onto its parent.
        Memoized per source alongside the children lists.
        """
        sizes = self._sizes.get(i)
        if sizes is None:
            dist, pred = self._row(i)
            sizes = [0] * self.csr.n
            order = sorted(
                (v for v in range(self.csr.n) if dist[v] != INF),
                key=dist.__getitem__,
                reverse=True,
            )
            for v in order:
                sizes[v] += 1
                p = pred[v]
                if p >= 0:
                    sizes[p] += sizes[v]
            self._sizes[i] = sizes
        return sizes

    def repair_cost_estimate(
        self,
        i: int,
        dead_pairs: Iterable[tuple[int, int]],
        dead_nodes: Iterable[int],
    ) -> int:
        """Estimated :func:`repair_spt` work for source *i* (cost model).

        Sums the pre-failure subtree sizes hanging below each dead tree
        edge and each dead reachable node — an upper-ish bound on the
        affected region the repair will re-settle.  Overlapping dead
        subtrees double-count, so the total is capped at the source's
        reachable-node count (which is also the fallback recompute
        cost).  Pure arithmetic over cached rows: no search work.
        """
        dist, pred = self._row(i)
        sizes = self.subtree_sizes(i)
        cost = 0
        for u, v in dead_pairs:
            if pred[v] == u:
                cost += sizes[v]
            elif pred[u] == v:
                cost += sizes[u]
        for x in dead_nodes:
            if dist[x] != INF:
                cost += sizes[x]
        reachable = self._reachable.get(i)
        if reachable is None:
            reachable = self._reachable[i] = sum(
                1 for d in dist if d != INF
            )
        return min(cost, reachable)

    def _repair_viable(self, i: int, affected: set[int]) -> bool:
        """Apply the fallback policy: small-enough affected set, live source."""
        if i in affected:
            return False
        reachable = self._reachable.get(i)
        if reachable is None:
            dist = self._row(i)[0]
            reachable = self._reachable[i] = sum(
                1 for d in dist if d != INF
            )
        if len(affected) > REPAIR_FALLBACK_FRACTION * max(1, reachable):
            COUNTERS.spt_fallbacks += 1
            return False
        return True

    def repaired_row(
        self, source: Node, view: CsrView
    ) -> tuple[list[float], list[int]]:
        """Post-failure ``(dist, pred)`` for *source* under *view*'s mask.

        Repairs the cached pre-failure row when the affected subtree is
        small; recomputes from scratch when the source died or the
        fallback threshold trips.  Either way the arrays are bitwise
        identical to a from-scratch canonical run on *view*.
        """
        return self._repaired_row_idx(self.csr.index[source], view)

    def _repaired_row_idx(
        self,
        i: int,
        view: CsrView,
        pairs: Optional[list[tuple[int, int]]] = None,
    ) -> tuple[list[float], list[int]]:
        dist, pred = self._row(i)
        if not view.dead_edges and not view.dead_nodes:
            return dist, pred
        affected = self._affected(i, view, pairs=pairs)
        if not self._repair_viable(i, affected):
            return _full_row(view, i, not self.weighted)
        return repair_spt(
            view, i, dist, pred, affected=affected, unit=not self.weighted
        )

    def repair_batch(
        self, sources: Iterable[Node], scenario_or_view
    ) -> dict[Node, tuple[list[float], list[int]]]:
        """Post-failure rows for every source touched by one scenario.

        The multi-source batched entry point: the scenario's dead edge
        slots are decoded **once** and shared across every source's
        affected-subtree computation, then all touched sources are
        re-settled in the same pass.  Each returned row is bitwise
        identical to :meth:`repaired_row` for that source (the repairs
        are independent — they only share the scenario decode and the
        per-source children/reachable caches).  Dead sources are
        omitted from the result.
        """
        view = self.view_for(scenario_or_view)
        index, nodes = self.csr.index, self.csr.nodes
        rows_idx = self.repair_batch_idx(
            (index[source] for source in sources), view
        )
        return {nodes[i]: row for i, row in rows_idx.items()}

    def repair_batch_idx(
        self, source_idxs: Iterable[int], scenario_or_view
    ) -> dict[int, tuple[list[float], list[int]]]:
        """Index-space :meth:`repair_batch`: ``{source idx: (dist, pred)}``.

        The all-array variant flat-row consumers (the ILM accountant)
        call directly — no Node round-trips.  Dead sources are omitted.

        Besides the shared scenario decode, the batch stages its work
        for the vectorized backends: missing pre-failure rows are built
        in one :meth:`warm_rows` call, and the sources whose repair
        trips the fallback policy are recomputed together through
        ``rows_many`` on the masked view.  Rows and counters are
        bit-identical to calling :meth:`repaired_row` per source.
        """
        view = self.view_for(scenario_or_view)
        idxs = [
            i for i in dict.fromkeys(source_idxs)
            if i not in view.dead_nodes
        ]
        self.warm_rows(idxs)
        if not view.dead_edges and not view.dead_nodes:
            return {i: self._row(i) for i in idxs}
        pairs = dead_edge_pairs(view)
        affected_by: dict[int, set[int]] = {}
        fallbacks: list[int] = []
        for i in idxs:
            affected = self._affected(i, view, pairs=pairs)
            if self._repair_viable(i, affected):
                affected_by[i] = affected
            else:
                fallbacks.append(i)
        full = (
            kernel_backend().rows_many(view, fallbacks, not self.weighted)
            if len(fallbacks) > 1
            else None
        )
        rows: dict[int, tuple[list[float], list[int]]] = {}
        for i in idxs:
            affected = affected_by.get(i)
            if affected is None:
                rows[i] = (
                    full[i]
                    if full is not None
                    else _full_row(view, i, not self.weighted)
                )
            else:
                dist, pred = self._row(i)
                rows[i] = repair_spt(
                    view, i, dist, pred,
                    affected=affected, unit=not self.weighted,
                )
        return rows

    def view_for(self, scenario_or_view) -> CsrView:
        """Masked view for a FailureScenario / FilteredView / (edges, nodes)."""
        if isinstance(scenario_or_view, CsrView):
            return scenario_or_view
        links = getattr(scenario_or_view, "links", None)
        if links is not None:  # FailureScenario
            return self.csr.with_edges_removed(links, scenario_or_view.routers)
        return self.csr.with_edges_removed(
            scenario_or_view.failed_edges, scenario_or_view.failed_nodes
        )

    def backup_path(self, source: Node, target: Node, scenario_or_view) -> Path:
        """Post-failure shortest path under the canonical tie contract.

        The predecessor chain of the repaired source row — **one**
        subtree repair per failure case, weighted or not, instead of a
        full search.  When repair is not viable (dead source, or the
        affected subtree trips the fallback threshold) the query
        degrades to a single targeted early-exit canonical search,
        which produces the identical chain: tight parents settle before
        their children in ``(dist, index)`` order, so the settled
        prefix of a pruned run is final.  Equals the path of a
        from-scratch canonical kernel run node-for-node (and
        ``shortest_path`` on the filtered view cost-for-cost).  Raises
        :class:`~repro.exceptions.NoPath` when the failure disconnects
        the pair.
        """
        view = self.view_for(scenario_or_view)
        s, t = self.csr.index[source], self.csr.index[target]
        if s in view.dead_nodes or t in view.dead_nodes:
            raise NoPath(f"no path from {source!r} to {target!r}")
        if s == t:
            return Path([source])
        dist, pred = self._backup_row(s, t, view)
        if dist[t] == INF:
            raise NoPath(f"no path from {source!r} to {target!r}")
        return Path(_chain(self.csr, pred, s, t))

    def _backup_row(
        self, s: int, t: int, view: CsrView
    ) -> tuple[list[float], list[int]]:
        """Repaired source row, or one targeted search when not viable.

        Rent-to-buy: while *s* has no cached row, targeted early-exit
        searches answer (renting); their settle work accrues in
        ``_spent``, and only once a source has paid about one full
        row's worth does the cache build the row and switch to repair
        (buying).  One-shot sources — table3 bypasses each edge of the
        graph once, every source ~degree times — never pay for a full
        row, while table2's sources (hundreds of failure cases each)
        cross the threshold almost immediately.  Total work is within
        2x of the better strategy either way, without knowing the
        query distribution in advance.
        """
        if not view.dead_edges and not view.dead_nodes:
            return self._row(s)
        if s not in self._rows and self._spent.get(s, 0) < 2 * self.csr.n:
            before = COUNTERS.csr_settled
            row = self._targeted_row(s, t, view)
            self._spent[s] = self._spent.get(s, 0) + (
                COUNTERS.csr_settled - before
            )
            return row
        affected = self._affected(s, view)
        if self._repair_viable(s, affected):
            dist, pred = self._row(s)
            if not affected:
                # Tree untouched by the mask: the cached row answers.
                COUNTERS.spt_repairs += 1
                return dist, pred
            return repair_spt(
                view, s, dist, pred, affected=affected, unit=not self.weighted
            )
        return self._targeted_row(s, t, view)

    def _targeted_row(
        self, s: int, t: int, view: CsrView
    ) -> tuple[list[float], list[int]]:
        """One early-exit canonical search toward *t* (no caching)."""
        if self.weighted:
            dist, pred, _ = dijkstra_csr_canonical(view, s, targets=(t,))
            return dist, pred
        return bfs_csr(view, s, target=t)

    def distances(
        self, source: Node, scenario_or_view=None
    ) -> dict[Node, float]:
        """Dict of post-failure distances from *source* (repair-based)."""
        view = (
            CsrView(self.csr)
            if scenario_or_view is None
            else self.view_for(scenario_or_view)
        )
        dist, _ = self.repaired_row(source, view)
        nodes = self.csr.nodes
        return {nodes[i]: d for i, d in enumerate(dist) if d != INF}


def _chain(csr: CsrGraph, pred: list[int], s: int, t: int) -> list[Node]:
    chain = [t]
    x = t
    while x != s:
        x = pred[x]
        chain.append(x)
    chain.reverse()
    return [csr.nodes[i] for i in chain]


def csr_shortest_path(
    graph, source: Node, target: Node, weighted: bool = True
) -> Optional[Path]:
    """CSR-backed drop-in for :func:`repro.graph.shortest_paths.shortest_path`.

    Dispatches on the argument: a :class:`FilteredView` over an
    undirected base becomes a mask on the base's **shared
    per-process** :class:`SptCache` (so one-shot callers like figure10,
    table3 bypasses and the restoration planners amortize pre-failure
    rows across the many failure cases of the same pair, exactly like
    table2); a bare undirected :class:`Graph` queries the same cache
    with an empty mask.  Returns ``None`` when the argument is outside
    the fast path (directed graphs, non-weakref-able objects, nodes
    added after the snapshot) so the caller can fall back to the dict
    implementation.  Raises :class:`~repro.exceptions.NoPath` exactly
    like the original.
    """
    base = getattr(graph, "base", None)
    filtered = base is not None
    if not filtered:
        base = graph
    if getattr(base, "directed", False):
        return None
    # Lazy import: repro.core.cache imports SptCache from this module.
    from ..core.cache import shared_spt_cache

    try:
        cache = shared_spt_cache(base, weighted=weighted)
    except TypeError:  # pragma: no cover - Graph is weakref-able
        return None
    csr = cache.csr
    if source not in csr.index or target not in csr.index:
        return None  # node added after the snapshot; stay on dict path
    view = cache.view_for(graph) if filtered else CsrView(csr)
    return cache.backup_path(source, target, view)


def fast_shortest_path(
    graph, source: Node, target: Node, weighted: bool = True
) -> Path:
    """:func:`~repro.graph.shortest_paths.shortest_path` on flat arrays.

    Same results, same exceptions; falls back to the dict implementation
    transparently whenever the argument is outside the CSR fast path.
    """
    path = csr_shortest_path(graph, source, target, weighted=weighted)
    if path is None:
        return shortest_path(graph, source, target, weighted=weighted)
    return path
