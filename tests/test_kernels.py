"""Kernel backend equivalence: the accelerated backends vs. the reference.

The backend contract (:mod:`repro.kernels`) is that every backend is a
drop-in for the pure-Python reference — same rows, same repaired SPTs,
same decomposition columns, same perf counters, bit for bit.  This
suite pins that contract over a representative of every topology
family the repo generates (the same 13-family sweep as
``tests/test_shm.py``), for clean views and for views with dead edges
and dead nodes, for **both** accelerated backends: ``numpy`` (under
the scipy settle stage *and* the Bellman–Ford fallback it uses when
scipy is absent) and ``native`` (the compiled C kernels).

The numpy vectorized stages are called directly
(``_repair_resettle_vec``, ``_decompose_flat_vec``) so the size gates
— which route small inputs to the reference loops — cannot hide a
divergence; the native backend has no gates, so its public entry
points are exercised at every input size.

Tie-heavy graphs matter most here: on unit-weight topologies (grid,
cycle, comb) nearly every node has several tight parents, so any
deviation from the canonical ``(dist[parent], parent index)`` rule
shows up immediately.  Backend-specific cases are skipped when that
backend is unavailable (numpy not installed / no C toolchain); the
selection tests below run regardless.
"""

from __future__ import annotations

import random

import pytest

from repro.graph.csr import as_view, shared_csr
from repro.kernels import (
    KERNEL_CHOICES,
    available_backends,
    backend_name,
    set_backend,
)
from repro.kernels import python_backend as pyk
from repro.perf import COUNTERS
from repro.topology import (
    complete_graph,
    cycle_graph,
    four_cycle,
    generate_as_graph,
    generate_internet_graph,
    generate_isp_topology,
    grid_graph,
    path_graph,
)
from repro.topology.classic import (
    comb_graph,
    two_level_star,
    weighted_comb_graph,
)
from repro.topology.powerlaw import preferential_attachment

try:  # try/except, not find_spec: a broken numpy must also skip
    from repro.kernels import numpy_backend as npk

    numpy_missing = False
except ImportError:
    npk = None
    numpy_missing = True

try:  # importing builds the cached .so; no toolchain must skip
    from repro.kernels import native_backend as natk

    native_missing = False
except ImportError:
    natk = None
    native_missing = True

requires_numpy = pytest.mark.skipif(
    numpy_missing, reason="numpy not installed ([accel] extra)"
)
requires_native = pytest.mark.skipif(
    native_missing, reason="no C toolchain for the native backend"
)

#: The accelerated backends every bit-identity case runs against.
ACCEL_PARAMS = pytest.mark.parametrize("accel", ["numpy", "native"])


def _accel_module(accel):
    """The backend module for *accel*, skipping when unavailable."""
    if accel == "numpy":
        if numpy_missing:
            pytest.skip("numpy not installed ([accel] extra)")
        return npk
    if native_missing:
        pytest.skip("no C toolchain for the native backend")
    return natk

#: Same representatives as the shared-memory sweep in tests/test_shm.py.
TOPOLOGY_FAMILIES = [
    ("path", lambda: path_graph(7)),
    ("cycle", lambda: cycle_graph(6)),
    ("four-cycle", lambda: four_cycle()),
    ("complete", lambda: complete_graph(5)),
    ("grid", lambda: grid_graph(3, 4)),
    ("comb", lambda: comb_graph(4)[0]),
    ("weighted-comb", lambda: weighted_comb_graph(4)[0]),
    ("two-level-star", lambda: two_level_star(7)[0]),
    ("isp-weighted", lambda: generate_isp_topology(n=40, seed=3)),
    ("isp-unweighted", lambda: generate_isp_topology(n=40, seed=3, weighted=False)),
    ("powerlaw", lambda: preferential_attachment(50, 2.0, seed=5)),
    ("as-graph", lambda: generate_as_graph(n=60, seed=2)),
    ("internet", lambda: generate_internet_graph(n=60, seed=2)),
]

FAMILY_PARAMS = pytest.mark.parametrize(
    "family", [f for _, f in TOPOLOGY_FAMILIES],
    ids=[name for name, _ in TOPOLOGY_FAMILIES],
)


def _view_variants(graph):
    """Clean view plus dead-edge and dead-node views of *graph*."""
    csr = shared_csr(graph)
    base = as_view(csr)
    yield "clean", base
    edges = sorted(graph.edges(), key=repr)  # labels mix str and int
    if edges:
        yield "dead-edges", base.without(edges=edges[: 1 + len(edges) // 6])
    if csr.n > 2:
        victims = csr.nodes[csr.n // 2 : csr.n // 2 + 1 + csr.n // 8]
        yield "dead-nodes", base.without(nodes=victims)


def _alive_sources(view):
    node_dead = view.masks()[1]
    return [i for i in range(view.csr.n) if not node_dead[i]]


def _reference_rows(view, sources, unit):
    """Per-source rows from the reference backend, with a counter delta."""
    before = COUNTERS.snapshot()
    rows = {}
    for s in sources:
        if unit:
            rows[s] = pyk.bfs(view, s)
        else:
            dist, pred, _ = pyk.dijkstra_canonical(view, s)
            rows[s] = (dist, pred)
    return rows, COUNTERS.delta(before)


class TestRowsBitIdentity:
    """Batched accelerated rows == per-source reference rows, exactly."""

    def _assert_family(self, family, mod):
        graph = family()
        for label, view in _view_variants(graph):
            sources = _alive_sources(view)
            for unit in (False, True):
                expected, ref_delta = _reference_rows(view, sources, unit)
                before = COUNTERS.snapshot()
                got = mod.rows_many(view, sources, unit)
                acc_delta = COUNTERS.delta(before)
                assert got is not None, (label, unit)
                assert got == expected, (label, unit)
                assert acc_delta == ref_delta, (label, unit)

    @ACCEL_PARAMS
    @FAMILY_PARAMS
    def test_rows_match(self, family, accel):
        self._assert_family(family, _accel_module(accel))

    @requires_numpy
    @FAMILY_PARAMS
    def test_rows_match_without_scipy(self, family, monkeypatch):
        """The Bellman–Ford fallback settle is equally bit-identical."""
        monkeypatch.setattr(npk, "_sp_dijkstra", None)
        monkeypatch.setattr(npk, "_sp_csr_matrix", None)
        self._assert_family(family, npk)

    @ACCEL_PARAMS
    def test_single_row_entry_points_match(self, accel):
        """dijkstra_canonical/bfs dispatch above the numpy size gate too."""
        mod = _accel_module(accel)
        graph = generate_isp_topology(n=500, seed=9)
        view = as_view(shared_csr(graph))
        if accel == "numpy":
            assert view.csr.n >= npk.SINGLE_MIN_N
        dist, pred, exhausted = mod.dijkstra_canonical(view, 0)
        rd, rp, _ = pyk.dijkstra_canonical(view, 0)
        assert exhausted and (dist, pred) == (rd, rp)
        unit_view = as_view(
            shared_csr(generate_isp_topology(n=500, seed=9, weighted=False))
        )
        assert mod.bfs(unit_view, 3) == pyk.bfs(unit_view, 3)

    @ACCEL_PARAMS
    def test_targeted_queries_keep_the_reference_truncation(self, accel):
        """Early-exit probes must not be silently widened to full rows."""
        mod = _accel_module(accel)
        graph = generate_isp_topology(n=500, seed=9)
        view = as_view(shared_csr(graph))
        before = COUNTERS.snapshot()
        dist, pred, exhausted = mod.dijkstra_canonical(view, 0, targets=[1])
        delta = COUNTERS.delta(before)
        before = COUNTERS.snapshot()
        rd, rp, re_ = pyk.dijkstra_canonical(view, 0, targets=[1])
        ref_delta = COUNTERS.delta(before)
        assert (dist, pred, exhausted) == (rd, rp, re_)
        assert delta == ref_delta
        assert delta.csr_settled < view.csr.n  # truncated, not exhaustive


def _repair_entry(accel):
    """The no-gate repair entry point for *accel*.

    numpy's vectorized body is called directly so its size gate cannot
    hide a divergence on small affected sets; the native backend has no
    gate, so its public entry point already runs native at every size.
    """
    mod = _accel_module(accel)
    return mod._repair_resettle_vec if accel == "numpy" else mod.repair_resettle


def _decompose_entry(accel):
    """The no-gate decomposition DP entry point for *accel*."""
    mod = _accel_module(accel)
    return mod._decompose_flat_vec if accel == "numpy" else mod.decompose_flat


class TestRepairBitIdentity:
    """Accelerated SPT re-settle == the boundary-offer reference loop."""

    def _repair_cases(self, graph, unit):
        """Yield (view, source, dist, pred, affected) repair instances."""
        csr = shared_csr(graph)
        base = as_view(csr)
        nodes = csr.nodes
        rng = random.Random(11)
        for source in (0, csr.n // 2):
            if unit:
                dist, pred = pyk.bfs(base, source)
            else:
                dist, pred, _ = pyk.dijkstra_canonical(base, source)
            tree_nodes = [v for v in range(csr.n) if pred[v] >= 0]
            if not tree_nodes:
                continue
            for k in (1, 3):
                picks = rng.sample(tree_nodes, min(k, len(tree_nodes)))
                failed = [(nodes[pred[v]], nodes[v]) for v in picks]
                view = base.without(edges=failed)
                children: dict[int, list[int]] = {}
                for v in range(csr.n):
                    if pred[v] >= 0:
                        children.setdefault(pred[v], []).append(v)
                affected: set[int] = set()
                stack = list(picks)
                while stack:
                    x = stack.pop()
                    if x in affected:
                        continue
                    affected.add(x)
                    stack.extend(children.get(x, ()))
                affected.discard(source)
                if affected:
                    yield view, source, dist, pred, affected

    def _assert_repairs(self, graph, unit, entry):
        for view, source, dist, pred, affected in self._repair_cases(graph, unit):
            before = COUNTERS.snapshot()
            ref = pyk.repair_resettle(
                view, source, list(dist), list(pred), set(affected), unit
            )
            ref_delta = COUNTERS.delta(before)
            before = COUNTERS.snapshot()
            acc = entry(
                view, source, list(dist), list(pred), set(affected), unit
            )
            acc_delta = COUNTERS.delta(before)
            assert acc == ref
            assert acc_delta == ref_delta

    @ACCEL_PARAMS
    @FAMILY_PARAMS
    def test_repaired_rows_match(self, family, accel):
        graph = family()
        entry = _repair_entry(accel)
        self._assert_repairs(graph, unit=False, entry=entry)
        self._assert_repairs(graph, unit=True, entry=entry)

    @requires_numpy
    @FAMILY_PARAMS
    def test_repaired_rows_match_without_scipy(self, family, monkeypatch):
        monkeypatch.setattr(npk, "_sp_dijkstra", None)
        monkeypatch.setattr(npk, "_sp_csr_matrix", None)
        graph = family()
        self._assert_repairs(graph, unit=False, entry=npk._repair_resettle_vec)


class TestDecomposeBitIdentity:
    """Accelerated decomposition DP == the forward reference DP, exactly."""

    def _chains(self, graph, rng):
        """Random simple walks through *graph*, as index chains + costs."""
        csr = shared_csr(graph)
        view = as_view(csr)
        indptr, indices, weights = csr.indptr, csr.indices, csr.weights
        for _ in range(6):
            chain = [rng.randrange(csr.n)]
            cum = [0.0]
            seen = {chain[0]}
            while len(chain) < 40:
                u = chain[-1]
                nbrs = [
                    (indices[s], weights[s])
                    for s in range(indptr[u], indptr[u + 1])
                    if indices[s] not in seen
                ]
                if not nbrs:
                    break
                v, w = rng.choice(nbrs)
                chain.append(v)
                cum.append(cum[-1] + w)
                seen.add(v)
            if len(chain) >= 3:
                yield view, tuple(chain), cum

    @ACCEL_PARAMS
    @FAMILY_PARAMS
    def test_decomposition_columns_match(self, family, accel):
        graph = family()
        entry = _decompose_entry(accel)
        rng = random.Random(23)
        for view, chain, cum in self._chains(graph, rng):
            # Pre-warmed rows: row_for must not touch the csr counters,
            # so the probe deltas below compare only the DP itself.
            rows = {
                j: pyk.dijkstra_canonical(view, chain[j])[0]
                for j in range(len(chain))
            }
            row_for = rows.__getitem__
            before = COUNTERS.snapshot()
            ref = pyk.decompose_flat(chain, cum, row_for)
            ref_delta = COUNTERS.delta(before)
            before = COUNTERS.snapshot()
            acc = entry(chain, cum, row_for)
            acc_delta = COUNTERS.delta(before)
            assert acc == ref
            assert acc_delta == ref_delta

    @requires_native
    def test_native_fetches_rows_lazily_like_the_reference(self):
        """Row callbacks fire for exactly the same ``j`` sequence."""
        graph = generate_isp_topology(n=40, seed=3)
        csr = shared_csr(graph)
        view = as_view(csr)
        chain = tuple(range(0, min(csr.n, 12)))
        dist0, _, _ = pyk.dijkstra_canonical(view, chain[0])
        cum = [0.0]
        for k in range(1, len(chain)):
            d = pyk.dijkstra_canonical(view, chain[k - 1], [chain[k]])[0]
            cum.append(cum[-1] + d[chain[k]])
        rows = {
            j: pyk.dijkstra_canonical(view, chain[j])[0]
            for j in range(len(chain))
        }
        ref_calls: list[int] = []
        ref = pyk.decompose_flat(
            chain, cum, lambda j: (ref_calls.append(j), rows[j])[1]
        )
        nat_calls: list[int] = []
        nat = natk.decompose_flat(
            chain, cum, lambda j: (nat_calls.append(j), rows[j])[1]
        )
        assert nat == ref
        assert nat_calls == ref_calls

    @requires_native
    def test_native_propagates_row_callback_errors(self):
        def boom(j):
            raise ValueError("row fetch failed")

        with pytest.raises(ValueError, match="row fetch failed"):
            natk.decompose_flat((1, 2, 3, 4), [0.0, 1.0, 2.0, 3.0], boom)


class TestSelection:
    """Backend selection: env var, --kernel, and the auto fallback."""

    @pytest.fixture(autouse=True)
    def _restore_backend(self):
        previous = backend_name()
        yield
        set_backend(previous)

    def test_choices_cover_all_backends(self):
        assert set(KERNEL_CHOICES) == {"auto", "python", "numpy", "native"}
        assert available_backends()[0] == "python"

    def test_set_backend_round_trips_and_exports(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        set_backend("python")
        assert backend_name() == "python"
        # The resolved name is exported so forked/spawned workers make
        # the same deterministic choice instead of re-running "auto".
        assert os.environ.get("REPRO_KERNEL") == "python"

    @requires_native
    def test_auto_prefers_native_when_buildable(self):
        set_backend("auto")
        assert backend_name() == "native"

    @requires_numpy
    def test_auto_prefers_numpy_over_python(self):
        # auto's full precedence chain (native → numpy → python) with a
        # simulated missing toolchain lives in tests/test_native_backend.py;
        # here we only pin that numpy outranks the reference.
        set_backend("auto")
        assert backend_name() in ("native", "numpy")

    @requires_numpy
    def test_explicit_numpy_resolves(self):
        set_backend("numpy")
        assert backend_name() == "numpy"

    @requires_native
    def test_explicit_native_resolves(self):
        set_backend("native")
        assert backend_name() == "native"

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_backend("fortran")

    def test_reference_backend_has_the_full_interface(self):
        for attr in (
            "NAME", "dijkstra_canonical", "bfs", "rows_many",
            "repair_resettle", "decompose_flat",
        ):
            assert hasattr(pyk, attr)
