"""Technology cost model — the Section 1 MPLS / WDM / ATM trade-off.

"In considering the application of our restoration schemes to other
technologies such as WDM and ATM, the trade-off between the cost of
setting up and tearing down virtual circuits versus the cost of path
concatenation has to be evaluated.  The higher the former cost and the
lower the latter, the more attractive our scheme."

This module makes that sentence computable.  A
:class:`TechnologyProfile` prices the three primitive operations:

* ``concat_cost`` — joining two pre-established paths at a junction
  (an MPLS stack pop is ~free; WDM/ATM must "go up to layer 3" and do
  a per-junction lookup);
* ``setup_cost_per_hop`` / ``teardown_cost_per_hop`` — signaling and
  cross-connect work to build/remove a circuit (cheap in MPLS, very
  expensive in WDM where it reconfigures optical switches).

:func:`restoration_cost` prices restoring one demand by concatenation
vs. by circuit re-establishment under a profile, so the paper's
qualitative claim — RBPC wins in MPLS and WDM, ATM is "less clear" —
becomes a reproducible comparison (see ``bench_technology.py``).
Costs are abstract units (think: control-plane operations weighted by
latency); only ratios matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from .decomposition import Decomposition
from ..graph.paths import Path


@dataclass(frozen=True)
class TechnologyProfile:
    """Per-operation costs of one transport technology."""

    name: str
    concat_cost: float  # per junction between concatenated pieces
    setup_cost_per_hop: float
    teardown_cost_per_hop: float

    def __post_init__(self) -> None:
        if min(self.concat_cost, self.setup_cost_per_hop, self.teardown_cost_per_hop) < 0:
            raise ValueError("costs must be non-negative")


#: MPLS: stack push/pop in the forwarding path — concatenation is free;
#: LSP setup needs LDP signaling per hop.
MPLS = TechnologyProfile("MPLS", concat_cost=0.1, setup_cost_per_hop=2.0, teardown_cost_per_hop=1.0)

#: WDM: concatenation means an O-E-O hop to layer 3 at the junction
#: (noticeable), but lightpath setup/teardown reconfigures optical
#: cross-connects — an order of magnitude costlier.
WDM = TechnologyProfile("WDM", concat_cost=5.0, setup_cost_per_hop=50.0, teardown_cost_per_hop=25.0)

#: ATM: VP concatenation needs a per-junction VC lookup, and circuit
#: setup is moderately priced — the paper calls this trade-off
#: "less clear", and the numbers land close together.
ATM = TechnologyProfile("ATM", concat_cost=3.0, setup_cost_per_hop=4.0, teardown_cost_per_hop=2.0)

PROFILES = (MPLS, WDM, ATM)


def concatenation_restoration_cost(
    profile: TechnologyProfile, decomposition: Decomposition
) -> float:
    """Cost of restoring by concatenating pre-established pieces.

    One junction between consecutive pieces; nothing is set up or torn
    down (the broken circuit is simply left idle until recovery).
    """
    junctions = max(0, decomposition.num_pieces - 1)
    return junctions * profile.concat_cost


def reestablishment_restoration_cost(
    profile: TechnologyProfile, primary: Path, backup: Path
) -> float:
    """Cost of restoring by tearing down the circuit and signaling anew."""
    return (
        primary.hops * profile.teardown_cost_per_hop
        + backup.hops * profile.setup_cost_per_hop
    )


def concatenation_advantage(
    profile: TechnologyProfile, decomposition: Decomposition, primary: Path
) -> float:
    """How many times cheaper concatenation is than re-establishment.

    Values above 1 mean RBPC wins under *profile* for this restoration;
    the paper expects large values for MPLS and WDM and a modest one
    for ATM.
    """
    concat = concatenation_restoration_cost(profile, decomposition)
    rebuild = reestablishment_restoration_cost(profile, primary, decomposition.path)
    if concat == 0:
        return float("inf")
    return rebuild / concat
