"""String-keyed registries for policies and failure models.

Mirrors the :mod:`repro.kernels` selection pattern: a process-wide
active name resolved from an environment variable (``REPRO_POLICY`` /
``REPRO_FAILURE_MODEL``), a ``set_*`` that *exports* the resolved name
back into the environment so forked or spawned workers inherit a
deterministic choice, and ``add_policy_arguments`` /
``apply_policy_arguments`` to hang the documented CLI knobs off every
experiment parser (applied before the first worker fork, exactly like
``--kernel``).

Registration is idempotent for the same factory and refuses a
conflicting re-bind; unknown names raise with the sorted list of
available names (both pinned by ``tests/test_policies.py``).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional

#: Environment variables the active selections live in.
POLICY_ENV = "REPRO_POLICY"
FAILURE_MODEL_ENV = "REPRO_FAILURE_MODEL"

#: The paper's scheme / the paper's sampling: today's hard-wired
#: behavior, byte-identical by construction.
DEFAULT_POLICY = "concatenation"
DEFAULT_FAILURE_MODEL = "independent"


class Registry:
    """A named factory table with strict, idempotent registration."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Callable[..., Any]] = {}

    def register(self, name: str, factory: Callable[..., Any]) -> None:
        """Bind *name* to *factory*.

        Re-registering the identical factory is a no-op (module reloads
        and repeated bootstraps are safe); binding a *different*
        factory to a taken name raises — silent shadowing would make
        ``--policy`` runs irreproducible.
        """
        existing = self._factories.get(name)
        if existing is not None and existing is not factory:
            raise ValueError(
                f"{self.kind} {name!r} is already registered "
                f"to a different factory"
            )
        self._factories[name] = factory

    def get(self, name: str) -> Callable[..., Any]:
        """The factory for *name*; unknown names list what exists."""
        try:
            return self._factories[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; "
                f"available: {', '.join(self.names())}"
            ) from None

    def names(self) -> list[str]:
        """Sorted registered names."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories


#: The two registries of this package.  Populated by
#: :func:`ensure_registered` (policies from
#: :mod:`repro.policies.schemes`, failure models from
#: :mod:`repro.failures.generators`) — lazily, because the scheme
#: implementations import core/experiment modules that themselves
#: import :mod:`repro.policies.base`.
POLICIES = Registry("policy")
FAILURE_MODELS = Registry("failure model")

_BOOTSTRAPPED = False


def ensure_registered() -> None:
    """Import the built-in policies and failure models (idempotent)."""
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED:
        return
    _BOOTSTRAPPED = True
    from . import schemes  # noqa: F401  (registers POLICIES)
    from ..failures import generators  # noqa: F401  (registers FAILURE_MODELS)


def _active_name(env: str, default: str, registry: Registry) -> str:
    ensure_registered()
    name = os.environ.get(env, default).strip() or default
    registry.get(name)  # unknown names fail loudly, with the list
    return name


def active_policy_name() -> str:
    """The process-wide policy name (env ``REPRO_POLICY`` or default)."""
    return _active_name(POLICY_ENV, DEFAULT_POLICY, POLICIES)


def active_failure_model_name() -> str:
    """The process-wide failure-model name (env or default)."""
    return _active_name(FAILURE_MODEL_ENV, DEFAULT_FAILURE_MODEL, FAILURE_MODELS)


def set_policy(name: str) -> str:
    """Select a policy process-wide; returns the previously active name.

    Exports the name into ``REPRO_POLICY`` so worker processes — forked
    or spawned — inherit the same resolved choice (the ``REPRO_KERNEL``
    pre-fork export pattern).
    """
    ensure_registered()
    POLICIES.get(name)
    old = active_policy_name()
    os.environ[POLICY_ENV] = name
    return old


def set_failure_model(name: str) -> str:
    """Select a failure model process-wide; returns the previous name."""
    ensure_registered()
    FAILURE_MODELS.get(name)
    old = active_failure_model_name()
    os.environ[FAILURE_MODEL_ENV] = name
    return old


def make_policy(name: str, graph, base=None, weighted: bool = True):
    """Instantiate the policy *name* for one (graph, base, weighted)."""
    ensure_registered()
    return POLICIES.get(name)(graph, base=base, weighted=weighted)


def make_failure_model(name: str, graph, seed: int = 1):
    """Instantiate the failure model *name* for one (graph, seed)."""
    ensure_registered()
    return FAILURE_MODELS.get(name)(graph, seed=seed)


def policy_names() -> list[str]:
    """Registered policy names (sorted)."""
    ensure_registered()
    return POLICIES.names()


def failure_model_names() -> list[str]:
    """Registered failure-model names (sorted)."""
    ensure_registered()
    return FAILURE_MODELS.names()


def add_policy_arguments(parser: Any) -> None:
    """Attach the documented ``--policy``/``--failure-model`` knobs."""
    parser.add_argument(
        "--policy", choices=policy_names(), default=None,
        help="restoration policy (default: env REPRO_POLICY or "
             f"{DEFAULT_POLICY!r} — the paper's scheme; default runs are "
             "byte-identical to the pre-policy pipeline)",
    )
    parser.add_argument(
        "--failure-model", choices=failure_model_names(), default=None,
        help="failure generation model (default: env REPRO_FAILURE_MODEL "
             f"or {DEFAULT_FAILURE_MODEL!r} — the paper's independent "
             "on-path sampling)",
    )


def apply_policy_arguments(args: Any) -> None:
    """Install ``--policy``/``--failure-model`` process-wide.

    Call before forking workers, exactly like
    :func:`repro.kernels.apply_kernel`.
    """
    value: Optional[str] = getattr(args, "policy", None)
    if value is not None:
        set_policy(value)
    value = getattr(args, "failure_model", None)
    if value is not None:
        set_failure_model(value)
