"""Failure scenarios: which links/routers are down, and what survives.

A :class:`FailureScenario` is an immutable description of a fault set.
Applying it to a graph yields the zero-copy surviving view on which all
restoration computations run.  Helpers classify scenarios the way the
paper's Table 2 groups them (one link / two links / one router / two
routers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.graph import Edge, FilteredView, Graph, Node, edge_key


@dataclass(frozen=True)
class FailureScenario:
    """An immutable set of failed links and routers."""

    links: frozenset[Edge] = field(default_factory=frozenset)
    routers: frozenset[Node] = field(default_factory=frozenset)

    @classmethod
    def single_link(cls, u: Node, v: Node) -> "FailureScenario":
        """Scenario failing exactly the link *(u, v)*."""
        return cls(links=frozenset({edge_key(u, v)}))

    @classmethod
    def link_set(cls, edges) -> "FailureScenario":
        """Scenario failing the given links."""
        return cls(links=frozenset(edge_key(u, v) for u, v in edges))

    @classmethod
    def single_router(cls, router: Node) -> "FailureScenario":
        """Scenario failing exactly one router."""
        return cls(routers=frozenset({router}))

    @classmethod
    def router_set(cls, routers) -> "FailureScenario":
        """Scenario failing the given routers."""
        return cls(routers=frozenset(routers))

    @property
    def k_links(self) -> int:
        """Number of failed links."""
        return len(self.links)

    @property
    def k_routers(self) -> int:
        """Number of failed routers."""
        return len(self.routers)

    @property
    def is_empty(self) -> bool:
        """True when nothing is failed."""
        return not self.links and not self.routers

    def apply(self, graph: Graph) -> FilteredView:
        """The surviving topology under this scenario."""
        return graph.without(edges=self.links, nodes=self.routers)

    def effective_k_edges(self, graph: Graph) -> int:
        """The *k* of Theorems 1-2: failed edges, with each failed router
        counted as the failure of all its incident edges."""
        k = len(self.links)
        counted = set(self.links)
        for router in self.routers:
            if graph.has_node(router):
                for neighbor in graph.neighbors(router):
                    key = edge_key(router, neighbor)
                    if key not in counted:
                        counted.add(key)
                        k += 1
        return k

    def disturbs(self, path) -> bool:
        """True if the scenario breaks *path* (kills an edge or interior/endpoint router)."""
        if any(node in self.routers for node in path.nodes):
            return True
        return any(key in self.links for key in path.edge_keys())

    def merge(self, other: "FailureScenario") -> "FailureScenario":
        """Union of this scenario's failures with another's."""
        return FailureScenario(
            links=self.links | other.links, routers=self.routers | other.routers
        )

    def __repr__(self) -> str:
        parts = []
        if self.links:
            parts.append(f"links={sorted(map(repr, self.links))}")
        if self.routers:
            parts.append(f"routers={sorted(map(repr, self.routers))}")
        return f"FailureScenario({', '.join(parts) or 'empty'})"
