"""Tests for failure scenarios and the Section 5 sampling methodology."""

from __future__ import annotations

import pytest

from repro.failures.generators import (
    IndependentLinkFailures,
    RegionalFailures,
    RouterLinkFailures,
    SrlgFailures,
)
from repro.failures.models import FailureScenario
from repro.failures.sampler import (
    FAILURE_MODES,
    cases_for_pair,
    link_failure_cases,
    random_link_scenarios,
    router_failure_cases,
    sample_pairs,
)
from repro.graph.graph import Graph
from repro.graph.paths import Path


class TestScenario:
    def test_single_link(self):
        s = FailureScenario.single_link(2, 1)
        assert s.links == frozenset({(1, 2)})
        assert s.k_links == 1 and s.k_routers == 0

    def test_apply_removes_failures(self, diamond):
        s = FailureScenario.link_set([(1, 2)]).merge(
            FailureScenario.single_router(3)
        )
        view = s.apply(diamond)
        assert not view.has_edge(1, 2)
        assert not view.has_node(3)

    def test_effective_k_counts_router_edges(self, diamond):
        s = FailureScenario.single_router(2)
        assert s.effective_k_edges(diamond) == 3  # deg(2) = 3

    def test_effective_k_deduplicates(self, diamond):
        s = FailureScenario.link_set([(1, 2)]).merge(FailureScenario.single_router(2))
        # Edge (1,2) counted once even though it is failed and incident.
        assert s.effective_k_edges(diamond) == 3

    def test_disturbs_edge_and_router(self):
        p = Path([1, 2, 3])
        assert FailureScenario.single_link(2, 1).disturbs(p)
        assert FailureScenario.single_router(2).disturbs(p)
        assert not FailureScenario.single_link(3, 4).disturbs(p)
        assert not FailureScenario.single_router(9).disturbs(p)

    def test_empty(self):
        assert FailureScenario().is_empty


class TestScenarioEdgeCases:
    def test_link_set_deduplicates_both_orientations(self):
        s = FailureScenario.link_set([(1, 2), (2, 1), (1, 2)])
        assert s.links == frozenset({(1, 2)})
        assert s.k_links == 1

    def test_router_set(self):
        s = FailureScenario.router_set([3, 2, 3])
        assert s.routers == frozenset({2, 3})
        assert s.k_routers == 2 and s.k_links == 0

    def test_merge_unions_both_kinds(self):
        a = FailureScenario.link_set([(1, 2)]).merge(
            FailureScenario.single_router(3)
        )
        b = FailureScenario.link_set([(2, 1), (2, 3)]).merge(
            FailureScenario.router_set([3, 4])
        )
        merged = a.merge(b)
        assert merged.links == frozenset({(1, 2), (2, 3)})
        assert merged.routers == frozenset({3, 4})

    def test_merge_with_empty_is_identity(self):
        s = FailureScenario.link_set([(1, 2)]).merge(
            FailureScenario.single_router(4)
        )
        assert s.merge(FailureScenario()) == s
        assert FailureScenario().merge(s) == s

    def test_empty_scenario_disturbs_nothing(self, diamond):
        empty = FailureScenario()
        assert not empty.disturbs(Path([1, 2, 4]))
        assert empty.effective_k_edges(diamond) == 0
        view = empty.apply(diamond)
        assert view.has_edge(1, 2) and view.has_node(3)

    def test_effective_k_multi_link_router_combo(self, diamond):
        # Links (1,2) and (3,4) plus router 2 (incident to 1,3,4):
        # (1,2) is both failed and incident — counted once.
        s = FailureScenario.link_set([(1, 2), (3, 4)]).merge(
            FailureScenario.single_router(2)
        )
        assert s.effective_k_edges(diamond) == 4

    def test_effective_k_ignores_absent_routers(self, diamond):
        s = FailureScenario.single_router(99)
        assert s.effective_k_edges(diamond) == 0

    def test_disturbs_multi_link_router_combo(self):
        s = FailureScenario.link_set([(2, 3)]).merge(
            FailureScenario.single_router(5)
        )
        assert s.disturbs(Path([1, 2, 3, 4]))  # via the failed link
        assert s.disturbs(Path([4, 5, 6]))  # via the failed router
        assert not s.disturbs(Path([1, 6, 7]))
        assert s.disturbs(Path([5]))  # endpoint router counts too


class TestSamplePairs:
    def test_count_and_determinism(self, small_isp):
        a = sample_pairs(small_isp, 20, seed=5)
        b = sample_pairs(small_isp, 20, seed=5)
        assert a == b
        assert len(a) == 20
        assert all(s != t for s, t in a)

    def test_distinct_pairs(self, small_isp):
        pairs = sample_pairs(small_isp, 30, seed=1)
        assert len(set(pairs)) == 30

    def test_connected_requirement(self):
        g = Graph.from_edges([(1, 2), (3, 4)])
        pairs = sample_pairs(g, 2, seed=1)
        components = ({1, 2}, {3, 4})
        for s, t in pairs:
            assert any(s in c and t in c for c in components)

    def test_impossible_count_raises(self):
        g = Graph.from_edges([(1, 2)])
        with pytest.raises(ValueError):
            sample_pairs(g, 50, seed=1)

    def test_too_few_nodes_raises(self):
        g = Graph()
        g.add_node(1)
        with pytest.raises(ValueError):
            sample_pairs(g, 1)


class TestCaseGeneration:
    def test_single_link_cases_cover_path_edges(self):
        primary = Path([1, 2, 3, 4])
        cases = list(link_failure_cases((1, 4), primary, k=1))
        assert len(cases) == 3
        assert {next(iter(c.scenario.links)) for c in cases} == {
            (1, 2),
            (2, 3),
            (3, 4),
        }

    def test_two_link_cases_are_pairs(self):
        primary = Path([1, 2, 3, 4])
        cases = list(link_failure_cases((1, 4), primary, k=2))
        assert len(cases) == 3  # C(3, 2)
        assert all(c.scenario.k_links == 2 for c in cases)

    def test_short_path_has_no_two_link_cases(self):
        primary = Path([1, 2])
        assert list(link_failure_cases((1, 2), primary, k=2)) == []

    def test_router_cases_exclude_endpoints(self):
        primary = Path([1, 2, 3, 4])
        cases = list(router_failure_cases((1, 4), primary, k=1))
        assert {next(iter(c.scenario.routers)) for c in cases} == {2, 3}

    def test_two_router_cases(self):
        primary = Path([1, 2, 3, 4, 5])
        cases = list(router_failure_cases((1, 5), primary, k=2))
        assert len(cases) == 3  # C(3, 2)

    def test_dispatch_modes(self):
        primary = Path([1, 2, 3, 4])
        for mode in FAILURE_MODES:
            assert list(cases_for_pair((1, 4), primary, mode)) is not None
        with pytest.raises(ValueError):
            list(cases_for_pair((1, 4), primary, "meteor-strike"))


class TestRandomScenarios:
    def test_counts_and_k(self, small_isp):
        scenarios = random_link_scenarios(small_isp, 10, k=2, seed=3)
        assert len(scenarios) == 10
        assert all(s.k_links == 2 for s in scenarios)

    def test_deterministic(self, small_isp):
        a = random_link_scenarios(small_isp, 5, k=1, seed=3)
        b = random_link_scenarios(small_isp, 5, k=1, seed=3)
        assert a == b

    def test_too_few_edges_raises(self):
        g = Graph.from_edges([(1, 2)])
        with pytest.raises(ValueError):
            random_link_scenarios(g, 1, k=2)


class TestFailureModels:
    def test_default_model_yields_sampler_cases_unchanged(self, small_isp):
        from repro.core.cache import shared_unique_base

        model = IndependentLinkFailures(small_isp)
        pair = sample_pairs(small_isp, 4, seed=2)[0]
        primary = shared_unique_base(small_isp).path_for(*pair)
        assert list(model.cases_for_pair(pair, primary, "link")) == list(
            cases_for_pair(pair, primary, "link")
        )

    def test_identity_expand_returns_same_object(self, small_isp):
        model = IndependentLinkFailures(small_isp)
        s = FailureScenario.link_set([(1, 2)])
        assert model.expand(s) is s

    def test_srlg_partition_is_deterministic_and_total(self, small_isp):
        a = SrlgFailures(small_isp, seed=3)
        b = SrlgFailures(small_isp, seed=3)
        for u, v in small_isp.edges():
            group = a.group_of((u, v))
            assert group == b.group_of((u, v))
            assert (min(u, v), max(u, v)) in group or any(
                e in group for e in [(u, v), (v, u)]
            )
            assert 1 <= len(group) <= 2

    def test_srlg_expand_drags_the_whole_group(self, small_isp):
        model = SrlgFailures(small_isp, seed=1)
        edge = next(iter(small_isp.edges()))
        scenario = model.scenario_for_link(edge)
        assert scenario.links == model.group_of(edge)
        assert scenario.k_links == len(model.group_of(edge))

    def test_srlg_expand_is_idempotent_and_preserves_identity(self, small_isp):
        model = SrlgFailures(small_isp, seed=1)
        edge = next(iter(small_isp.edges()))
        expanded = model.scenario_for_link(edge)
        # Already group-closed: expand must hand back the same object
        # (the cases_for_pair fast path depends on it).
        assert model.expand(expanded) is expanded

    def test_srlg_group_size_validated(self, small_isp):
        with pytest.raises(ValueError):
            SrlgFailures(small_isp, group_size=0)

    def test_regional_cut_takes_incident_links(self, diamond):
        model = RegionalFailures(diamond)
        scenario = model.scenario_for_link((1, 2))
        # Everything incident to 1 or 2 goes down.
        assert scenario.links == frozenset(
            {(1, 2), (1, 3), (2, 3), (2, 4)}
        )

    def test_router_links_model_converts_routers(self, diamond):
        model = RouterLinkFailures(diamond)
        scenario = model.expand(FailureScenario.single_router(2))
        assert scenario.routers == frozenset()
        assert scenario.links == frozenset({(1, 2), (2, 3), (2, 4)})

    def test_router_links_passthrough_for_pure_links(self, diamond):
        model = RouterLinkFailures(diamond)
        s = FailureScenario.link_set([(1, 2)])
        assert model.expand(s) is s

    def test_expanded_cases_keep_the_sampled_pair(self, small_isp):
        from repro.core.cache import shared_unique_base

        model = SrlgFailures(small_isp, seed=1)
        pair = sample_pairs(small_isp, 1, seed=9)[0]
        primary = shared_unique_base(small_isp).path_for(*pair)
        raw = list(cases_for_pair(pair, primary, "link"))
        expanded = list(model.cases_for_pair(pair, primary, "link"))
        assert len(raw) == len(expanded)
        for before, after in zip(raw, expanded):
            assert after.source == before.source
            assert after.destination == before.destination
            assert after.primary_path == before.primary_path
            assert before.scenario.links <= after.scenario.links
