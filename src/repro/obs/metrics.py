"""Metrics registry — counters, gauges, and histograms for the pipeline.

:mod:`repro.perf` counts *work* (Dijkstra relaxations, probe calls)
with a fixed, hand-picked set of integer counters.  This registry is
the open-ended companion for *measurements*: restoration latency
breakdowns, path stretch, label-stack depth, flood convergence, and
whatever the next perf PR needs — created by name on first use, merged
across ``--jobs`` workers exactly like
:class:`~repro.perf.PerfCounters`, and published in ``BENCH_*.json``
under ``"metrics"``.

The registry is **off by default** (:data:`METRICS` ``.enabled``); hot
paths guard their observations with one attribute check, so disabled
runs pay nothing measurable.  Experiment CLIs flip it on via
``--obs``.

Worker merge semantics (`merge`):

* counters and histogram bucket counts/sums **add**;
* gauges fold by **max** (they record high-water marks here — e.g.
  flood convergence time — which is the only cross-process fold that
  is order-independent and therefore deterministic);
* histogram ``min``/``max`` fold by min/max.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Optional, Sequence


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time float; cross-process merge keeps the max."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        """Keep the high-water mark."""
        if self.value is None or value > self.value:
            self.value = value


#: Bucket upper edges for latency-shaped histograms (seconds).
LATENCY_EDGES = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0)

#: Bucket upper edges for stretch-factor histograms.
STRETCH_EDGES = (1.0, 1.1, 1.25, 1.5, 2.0, 3.0)

#: Bucket upper edges for small-integer histograms (PC length, stack depth).
DEPTH_EDGES = (1.0, 2.0, 3.0, 4.0, 5.0, 8.0)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``edges`` are inclusive upper bounds; values above the last edge
    land in the implicit overflow bucket, so ``counts`` has
    ``len(edges) + 1`` slots.
    """

    __slots__ = ("edges", "counts", "count", "sum", "min", "max")

    def __init__(self, edges: Sequence[float] = LATENCY_EDGES) -> None:
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"histogram edges must be strictly increasing: {edges}")
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> Optional[float]:
        """Arithmetic mean of all samples, or None when empty."""
        return self.sum / self.count if self.count else None

    def as_dict(self) -> dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Name-addressed metric instruments with worker fan-in."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access (get-or-create) -------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, edges: Sequence[float] = LATENCY_EDGES
    ) -> Histogram:
        """Get-or-create; *edges* only apply on first creation."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(edges)
        return h

    # -- lifecycle -------------------------------------------------------------

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- serialization / fan-in ------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view, sorted by name for deterministic JSON."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.as_dict() for name, h in sorted(self._histograms.items())
            },
        }

    def snapshot(self) -> dict[str, Any]:
        """A detached copy of the current state (for later :meth:`delta`)."""
        return self.as_dict()

    def delta(self, since: dict[str, Any]) -> dict[str, Any]:
        """Increments accumulated after *since* (a :meth:`snapshot`).

        Counters and histogram counts/sums subtract; gauges and
        histogram min/max carry the current value (extremes are not
        additive — they remain per-process observations).
        """
        current = self.as_dict()
        old_counters = since.get("counters", {})
        current["counters"] = {
            name: value - old_counters.get(name, 0)
            for name, value in current["counters"].items()
        }
        old_hists = since.get("histograms", {})
        for name, hist in current["histograms"].items():
            old = old_hists.get(name)
            if old is None:
                continue
            pad = len(hist["counts"]) - len(old["counts"])
            old_counts = list(old["counts"]) + [0] * max(0, pad)
            hist["counts"] = [
                c - o for c, o in zip(hist["counts"], old_counts)
            ]
            hist["count"] -= old["count"]
            hist["sum"] -= old["sum"]
        return current

    def merge(self, data: Optional[dict[str, Any]]) -> None:
        """Fold a worker's :meth:`delta`/:meth:`as_dict` into this registry."""
        if not data:
            return
        for name, value in data.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in data.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set_max(float(value))
        for name, hist in data.get("histograms", {}).items():
            mine = self.histogram(name, hist["edges"])
            if list(mine.edges) != list(hist["edges"]):
                raise ValueError(
                    f"histogram {name!r} edge mismatch: "
                    f"{list(mine.edges)} vs {list(hist['edges'])}"
                )
            for i, n in enumerate(hist["counts"]):
                mine.counts[i] += n
            mine.count += hist["count"]
            mine.sum += hist["sum"]
            if hist["min"] is not None and (
                mine.min is None or hist["min"] < mine.min
            ):
                mine.min = hist["min"]
            if hist["max"] is not None and (
                mine.max is None or hist["max"] > mine.max
            ):
                mine.max = hist["max"]


def rates_from_counters(counters: dict[str, int]) -> dict[str, Optional[float]]:
    """Derived hit/efficiency rates from a :class:`~repro.perf.PerfCounters` dict.

    These are the steering numbers the perf docs quote: how often the
    O(1) probe answered without a Path allocation, how much of the
    oracle stayed truncated, how hard each Dijkstra worked.
    """

    def ratio(num: float, den: float) -> Optional[float]:
        return num / den if den else None

    probes = counters.get("probe_calls", 0)
    rows = counters.get("oracle_rows_full", 0) + counters.get(
        "oracle_rows_truncated", 0
    )
    return {
        "o1_probe_rate": ratio(counters.get("o1_probes", 0), probes),
        "path_probe_rate": ratio(counters.get("path_probes", 0), probes),
        "oracle_truncated_share": ratio(
            counters.get("oracle_rows_truncated", 0), rows
        ),
        "oracle_promotion_rate": ratio(
            counters.get("oracle_promotions", 0),
            counters.get("oracle_rows_truncated", 0),
        ),
        "relaxations_per_dijkstra": ratio(
            counters.get("dijkstra_relaxations", 0),
            counters.get("dijkstra_runs", 0),
        ),
        "settled_per_dijkstra": ratio(
            counters.get("dijkstra_settled", 0),
            counters.get("dijkstra_runs", 0),
        ),
        "resettled_per_repair": ratio(
            counters.get("spt_nodes_resettled", 0),
            counters.get("spt_repairs", 0),
        ),
        "repair_fallback_rate": ratio(
            counters.get("spt_fallbacks", 0),
            counters.get("spt_repairs", 0) + counters.get("spt_fallbacks", 0),
        ),
        "relaxations_per_csr_settled": ratio(
            counters.get("csr_relaxations", 0),
            counters.get("csr_settled", 0),
        ),
    }


#: The process-wide registry every instrumented path reports to.
METRICS = MetricsRegistry()
