"""Table 2 — source-router RBPC under 1/2 link and 1/2 router failures.

For every network and failure mode, reproduces the paper's columns:
min/avg ILM stretch factor, average PC length, length stretch factor,
and redundancy (with the max shortest-path multiplicity annotation for
the single-link rows).

Run with ``python -m repro.experiments.table2 [--scale small]``.
"""

from __future__ import annotations

import argparse
from concurrent.futures import Executor
from dataclasses import asdict, replace
from typing import Optional

from ..core.base_paths import UniqueShortestPathsBase
from ..core.cache import shared_unique_base
from ..failures.sampler import FAILURE_MODES, FailureCase, sample_pairs
from ..graph.graph import Graph
from ..graph.spt import ShortestPathDag
from ..obs import TRACER, activate_from_args, add_obs_arguments, bench_observability
from ..kernels import add_kernel_argument, apply_kernel
from ..policies import (
    DEFAULT_POLICY,
    active_failure_model_name,
    active_policy_name,
    add_policy_arguments,
    apply_policy_arguments,
    make_failure_model,
    make_policy,
)
from ..perf import COUNTERS
from .bench import (
    StageTimer,
    add_repair_fallback_argument,
    apply_repair_fallback,
    write_bench_json,
)
from .ilm_accounting import IlmAccountant, scenarios_from_cases
from .metrics import CaseResult, TableTwoRow, build_row
from .networks import ExperimentNetwork, cached_suite, scales
from .parallel import (
    ShmRef,
    ilm_scenario_chunk,
    make_executor,
    publish_suite,
    resolve_jobs,
    run_chunked,
    run_weighted,
    table2_case_chunk,
    weighted_chunks,
)
from .reporting import format_table

#: Published Table 2, for EXPERIMENTS.md comparison:
#: (network, mode) -> (min ILM %, avg ILM %, avg PC, length s.f., redundancy %)
PAPER_TABLE2 = {
    ("ISP, Weighted", "link"): (12.5, 25.6, 2.05, 1.15, 16.5),
    ("ISP, Unweighted", "link"): (20.0, 32.3, 2.00, 1.14, 24.0),
    ("Internet", "link"): (16.7, 22.8, 2.00, 1.08, 58.6),
    ("AS Graph", "link"): (25.0, 32.7, 2.00, 1.19, 47.2),
    ("ISP, Weighted", "two-links"): (2.3, 6.1, 2.38, 1.77, 8.45),
    ("ISP, Unweighted", "two-links"): (3.6, 8.5, 2.20, 1.34, 10.0),
    ("Internet", "two-links"): (3.0, 4.7, 2.06, 1.15, 21.0),
    ("AS Graph", "two-links"): (7.1, 16.4, 2.09, 1.32, 13.0),
    ("ISP, Weighted", "router"): (25.0, 43.7, 2.10, 1.38, 23.0),
    ("ISP, Unweighted", "router"): (20.0, 36.8, 2.03, 1.18, 26.0),
    ("Internet", "router"): (12.5, 21.1, 2.02, 1.08, 55.3),
    ("AS Graph", "router"): (25.0, 38.5, 2.03, 1.26, 17.0),
    ("ISP, Weighted", "two-routers"): (5.26, 11.1, 2.43, 1.57, 8.1),
    ("ISP, Unweighted", "two-routers"): (6.67, 13.3, 2.21, 1.44, 9.1),
    ("Internet", "two-routers"): (2.50, 4.1, 2.23, 1.17, 11.5),
    ("AS Graph", "two-routers"): (8.33, 18.5, 2.17, 1.31, 12.8),
}

MODE_TITLES = {
    "link": "After one link failure",
    "two-links": "After two link failures",
    "router": "After one router failure",
    "two-routers": "After two router failures",
}


def run_case(
    graph: Graph,
    base: UniqueShortestPathsBase,
    case: FailureCase,
    weighted: bool,
) -> CaseResult:
    """Evaluate one (demand, scenario) unit: backup path + decomposition.

    The historical entry point, kept as a thin delegator to the
    default policy: the backup search runs on the shared SPT cache
    under the canonical tie contract and the decomposition DP covers
    the result with the fewest base LSPs.  The pipeline body lives in
    :meth:`~repro.policies.schemes.ConcatenationPolicy.evaluate_case`
    (moved there verbatim), so this function and the policy layer are
    byte-identical by construction.
    """
    from ..policies.schemes import ConcatenationPolicy

    return ConcatenationPolicy(graph, base, weighted).evaluate_case(case)


#: Demand universes above this node count use sampled sources only in
#: the per-link ILM accounting (all-pairs universes stop being tractable).
ALL_PAIRS_ILM_LIMIT = 400

#: Default scenario cap per network/mode in per-link ILM accounting
#: (recorded in the BENCH payload as an ILM-chunking parameter).
ILM_MAX_SCENARIOS = 200


def ilm_demand_sources(graph: Graph, pairs) -> Optional[list]:
    """The per-link accounting's demand universe for *graph*.

    ``None`` selects the all-pairs universe (small graphs); above
    :data:`ALL_PAIRS_ILM_LIMIT` nodes only the sampled sources are
    charged.  Shared by the sequential branch and the worker chunks so
    both build the identical universe.
    """
    if graph.number_of_nodes() <= ALL_PAIRS_ILM_LIMIT:
        return None
    return sorted({s for s, _ in pairs}, key=repr)


def ilm_scenarios(base, pairs, mode: str, max_scenarios: int, model=None):
    """The deterministic scenario list for one network/mode.

    Sampled pairs -> per-pair failure cases (expanded by the active
    failure *model*) -> deduplicated scenarios, thinned to
    *max_scenarios* by an evenly spaced subsample (keeps the
    accounting tractable on the quadratic two-failure modes without
    biasing toward any demand).  Workers rebuild this list from the
    same inputs, so chunk bounds index the identical sequence.
    """
    if model is None:
        model = make_failure_model(active_failure_model_name(), base.graph)
    cases: list[FailureCase] = []
    for pair in pairs:
        cases.extend(model.cases_for_pair(pair, base.path_for(*pair), mode))
    scenarios = scenarios_from_cases(cases)
    if len(scenarios) > max_scenarios:
        step = len(scenarios) / max_scenarios
        scenarios = [scenarios[int(i * step)] for i in range(max_scenarios)]
    return scenarios


def evaluate_network(
    network: ExperimentNetwork,
    modes: tuple[str, ...] = FAILURE_MODES,
    seed: int = 1,
    with_multiplicity: bool = True,
    ilm_accounting: str = "per-pair",
    ilm_max_scenarios: int = ILM_MAX_SCENARIOS,
    jobs: int = 1,
    suite_ref: Optional[tuple[str, int, int]] = None,
    executor: Optional[Executor] = None,
    shm_ref: ShmRef = None,
    timer: Optional[StageTimer] = None,
    stats: Optional[dict] = None,
    policy: Optional[str] = None,
    failure_model: Optional[str] = None,
) -> dict[str, TableTwoRow]:
    """All Table 2 rows for one network.

    *ilm_accounting* selects how the ILM stretch columns are computed:

    * ``"per-pair"`` (fast, default) — numerator and denominator scoped
      to the sampled demands only;
    * ``"per-link"`` (faithful to Section 4's pre-provisioning
      description) — every sampled failure scenario is charged for
      backing up *every* affected demand of the universe (all pairs on
      ISP-sized graphs, all demands from the sampled sources on the
      large ones); see :mod:`repro.experiments.ilm_accounting`.

    With *executor* and *suite_ref* ``(scale, seed, network index)``
    given and ``jobs > 1``, the failure cases — and, in per-link mode,
    the accounting's failure scenarios — are fanned out over worker
    processes per mode; chunk reassembly (and the order-free
    accountant-state merge) keeps every row byte-identical to the
    sequential loop.  *shm_ref* carries the network's published
    shared-memory segment names to the workers (see
    :func:`~repro.experiments.parallel.publish_suite`).
    *timer*/*stats*, when given, receive per-stage wall-clock and case
    counts for the BENCH output.

    *policy*/*failure_model* select the restoration policy and the
    failure model by registry name (``None`` reads the active
    selection, i.e. the ``--policy``/``--failure-model`` flags or the
    ``REPRO_POLICY``/``REPRO_FAILURE_MODEL`` environment).  The
    defaults route every case through the exact pre-policy pipeline.
    """
    if ilm_accounting not in ("per-pair", "per-link"):
        raise ValueError(f"unknown ilm_accounting {ilm_accounting!r}")
    policy_name = policy if policy is not None else active_policy_name()
    model_name = (
        failure_model if failure_model is not None else active_failure_model_name()
    )
    if ilm_accounting == "per-link" and policy_name != DEFAULT_POLICY:
        raise ValueError(
            "per-link ILM accounting is defined for the concatenation "
            f"policy only (got policy {policy_name!r}); use the default "
            "per-pair accounting to compare policies"
        )
    timer = timer if timer is not None else StageTimer()
    stats = stats if stats is not None else {}
    graph = network.graph
    base = shared_unique_base(graph)
    active = make_policy(policy_name, graph, base=base, weighted=network.weighted)
    model = make_failure_model(model_name, graph, seed=seed)
    pairs = sample_pairs(graph, network.sample_pairs, seed=seed)
    with timer.stage("primaries"):
        primaries = {pair: base.path_for(*pair) for pair in pairs}

    max_multiplicity: Optional[int] = None
    if with_multiplicity:
        max_multiplicity = 0
        with timer.stage("multiplicity"):
            # One DAG + one batched counting DP per distinct source
            # (sources repeat across sampled pairs).
            for source in dict.fromkeys(s for s, _ in pairs):
                dag = ShortestPathDag.compute(graph, source)
                counts = dag.count_all_paths()
                for target, count in counts.items():
                    if target != source:
                        max_multiplicity = max(max_multiplicity, count)

    rows: dict[str, TableTwoRow] = {}
    for mode in modes:
        results: list[CaseResult] = []
        with timer.stage("cases"):
            if executor is not None and suite_ref is not None and jobs > 1:
                scale, suite_seed, index = suite_ref
                results = run_chunked(
                    executor,
                    table2_case_chunk,
                    (scale, suite_seed, index, mode, shm_ref,
                     policy_name, model_name),
                    len(pairs),
                    jobs,
                )
            else:
                for pair in pairs:
                    for case in model.cases_for_pair(pair, primaries[pair], mode):
                        results.append(active.evaluate_case(case))
        stats["cases"] = stats.get("cases", 0) + len(results)
        row = build_row(
            network.name,
            mode,
            results,
            max_multiplicity=max_multiplicity if mode == "link" else None,
        )
        if ilm_accounting == "per-link":
            with timer.stage("ilm-per-link"):
                accountant = IlmAccountant(
                    graph,
                    base,
                    demand_sources=ilm_demand_sources(graph, pairs),
                    weighted=network.weighted,
                )
                scenarios = ilm_scenarios(
                    base, pairs, mode, ilm_max_scenarios, model=model
                )
                if executor is not None and suite_ref is not None and jobs > 1:
                    scale, suite_seed, index = suite_ref
                    # Cost-model pass: estimate each scenario's repair
                    # work from pre-failure subtree sizes (warming the
                    # exact row set the fan-out wants shipped), publish
                    # the warm rows, and LPT-pack scenarios into
                    # cost-balanced chunks submitted heaviest-first.
                    costs, _touched = accountant.plan_scenarios(scenarios)
                    row_ref, row_segments = accountant.publish_warm_rows()
                    try:
                        chunk_exports = run_weighted(
                            executor,
                            ilm_scenario_chunk,
                            (scale, suite_seed, index, mode,
                             ilm_max_scenarios, shm_ref, row_ref, model_name),
                            weighted_chunks(costs, jobs),
                            jobs,
                            len(scenarios),
                        )
                    finally:
                        for seg in row_segments:
                            seg.unlink()
                    COUNTERS.ilm_scenario_chunks += len(chunk_exports)
                    for state in chunk_exports:
                        accountant.merge_state(state)
                else:
                    accountant.process_scenarios(scenarios)
                min_sf, avg_sf = accountant.stretch_factors()
                row = replace(row, min_ilm_stretch=min_sf, avg_ilm_stretch=avg_sf)
        rows[mode] = row
    return rows


def render(all_rows: dict[str, list[TableTwoRow]]) -> str:
    """Paper-layout rendering: one block per failure mode."""
    blocks = []
    headers = [
        "Network",
        "min ILM s.f.",
        "avg ILM s.f.",
        "avg PC len",
        "Length s.f.",
        "Redundancy",
        "(max)",
        "paper: PC/len/red",
    ]
    for mode, rows in all_rows.items():
        table_rows = []
        for row in rows:
            paper = PAPER_TABLE2.get((row.network, mode))
            paper_txt = (
                f"{paper[2]:.2f}/{paper[3]:.2f}/{paper[4]:.1f}%" if paper else "-"
            )
            table_rows.append(
                [
                    row.network,
                    f"{row.min_ilm_stretch:.1f}%",
                    f"{row.avg_ilm_stretch:.1f}%",
                    f"{row.avg_pc_length:.2f}",
                    f"{row.length_stretch:.2f}",
                    f"{row.redundancy:.1f}%",
                    row.max_multiplicity if row.max_multiplicity is not None else "",
                    paper_txt,
                ]
            )
        blocks.append(
            format_table(headers, table_rows, title=f"{MODE_TITLES[mode]}.")
        )
    return "\n\n".join(blocks)


def run(
    scale: str = "small",
    seed: int = 1,
    modes: tuple[str, ...] = FAILURE_MODES,
    ilm_accounting: str = "per-pair",
    jobs: int = 1,
    timer: Optional[StageTimer] = None,
    stats: Optional[dict] = None,
    policy: Optional[str] = None,
    failure_model: Optional[str] = None,
) -> dict[str, list[TableTwoRow]]:
    """Full Table 2: mode -> rows across the four networks.

    ``jobs > 1`` fans the failure cases out over worker processes
    (``0`` = auto); the rows are byte-identical regardless of *jobs*.
    *policy*/*failure_model* default to the active registry selection.
    """
    jobs = resolve_jobs(jobs)
    with timer.stage("topologies") if timer else _null():
        networks = cached_suite(scale=scale, seed=seed)
    executor = make_executor(jobs)
    publication = None
    try:
        if executor is not None:
            # Publish every network's CSR (and padded-base CSR) plus
            # the warm pair-source rows before the first submit:
            # workers attach one shared copy of the buffers — and the
            # parent's warm-up — instead of rebuilding their own.
            with timer.stage("shm-publish") if timer else _null():
                publication = publish_suite(
                    networks, with_base=True, with_rows=True, seed=seed
                )
        per_network = [
            evaluate_network(
                n,
                modes=modes,
                seed=seed,
                ilm_accounting=ilm_accounting,
                jobs=jobs,
                suite_ref=(scale, seed, index),
                executor=executor,
                shm_ref=publication.ref(index) if publication else None,
                timer=timer,
                stats=stats,
                policy=policy,
                failure_model=failure_model,
            )
            for index, n in enumerate(networks)
        ]
    finally:
        # Executor first (workers drain their attachments at exit),
        # then unlink — the order keeps /dev/shm clean even when a
        # chunk raised or the run was interrupted.
        if executor is not None:
            executor.shutdown()
        if publication is not None:
            publication.release()
    return {
        mode: [rows[mode] for rows in per_network] for mode in modes
    }


def _null():
    """A no-op context manager (placeholder when no timer is passed)."""
    from contextlib import nullcontext

    return nullcontext()


def main(argv: list[str] | None = None) -> str:
    """CLI entry point; prints and returns the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=scales(), default="small")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--modes", nargs="+", choices=FAILURE_MODES, default=list(FAILURE_MODES)
    )
    parser.add_argument(
        "--ilm", choices=("per-pair", "per-link"), default="per-pair",
        help="ILM stretch accounting (per-link is the faithful Section 4 "
             "comparison; slower)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the case fan-out (0 = auto)",
    )
    parser.add_argument(
        "--bench-json", type=str, default=None,
        help="path for the BENCH JSON (default results/BENCH_table2.json; "
             "'-' disables)",
    )
    add_repair_fallback_argument(parser)
    add_kernel_argument(parser)
    add_policy_arguments(parser)
    add_obs_arguments(parser)
    args = parser.parse_args(argv)
    apply_repair_fallback(args)  # before any worker fork
    apply_kernel(args)  # before any worker fork
    apply_policy_arguments(args)  # before any worker fork
    activate_from_args(args)
    timer = StageTimer(prefix="table2")
    stats: dict = {}
    before = COUNTERS.snapshot()
    with TRACER.span("table2", scale=args.scale, seed=args.seed):
        all_rows = run(
            scale=args.scale,
            seed=args.seed,
            modes=tuple(args.modes),
            ilm_accounting=args.ilm,
            jobs=args.jobs,
            timer=timer,
            stats=stats,
        )
        with timer.stage("render"):
            report = render(all_rows)
    print(report)
    if args.bench_json != "-":
        counters = COUNTERS.delta(before).as_dict()
        cases = stats.get("cases", 0)
        payload = {
            "name": "table2",
            "scale": args.scale,
            "seed": args.seed,
            "jobs": args.jobs,
            "modes": list(args.modes),
            "policy": active_policy_name(),
            "failure_model": active_failure_model_name(),
            "ilm_accounting": args.ilm,
            "ilm_max_scenarios": ILM_MAX_SCENARIOS,
            "wall_clock_s": round(timer.total(), 4),
            "stages": timer.as_dict(),
            "cases": cases,
            "dijkstra_relaxations_per_case": (
                round(counters["dijkstra_relaxations"] / cases, 1) if cases else None
            ),
            "counters": counters,
            "rows": {
                mode: [asdict(row) for row in rows]
                for mode, rows in all_rows.items()
            },
        }
        payload.update(bench_observability(args, counters))
        out = write_bench_json("table2", payload, path=args.bench_json)
        print(f"[bench] wrote {out}")
    else:
        bench_observability(args)
    return report


if __name__ == "__main__":
    main()
