"""RBPC vs. the related-work baselines — the paper's §1 claim, measured.

"Our approach enables fast restoration without compromising the
quality of backup paths."  This bench scores the three schemes on the
same single-link failures of the weighted ISP:

* **RBPC** restores along the true post-failure shortest path
  (stretch exactly 1) whenever the failure is survivable at all;
* **Suurballe disjoint-backup** restores instantly but rides a fixed
  disjoint path — stretched, and its *primary* is already compromised;
* **k-shortest-paths** coverage depends on k; quality on which of the
  pre-established paths happens to survive.
"""

from __future__ import annotations

import pytest

from repro.core.baselines import DisjointBackupScheme, KShortestPathsScheme
from repro.core.restoration import plan_restoration
from repro.exceptions import NoRestorationPath
from repro.failures.models import FailureScenario


@pytest.fixture(scope="module")
def workload(isp200, isp200_base, isp200_pairs):
    """(demand, scenario) grid: each link of each sampled primary fails."""
    cases = []
    for s, t in isp200_pairs[:25]:
        primary = isp200_base.path_for(s, t)
        for failed in primary.edge_keys():
            cases.append(((s, t), FailureScenario.link_set([failed])))
    assert len(cases) > 50
    return cases


def _rbpc_outcomes(isp200, isp200_base, workload):
    outcomes = []
    for (s, t), scenario in workload:
        try:
            plan = plan_restoration(
                scenario.apply(isp200), isp200_base, s, t, weighted=True
            )
        except NoRestorationPath:
            outcomes.append(None)
            continue
        outcomes.append(plan)
    return outcomes


def bench_rbpc_restoration(benchmark, isp200, isp200_base, workload):
    outcomes = benchmark(_rbpc_outcomes, isp200, isp200_base, workload)
    restored = [o for o in outcomes if o is not None]
    assert len(restored) / len(outcomes) > 0.95


def bench_disjoint_backup(benchmark, isp200, isp200_base, workload):
    scheme = DisjointBackupScheme(isp200, isp200_base, weighted=True)

    def run():
        return [scheme.restore(s, t, sc) for (s, t), sc in workload]

    outcomes = benchmark(run)
    assert sum(o.restored for o in outcomes) > 0


def bench_k_shortest_paths(benchmark, isp200, workload):
    scheme = KShortestPathsScheme(isp200, k=3, weighted=True)

    def run():
        return [scheme.restore(s, t, sc) for (s, t), sc in workload]

    outcomes = benchmark(run)
    assert sum(o.restored for o in outcomes) > 0


def test_rbpc_quality_dominates(isp200, isp200_base, workload):
    """RBPC restores strictly better paths than both baselines."""
    rbpc = _rbpc_outcomes(isp200, isp200_base, workload)
    disjoint = DisjointBackupScheme(isp200, isp200_base, weighted=True)
    ksp = KShortestPathsScheme(isp200, k=3, weighted=True)

    def summarize(outcomes):
        restored = [o for o in outcomes if o is not None and getattr(o, "restored", True)]
        stretches = [
            o.stretch for o in restored if getattr(o, "stretch", None) is not None
        ]
        coverage = len(restored) / len(outcomes)
        avg_stretch = sum(stretches) / len(stretches) if stretches else float("nan")
        return coverage, avg_stretch

    rbpc_cov = sum(1 for o in rbpc if o is not None) / len(rbpc)
    d_cov, d_stretch = summarize([disjoint.restore(s, t, sc) for (s, t), sc in workload])
    k_cov, k_stretch = summarize([ksp.restore(s, t, sc) for (s, t), sc in workload])

    # RBPC's stretch is 1 by construction; the baselines pay for speed.
    assert d_stretch >= 1.0
    assert k_stretch >= 1.0
    # Coverage: RBPC restores whenever a path exists at all.
    assert rbpc_cov >= d_cov - 1e-9
    assert rbpc_cov >= k_cov - 1e-9
    # The quality gap must actually exist on this workload.
    assert max(d_stretch, k_stretch) > 1.0


def test_disjoint_primary_is_compromised(isp200, isp200_base, isp200_pairs):
    """Suurballe's optimal pair often forces a longer-than-shortest primary."""
    scheme = DisjointBackupScheme(isp200, isp200_base, weighted=True)
    compromised = 0
    usable = 0
    for s, t in isp200_pairs[:25]:
        shortest = isp200_base.path_for(s, t)
        primary, backup = scheme.provision(s, t)
        if backup is None:
            continue
        usable += 1
        if primary.cost(isp200) > shortest.cost(isp200) + 1e-9:
            compromised += 1
    assert usable > 10
    # The effect exists but should not be universal on a well-meshed ISP.
    assert 0 < compromised < usable


def bench_max_flow_scheme(benchmark, isp200, workload):
    """Max-flow pre-provisioning ([7]): best coverage, biggest footprint."""
    from repro.core.baselines import MaxFlowScheme

    scheme = MaxFlowScheme(isp200, weighted=True)

    def run():
        return [scheme.restore(s, t, sc) for (s, t), sc in workload]

    outcomes = benchmark(run)
    covered = sum(o.restored for o in outcomes)
    # Menger: single-link failures never disconnect a dual-homed pair,
    # so coverage must be total on this workload.
    assert covered == len(outcomes)
    stretches = [o.stretch for o in outcomes if o.stretch is not None]
    # ...but the surviving disjoint path is usually stretched.
    assert sum(stretches) / len(stretches) > 1.0
