"""Max-flow and edge-disjoint path extraction (Dinic's algorithm).

Reference [7] of the paper — Dunn, Grover, MacGregor — compares
k-shortest-paths restoration against *maximum-flow routing*: protect a
demand by pre-establishing as many edge-disjoint paths as the topology
allows, and fail over along whichever survives.  This module supplies
the substrate for that baseline:

* :func:`max_flow` — Dinic's algorithm on integer capacities (an
  undirected graph is doubled into arcs; unit capacities give Menger's
  edge-disjoint path count);
* :func:`edge_disjoint_paths` — the maximum set of pairwise
  edge-disjoint paths between two nodes, extracted from a unit-capacity
  flow;
* :func:`max_disjoint_path_count` — the count alone (local
  edge-connectivity).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..exceptions import NodeNotFound
from .graph import Node
from .paths import Path


class _Arc:
    __slots__ = ("head", "capacity", "initial", "reverse")

    def __init__(self, head: Node, capacity: int) -> None:
        self.head = head
        self.capacity = capacity
        self.initial = capacity  # 0 marks residual (backward) companions
        self.reverse: "_Arc" = None  # type: ignore[assignment]


class _FlowNetwork:
    """Adjacency-list residual network for Dinic's algorithm."""

    def __init__(self) -> None:
        self.arcs: dict[Node, list[_Arc]] = {}

    def add_arc(self, tail: Node, head: Node, capacity: int) -> None:
        forward = _Arc(head, capacity)
        backward = _Arc(tail, 0)
        forward.reverse = backward
        backward.reverse = forward
        self.arcs.setdefault(tail, []).append(forward)
        self.arcs.setdefault(head, []).append(backward)

    @classmethod
    def from_graph(cls, graph, capacity: int = 1) -> "_FlowNetwork":
        """Each undirected edge becomes two arcs of the given capacity.

        (For a DiGraph, each arc keeps its direction.)
        """
        network = cls()
        if getattr(graph, "directed", False):
            for u, v in graph.edges():
                network.add_arc(u, v, capacity)
        else:
            for u, v in graph.edges():
                network.add_arc(u, v, capacity)
                network.add_arc(v, u, capacity)
        for node in graph.nodes:
            network.arcs.setdefault(node, [])
        return network


def _bfs_levels(network: _FlowNetwork, source: Node, sink: Node) -> Optional[dict[Node, int]]:
    levels = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for arc in network.arcs[u]:
            if arc.capacity > 0 and arc.head not in levels:
                levels[arc.head] = levels[u] + 1
                queue.append(arc.head)
    return levels if sink in levels else None


def _dfs_blocking(
    network: _FlowNetwork,
    levels: dict[Node, int],
    iters: dict[Node, int],
    u: Node,
    sink: Node,
    pushed: int,
) -> int:
    if u == sink:
        return pushed
    arcs = network.arcs[u]
    while iters[u] < len(arcs):
        arc = arcs[iters[u]]
        if arc.capacity > 0 and levels.get(arc.head) == levels[u] + 1:
            flow = _dfs_blocking(
                network, levels, iters, arc.head, sink, min(pushed, arc.capacity)
            )
            if flow > 0:
                arc.capacity -= flow
                arc.reverse.capacity += flow
                return flow
        iters[u] += 1
    return 0


def max_flow(graph, source: Node, sink: Node, capacity: int = 1) -> int:
    """Maximum flow from *source* to *sink* with uniform edge *capacity*.

    With ``capacity=1`` this is the local edge-connectivity (Menger):
    the number of pairwise edge-disjoint paths.  Runs Dinic's algorithm
    — O(E * sqrt(E)) on unit-capacity networks, comfortably fast at the
    experiment scales.
    """
    if not graph.has_node(source):
        raise NodeNotFound(f"no node {source!r}")
    if not graph.has_node(sink):
        raise NodeNotFound(f"no node {sink!r}")
    if source == sink:
        raise ValueError("source and sink must differ")
    network = _FlowNetwork.from_graph(graph, capacity=capacity)
    total = 0
    while True:
        levels = _bfs_levels(network, source, sink)
        if levels is None:
            return total
        iters = {node: 0 for node in network.arcs}
        while True:
            pushed = _dfs_blocking(
                network, levels, iters, source, sink, 1 << 60
            )
            if pushed == 0:
                break
            total += pushed


def edge_disjoint_paths(graph, source: Node, sink: Node) -> list[Path]:
    """A maximum set of pairwise edge-disjoint source→sink paths.

    Computes a unit-capacity max flow, then peels paths off the flow
    decomposition.  Opposite-direction flow on the same undirected edge
    cancels during peeling, so the returned paths never share an edge
    (asserted by the tests against networkx's edge connectivity).
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    network = _FlowNetwork.from_graph(graph, capacity=1)
    value = 0
    while True:
        levels = _bfs_levels(network, source, sink)
        if levels is None:
            break
        iters = {node: 0 for node in network.arcs}
        while _dfs_blocking(network, levels, iters, source, sink, 1 << 60) > 0:
            value += 1

    flow_out: dict[Node, list[Node]] = {}
    for tail, arcs in network.arcs.items():
        for arc in arcs:
            # Only ORIGINAL arcs can carry flow (backward companions
            # start at capacity 0 and exist purely as residuals); a
            # unit-capacity original carries flow iff it drained.
            if arc.initial > 0 and arc.capacity < arc.initial:
                flow_out.setdefault(tail, []).append(arc.head)
    # Cancel 2-cycles (u->v and v->u both "carrying" means net zero).
    for u in list(flow_out):
        for v in list(flow_out.get(u, ())):
            if u in flow_out.get(v, ()):
                flow_out[u].remove(v)
                flow_out[v].remove(u)

    paths: list[Path] = []
    for _ in range(value):
        if not flow_out.get(source):
            break
        nodes = [source]
        current = source
        while current != sink:
            nxt = flow_out[current].pop()
            nodes.append(nxt)
            current = nxt
        paths.append(Path(nodes))
    return paths


def max_disjoint_path_count(graph, source: Node, sink: Node) -> int:
    """Number of pairwise edge-disjoint source→sink paths (Menger)."""
    return max_flow(graph, source, sink, capacity=1)
