"""Tests for the hybrid scheme and the per-link FEC update planner."""

from __future__ import annotations

import pytest

from repro.core.base_paths import AllShortestPathsBase, UniqueShortestPathsBase
from repro.core.hybrid import HybridTimeline, hybrid_timeline
from repro.core.local_restoration import LocalStrategy
from repro.core.planner import FailurePlanner
from repro.failures.sampler import sample_pairs
from repro.graph.graph import Graph
from repro.graph.paths import Path
from repro.graph.shortest_paths import shortest_path_length
from repro.routing.flooding import FloodingModel


class TestHybridTimeline:
    def _timeline(self, graph, s, t, strategy=LocalStrategy.EDGE_BYPASS):
        base = AllShortestPathsBase(graph)
        primary = base.path_for(s, t)
        failed = list(primary.edges())[0]
        return hybrid_timeline(graph, primary, failed, strategy=strategy)

    def test_local_engages_before_source(self, small_isp):
        nodes = sorted(small_isp.nodes, key=repr)
        timeline = self._timeline(small_isp, nodes[0], nodes[-1])
        assert timeline.local_time < timeline.source_time
        assert timeline.outage == timeline.local_time
        assert timeline.interim_window > 0

    def test_route_at_phases(self, small_isp):
        nodes = sorted(small_isp.nodes, key=repr)
        timeline = self._timeline(small_isp, nodes[0], nodes[-1])
        assert timeline.route_at(0.0) is None
        assert timeline.route_at(timeline.local_time) == timeline.local_route
        assert timeline.route_at(timeline.source_time + 1) == timeline.source_route

    def test_source_route_is_optimal(self, small_isp):
        nodes = sorted(small_isp.nodes, key=repr)
        base = AllShortestPathsBase(small_isp)
        primary = base.path_for(nodes[0], nodes[-1])
        failed = list(primary.edges())[0]
        timeline = hybrid_timeline(small_isp, primary, failed)
        view = small_isp.without(edges=[failed])
        assert timeline.source_route.cost(small_isp) == pytest.approx(
            shortest_path_length(view, nodes[0], nodes[-1])
        )

    def test_interim_stretch_at_least_one(self, small_isp):
        nodes = sorted(small_isp.nodes, key=repr)
        for strategy in (LocalStrategy.EDGE_BYPASS, LocalStrategy.END_ROUTE):
            timeline = self._timeline(small_isp, nodes[0], nodes[-1], strategy)
            assert timeline.interim_stretch(small_isp) >= 1.0 - 1e-9

    def test_custom_flooding_model(self, small_isp):
        nodes = sorted(small_isp.nodes, key=repr)
        base = AllShortestPathsBase(small_isp)
        primary = base.path_for(nodes[0], nodes[-1])
        failed = list(primary.edges())[0]
        slow = FloodingModel(detection_delay=1.0, per_hop_delay=0.5, spf_delay=2.0)
        timeline = hybrid_timeline(small_isp, primary, failed, model=slow)
        assert timeline.local_time == pytest.approx(1.5)
        assert timeline.source_time >= 3.0


class TestFailurePlanner:
    @pytest.fixture
    def planner(self, small_isp):
        base = UniqueShortestPathsBase(small_isp)
        demands = sample_pairs(small_isp, 15, seed=2)
        return FailurePlanner(small_isp, base, demands), base, demands

    def test_affected_demands_use_the_link(self, planner):
        plan, base, demands = planner
        for s, t in demands:
            primary = plan.primary_path(s, t)
            for failed in primary.edge_keys():
                assert (s, t) in plan.affected_demands(*failed)

    def test_updates_cover_affected(self, planner):
        plan, base, demands = planner
        s, t = demands[0]
        primary = plan.primary_path(s, t)
        failed = next(iter(primary.edge_keys()))
        updates = plan.updates_for_link(*failed)
        restored = {(u.source, u.destination) for u in updates}
        unrestorable = set(plan.unrestorable_demands(*failed))
        assert restored | unrestorable == set(plan.affected_demands(*failed))

    def test_update_decompositions_survive(self, planner, small_isp):
        plan, base, demands = planner
        s, t = demands[0]
        primary = plan.primary_path(s, t)
        failed = next(iter(primary.edge_keys()))
        view = small_isp.without(edges=[failed])
        for update in plan.updates_for_link(*failed):
            assert update.decomposition.path.is_valid_in(view)

    def test_cache_and_index_size(self, planner):
        plan, base, demands = planner
        s, t = demands[0]
        failed = next(iter(plan.primary_path(s, t).edge_keys()))
        first = plan.updates_for_link(*failed)
        assert plan.updates_for_link(*failed) is first  # cached
        assert plan.index_size() >= len(first)

    def test_unaffected_link_has_no_updates(self, planner, small_isp):
        plan, base, demands = planner
        used = set()
        for s, t in demands:
            used |= set(plan.primary_path(s, t).edge_keys())
        unused = [e for e in small_isp.edges() if e not in used]
        if not unused:
            pytest.skip("every link is on some primary")
        assert plan.updates_for_link(*unused[0]) == []

    def test_precompute_mode(self, small_isp):
        base = UniqueShortestPathsBase(small_isp)
        demands = sample_pairs(small_isp, 5, seed=3)
        plan = FailurePlanner(small_isp, base, demands, precompute=True)
        assert plan.index_size() > 0

    def test_bridge_demand_unrestorable(self):
        g = Graph.from_edges([(1, 2), (2, 3), (3, 1), (3, 4)])  # (3,4) is a bridge
        base = UniqueShortestPathsBase(g)
        plan = FailurePlanner(g, base, [(1, 4)])
        assert plan.unrestorable_demands(3, 4) == [(1, 4)]
        assert plan.updates_for_link(3, 4) == []
