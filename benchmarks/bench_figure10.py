"""Benchmark + regeneration of Figure 10 (local RBPC stretch histograms).

Times the full collection pipeline on the weighted ISP and asserts the
figure's qualitative content: the vast majority of local restorations
cost no more than ~1.2x the source-routed optimum, and end-route never
does worse than edge-bypass on cost.
"""

from __future__ import annotations

from repro.experiments.figure10 import collect, render


def bench_figure10_collect(benchmark, isp200):
    samples = benchmark(collect, isp200, True, 30, 1)
    edge_bypass = samples["edge-bypass"]
    end_route = samples["end-route"]
    assert edge_bypass.cost and end_route.cost

    # Cost stretch can never be below 1 (the optimum is optimal).
    assert min(edge_bypass.cost) >= 1.0 - 1e-9
    assert min(end_route.cost) >= 1.0 - 1e-9

    # Paper: "the length of the vast majority of the routes obtained by
    # the local restoration is about as long as the shortest route".
    def share_at_most(values, threshold):
        return sum(1 for v in values if v <= threshold) / len(values)

    assert share_at_most(edge_bypass.cost, 1.25) > 0.65
    assert share_at_most(end_route.cost, 1.25) > 0.75
    # End-route sees the whole surviving graph from R1; it is at least
    # as good as edge-bypass on average.
    avg = lambda xs: sum(xs) / len(xs)
    assert avg(end_route.cost) <= avg(edge_bypass.cost) + 1e-9


def bench_figure10_render(benchmark, isp200):
    samples = collect(isp200, True, 10, 1)
    report = benchmark(render, samples)
    assert "cost stretch" in report and "hopcount stretch" in report
