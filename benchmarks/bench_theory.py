"""Benchmark + verification of the theory figures (Figures 2-5).

Each extremal construction is generated, failed, restored, and
decomposed inside the benchmark; the asserts pin the exact tightness
claims of Section 3.
"""

from __future__ import annotations

import random

from repro.core.theory import verify_theorem1, verify_theorem2
from repro.experiments.theory_figures import figure2, figure3, figure4, figure5
from repro.failures.models import FailureScenario
from repro.topology.isp import generate_isp_topology


def bench_figure2_comb(benchmark):
    result = benchmark(figure2, 8)
    assert result.matches
    assert result.pieces == 9  # exactly k + 1


def bench_figure3_weighted_comb(benchmark):
    result = benchmark(figure3, 8)
    assert result.matches
    assert result.base_paths == 9 and result.extra_edges == 8


def bench_figure4_router_pathology(benchmark):
    result = benchmark(figure4, 64)
    assert result.matches
    assert result.pieces >= 15  # Θ(n) concatenations for one router failure


def bench_figure5_directed_counterexample(benchmark):
    result = benchmark(figure5, 64)
    assert result.matches
    assert result.pieces >= 20  # ~(n-2)/3 for one edge failure


def bench_theorem1_sweep_isp(benchmark):
    """Theorem 1 verified across k=1..4 on an unweighted ISP."""
    graph = generate_isp_topology(n=80, seed=5, weighted=False)
    edges = sorted(graph.edges())
    nodes = sorted(graph.nodes, key=repr)

    def sweep() -> int:
        rng = random.Random(0)
        verified = 0
        for k in (1, 2, 3, 4):
            for _ in range(5):
                scenario = FailureScenario.link_set(rng.sample(edges, k))
                s, t = rng.sample(nodes, 2)
                try:
                    holds, _ = verify_theorem1(graph, scenario, s, t)
                except Exception:
                    continue
                assert holds
                verified += 1
        return verified

    assert benchmark(sweep) > 10


def bench_theorem2_sweep_isp(benchmark):
    """Theorem 2 verified across k=1..3 on the weighted ISP."""
    graph = generate_isp_topology(n=80, seed=5, weighted=True)
    edges = sorted(graph.edges())
    nodes = sorted(graph.nodes, key=repr)

    def sweep() -> int:
        rng = random.Random(0)
        verified = 0
        for k in (1, 2, 3):
            for _ in range(5):
                scenario = FailureScenario.link_set(rng.sample(edges, k))
                s, t = rng.sample(nodes, 2)
                try:
                    holds, _ = verify_theorem2(graph, scenario, s, t)
                except Exception:
                    continue
                assert holds
                verified += 1
        return verified

    assert benchmark(sweep) > 8
