"""Built-in restoration policies and their registry bindings.

* :class:`ConcatenationPolicy` — the paper's scheme: restore on the
  min-cost post-failure path and cover it with the minimum number of
  pre-provisioned base LSPs.  Its :meth:`~ConcatenationPolicy.evaluate_case`
  is the original Table 2 pipeline body, moved here verbatim, so the
  default policy reproduces the pre-policy rows and counters
  byte-identically.
* the related-work baselines of :mod:`repro.core.baselines`
  (``disjoint`` / ``ksp`` / ``maxflow``), registered as-is — they
  already implement the ABC.
* :class:`MrcPolicy` — multiple routing configurations
  (arXiv:1212.0311): a fixed set of backup configurations, each with a
  deterministic share of the links and routers "isolated" (prohibitive
  weight); on failure, traffic switches to a configuration in which
  every failed element is isolated and therefore already routed around.
* :class:`DoNotRestorePolicy` — the null scheme (``drop``): traffic
  rides the primary or nothing.  The floor every restoration scheme is
  measured against.
"""

from __future__ import annotations

import heapq
import random
from typing import TYPE_CHECKING, Iterator, Optional

from ..core.baselines import (
    DisjointBackupScheme,
    KShortestPathsScheme,
    MaxFlowScheme,
)
from ..exceptions import NoPath
from ..failures.models import FailureScenario
from ..graph.graph import Edge, Graph, Node, edge_key
from ..graph.paths import Path
from .base import RestorationOutcome, RestorationPolicy
from .registry import POLICIES

if TYPE_CHECKING:
    from ..experiments.metrics import CaseResult
    from ..failures.sampler import FailureCase


class ConcatenationPolicy(RestorationPolicy):
    """The paper's scheme: shortest-path restoration by concatenation."""

    name = "concatenation"
    title = "RBPC (concatenation)"
    uses_local_patch = True
    uses_source_restore = True
    supports_ilm_accounting = True

    def provision(self, source: Node, target: Node) -> tuple[Path, ...]:
        """The demand's base LSP; backup pieces are shared, not per-demand."""
        plan = self._plans.get((source, target))
        if plan is None:
            plan = (self.base.path_for(source, target),)
            self._plans[(source, target)] = plan
        return plan

    def restore(
        self, source: Node, target: Node, scenario: FailureScenario
    ) -> RestorationOutcome:
        """Min-cost restoration, decomposed into base-LSP pieces."""
        from ..core.cache import shared_spt_cache
        from ..core.decomposition import min_pieces_decompose

        try:
            backup = shared_spt_cache(self.graph, self.weighted).backup_path(
                source, target, scenario
            )
        except NoPath:
            return RestorationOutcome(restored=False, route=None, stretch=None)
        decomposition = min_pieces_decompose(
            backup, self.base, allow_edges=True
        )
        # The backup is cost-identical to the post-failure shortest
        # path by the SPT-cache contract, so its stretch is exactly 1.
        return RestorationOutcome(
            restored=True,
            route=backup,
            stretch=1.0,
            pieces=tuple(decomposition.pieces),
        )

    def evaluate_case(self, case: "FailureCase") -> "CaseResult":
        """One (demand, scenario) unit: backup path + decomposition.

        The original ``table2.run_case`` body: the backup search runs
        on the shared SPT cache under the canonical tie contract
        (decremental SPT repair of the cached pre-failure source row,
        targeted canonical search past the fallback threshold), and the
        decomposition DP covers it with the fewest base LSPs.  Kept
        bit-for-bit — instrumentation included — so default-policy runs
        are byte-identical to the pre-policy pipeline at any
        jobs/shm/kernel setting.
        """
        from ..core.cache import shared_spt_cache
        from ..core.decomposition import min_pieces_decompose
        from ..experiments.metrics import CaseResult
        from ..obs.metrics import DEPTH_EDGES, METRICS, STRETCH_EDGES

        graph = self.graph
        primary_cost = case.primary_path.cost(graph)
        try:
            backup = shared_spt_cache(graph, self.weighted).backup_path(
                case.source, case.destination, case.scenario
            )
        except NoPath:
            if METRICS.enabled:
                METRICS.counter("table2.unrestorable_cases").inc()
            return CaseResult(
                source=case.source,
                destination=case.destination,
                scenario=case.scenario,
                primary=case.primary_path,
                primary_cost=primary_cost,
                backup=None,
                backup_cost=None,
                decomposition=None,
            )
        decomposition = min_pieces_decompose(backup, self.base, allow_edges=True)
        backup_cost = backup.cost(graph)
        if METRICS.enabled:
            if primary_cost:
                METRICS.histogram("table2.path_stretch", STRETCH_EDGES).observe(
                    backup_cost / primary_cost
                )
            METRICS.histogram("table2.pc_length", DEPTH_EDGES).observe(
                decomposition.num_pieces
            )
        return CaseResult(
            source=case.source,
            destination=case.destination,
            scenario=case.scenario,
            primary=case.primary_path,
            primary_cost=primary_cost,
            backup=backup,
            backup_cost=backup_cost,
            decomposition=decomposition,
        )


class DoNotRestorePolicy(RestorationPolicy):
    """The null scheme: no backup provisioning, no reaction to failures."""

    name = "drop"
    title = "do-not-restore"
    uses_local_patch = False
    uses_source_restore = False

    def provision(self, source: Node, target: Node) -> tuple[Path, ...]:
        """Only the primary is ever established."""
        plan = self._plans.get((source, target))
        if plan is None:
            plan = (self.base.path_for(source, target),)
            self._plans[(source, target)] = plan
        return plan


class MrcPolicy(RestorationPolicy):
    """Multiple routing configurations (arXiv:1212.0311).

    Pre-computes ``configurations`` backup routing configurations.  A
    deterministic seeded round-robin assigns every link and every
    router to exactly one configuration, in which it is *isolated*: its
    (incident) links carry a prohibitive weight, so that
    configuration's routes avoid the element whenever the topology
    allows.  On failure, traffic switches to a configuration isolating
    every failed element — the pre-computed route there is valid
    without any new computation.  Recovery is thus a pure forwarding-
    plane switch, at the price of per-configuration state and of
    unrestorable combinations: a multi-failure spanning two
    configurations has no single configuration to switch to (the
    documented MRC limitation this benchmark measures).
    """

    name = "mrc"
    title = "multiple routing configurations"
    uses_local_patch = False
    uses_source_restore = True

    def __init__(
        self,
        graph: Graph,
        base=None,
        weighted: bool = True,
        configurations: int = 4,
        seed: int = 1,
    ) -> None:
        super().__init__(graph, base, weighted)
        if configurations < 1:
            raise ValueError("configurations must be >= 1")
        self.configurations = configurations
        rng = random.Random(seed)
        edges = sorted((edge_key(u, v) for u, v in graph.edges()), key=repr)
        rng.shuffle(edges)
        self._edge_config: dict[Edge, int] = {
            edge: i % configurations for i, edge in enumerate(edges)
        }
        nodes = sorted(graph.nodes, key=repr)
        rng.shuffle(nodes)
        self._node_config: dict[Node, int] = {
            node: i % configurations for i, node in enumerate(nodes)
        }
        self._order = {node: i for i, node in enumerate(sorted(graph.nodes, key=repr))}
        total = sum(
            graph.weight(u, v) if weighted else 1.0 for u, v in graph.edges()
        )
        #: Any isolated hop costs more than every non-isolated path.
        self._penalty = total + len(self._order) + 1.0
        self._routes: dict[tuple[Node, Node], tuple[Optional[Path], ...]] = {}

    # -- configuration machinery ---------------------------------------------

    def _isolated(self, config: int, u: Node, v: Node) -> bool:
        """True when hop *(u, v)* is isolated in *config*."""
        return (
            self._edge_config.get(edge_key(u, v)) == config
            or self._node_config.get(u) == config
            or self._node_config.get(v) == config
        )

    def _config_weight(self, config: int, u: Node, v: Node) -> float:
        weight = self.graph.weight(u, v) if self.weighted else 1.0
        if self._isolated(config, u, v):
            weight += self._penalty
        return weight

    def _config_route(
        self, config: int, source: Node, target: Node
    ) -> Optional[Path]:
        """Deterministic Dijkstra under *config*'s weight function."""
        order = self._order
        if source not in order or target not in order:
            return None
        dist: dict[Node, float] = {source: 0.0}
        prev: dict[Node, Node] = {}
        heap: list[tuple[float, int, Node]] = [(0.0, order[source], source)]
        done: set[Node] = set()
        while heap:
            d, _, u = heapq.heappop(heap)
            if u in done:
                continue
            done.add(u)
            if u == target:
                break
            for v in sorted(self.graph.neighbors(u), key=order.__getitem__):
                if v in done:
                    continue
                nd = d + self._config_weight(config, u, v)
                if v not in dist or nd < dist[v]:
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd, order[v], v))
        if target not in done:
            return None
        nodes = [target]
        while nodes[-1] != source:
            nodes.append(prev[nodes[-1]])
        return Path(reversed(nodes))

    def _covering_configs(self, scenario: FailureScenario) -> Iterator[int]:
        """Configurations isolating *every* failed element, in index order."""
        for config in range(self.configurations):
            if all(
                self._isolated(config, u, v) for u, v in scenario.links
            ) and all(
                self._node_config.get(r) == config for r in scenario.routers
            ):
                yield config

    # -- policy contract -----------------------------------------------------

    def provision(self, source: Node, target: Node) -> tuple[Path, ...]:
        """Primary plus one pre-computed route per configuration."""
        routes = self._provisioned(source, target)
        plan = tuple(route for route in routes if route is not None)
        self._plans[(source, target)] = plan
        return plan

    def _provisioned(
        self, source: Node, target: Node
    ) -> tuple[Optional[Path], ...]:
        routes = self._routes.get((source, target))
        if routes is None:
            routes = (self.base.path_for(source, target),) + tuple(
                self._config_route(c, source, target)
                for c in range(self.configurations)
            )
            self._routes[(source, target)] = routes
        return routes

    def restore(
        self, source: Node, target: Node, scenario: FailureScenario
    ) -> RestorationOutcome:
        """Switch to a configuration isolating every failed element."""
        routes = self._provisioned(source, target)
        primary = routes[0]
        if primary is not None and not scenario.disturbs(primary):
            return self.score(primary, source, target, scenario)
        for config in self._covering_configs(scenario):
            route = routes[1 + config]
            if route is not None and not scenario.disturbs(route):
                return self.score(route, source, target, scenario)
        return RestorationOutcome(restored=False, route=None, stretch=None)


for _policy in (
    ConcatenationPolicy,
    DisjointBackupScheme,
    KShortestPathsScheme,
    MaxFlowScheme,
    MrcPolicy,
    DoNotRestorePolicy,
):
    POLICIES.register(_policy.name, _policy)
