"""Failure models — pluggable generators of :class:`FailureScenario` streams.

Generalizes the paper's Section 5 sampling (:mod:`repro.failures.sampler`)
behind one contract: a :class:`FailureModel` turns a demand pair's
on-path failure enumeration into the scenario stream an experiment
actually evaluates.  The default :class:`IndependentLinkFailures`
delegates verbatim to the sampler, so default runs are byte-identical;
the other models *expand* each sampled fault into the correlated set a
real outage would take down:

* :class:`SrlgFailures` — shared-risk link groups: a deterministic
  seeded partition of the links into groups of ``group_size``; one
  link failing drags its whole group (conduit cut, card failure).
  With the default group size of 2 every single-link sample becomes a
  k=2 scenario — the regime the Bodwin–Wang restoration lemmas
  (arXiv:2309.07964) bound.
* :class:`RegionalFailures` — a radius-1 regional cut: every link
  incident to either endpoint of a failed link goes down with it.
* :class:`RouterLinkFailures` — router failures modeled at the link
  layer: a failed router is replaced by the failure of all its
  incident links (the router's control plane survives; its interfaces
  do not).

Every model is a pure function of ``(graph, seed)``; scenario streams
are deterministic and safe to rebuild inside worker processes from the
model's registry name.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Iterator

from ..graph.graph import Edge, Graph, edge_key
from ..policies.registry import FAILURE_MODELS
from .models import FailureScenario
from .sampler import FailureCase, cases_for_pair


class FailureModel:
    """Base failure model: sampler cases, optionally expanded.

    Subclasses override :meth:`expand` to grow a sampled fault set into
    the correlated scenario their regime implies.  The base
    implementation is the identity, which makes the default model's
    case stream *the same objects* the sampler yields.
    """

    #: Registry key (``--failure-model`` value).
    name: str = ""

    def __init__(self, graph: Graph, seed: int = 1) -> None:
        self.graph = graph
        self.seed = seed

    def expand(self, scenario: FailureScenario) -> FailureScenario:
        """The full correlated fault set implied by *scenario*."""
        return scenario

    def cases_for_pair(
        self, pair, primary, mode: str
    ) -> Iterator[FailureCase]:
        """The sampler's cases for *pair*, each expanded by this model."""
        for case in cases_for_pair(pair, primary, mode):
            expanded = self.expand(case.scenario)
            if expanded is case.scenario:
                yield case
            else:
                yield replace(case, scenario=expanded)

    def scenario_for_link(self, edge: Edge) -> FailureScenario:
        """The scenario this model implies for one failed link."""
        return self.expand(FailureScenario.link_set([edge]))


class IndependentLinkFailures(FailureModel):
    """Today's behavior: each sampled fault fails independently."""

    name = "independent"


class SrlgFailures(FailureModel):
    """Shared-risk link groups: one link down takes its group down."""

    name = "srlg"

    def __init__(
        self, graph: Graph, seed: int = 1, group_size: int = 2
    ) -> None:
        super().__init__(graph, seed=seed)
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        self.group_size = group_size
        # Deterministic partition: canonical edge order, seeded shuffle,
        # consecutive slices of group_size.  A pure function of
        # (graph, seed, group_size), so parent and workers agree.
        edges = sorted(
            (edge_key(u, v) for u, v in graph.edges()), key=repr
        )
        rng = random.Random(seed)
        rng.shuffle(edges)
        self._group_of: dict[Edge, frozenset[Edge]] = {}
        for start in range(0, len(edges), group_size):
            group = frozenset(edges[start:start + group_size])
            for edge in group:
                self._group_of[edge] = group

    def group_of(self, edge: Edge) -> frozenset[Edge]:
        """The risk group containing *edge* (singleton if unknown)."""
        return self._group_of.get(edge_key(*edge), frozenset({edge_key(*edge)}))

    def expand(self, scenario: FailureScenario) -> FailureScenario:
        links: set[Edge] = set(scenario.links)
        for edge in scenario.links:
            links |= self.group_of(edge)
        if links == set(scenario.links):
            return scenario
        return FailureScenario(
            links=frozenset(links), routers=scenario.routers
        )


class RegionalFailures(FailureModel):
    """Radius-1 regional cut around every failed element."""

    name = "regional"

    def expand(self, scenario: FailureScenario) -> FailureScenario:
        links: set[Edge] = set(scenario.links)
        endpoints = {node for edge in scenario.links for node in edge}
        endpoints |= set(scenario.routers)
        for node in endpoints:
            if self.graph.has_node(node):
                for neighbor in self.graph.neighbors(node):
                    links.add(edge_key(node, neighbor))
        if links == set(scenario.links) and not scenario.routers:
            return scenario
        return FailureScenario(
            links=frozenset(links), routers=scenario.routers
        )


class RouterLinkFailures(FailureModel):
    """Router failures at the link layer: all incident links go down.

    Failed routers are converted into the failure of every incident
    link; pure link failures pass through unchanged.  Pairs naturally
    with the ``router``/``two-routers`` sampling modes.
    """

    name = "router-links"

    def expand(self, scenario: FailureScenario) -> FailureScenario:
        if not scenario.routers:
            return scenario
        links: set[Edge] = set(scenario.links)
        for router in scenario.routers:
            if self.graph.has_node(router):
                for neighbor in self.graph.neighbors(router):
                    links.add(edge_key(router, neighbor))
        return FailureScenario(links=frozenset(links), routers=frozenset())


for _model in (
    IndependentLinkFailures,
    SrlgFailures,
    RegionalFailures,
    RouterLinkFailures,
):
    FAILURE_MODELS.register(_model.name, _model)
