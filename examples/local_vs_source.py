#!/usr/bin/env python
"""Scenario: how fast is the patch, and what does the speed cost?

Compares the three restoration strategies of Sections 4-6 on a live
MPLS domain, for one failure:

* **edge-bypass local RBPC** — engages at detection time (no flooding
  wait), route may be stretched;
* **end-route local RBPC** — same speed, usually less stretch;
* **source-router RBPC** — waits for the link-state flood to reach the
  source, restores along a true shortest path.

The timeline (milliseconds) comes from the flooding model; the routes
are verified by actually forwarding packets through the ILM tables.

Run:  python examples/local_vs_source.py
"""

from repro.core import (
    LocalRbpc,
    LocalStrategy,
    SourceRouterRbpc,
    UniqueShortestPathsBase,
    hybrid_timeline,
    provision_base_set,
)
from repro.mpls import MplsNetwork
from repro.routing import FloodingModel
from repro.topology import generate_isp_topology


def walk_cost(graph, walk):
    return sum(graph.weight(u, v) for u, v in zip(walk, walk[1:]))


def main() -> None:
    graph = generate_isp_topology(n=120, seed=3)
    net = MplsNetwork(graph)
    base = UniqueShortestPathsBase(graph)

    # Pick a long demand so the failure happens far from the source.
    nodes = sorted(graph.nodes, key=repr)
    source, destination = None, None
    best_hops = 0
    for s in nodes[:30]:
        for t in nodes[-30:]:
            if s == t:
                continue
            p = base.path_for(s, t)
            if p.hops > best_hops:
                best_hops, source, destination = p.hops, s, t
    primary = base.path_for(source, destination)
    print(f"demand {source} -> {destination}, primary has {primary.hops} hops")

    registry = provision_base_set(net, base, pairs=[(source, destination)])
    lsp_id = registry[primary]
    net.set_fec(source, destination, [lsp_id])

    failed = list(primary.edges())[primary.hops - 1]  # far from the source
    model = FloodingModel(detection_delay=0.010, per_hop_delay=0.005, spf_delay=0.050)
    timeline = hybrid_timeline(graph, primary, failed, model=model)
    print(
        f"failing {failed}: local patch live at "
        f"{timeline.local_time * 1000:.0f} ms, source re-route at "
        f"{timeline.source_time * 1000:.0f} ms "
        f"(interim window {timeline.interim_window * 1000:.0f} ms)\n"
    )

    net.fail_link(*failed)
    local = LocalRbpc(net, base, registry)
    source_scheme = SourceRouterRbpc(net, base, registry)

    for strategy in (LocalStrategy.EDGE_BYPASS, LocalStrategy.END_ROUTE):
        patch = local.patch(lsp_id, failed, strategy=strategy)
        result = net.inject(source, destination)
        assert result.delivered
        print(
            f"{strategy.value:<12} route ({len(result.walk) - 1} hops, "
            f"cost {walk_cost(graph, result.walk):.0f}): "
            f"{' -> '.join(str(n) for n in result.walk[:6])} ..."
        )
        local.revert(lsp_id)

    action = source_scheme.restore(source, destination)
    result = net.inject(source, destination)
    assert result.delivered
    print(
        f"{'source RBPC':<12} route ({len(result.walk) - 1} hops, "
        f"cost {walk_cost(graph, result.walk):.0f}): "
        f"{action.decomposition.num_pieces} concatenated base LSPs"
    )
    print(
        f"\ninterim cost stretch of the local patch: "
        f"{timeline.interim_stretch(graph):.3f}x the eventual shortest path"
    )


if __name__ == "__main__":
    main()
