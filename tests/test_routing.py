"""Tests for the link-state routing substrate (LSDB, SPF, flooding)."""

from __future__ import annotations

import pytest

from repro.exceptions import NoPath
from repro.graph.graph import Graph
from repro.routing.flooding import (
    FloodingModel,
    action_time,
    flood_times,
    local_restoration_time,
    source_restoration_time,
)
from repro.routing.lsdb import LinkStateAd, LinkStateDatabase
from repro.routing.events import LinkDown, LinkUp, RouterDown
from repro.routing.spf import SpfRouter, spf_tree


class TestLsdb:
    def test_from_graph_matches(self, diamond):
        db = LinkStateDatabase.from_graph(diamond)
        assert db.is_up(1, 2)
        assert db.link_state(1, 2) == (1.0, True, 0)
        assert len(db.known_links()) == diamond.number_of_edges()

    def test_apply_newer_sequence_wins(self, diamond):
        db = LinkStateDatabase.from_graph(diamond)
        assert db.apply(LinkStateAd(1, 2, 1.0, up=False, sequence=1))
        assert not db.is_up(1, 2)

    def test_stale_ad_ignored(self, diamond):
        db = LinkStateDatabase.from_graph(diamond)
        db.apply(LinkStateAd(1, 2, 1.0, up=False, sequence=5))
        assert not db.apply(LinkStateAd(1, 2, 1.0, up=True, sequence=3))
        assert not db.is_up(1, 2)

    def test_to_graph_excludes_down_links(self, diamond):
        db = LinkStateDatabase.from_graph(diamond)
        db.apply(LinkStateAd(1, 2, 1.0, up=False, sequence=1))
        graph = db.to_graph()
        assert not graph.has_edge(1, 2)
        assert graph.has_edge(2, 4)
        assert db.down_links() == {(1, 2)}

    def test_unknown_link_not_up(self):
        assert not LinkStateDatabase().is_up(1, 2)


class TestSpfRouter:
    def test_routes_on_bootstrap(self, diamond):
        router = SpfRouter(1, LinkStateDatabase.from_graph(diamond))
        assert router.distance_to(4) == 2.0
        assert router.route_to(4).source == 1
        assert router.next_hop_to(4) in (2, 3)
        assert router.next_hop_to(1) is None

    def test_recomputes_after_failure_ad(self, square):
        router = SpfRouter(1, LinkStateDatabase.from_graph(square))
        assert router.distance_to(2) == 1.0
        router.receive(LinkStateAd(1, 2, 1.0, up=False, sequence=1))
        assert router.distance_to(2) == 3.0  # around the square

    def test_unreachable_raises(self, square):
        router = SpfRouter(1, LinkStateDatabase.from_graph(square))
        router.receive(LinkStateAd(1, 2, 1.0, up=False, sequence=1))
        router.receive(LinkStateAd(1, 4, 1.0, up=False, sequence=1))
        with pytest.raises(NoPath):
            router.distance_to(3)

    def test_believes_up(self, square):
        router = SpfRouter(1, LinkStateDatabase.from_graph(square))
        assert router.believes_up(1, 2)
        router.receive(LinkStateAd(1, 2, 1.0, up=False, sequence=1))
        assert not router.believes_up(1, 2)

    def test_spf_tree(self, diamond):
        tree = spf_tree(diamond, 1)
        assert tree[4].hops == 2
        assert tree[1].is_trivial


class TestFlooding:
    def test_flood_times_monotone_with_distance(self, line5):
        model = FloodingModel(detection_delay=0.01, per_hop_delay=0.005)
        times = flood_times(line5, [0], model)
        assert times[0] == pytest.approx(0.01)
        for i in range(1, 5):
            assert times[i] == pytest.approx(0.01 + 0.005 * i)

    def test_two_origins_take_min(self, square):
        model = FloodingModel(detection_delay=0.01, per_hop_delay=0.005)
        times = flood_times(square, [1, 2], model)
        assert times[3] == pytest.approx(0.015)  # one hop from 2
        assert times[4] == pytest.approx(0.015)  # one hop from 1

    def test_partitioned_router_never_learns(self):
        g = Graph.from_edges([(1, 2), (3, 4)])
        times = flood_times(g, [1])
        assert 3 not in times and 4 not in times

    def test_local_beats_source(self, line5):
        model = FloodingModel()
        # Failure at far end of the line; source is node 0.
        view = line5.without(edges=[(3, 4)])
        source_t = source_restoration_time(view, [3, 4], 0, model)
        assert local_restoration_time(model) < source_t

    def test_source_unreachable_is_infinite(self):
        g = Graph.from_edges([(1, 2), (3, 4)])
        assert source_restoration_time(g, [3, 4], 1) == float("inf")

    def test_action_time_adds_spf_delay(self):
        model = FloodingModel(spf_delay=0.05)
        assert action_time(1.0, model) == pytest.approx(1.05)

    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError):
            FloodingModel(detection_delay=-1.0)


class TestEvents:
    def test_link_event_edges_canonical(self):
        assert LinkDown(2, 1).edge == (1, 2)
        assert LinkUp(2, 1).edge == (1, 2)

    def test_router_down(self):
        event = RouterDown("r", time=3.0)
        assert event.router == "r" and event.time == 3.0
