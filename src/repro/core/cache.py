"""Shared base-set / distance-oracle cache for the experiment pipeline.

Table 2, Table 3, Figure 10 and the benchmarks all evaluate the same
four topologies, and each of them used to rebuild the padded graph and
re-run identical Dijkstras from scratch.  This module gives every
consumer the *same* base-set object (and therefore the same warm
distance-oracle rows) for the same configuration.

Cache key: **graph identity** (the exact :class:`~repro.graph.graph.Graph`
object, held weakly so caching never extends a graph's lifetime) plus
the parameters that change what the base set answers — the padding
*seed*, *pad_scale*, *include_all_edges*, and the tie-break mode (the
class of base set: unique-choice padded vs. all-shortest-paths).
Graph identity is the right key because base sets are defined on a
specific object: two structurally equal graphs built separately get
separate entries, which is exactly what the deterministic experiment
suite wants (it shares topology *objects* via
:func:`repro.experiments.networks.cached_suite`).

Worker processes of the parallel runner each hold their own module-level
cache; per-worker warm-up happens naturally on first use (and is free
under ``fork`` start methods, which inherit the parent's warm cache).
"""

from __future__ import annotations

import weakref
from typing import Union

from ..graph.graph import DiGraph, Graph
from .base_paths import AllShortestPathsBase, UniqueShortestPathsBase

#: graph -> {config key -> base set}.  Weak keys: dropping the last
#: strong reference to a graph evicts its base sets.
_CACHE: "weakref.WeakKeyDictionary[Graph, dict[tuple, Union[AllShortestPathsBase, UniqueShortestPathsBase]]]" = (
    weakref.WeakKeyDictionary()
)


def shared_unique_base(
    graph: Union[Graph, DiGraph],
    seed: int = 1,
    pad_scale: float = 1e-5,
    include_all_edges: bool = True,
) -> UniqueShortestPathsBase:
    """The process-wide :class:`UniqueShortestPathsBase` for this config.

    Repeated calls with the same graph object and parameters return the
    same instance, so its padded graph and oracle rows are computed at
    most once per process.
    """
    key = ("unique", seed, pad_scale, include_all_edges)
    per_graph = _CACHE.setdefault(graph, {})
    base = per_graph.get(key)
    if base is None:
        base = UniqueShortestPathsBase(
            graph, seed=seed, pad_scale=pad_scale, include_all_edges=include_all_edges
        )
        per_graph[key] = base
    return base  # type: ignore[return-value]


def shared_all_sp_base(
    graph: Union[Graph, DiGraph], include_all_edges: bool = True
) -> AllShortestPathsBase:
    """The process-wide :class:`AllShortestPathsBase` for this config."""
    key = ("all", include_all_edges)
    per_graph = _CACHE.setdefault(graph, {})
    base = per_graph.get(key)
    if base is None:
        base = AllShortestPathsBase(graph, include_all_edges=include_all_edges)
        per_graph[key] = base
    return base  # type: ignore[return-value]


def cache_stats() -> dict[str, int]:
    """Entry counts, for tests and BENCH output."""
    return {
        "graphs": len(_CACHE),
        "base_sets": sum(len(v) for v in _CACHE.values()),
    }


def clear_cache() -> None:
    """Drop every cached base set (test isolation)."""
    _CACHE.clear()
