"""Bodwin–Wang concatenation bounds for the k >= 2 failure regime.

The paper's restoration lemma (Theorem 1) covers a post-failure
shortest path with at most ``k + 1`` *original* shortest paths after
``k`` edge failures.  Bodwin–Wang (arXiv:2309.07964) study the
trade-off that generalizes it: if the building blocks are themselves
*f-fault-tolerant* — each piece a shortest path in ``G - F'`` for some
subset ``F'`` of the faults with ``|F'| <= f`` — then fewer pieces
suffice.  The instance-checkable form used by the property tests:

    pieces(f) <= k - f + 1

which interpolates between the classic lemma (``f = 0``: ``k + 1``
pieces) and triviality (``f = k``: the restored path itself is one
fault-avoiding piece).  Proof sketch: fix any ``F0 ⊆ F`` with
``|F0| = f`` and apply the classic lemma in ``G - F0``, where only
``k - f`` faults remain; every piece it produces is shortest in
``G - F0`` and hence f-fault-tolerant.

:func:`fault_tolerant_pieces` computes the *optimal* decomposition at
tolerance level *f* by greedy maximal prefixes — optimal because
f-fault-tolerant validity is closed under taking subpaths (a subpath
of a shortest path is a shortest path, in whichever ``G - F'``
witnessed the piece), and greedy longest-feasible-prefix is optimal
for any subpath-closed feasibility.  Intended for unweighted graphs,
where every surviving edge is itself a valid piece at every level, so
the greedy cover always exists.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from ..exceptions import DecompositionError
from ..graph.graph import Edge, Graph, edge_key
from ..graph.paths import Path
from ..graph.shortest_paths import is_shortest_path


def bw_pieces_bound(k: int, fault_tolerance: int) -> int:
    """Max pieces needed at tolerance *f* after *k* edge failures."""
    if not 0 <= fault_tolerance <= k:
        raise ValueError(
            f"fault tolerance must be in 0..{k}, got {fault_tolerance}"
        )
    return max(1, k - fault_tolerance + 1)


def _canonical_faults(faults: Iterable[Edge]) -> tuple[Edge, ...]:
    return tuple(sorted({edge_key(u, v) for u, v in faults}, key=repr))


def piece_is_valid(
    graph: Graph,
    piece: Path,
    faults: Sequence[Edge],
    fault_tolerance: int,
    weighted: bool = False,
) -> bool:
    """True when *piece* is f-fault-tolerant valid against *faults*.

    Valid means: shortest in ``G - F'`` for some ``F' ⊆ faults`` with
    ``|F'| <= fault_tolerance``.  Exhaustive over subsets — the
    property tests run at small k, where ``C(k, <=f)`` is tiny.
    """
    if piece.is_trivial:
        return True
    for r in range(fault_tolerance + 1):
        for subset in combinations(faults, r):
            view = graph.without(edges=frozenset(subset))
            if is_shortest_path(view, piece, weighted=weighted):
                return True
    return False


def fault_tolerant_pieces(
    graph: Graph,
    path: Path,
    faults: Iterable[Edge],
    fault_tolerance: int,
    weighted: bool = False,
) -> list[Path]:
    """Optimal f-fault-tolerant decomposition of *path* (greedy prefixes).

    Raises :class:`~repro.exceptions.DecompositionError` when some hop
    of *path* is not a valid piece at this tolerance level (cannot
    happen on unweighted graphs when *path* survives the faults: a
    surviving edge is a shortest path already in ``G`` minus nothing).
    """
    fault_list = _canonical_faults(faults)
    pieces: list[Path] = []
    i, last = 0, path.hops
    while i < last:
        end = None
        for j in range(last, i, -1):
            candidate = path.subpath(i, j)
            if piece_is_valid(
                graph, candidate, fault_list, fault_tolerance, weighted
            ):
                end = j
                break
        if end is None:
            raise DecompositionError(
                f"hop {i} of {path!r} is not {fault_tolerance}-fault-"
                f"tolerant valid against {fault_list!r}"
            )
        pieces.append(path.subpath(i, end))
        i = end
    return pieces
