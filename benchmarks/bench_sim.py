"""Benchmark the discrete-event hybrid restoration simulation.

Times a full failure/recovery cycle (flooding included) on an
80-router ISP and asserts the §4.2 ordering: local patch strictly
before source re-route, both before full LSDB convergence; the demand
is deliverable at every probed stage.
"""

from __future__ import annotations

import pytest

from repro.core.base_paths import UniqueShortestPathsBase, provision_base_set
from repro.mpls.network import MplsNetwork
from repro.routing.flooding import FloodingModel
from repro.sim.orchestrator import RestorationSimulation
from repro.topology.isp import generate_isp_topology


@pytest.fixture(scope="module")
def sim_setup():
    graph = generate_isp_topology(n=80, seed=4)
    base = UniqueShortestPathsBase(graph)
    nodes = sorted(graph.nodes, key=repr)
    demand = max(
        ((s, t) for s in nodes[:20] for t in nodes[-20:] if s != t),
        key=lambda pair: base.path_for(*pair).hops,
    )
    return graph, base, demand


def bench_full_failure_recovery_cycle(benchmark, sim_setup):
    graph, base, demand = sim_setup

    def run():
        net = MplsNetwork(graph)
        registry = provision_base_set(net, base, pairs=[demand])
        sim = RestorationSimulation(
            net, base, registry, model=FloodingModel()
        )
        managed = sim.add_demand(*demand)
        failed = list(managed.primary.edges())[managed.primary.hops - 1]
        sim.schedule_link_failure(1.0, *failed)
        sim.schedule_link_recovery(3.0, *failed)
        sim.run_until(10.0)
        return sim, managed

    sim, managed = benchmark(run)
    actions = [e.action for e in sim.timeline]
    assert actions.index("local-patch") < actions.index("source-restore")
    assert "source-recover" in actions
    assert sim.inject(*sim_setup[2]).delivered
    assert len(sim.queue) == 0  # flood fully quenched


def bench_flood_convergence(benchmark, sim_setup):
    """Time for every LSDB to learn of one failure (flood only)."""
    graph, base, demand = sim_setup

    def run():
        net = MplsNetwork(graph)
        sim = RestorationSimulation(net, base, {}, model=FloodingModel())
        edge = next(iter(graph.edges()))
        sim.schedule_link_failure(0.0, *edge)
        sim.run_until(60.0)
        return sim, edge

    sim, edge = benchmark(run)
    assert all(
        not router.believes_up(*edge) for router in sim.routers.values()
    )
