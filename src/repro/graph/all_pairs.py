"""All-pairs shortest paths (APSP) — the raw material of every base set.

The base LSP sets of Section 4 are all-pairs shortest paths; RBPC's
decision procedure "is this sub-path a basic path?" reduces to "is it a
shortest path?", which is answered from an APSP distance oracle.

For the graph sizes in the paper (200 — 40k nodes) a distance *matrix*
is only feasible for the small graphs, so this module provides both:

* :class:`ApspDistances` — dense oracle, one Dijkstra per node, built
  eagerly (ISP-sized graphs).
* :class:`LazyDistanceOracle` — per-source Dijkstra computed on first
  use and cached (Internet-sized graphs, where experiments touch only a
  sample of sources).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..exceptions import NoPath
from ..perf import COUNTERS
from .csr import CsrView, dicts_from_arrays, dijkstra_csr_canonical, shared_csr
from .graph import Node
from .paths import Path
from .shortest_paths import costs_equal, dijkstra, dijkstra_pruned, reconstruct_path


class ApspDistances:
    """Eager all-pairs distances and predecessor maps.

    >>> from repro.graph.graph import Graph
    >>> g = Graph.from_edges([(1, 2), (2, 3)])
    >>> apsp = ApspDistances.compute(g)
    >>> apsp.distance(1, 3)
    2.0
    """

    __slots__ = ("_dist", "_pred")

    def __init__(
        self,
        dist: dict[Node, dict[Node, float]],
        pred: dict[Node, dict[Node, Node]],
    ) -> None:
        self._dist = dist
        self._pred = pred

    @classmethod
    def compute(
        cls, graph, sources: Optional[list[Node]] = None, break_ties_by_hops: bool = False
    ) -> "ApspDistances":
        """One Dijkstra per source (all nodes, unless *sources* restricts)."""
        dist: dict[Node, dict[Node, float]] = {}
        pred: dict[Node, dict[Node, Node]] = {}
        for s in sources if sources is not None else graph.nodes:
            dist[s], pred[s] = dijkstra(graph, s, break_ties_by_hops=break_ties_by_hops)
        return cls(dist, pred)

    @property
    def sources(self) -> Iterator[Node]:
        """Iterate over the sources this oracle covers."""
        return iter(self._dist)

    def distance(self, u: Node, v: Node) -> float:
        """Shortest distance u→v; raises :class:`NoPath` if unreachable."""
        row = self._dist.get(u)
        if row is None:
            raise NoPath(f"source {u!r} not covered by this APSP")
        if v not in row:
            raise NoPath(f"no path from {u!r} to {v!r}")
        return row[v]

    def has_path(self, u: Node, v: Node) -> bool:
        """True if a path exists (and the source is covered)."""
        row = self._dist.get(u)
        return row is not None and v in row

    def path(self, u: Node, v: Node) -> Path:
        """One shortest path u→v."""
        if u not in self._pred:
            raise NoPath(f"source {u!r} not covered by this APSP")
        return reconstruct_path(self._pred[u], u, v)

    def is_shortest(self, path: Path, cost: float) -> bool:
        """True if a path of weight *cost* between the endpoints is shortest."""
        return costs_equal(cost, self.distance(path.source, path.target))

    def average_distance(self) -> float:
        """Mean distance over all covered, connected, distinct pairs."""
        total, count = 0.0, 0
        for s, row in self._dist.items():
            for t, d in row.items():
                if s != t:
                    total += d
                    count += 1
        return total / count if count else 0.0


class LazyDistanceOracle:
    """Distance oracle computing per-source Dijkstra rows on demand.

    Suitable for Internet-scale graphs where only sampled sources are
    queried.  The cache is unbounded by design — an experiment's working
    set is its sample of sources.

    Two row flavors coexist:

    * **full rows** — the whole component settled; absence from the row
      proves unreachability (what :meth:`distance` / :meth:`path` use);
    * **truncated rows** — computed by :meth:`warm` with a target set,
      stopping as soon as every requested target settles.  This is the
      decomposition kernel's access pattern: a restoration path's O(1)
      membership probes only ever compare against distances *between
      nodes of that path*, so settling the rest of a 40k-node graph is
      wasted work.  A truncated row later queried beyond its settled
      frontier is transparently promoted to a full row (counted in
      ``COUNTERS.oracle_promotions``).

    With *tie_free* the caller guarantees distinct paths have distinct
    costs (true for the infinitesimally padded graphs of Theorem 3's
    construction), which lets rows run on the flat-array CSR kernel
    (:func:`~repro.graph.csr.dijkstra_csr_canonical`): without ties the
    predecessor tree is independent of heap pop order, so :meth:`path`
    answers stay bit-identical to the classic implementation's while the
    row computation avoids dict-of-dicts adjacency walks entirely.
    """

    __slots__ = (
        "_graph",
        "_dist",
        "_pred",
        "_complete",
        "_truncated",
        "_csr",
        "break_ties_by_hops",
        "tie_free",
    )

    def __init__(
        self, graph, break_ties_by_hops: bool = False, tie_free: bool = False
    ) -> None:
        self._graph = graph
        self._dist: dict[Node, dict[Node, float]] = {}
        self._pred: dict[Node, dict[Node, Node]] = {}
        self._complete: set[Node] = set()
        self._truncated: set[Node] = set()
        self._csr: Optional[CsrView] = None
        self.break_ties_by_hops = break_ties_by_hops
        self.tie_free = tie_free

    def _csr_view(self) -> CsrView:
        """The (lazily interned) CSR snapshot the tie-free rows run on."""
        if self._csr is None:
            self._csr = CsrView(shared_csr(self._graph))
        return self._csr

    def _ensure(self, source: Node) -> None:
        """Make the row for *source* a full row."""
        if source in self._complete:
            return
        if source in self._truncated:
            COUNTERS.oracle_promotions += 1
            self._truncated.discard(source)
        if self.tie_free and not self.break_ties_by_hops:
            view = self._csr_view()
            arr_dist, arr_pred, _ = dijkstra_csr_canonical(
                view, view.csr.index[source]
            )
            dist, pred = dicts_from_arrays(view.csr, arr_dist, arr_pred)
            self._dist[source], self._pred[source] = dist, pred
        else:
            self._dist[source], self._pred[source] = dijkstra(
                self._graph, source, break_ties_by_hops=self.break_ties_by_hops
            )
        self._complete.add(source)
        COUNTERS.oracle_rows_full += 1

    def warm(self, source: Node, targets: Iterable[Node]) -> None:
        """Guarantee each target is settled or provably unreachable.

        First request for a source runs a target-pruned Dijkstra; a
        later request outrunning the settled frontier promotes the row
        to a full one (re-running truncated searches per query would
        forfeit the cross-case caching the experiments rely on).
        """
        if source in self._complete:
            return
        row = self._dist.get(source)
        if row is not None:
            if all(t in row for t in targets):
                return
            self._ensure(source)
            return
        if self.tie_free and not self.break_ties_by_hops:
            view = self._csr_view()
            index = view.csr.index
            arr_dist, arr_pred, exhausted = dijkstra_csr_canonical(
                view, index[source], targets=[index[t] for t in targets]
            )
            dist, pred = dicts_from_arrays(view.csr, arr_dist, arr_pred)
        else:
            dist, pred, exhausted = dijkstra_pruned(self._graph, source, targets)
        self._dist[source], self._pred[source] = dist, pred
        if exhausted:
            self._complete.add(source)
            COUNTERS.oracle_rows_full += 1
        else:
            self._truncated.add(source)
            COUNTERS.oracle_rows_truncated += 1

    def distances_from(self, source: Node, targets: Iterable[Node]) -> dict[Node, float]:
        """Exact distances to *targets*; a missing key means unreachable.

        The decomposition kernel's bulk accessor: one call warms the
        row, and the returned plain dict makes every subsequent probe a
        dictionary lookup plus one float comparison.
        """
        targets = list(targets)
        self.warm(source, targets)
        row = self._dist[source]
        return {t: row[t] for t in targets if t in row}

    def distance(self, u: Node, v: Node) -> float:
        """Shortest distance source->target; raises NoPath if unreachable."""
        row = self._dist.get(u)
        if row is not None and v in row:
            return row[v]
        if u in self._complete:
            raise NoPath(f"no path from {u!r} to {v!r}")
        self._ensure(u)
        if v not in self._dist[u]:
            raise NoPath(f"no path from {u!r} to {v!r}")
        return self._dist[u][v]

    def has_path(self, u: Node, v: Node) -> bool:
        """True if a path exists (and the source is covered)."""
        row = self._dist.get(u)
        if row is not None and v in row:
            return True
        if u in self._complete:
            return False
        self._ensure(u)
        return v in self._dist[u]

    def path(self, u: Node, v: Node) -> Path:
        """One shortest path for the pair, reconstructed from the cache."""
        if u not in self._complete:
            self._ensure(u)
        return reconstruct_path(self._pred[u], u, v)

    def cached_sources(self) -> list[Node]:
        """Sources whose Dijkstra results are currently cached."""
        return list(self._dist)
