"""SPF computation over a link-state database — the OSPF stand-in.

The paper runs RBPC "in conjunction with e.g. OSPF": the routing
protocol supplies shortest paths (both the provisioned base set and,
after multiple failures, the new route the restoration scheme must
cover).  :class:`SpfRouter` is that per-router computation: it owns an
LSDB, recomputes its shortest-path tree when the LSDB changes, and
answers route queries.
"""

from __future__ import annotations

from typing import Optional

from ..exceptions import NoPath
from ..graph.csr import CsrView, dicts_from_arrays, dijkstra_csr_canonical, shared_csr
from ..graph.graph import Graph, Node
from ..graph.paths import Path
from ..graph.shortest_paths import reconstruct_path
from .lsdb import LinkStateAd, LinkStateDatabase


def _spf_run(graph: Graph, root: Node) -> tuple[dict[Node, float], dict[Node, Node]]:
    """One full SPF: the canonical CSR kernel, dict-shaped results.

    :func:`~repro.graph.csr.dijkstra_csr_canonical` breaks equal-cost
    ties by ``(dist, node index)`` — the library-wide path contract —
    so every router deterministically picks the same equal-cost route
    regardless of the order LSAs arrived (real OSPF's first-learned
    tie-breaking is history-dependent; a deterministic rule is what the
    restoration proofs need).
    """
    csr = shared_csr(graph)
    dist, pred, _ = dijkstra_csr_canonical(CsrView(csr), csr.index[root])
    return dicts_from_arrays(csr, dist, pred)


class SpfRouter:
    """One router's routing process: LSDB + lazily recomputed SPF tree."""

    __slots__ = ("name", "lsdb", "_dist", "_pred", "_dirty")

    def __init__(self, name: Node, lsdb: LinkStateDatabase) -> None:
        self.name = name
        self.lsdb = lsdb
        self._dist: dict[Node, float] = {}
        self._pred: dict[Node, Node] = {}
        self._dirty = True

    def receive(self, ad: LinkStateAd) -> bool:
        """Apply an advertisement; marks SPF dirty if the LSDB changed."""
        changed = self.lsdb.apply(ad)
        if changed:
            self._dirty = True
        return changed

    def _recompute(self) -> None:
        graph = self.lsdb.to_graph()
        if graph.has_node(self.name):
            self._dist, self._pred = _spf_run(graph, self.name)
        else:
            self._dist, self._pred = {self.name: 0.0}, {}
        self._dirty = False

    def distance_to(self, target: Node) -> float:
        """Believed shortest distance to *target* (NoPath if unreachable)."""
        if self._dirty:
            self._recompute()
        if target not in self._dist:
            raise NoPath(f"{self.name!r} believes {target!r} unreachable")
        return self._dist[target]

    def route_to(self, target: Node) -> Path:
        """Believed shortest path to *target*."""
        if self._dirty:
            self._recompute()
        if target not in self._dist:
            raise NoPath(f"{self.name!r} believes {target!r} unreachable")
        return reconstruct_path(self._pred, self.name, target)

    def next_hop_to(self, target: Node) -> Optional[Node]:
        """First hop of the believed route (None when target is self)."""
        route = self.route_to(target)
        return route.nodes[1] if route.hops else None

    def believes_up(self, u: Node, v: Node) -> bool:
        """True if this router's LSDB has the link up."""
        return self.lsdb.is_up(u, v)


def spf_tree(graph: Graph, root: Node) -> dict[Node, Path]:
    """Convenience: full shortest-path tree of *graph* from *root* as paths."""
    dist, pred = _spf_run(graph, root)
    return {t: reconstruct_path(pred, root, t) for t in dist}
