"""Property: a FilteredView is indistinguishable from a mutated copy.

Every failure computation in the library runs on zero-copy views; this
equivalence is what licenses that design, so it gets its own property
test: any (edges, nodes) removal applied as a view and as destructive
mutation must agree on all observable behaviour — adjacency, counts,
components, and shortest paths.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.graph.connectivity import connected_components
from repro.graph.graph import Graph
from repro.graph.shortest_paths import dijkstra
from repro.topology.isp import generate_isp_topology


@st.composite
def removal_instances(draw):
    seed = draw(st.integers(0, 40))
    graph = generate_isp_topology(n=24, seed=seed, weighted=True)
    edges = sorted(graph.edges(), key=repr)
    nodes = sorted(graph.nodes, key=repr)
    rng = random.Random(draw(st.integers(0, 10_000)))
    failed_edges = rng.sample(edges, draw(st.integers(0, 4)))
    failed_nodes = rng.sample(nodes, draw(st.integers(0, 2)))
    return graph, failed_edges, failed_nodes


def mutated_copy(graph: Graph, failed_edges, failed_nodes) -> Graph:
    clone = graph.copy()
    for node in failed_nodes:
        if clone.has_node(node):
            clone.remove_node(node)
    for u, v in failed_edges:
        if clone.has_edge(u, v):
            clone.remove_edge(u, v)
    return clone


@settings(max_examples=40, deadline=None)
@given(removal_instances())
def test_structure_agrees(instance):
    graph, failed_edges, failed_nodes = instance
    view = graph.without(edges=failed_edges, nodes=failed_nodes)
    mutated = mutated_copy(graph, failed_edges, failed_nodes)

    assert set(view.nodes) == set(mutated.nodes)
    assert set(view.edges()) == set(mutated.edges())
    assert view.number_of_nodes() == mutated.number_of_nodes()
    assert view.number_of_edges() == mutated.number_of_edges()
    for node in mutated.nodes:
        assert sorted(view.neighbors(node), key=repr) == sorted(
            mutated.neighbors(node), key=repr
        )
        assert view.degree(node) == mutated.degree(node)


@settings(max_examples=40, deadline=None)
@given(removal_instances())
def test_components_agree(instance):
    graph, failed_edges, failed_nodes = instance
    view = graph.without(edges=failed_edges, nodes=failed_nodes)
    mutated = mutated_copy(graph, failed_edges, failed_nodes)
    a = sorted(sorted(map(repr, c)) for c in connected_components(view))
    b = sorted(sorted(map(repr, c)) for c in connected_components(mutated))
    assert a == b


@settings(max_examples=30, deadline=None)
@given(removal_instances())
def test_shortest_distances_agree(instance):
    graph, failed_edges, failed_nodes = instance
    view = graph.without(edges=failed_edges, nodes=failed_nodes)
    mutated = mutated_copy(graph, failed_edges, failed_nodes)
    sources = sorted(mutated.nodes, key=repr)[:3]
    for source in sources:
        dist_view, _ = dijkstra(view, source)
        dist_mut, _ = dijkstra(mutated, source)
        assert dist_view == dist_mut
