"""Machine-readable perf output — ``BENCH_<name>.json`` emission.

Every experiment CLI and benchmark writes one JSON document per run so
the performance trajectory of the pipeline is tracked from PR to PR:
wall-clock, per-stage timings, case counts, and the global work
counters (:mod:`repro.perf`).  The driver convention is a file named
``BENCH_<name>.json`` in the current working directory (the repo root
in CI), overridable per CLI via ``--bench-json``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional


class StageTimer:
    """Accumulating named wall-clock stages.

    >>> timer = StageTimer()
    >>> with timer.stage("warmup"):
    ...     pass
    >>> "warmup" in timer.stages
    True
    """

    def __init__(self) -> None:
        self.stages: dict[str, float] = {}
        self._start = time.perf_counter()

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a block; repeated stages accumulate."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.stages[name] = (
                self.stages.get(name, 0.0) + time.perf_counter() - t0
            )

    def total(self) -> float:
        """Seconds since this timer was created."""
        return time.perf_counter() - self._start

    def as_dict(self, digits: int = 4) -> dict[str, float]:
        """Rounded stage timings, insertion-ordered."""
        return {name: round(secs, digits) for name, secs in self.stages.items()}


def write_bench_json(
    name: str, payload: dict[str, Any], path: Optional[str] = None
) -> Path:
    """Write ``BENCH_<name>.json`` (or *path*); returns the path written."""
    out = Path(path) if path else Path.cwd() / f"BENCH_{name}.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return out
