"""Local RBPC (Sections 4.2, 6): the router next to the failure patches it.

Two strategies, both acting only on R1 — the router immediately
upstream of the failed link on the disrupted LSP:

* **end-route** — R1 re-routes straight to the LSP's destination along
  a concatenation of surviving base paths (Figure 8);
* **edge-bypass** — R1 routes around the failed link to its far
  endpoint and lets the packet *resume the original LSP* there
  (Figure 9): the replacement ILM entry pushes the original LSP's
  label at the far endpoint underneath the bypass labels.

Pure route computations (used by the Table 3 / Figure 10 experiments
on large graphs) are module-level functions; :class:`LocalRbpc` applies
the strategies to a live MPLS network by rewriting R1's ILM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..exceptions import NoRestorationPath, NoPath
from ..graph.graph import Edge, Graph, Node, edge_key
from ..graph.incremental import fast_shortest_path
from ..graph.paths import Path
from ..graph.shortest_paths import shortest_path
from ..mpls.ilm import IlmEntry
from ..mpls.network import MplsNetwork
from .base_paths import BaseSet
from .decomposition import Decomposition, min_pieces_decompose
from .restoration import plan_restoration


class LocalStrategy(enum.Enum):
    """Which local patch R1 installs: re-route to the LSP's end, or
    around the dead link and back onto the original LSP."""

    END_ROUTE = "end-route"
    EDGE_BYPASS = "edge-bypass"


def upstream_router(path: Path, failed: Edge) -> Node:
    """R1: the router from which *path* crosses the failed link.

    Raises ``ValueError`` if the path does not use the link.
    """
    for u, v in path.edges():
        if edge_key(u, v) == edge_key(*failed):
            return u
    raise ValueError(f"{path!r} does not traverse {failed!r}")


def bypass_path(
    graph: Graph,
    u: Node,
    v: Node,
    weighted: bool = True,
    extra_failures=None,
) -> Path:
    """Min-cost path from *u* to *v* avoiding the (failed) link *(u, v)*.

    The quantity whose hop count Table 3 tabulates.  *extra_failures*
    stacks additional failed links/nodes (multi-failure runs).  Raises
    :class:`NoRestorationPath` when the link is a bridge.
    """
    failed_edges = [(u, v)]
    failed_nodes = ()
    if extra_failures is not None:
        failed_edges.extend(extra_failures.links)
        failed_nodes = tuple(extra_failures.routers)
    view = graph.without(edges=failed_edges, nodes=failed_nodes)
    try:
        # Routed through the shared SPT cache: repeated bypass queries
        # for the same endpoint amortize one cached pre-failure row
        # (non-tree failures repair for free; tree failures re-settle
        # only the affected subtree).
        return fast_shortest_path(view, u, v, weighted=weighted)
    except NoPath as exc:
        raise NoRestorationPath(f"link ({u!r}, {v!r}) is a bridge") from exc


def end_route_route(
    graph: Graph,
    primary: Path,
    failed: Edge,
    weighted: bool = True,
) -> Path:
    """Full source→destination route under end-route local RBPC.

    The packet follows the original path to R1, then R1's new shortest
    path to the destination over the surviving graph.  This is the
    route whose stretch (vs. the true min-cost restoration) Figure 10
    histograms.
    """
    r1 = upstream_router(primary, failed)
    prefix = primary.subpath_between(primary.source, r1)
    view = graph.without(edges=[failed])
    try:
        patch = fast_shortest_path(view, r1, primary.target, weighted=weighted)
    except NoPath as exc:
        raise NoRestorationPath(f"no surviving path {r1!r} -> {primary.target!r}") from exc
    return prefix.concat(patch)


def edge_bypass_route(
    graph: Graph,
    primary: Path,
    failed: Edge,
    weighted: bool = True,
) -> Path:
    """Full source→destination route under edge-bypass local RBPC.

    Original path to R1, the min-cost bypass around the dead link, then
    the original path onward from the link's far endpoint.
    """
    r1 = upstream_router(primary, failed)
    far = failed[1] if failed[0] == r1 else failed[0]
    prefix = primary.subpath_between(primary.source, r1)
    suffix = primary.subpath_between(far, primary.target)
    bypass = bypass_path(graph, r1, far, weighted=weighted)
    return prefix.concat(bypass).concat(suffix)


@dataclass
class LocalPatch:
    """Record of one applied local restoration (for revert)."""

    lsp_id: int
    router: Node
    label: int
    original_entry: IlmEntry
    strategy: LocalStrategy
    decomposition: Decomposition


class LocalRbpc:
    """Applies local RBPC to a live MPLS network by rewriting R1's ILM."""

    def __init__(
        self,
        network: MplsNetwork,
        base_set: BaseSet,
        lsp_registry: Optional[dict[Path, int]] = None,
        weighted: bool = True,
    ) -> None:
        self.network = network
        self.base_set = base_set
        self.lsp_registry = lsp_registry if lsp_registry is not None else {}
        self.weighted = weighted
        self._patches: dict[int, LocalPatch] = {}

    def _chain_labels(self, decomposition: Decomposition) -> list[int]:
        """Head labels for the pieces, bottom-of-stack first.

        The *last* piece's label must sit deepest so the stack unwinds
        piece by piece; missing LSPs are provisioned on demand.
        """
        labels: list[int] = []
        for piece in reversed(decomposition.pieces):
            lsp_id = self.lsp_registry.get(piece)
            if lsp_id is None:
                lsp_id = self.network.provision_lsp(piece).lsp_id
                self.lsp_registry[piece] = lsp_id
            labels.append(self.network.get_lsp(lsp_id).head_label)
        return labels

    def patch(
        self,
        lsp_id: int,
        failed: Edge,
        strategy: LocalStrategy = LocalStrategy.EDGE_BYPASS,
    ) -> LocalPatch:
        """Patch one disrupted LSP at the router adjacent to *failed*.

        Replaces R1's ILM entry for the LSP so packets already in
        flight are re-routed; the rest of the network is untouched.
        """
        lsp = self.network.get_lsp(lsp_id)
        r1 = upstream_router(lsp.path, failed)
        far = failed[1] if failed[0] == r1 else failed[0]
        view = self.network.operational_view

        if strategy is LocalStrategy.END_ROUTE:
            decomposition = plan_restoration(
                view, self.base_set, r1, lsp.tail, weighted=self.weighted
            )
            push = tuple(self._chain_labels(decomposition))
        else:
            try:
                around = shortest_path(view, r1, far, weighted=self.weighted)
            except NoPath as exc:
                raise NoRestorationPath(
                    f"no surviving bypass around {failed!r}"
                ) from exc
            decomposition = min_pieces_decompose(
                around, self.base_set, allow_edges=True
            )
            resume_label = lsp.labels.get(far)
            bypass_labels = self._chain_labels(decomposition)
            if resume_label is None:
                # PHP tail: the original LSP has no label at `far`; the
                # packet simply arrives there unlabeled, which is the
                # LSP's tail behaviour anyway.
                push = tuple(bypass_labels)
            else:
                push = (resume_label, *bypass_labels)

        incoming = lsp.labels[r1]
        router = self.network.routers[r1]
        original = router.ilm.lookup(incoming)
        router.install_ilm(incoming, IlmEntry(push=push, next_hop=None, lsp_id=lsp_id))
        self.network.ledger.record_ilm_update(detail=f"local patch lsp {lsp_id} at {r1!r}")
        patch = LocalPatch(
            lsp_id=lsp_id,
            router=r1,
            label=incoming,
            original_entry=original,
            strategy=strategy,
            decomposition=decomposition,
        )
        self._patches[lsp_id] = patch
        return patch

    def patch_router_failure(self, lsp_id: int, failed_router: Node) -> LocalPatch:
        """Patch an LSP whose *interior router* failed (Section 3's node case).

        The router upstream of the failed one on the LSP acts as R1 and
        end-routes to the LSP's destination over the surviving graph —
        a node failure is the failure of all its incident edges, so
        edge-bypass around a single link cannot apply.  Raises
        ``ValueError`` if the router is not interior to the LSP and
        :class:`NoRestorationPath` when the failure disconnects R1 from
        the destination.
        """
        lsp = self.network.get_lsp(lsp_id)
        interior = lsp.path.interior_nodes()
        if failed_router not in interior:
            raise ValueError(
                f"{failed_router!r} is not an interior router of LSP {lsp_id}"
            )
        index = lsp.path.index(failed_router)
        r1 = lsp.path.nodes[index - 1]
        view = self.network.operational_view
        decomposition = plan_restoration(
            view, self.base_set, r1, lsp.tail, weighted=self.weighted
        )
        push = tuple(self._chain_labels(decomposition))
        incoming = lsp.labels[r1]
        router = self.network.routers[r1]
        original = router.ilm.lookup(incoming)
        router.install_ilm(incoming, IlmEntry(push=push, next_hop=None, lsp_id=lsp_id))
        self.network.ledger.record_ilm_update(
            detail=f"local router-failure patch lsp {lsp_id} at {r1!r}"
        )
        patch = LocalPatch(
            lsp_id=lsp_id,
            router=r1,
            label=incoming,
            original_entry=original,
            strategy=LocalStrategy.END_ROUTE,
            decomposition=decomposition,
        )
        self._patches[lsp_id] = patch
        return patch

    def revert(self, lsp_id: int) -> None:
        """Undo the patch for an LSP (its link recovered)."""
        patch = self._patches.pop(lsp_id, None)
        if patch is None:
            return
        router = self.network.routers[patch.router]
        router.install_ilm(patch.label, patch.original_entry)
        self.network.ledger.record_ilm_update(detail=f"revert lsp {lsp_id}")

    def revert_all(self) -> None:
        """Undo every active patch (mass recovery)."""
        for lsp_id in list(self._patches):
            self.revert(lsp_id)

    def active_patches(self) -> list[LocalPatch]:
        """Currently installed local patches."""
        return list(self._patches.values())
