"""Single-source and point-to-point shortest path algorithms.

Everything in the paper sits on shortest paths: the base sets are
all-pairs shortest paths, restoration paths are shortest paths of the
failed graph, and the greedy decomposition repeatedly asks "is this
prefix a shortest path?".  This module provides:

* :func:`dijkstra` — classic single-source Dijkstra over the adjacency
  protocol, with optional early target exit and optional hop-count
  tie-breaking (so that among equal-cost paths the fewest-hop one is
  found, matching OSPF behaviour).
* :func:`bfs_shortest_paths` — the unweighted specialization.
* :func:`bidirectional_dijkstra` — point-to-point queries on the big
  Internet-scale graphs, where full Dijkstra per query is wasteful.
* :func:`shortest_path` / :func:`shortest_path_length` — convenience
  wrappers returning :class:`~repro.graph.paths.Path` objects.

All functions accept any object implementing the adjacency protocol
(:class:`~repro.graph.graph.Graph`, :class:`~repro.graph.graph.DiGraph`,
or :class:`~repro.graph.graph.FilteredView`), so running them "after k
failures" is just running them on a view.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional

from ..exceptions import NodeNotFound, NoPath
from ..perf import COUNTERS
from .graph import Node
from .heap import AddressableHeap
from .paths import Path

#: Distances closer than this are considered equal when testing whether a
#: path is shortest.  Weights in the experiments are sums of at most a few
#: hundred terms of magnitude <= 1e4, so 1e-9 relative slack is safe.
EPSILON = 1e-9


def costs_equal(a: float, b: float) -> bool:
    """Float-tolerant equality for path costs."""
    return abs(a - b) <= EPSILON * max(1.0, abs(a), abs(b))


def dijkstra(
    graph,
    source: Node,
    target: Optional[Node] = None,
    break_ties_by_hops: bool = False,
) -> tuple[dict[Node, float], dict[Node, Node]]:
    """Single-source Dijkstra.

    Returns ``(dist, pred)`` where ``dist[v]`` is the cost of the shortest
    path from *source* to every reached node *v* and ``pred[v]`` is *v*'s
    predecessor on one such path (``pred[source]`` is absent).

    With *target* given, stops as soon as the target is settled; ``dist``
    then covers only settled nodes.  With *break_ties_by_hops*, among
    equal-cost paths the one with fewer hops is preferred — this mirrors
    what an OSPF implementation with equal-cost tie-breaking produces and
    keeps restoration-path hop counts canonical.
    """
    if not graph.has_node(source):
        raise NodeNotFound(f"no node {source!r}")
    dist: dict[Node, float] = {}
    hops: dict[Node, int] = {}
    pred: dict[Node, Node] = {}
    heap: AddressableHeap[Node] = AddressableHeap()
    heap.push(source, (0.0, 0) if break_ties_by_hops else 0.0)
    tentative_hops: dict[Node, int] = {source: 0}
    relaxations = 0
    while heap:
        u, priority = heap.pop()
        if break_ties_by_hops:
            d_u, h_u = priority  # type: ignore[misc]
        else:
            d_u, h_u = priority, tentative_hops.get(u, 0)
        dist[u] = d_u  # type: ignore[assignment]
        hops[u] = h_u
        if u == target:
            break
        for v, w in graph.adjacency(u):
            relaxations += 1
            if v in dist:
                continue
            candidate = d_u + w  # type: ignore[operator]
            if break_ties_by_hops:
                if heap.push_or_decrease(v, (candidate, h_u + 1)):
                    pred[v] = u
            else:
                if heap.push_or_decrease(v, candidate):
                    pred[v] = u
                    tentative_hops[v] = h_u + 1
    COUNTERS.dijkstra_runs += 1
    COUNTERS.dijkstra_settled += len(dist)
    COUNTERS.dijkstra_relaxations += relaxations
    return dist, pred


def dijkstra_pruned(
    graph,
    source: Node,
    targets: Optional[Iterable[Node]] = None,
) -> tuple[dict[Node, float], dict[Node, Node], bool]:
    """Target-pruned single-source Dijkstra on a lazy binary heap.

    The workhorse behind the distance oracle's row computation: a
    ``heapq``-based Dijkstra (decrease-key replaced by lazy stale-entry
    skipping, which is substantially faster in pure Python than an
    addressable heap) that stops as soon as every node in *targets* is
    settled.  With ``targets=None`` the whole component is settled.

    Returns ``(dist, pred, exhausted)`` where *exhausted* is True when
    the search ran to completion — only then does a node's absence from
    ``dist`` prove it unreachable.

    Distances are exact for every settled node regardless of pruning,
    so truncation never changes a comparison made against the returned
    rows.  Tie-breaking between equal-cost predecessors follows the
    same "first strict improvement wins" rule as :func:`dijkstra`; on
    the padded (tie-free) graphs the oracle runs on, the predecessor
    tree is therefore bit-identical to the classic implementation's.
    """
    if not graph.has_node(source):
        raise NodeNotFound(f"no node {source!r}")
    dist: dict[Node, float] = {}
    pred: dict[Node, Node] = {}
    best: dict[Node, float] = {source: 0.0}
    remaining: Optional[set[Node]] = None
    if targets is not None:
        remaining = {t for t in targets if t != source}
    heap: list[tuple[float, int, Node]] = [(0.0, 0, source)]
    seq = 0
    relaxations = 0
    exhausted = True
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d_u, _, u = pop(heap)
        if u in dist:
            continue
        dist[u] = d_u
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                exhausted = not heap
                break
        for v, w in graph.adjacency(u):
            relaxations += 1
            if v in dist:
                continue
            candidate = d_u + w
            old = best.get(v)
            if old is None or candidate < old:
                best[v] = candidate
                seq += 1
                push(heap, (candidate, seq, v))
                pred[v] = u
    COUNTERS.dijkstra_runs += 1
    COUNTERS.dijkstra_settled += len(dist)
    COUNTERS.dijkstra_relaxations += relaxations
    return dist, pred, exhausted


def bfs_shortest_paths(
    graph, source: Node, target: Optional[Node] = None
) -> tuple[dict[Node, float], dict[Node, Node]]:
    """Breadth-first shortest paths for unweighted graphs.

    Returns ``(dist, pred)`` with hop-count distances as floats, so the
    result is interchangeable with :func:`dijkstra` output.

    With *target* given, the search stops at the moment the target is
    *discovered* (its BFS distance is already final then) rather than
    after its whole level is expanded — on small-diameter graphs the
    last level is often the largest, so this halves the work of a
    typical restoration-path query.
    """
    if not graph.has_node(source):
        raise NodeNotFound(f"no node {source!r}")
    dist: dict[Node, float] = {source: 0.0}
    pred: dict[Node, Node] = {}
    if source == target:
        COUNTERS.bfs_runs += 1
        COUNTERS.bfs_settled += 1
        return dist, pred
    frontier = [source]
    while frontier:
        next_frontier = []
        for u in frontier:
            d_next = dist[u] + 1.0
            for v in graph.neighbors(u):
                if v not in dist:
                    dist[v] = d_next
                    pred[v] = u
                    if v == target:
                        COUNTERS.bfs_runs += 1
                        COUNTERS.bfs_settled += len(dist)
                        return dist, pred
                    next_frontier.append(v)
        frontier = next_frontier
    COUNTERS.bfs_runs += 1
    COUNTERS.bfs_settled += len(dist)
    return dist, pred


def reconstruct_path(pred: dict[Node, Node], source: Node, target: Node) -> Path:
    """Rebuild the path from a predecessor map produced by this module."""
    if target == source:
        return Path([source])
    if target not in pred:
        raise NoPath(f"no path from {source!r} to {target!r}")
    nodes = [target]
    node = target
    while node != source:
        node = pred[node]
        nodes.append(node)
    nodes.reverse()
    return Path(nodes)


def bidirectional_dijkstra(graph, source: Node, target: Node) -> tuple[float, Path]:
    """Point-to-point shortest path by simultaneous forward/backward search.

    Returns ``(cost, path)``.  Only valid on undirected graphs/views (the
    backward search reuses the forward adjacency).  Raises
    :class:`~repro.exceptions.NoPath` when disconnected.
    """
    if getattr(graph, "directed", False):
        raise ValueError("bidirectional_dijkstra requires an undirected graph")
    if not graph.has_node(source):
        raise NodeNotFound(f"no node {source!r}")
    if not graph.has_node(target):
        raise NodeNotFound(f"no node {target!r}")
    if source == target:
        return 0.0, Path([source])

    dists: list[dict[Node, float]] = [{}, {}]  # settled: forward, backward
    preds: list[dict[Node, Node]] = [{}, {}]
    heaps: list[AddressableHeap[Node]] = [AddressableHeap(), AddressableHeap()]
    heaps[0].push(source, 0.0)
    heaps[1].push(target, 0.0)
    best_cost = float("inf")
    meeting: Optional[Node] = None

    while heaps[0] and heaps[1]:
        # Termination: once the frontier minima sum to >= the best meeting
        # cost, no undiscovered route can improve on it.
        if heaps[0].peek()[1] + heaps[1].peek()[1] >= best_cost:  # type: ignore[operator]
            break
        # Expand the side with the smaller frontier minimum.
        side = 0 if heaps[0].peek()[1] <= heaps[1].peek()[1] else 1
        u, d_u = heaps[side].pop()
        dists[side][u] = d_u  # type: ignore[assignment]
        other = 1 - side
        if u in dists[other] and dists[side][u] + dists[other][u] < best_cost:
            best_cost = dists[side][u] + dists[other][u]
            meeting = u
        for v, w in graph.adjacency(u):
            if v in dists[side]:
                continue
            candidate = d_u + w  # type: ignore[operator]
            if heaps[side].push_or_decrease(v, candidate):
                preds[side][v] = u
            # Path through frontier edge may beat both settled meetings.
            if v in dists[other] and candidate + dists[other][v] < best_cost:
                best_cost = candidate + dists[other][v]
                meeting = v

    if meeting is None:
        raise NoPath(f"no path from {source!r} to {target!r}")
    forward = reconstruct_path(preds[0], source, meeting)
    backward = reconstruct_path(preds[1], target, meeting)
    return best_cost, forward.concat(backward.reversed())


def shortest_path(
    graph,
    source: Node,
    target: Node,
    weighted: bool = True,
    break_ties_by_hops: bool = False,
) -> Path:
    """Return one shortest path from *source* to *target* as a :class:`Path`.

    Raises :class:`~repro.exceptions.NoPath` when the nodes are not
    connected in *graph* (e.g. after failures).
    """
    if weighted:
        dist, pred = dijkstra(
            graph, source, target=target, break_ties_by_hops=break_ties_by_hops
        )
    else:
        dist, pred = bfs_shortest_paths(graph, source, target=target)
    if target not in dist:
        raise NoPath(f"no path from {source!r} to {target!r}")
    return reconstruct_path(pred, source, target)


def shortest_path_length(
    graph, source: Node, target: Node, weighted: bool = True
) -> float:
    """Cost of the shortest path, without materializing the path."""
    if weighted:
        dist, _ = dijkstra(graph, source, target=target)
    else:
        dist, _ = bfs_shortest_paths(graph, source, target=target)
    if target not in dist:
        raise NoPath(f"no path from {source!r} to {target!r}")
    return dist[target]


def single_source_distances(graph, source: Node, weighted: bool = True) -> dict[Node, float]:
    """All distances from *source* (missing keys mean unreachable)."""
    if weighted:
        dist, _ = dijkstra(graph, source)
    else:
        dist, _ = bfs_shortest_paths(graph, source)
    return dist


def is_shortest_path(graph, path: Path, weighted: bool = True) -> bool:
    """True if *path* is a shortest path in *graph* between its endpoints.

    The path must be valid in *graph*; its cost is compared (with float
    tolerance) against the true shortest distance.
    """
    if not path.is_valid_in(graph):
        return False
    if path.is_trivial:
        return True
    if weighted:
        actual = path.cost(graph)
        best = shortest_path_length(graph, path.source, path.target, weighted=True)
        return costs_equal(actual, best)
    best = shortest_path_length(graph, path.source, path.target, weighted=False)
    return path.hops == int(best)


def reachable_from(graph, source: Node) -> set[Node]:
    """The set of nodes reachable from *source* (directed reachability)."""
    seen = {source}
    stack = [source]
    while stack:
        u = stack.pop()
        for v in graph.neighbors(u):
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return seen
