"""Tests for greedy / optimal / Dijkstra-over-base-paths decomposition."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.base_paths import (
    AllShortestPathsBase,
    ExplicitBaseSet,
    UniqueShortestPathsBase,
    unique_shortest_path_base,
)
from repro.core.decomposition import (
    Decomposition,
    concatenation_shortest_path,
    greedy_decompose,
    min_pieces_decompose,
)
from repro.exceptions import DecompositionError, NoPath
from repro.graph.graph import Graph
from repro.graph.paths import Path, concat_all
from repro.graph.shortest_paths import shortest_path
from repro.topology.classic import comb_graph, weighted_comb_graph
from repro.topology.isp import generate_isp_topology


class TestDecompositionObject:
    def test_counts(self):
        d = Decomposition(
            pieces=(Path([1, 2]), Path([2, 3])), base_flags=(True, False)
        )
        assert d.num_pieces == 2
        assert d.num_base_paths == 1
        assert d.num_extra_edges == 1
        assert d.path == Path([1, 2, 3])

    def test_misaligned_flags_rejected(self):
        with pytest.raises(ValueError):
            Decomposition(pieces=(Path([1, 2]),), base_flags=())


class TestGreedy:
    def test_whole_path_is_one_piece(self, diamond):
        base = AllShortestPathsBase(diamond)
        d = greedy_decompose(Path([1, 2, 4]), base)
        assert d.num_pieces == 1

    def test_trivial_path(self, diamond):
        base = AllShortestPathsBase(diamond)
        assert greedy_decompose(Path([1]), base).num_pieces == 0

    def test_comb_greedy_achieves_bound(self):
        for k in (1, 2, 4):
            g, failed, s, t = comb_graph(k)
            view = g.without(edges=failed)
            backup = shortest_path(view, s, t, weighted=False)
            base = AllShortestPathsBase(g, include_all_edges=False)
            d = greedy_decompose(backup, base)
            assert d.num_pieces == k + 1
            assert concat_all(list(d.pieces)) == backup

    def test_binary_and_linear_agree_on_all_sp_base(self, small_isp):
        base = AllShortestPathsBase(small_isp)
        rng = random.Random(1)
        nodes = sorted(small_isp.nodes, key=repr)
        for _ in range(10):
            s, t = rng.sample(nodes, 2)
            u, v = None, None
            primary = base.path_for(s, t)
            if primary.hops < 2:
                continue
            u, v = list(primary.edges())[primary.hops // 2]
            view = small_isp.without(edges=[(u, v)])
            try:
                backup = shortest_path(view, s, t)
            except NoPath:
                continue
            d_bin = greedy_decompose(backup, base, prefix_probe="binary")
            d_lin = greedy_decompose(backup, base, prefix_probe="linear")
            assert d_bin.pieces == d_lin.pieces

    def test_unknown_probe_rejected(self, diamond):
        base = AllShortestPathsBase(diamond)
        with pytest.raises(ValueError):
            greedy_decompose(Path([1, 2, 4]), base, prefix_probe="quantum")

    def test_stuck_raises(self):
        # Explicit empty base set, no edges allowed: nothing covers the path.
        g = Graph.from_edges([(1, 2)])
        base = ExplicitBaseSet(g)
        with pytest.raises(DecompositionError):
            greedy_decompose(Path([1, 2]), base, allow_edges=False)

    def test_bare_edge_fallback(self, weighted_diamond):
        # Force the non-shortest edge (2,3) as the only route.
        base = AllShortestPathsBase(weighted_diamond, include_all_edges=False)
        d = greedy_decompose(Path([1, 2, 3]), base, allow_edges=True)
        assert d.num_extra_edges >= 1
        assert d.path == Path([1, 2, 3])


class TestMinPieces:
    def test_optimal_beats_or_matches_greedy(self, small_isp):
        base = AllShortestPathsBase(small_isp)
        rng = random.Random(7)
        nodes = sorted(small_isp.nodes, key=repr)
        checked = 0
        while checked < 8:
            s, t = rng.sample(nodes, 2)
            primary = base.path_for(s, t)
            if primary.hops < 2:
                continue
            failed = list(primary.edges())[0]
            view = small_isp.without(edges=[failed])
            try:
                backup = shortest_path(view, s, t)
            except NoPath:
                continue
            checked += 1
            optimal = min_pieces_decompose(backup, base)
            greedy = greedy_decompose(backup, base)
            assert optimal.num_pieces <= greedy.num_pieces
            assert optimal.path == backup

    def test_exact_on_comb(self):
        g, failed, s, t = comb_graph(3)
        view = g.without(edges=failed)
        backup = shortest_path(view, s, t, weighted=False)
        base = AllShortestPathsBase(g, include_all_edges=False)
        assert min_pieces_decompose(backup, base).num_pieces == 4

    def test_weighted_comb_needs_edges(self):
        g, failed, s, t = weighted_comb_graph(2)
        view = g.without(edges=failed)
        backup = shortest_path(view, s, t)
        base = AllShortestPathsBase(g, include_all_edges=False)
        d = min_pieces_decompose(backup, base, allow_edges=True)
        assert d.num_base_paths == 3
        assert d.num_extra_edges == 2

    def test_uncoverable_raises(self):
        g = Graph.from_edges([(1, 2), (2, 3)])
        base = ExplicitBaseSet(g, [Path([1, 2])])
        with pytest.raises(DecompositionError):
            min_pieces_decompose(Path([1, 2, 3]), base, allow_edges=False)

    def test_trivial(self, diamond):
        base = AllShortestPathsBase(diamond)
        assert min_pieces_decompose(Path([3]), base).num_pieces == 0

    def test_prefers_fewer_bare_edges_on_tie(self, weighted_diamond):
        # Path 1-2-3: [1-2][2-3] where 2-3 is a bare edge, vs any other split.
        base = AllShortestPathsBase(weighted_diamond, include_all_edges=False)
        d = min_pieces_decompose(Path([1, 2, 3]), base, allow_edges=True)
        total_bare = d.num_extra_edges
        assert total_bare == 1  # only (2,3) must be bare


class TestConcatenationShortestPath:
    def test_covers_when_greedy_cannot(self, diamond):
        # Base set holds only the 'other' diamond branch pieces: the
        # chosen SP of G' may not decompose, but a concatenation exists.
        base = unique_shortest_path_base(diamond, seed=1)
        view = diamond.without(edges=[(1, 2)])
        d = concatenation_shortest_path(view, base, 1, 4)
        assert d.path.source == 1 and d.path.target == 4
        assert d.path.is_valid_in(view)

    def test_min_cost_first(self, weighted_diamond):
        base = unique_shortest_path_base(weighted_diamond, seed=1)
        view = weighted_diamond.without(edges=[(1, 2)])
        d = concatenation_shortest_path(view, base, 1, 4)
        assert d.path.cost(weighted_diamond) == 4.0  # 1-3-4

    def test_unreachable_raises(self):
        g = Graph.from_edges([(1, 2), (3, 4)])
        base = unique_shortest_path_base(g, seed=1)
        with pytest.raises(NoPath):
            concatenation_shortest_path(g.without(), base, 1, 3)

    def test_pieces_are_surviving(self, small_isp):
        base = unique_shortest_path_base(
            small_isp, seed=1, sources=sorted(small_isp.nodes, key=repr)[:10]
        )
        nodes = sorted(small_isp.nodes, key=repr)
        s, t = nodes[0], nodes[5]
        primary = base.path_for(s, t)
        failed = list(primary.edges())[0]
        view = small_isp.without(edges=[failed])
        d = concatenation_shortest_path(view, base, s, t)
        for piece in d.pieces:
            assert piece.is_valid_in(view)


# -- property tests ------------------------------------------------------------


@st.composite
def isp_failure_instances(draw):
    seed = draw(st.integers(0, 30))
    graph = generate_isp_topology(n=40, seed=seed)
    nodes = sorted(graph.nodes, key=repr)
    s = nodes[draw(st.integers(0, len(nodes) - 1))]
    t = nodes[draw(st.integers(0, len(nodes) - 1))]
    return graph, s, t, draw(st.integers(0, 5))


@settings(max_examples=25, deadline=None)
@given(isp_failure_instances())
def test_decomposition_reassembles_exactly(instance):
    """Any decomposition's pieces concatenate back to the decomposed path."""
    graph, s, t, edge_index = instance
    if s == t:
        return
    base = AllShortestPathsBase(graph)
    primary = base.path_for(s, t)
    if primary.hops == 0:
        return
    failed = list(primary.edges())[edge_index % primary.hops]
    view = graph.without(edges=[failed])
    try:
        backup = shortest_path(view, s, t)
    except NoPath:
        return
    for d in (
        greedy_decompose(backup, base),
        min_pieces_decompose(backup, base),
    ):
        assert d.path == backup
        assert all(
            piece.is_valid_in(view) for piece in d.pieces
        ), "pieces must survive the failure"


@settings(max_examples=25, deadline=None)
@given(isp_failure_instances())
def test_binary_probe_monotonicity_premise(instance):
    """Base-path-ness of prefixes is downward closed along any path the
    greedy sees — the premise that licenses binary search (§4.1)."""
    graph, s, t, edge_index = instance
    if s == t:
        return
    base = AllShortestPathsBase(graph)
    primary = base.path_for(s, t)
    if primary.hops == 0:
        return
    failed = list(primary.edges())[edge_index % primary.hops]
    view = graph.without(edges=[failed])
    try:
        backup = shortest_path(view, s, t)
    except NoPath:
        return
    flags = [
        base.is_base_path(backup.prefix(length))
        for length in range(1, backup.hops + 1)
    ]
    # Once False, never True again at longer lengths... except that
    # 1-hop prefixes are trivially base; downward closure is the claim:
    for i, flag in enumerate(flags):
        if flag:
            assert all(flags[: i + 1]), "a base prefix had a non-base prefix"
