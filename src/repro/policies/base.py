"""The pluggable restoration-policy contract.

A :class:`RestorationPolicy` answers the two questions every
restoration scheme in the literature answers, under one signature:

* :meth:`provision` — which routes are pre-established for a demand
  (the paper's base LSPs, a disjoint pair, k shortest paths, one route
  per MRC configuration, ...);
* :meth:`restore` — given a failure scenario, which route carries the
  demand now, and at what stretch against the true post-failure
  optimum.

The concatenation scheme of the paper, the related-work baselines in
:mod:`repro.core.baselines`, the multiple-routing-configurations
policy (arXiv:1212.0311) and the do-nothing drop policy all implement
it; the experiment drivers select one by name through the registry in
:mod:`repro.policies.registry`.  The default policy routes through
exactly the code the hard-wired pipeline ran before this layer
existed, so default runs stay byte-identical (pinned by
``tests/test_policies.py``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..exceptions import NoPath
from ..failures.models import FailureScenario
from ..graph.graph import Graph, Node
from ..graph.paths import Path
from ..graph.shortest_paths import shortest_path

if TYPE_CHECKING:
    from ..core.base_paths import BaseSet
    from ..experiments.metrics import CaseResult
    from ..failures.sampler import FailureCase


@dataclass(frozen=True)
class RestorationOutcome:
    """What one policy delivers for one (demand, failure scenario).

    ``pieces`` is the concatenation witness when the policy builds its
    route from pre-provisioned segments (the paper's scheme); policies
    that switch to a single pre-established LSP leave it ``None``.
    """

    restored: bool
    route: Optional[Path]
    stretch: Optional[float]  # route cost / optimal restoration cost
    pieces: Optional[tuple[Path, ...]] = None


class RestorationPolicy(abc.ABC):
    """Uniform contract for restoration schemes (see module docstring).

    Subclasses set :attr:`name` (the registry key) and :attr:`title`
    (the human label used in reports), implement :meth:`provision`,
    and may override :meth:`restore` — the default implements the
    failover family shared by every pre-established-routes scheme:
    traffic takes the first provisioned route the scenario left alive.
    """

    #: Registry key (``--policy`` value).
    name: str = ""
    #: Human-readable label for reports.
    title: str = ""
    #: Whether the hybrid simulation applies interim local patches
    #: while this policy is active.
    uses_local_patch: bool = True
    #: Whether the demand's source re-routes after the failure floods.
    uses_source_restore: bool = True
    #: Whether the per-link ILM accounting of
    #: :mod:`repro.experiments.ilm_accounting` models this policy
    #: (only the concatenation scheme shares base LSPs across failures).
    supports_ilm_accounting: bool = False

    def __init__(
        self,
        graph: Graph,
        base: Optional["BaseSet"] = None,
        weighted: bool = True,
    ) -> None:
        self.graph = graph
        self._base = base
        self.weighted = weighted
        self._plans: dict[tuple[Node, Node], tuple[Path, ...]] = {}

    @property
    def base(self) -> "BaseSet":
        """The base set this policy plans against (lazily shared).

        Policies that never consult a base set (e.g. max-flow) never
        pay for one; the rest resolve the process-wide shared instance
        so oracle rows warm once per graph.
        """
        if self._base is None:
            from ..core.cache import shared_unique_base

            self._base = shared_unique_base(self.graph)
        return self._base

    # -- contract ------------------------------------------------------------

    @abc.abstractmethod
    def provision(self, source: Node, target: Node) -> tuple[Path, ...]:
        """The pre-established routes for a demand, primary first.

        Every policy returns the same shape — a (possibly length-1)
        tuple of paths — cached per demand so :meth:`ilm_entries` can
        charge exactly what was provisioned.
        """

    def restore(
        self, source: Node, target: Node, scenario: FailureScenario
    ) -> RestorationOutcome:
        """Outcome under *scenario*: first surviving provisioned route.

        The shared failover semantics: walk the provisioned routes in
        provision order and take the first one the scenario does not
        disturb.  Schemes that compute routes after the failure
        (concatenation, MRC) override this.
        """
        for route in self.provision(source, target):
            if not scenario.disturbs(route):
                return self.score(route, source, target, scenario)
        return RestorationOutcome(restored=False, route=None, stretch=None)

    def ilm_entries(self) -> int:
        """ILM load of everything provisioned (one entry per router per LSP)."""
        return sum(
            len(route.nodes)
            for plan in self._plans.values()
            for route in plan
        )

    # -- shared helpers ------------------------------------------------------

    def score(
        self,
        route: Optional[Path],
        source: Node,
        target: Node,
        scenario: FailureScenario,
        pieces: Optional[tuple[Path, ...]] = None,
    ) -> RestorationOutcome:
        """Score *route* against the optimal post-failure restoration."""
        if route is None or scenario.disturbs(route):
            return RestorationOutcome(restored=False, route=None, stretch=None)
        view = scenario.apply(self.graph)
        try:
            optimal = shortest_path(view, source, target, weighted=self.weighted)
        except NoPath:
            # Nothing could have restored this; the surviving route is a bonus.
            return RestorationOutcome(
                restored=True, route=route, stretch=1.0, pieces=pieces
            )
        optimal_cost = (
            optimal.cost(self.graph) if self.weighted else float(optimal.hops)
        )
        route_cost = (
            route.cost(self.graph) if self.weighted else float(route.hops)
        )
        stretch = route_cost / optimal_cost if optimal_cost > 0 else 1.0
        return RestorationOutcome(
            restored=True, route=route, stretch=stretch, pieces=pieces
        )

    def evaluate_case(self, case: "FailureCase") -> "CaseResult":
        """One Table 2 experimental unit under this policy.

        The generic mapping from :meth:`restore` to the experiment's
        :class:`~repro.experiments.metrics.CaseResult`; the
        concatenation policy overrides it with the original (counter-
        instrumented) pipeline body so default runs stay byte-identical.
        """
        from ..experiments.metrics import CaseResult

        primary_cost = case.primary_path.cost(self.graph)
        outcome = self.restore(case.source, case.destination, case.scenario)
        backup = outcome.route if outcome.restored else None
        return CaseResult(
            source=case.source,
            destination=case.destination,
            scenario=case.scenario,
            primary=case.primary_path,
            primary_cost=primary_cost,
            backup=backup,
            backup_cost=backup.cost(self.graph) if backup is not None else None,
            decomposition=None,
        )
