"""All-pairs shortest paths (APSP) — the raw material of every base set.

The base LSP sets of Section 4 are all-pairs shortest paths; RBPC's
decision procedure "is this sub-path a basic path?" reduces to "is it a
shortest path?", which is answered from an APSP distance oracle.

For the graph sizes in the paper (200 — 40k nodes) a distance *matrix*
is only feasible for the small graphs, so this module provides both:

* :class:`ApspDistances` — dense oracle, one Dijkstra per node, built
  eagerly (ISP-sized graphs).
* :class:`LazyDistanceOracle` — per-source Dijkstra computed on first
  use and cached (Internet-sized graphs, where experiments touch only a
  sample of sources).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..exceptions import NoPath
from ..kernels import kernel_backend
from ..perf import COUNTERS, in_warm_up, warm_up_phase
from .csr import INF, CsrView, dijkstra_csr_canonical, shared_csr
from .graph import Node
from .paths import Path
from .shortest_paths import costs_equal, dijkstra, dijkstra_pruned, reconstruct_path


class ApspDistances:
    """Eager all-pairs distances and predecessor maps.

    >>> from repro.graph.graph import Graph
    >>> g = Graph.from_edges([(1, 2), (2, 3)])
    >>> apsp = ApspDistances.compute(g)
    >>> apsp.distance(1, 3)
    2.0
    """

    __slots__ = ("_dist", "_pred")

    def __init__(
        self,
        dist: dict[Node, dict[Node, float]],
        pred: dict[Node, dict[Node, Node]],
    ) -> None:
        self._dist = dist
        self._pred = pred

    @classmethod
    def compute(
        cls, graph, sources: Optional[list[Node]] = None, break_ties_by_hops: bool = False
    ) -> "ApspDistances":
        """One Dijkstra per source (all nodes, unless *sources* restricts)."""
        dist: dict[Node, dict[Node, float]] = {}
        pred: dict[Node, dict[Node, Node]] = {}
        for s in sources if sources is not None else graph.nodes:
            dist[s], pred[s] = dijkstra(graph, s, break_ties_by_hops=break_ties_by_hops)
        return cls(dist, pred)

    @property
    def sources(self) -> Iterator[Node]:
        """Iterate over the sources this oracle covers."""
        return iter(self._dist)

    def distance(self, u: Node, v: Node) -> float:
        """Shortest distance u→v; raises :class:`NoPath` if unreachable."""
        row = self._dist.get(u)
        if row is None:
            raise NoPath(f"source {u!r} not covered by this APSP")
        if v not in row:
            raise NoPath(f"no path from {u!r} to {v!r}")
        return row[v]

    def has_path(self, u: Node, v: Node) -> bool:
        """True if a path exists (and the source is covered)."""
        row = self._dist.get(u)
        return row is not None and v in row

    def path(self, u: Node, v: Node) -> Path:
        """One shortest path u→v."""
        if u not in self._pred:
            raise NoPath(f"source {u!r} not covered by this APSP")
        return reconstruct_path(self._pred[u], u, v)

    def is_shortest(self, path: Path, cost: float) -> bool:
        """True if a path of weight *cost* between the endpoints is shortest."""
        return costs_equal(cost, self.distance(path.source, path.target))

    def average_distance(self) -> float:
        """Mean distance over all covered, connected, distinct pairs."""
        total, count = 0.0, 0
        for s, row in self._dist.items():
            for t, d in row.items():
                if s != t:
                    total += d
                    count += 1
        return total / count if count else 0.0


class LazyDistanceOracle:
    """Distance oracle computing per-source canonical rows on demand.

    Suitable for Internet-scale graphs where only sampled sources are
    queried.  The cache is unbounded by design — an experiment's working
    set is its sample of sources.

    Rows are stored **array-native**: one flat ``(dist, pred)`` pair of
    int-indexed buffers per source, straight from the canonical CSR
    kernel (:func:`~repro.graph.csr.dijkstra_csr_canonical`) — the same
    shape :class:`~repro.graph.incremental.SptCache` caches, so rows
    flow between the graph, cache, and experiment layers without
    dict conversion.  Dict views (:meth:`distances_from`) are built on
    demand, restricted to the requested targets.

    Two row flavors coexist:

    * **full rows** — the whole component settled; ``INF`` in the row
      proves unreachability (what :meth:`distance` / :meth:`path` use);
    * **truncated rows** — computed by :meth:`warm` with a target set,
      stopping as soon as every requested target settles.  This is the
      decomposition kernel's access pattern: a restoration path's O(1)
      membership probes only ever compare against distances *between
      nodes of that path*, so settling the rest of a 40k-node graph is
      wasted work.  On a truncated row, ``INF`` is ambiguous (unsettled
      or unreachable); a query beyond the settled frontier transparently
      promotes the row to a full one (counted in
      ``COUNTERS.oracle_promotions``).

    Predecessors follow the library-wide canonical ``(dist, index)``
    tie order, so :meth:`path` answers match every other canonical
    consumer (SptCache backups, routing SPF) node-for-node.  *tie_free*
    is retained for API compatibility but inert: it used to gate the
    CSR kernel behind a no-ties guarantee; under the canonical contract
    the kernel is deterministic with or without ties.  With
    *break_ties_by_hops* the oracle keeps the dict pipeline (the CSR
    kernels do not implement the hop-count tie rule).
    """

    __slots__ = (
        "_graph",
        "_dist",
        "_pred",
        "_complete",
        "_truncated",
        "_csr",
        "break_ties_by_hops",
        "tie_free",
    )

    def __init__(
        self, graph, break_ties_by_hops: bool = False, tie_free: bool = False
    ) -> None:
        self._graph = graph
        # Array mode: source -> flat buffers (list[float], list[int]).
        # Hops mode: source -> dict rows, as produced by dijkstra().
        self._dist: dict[Node, object] = {}
        self._pred: dict[Node, object] = {}
        self._complete: set[Node] = set()
        self._truncated: set[Node] = set()
        self._csr: Optional[CsrView] = None
        self.break_ties_by_hops = break_ties_by_hops
        self.tie_free = tie_free

    def _csr_view(self) -> CsrView:
        """The (lazily interned) CSR snapshot the canonical rows run on."""
        if self._csr is None:
            self._csr = CsrView(shared_csr(self._graph))
        return self._csr

    def csr(self):
        """The interned :class:`CsrGraph` the array rows are indexed by.

        Consumers holding flat rows from :meth:`row_arrays` use this to
        check that their own index space (``shared_csr(other).nodes``)
        lines up before mixing buffers.
        """
        return self._csr_view().csr

    def row_arrays(self, source: Node) -> tuple[list[float], list[int]]:
        """The full canonical ``(dist, pred)`` buffers for *source*.

        The zero-conversion hand-off other layers consume; indices are
        positions in ``shared_csr(graph).nodes``.  Unavailable in
        hop-count tie mode.
        """
        if self.break_ties_by_hops:
            raise ValueError("array rows unavailable with break_ties_by_hops")
        self._ensure(source)
        return self._dist[source], self._pred[source]  # type: ignore[return-value]

    def _ensure(self, source: Node) -> None:
        """Make the row for *source* a full row."""
        if source in self._complete:
            return
        promoted = source in self._truncated
        if promoted:
            COUNTERS.oracle_promotions += 1
            self._truncated.discard(source)
        if self.break_ties_by_hops:
            self._dist[source], self._pred[source] = dijkstra(
                self._graph, source, break_ties_by_hops=True
            )
        else:
            view = self._csr_view()
            arr_dist, arr_pred, _ = dijkstra_csr_canonical(
                view, view.csr.index[source]
            )
            self._dist[source], self._pred[source] = arr_dist, arr_pred
        self._complete.add(source)
        COUNTERS.oracle_rows_full += 1
        if not promoted and in_warm_up():
            # Promotions are query-driven (a probe outran a truncated
            # frontier) and cold builds outside a warm-up phase are
            # demand work: only batch warm-up builds count as work that
            # warm-row publication can eliminate.
            COUNTERS.warm_row_builds += 1

    def _covered(self, row, t: Node) -> bool:
        """Is *t*'s label in this (possibly truncated) row final?"""
        if self.break_ties_by_hops:
            return t in row
        it = self._csr.csr.index.get(t)
        return it is not None and row[it] != INF

    def warm_many(self, sources: Iterable[Node]) -> None:
        """Batch-build full rows for every source with no cached row yet.

        Hands the whole batch to the active kernel backend's
        ``rows_many`` — one vectorized multi-source settle under numpy;
        a no-op under the reference backend (``None`` return), where
        rows keep materializing lazily through :meth:`_ensure`.  Either
        way the rows, their flavors, and the oracle counters end up
        identical: only sources with *no* row are batched (truncated
        rows still promote through :meth:`_ensure`, preserving
        ``oracle_promotions``), and each batched row accounts one
        ``oracle_rows_full`` exactly as its lazy twin would.
        """
        if self.break_ties_by_hops:
            return
        missing = [s for s in dict.fromkeys(sources) if s not in self._dist]
        if len(missing) < 2:
            return
        view = self._csr_view()
        index = view.csr.index
        idxs = [index[s] for s in missing]
        rows = kernel_backend().rows_many(view, idxs, unit=False)
        if rows is None:
            return
        warm_up = in_warm_up()
        for s, i in zip(missing, idxs):
            self._dist[s], self._pred[s] = rows[i]
            self._complete.add(s)
            COUNTERS.oracle_rows_full += 1
            if warm_up:
                COUNTERS.warm_row_builds += 1

    def warm(self, source: Node, targets: Iterable[Node]) -> None:
        """Guarantee each target is settled or provably unreachable.

        First request for a source runs a target-pruned search; a later
        request outrunning the settled frontier promotes the row to a
        full one (re-running truncated searches per query would forfeit
        the cross-case caching the experiments rely on).
        """
        if source in self._complete:
            return
        row = self._dist.get(source)
        if row is not None:
            if all(self._covered(row, t) for t in targets):
                return
            self._ensure(source)
            return
        if self.break_ties_by_hops:
            dist, pred, exhausted = dijkstra_pruned(
                self._graph, source, targets
            )
        else:
            view = self._csr_view()
            index = view.csr.index
            dist, pred, exhausted = dijkstra_csr_canonical(
                view, index[source], targets=[index[t] for t in targets]
            )
        self._dist[source], self._pred[source] = dist, pred
        if exhausted:
            # A target-pruned query that happened to settle everything:
            # demand-driven, so not accounted as warm-up duplication.
            self._complete.add(source)
            COUNTERS.oracle_rows_full += 1
        else:
            self._truncated.add(source)
            COUNTERS.oracle_rows_truncated += 1

    def distances_from(self, source: Node, targets: Iterable[Node]) -> dict[Node, float]:
        """Exact distances to *targets*; a missing key means unreachable.

        The decomposition kernel's bulk accessor: one call warms the
        row, and the returned plain dict — the on-demand dict view of
        the flat buffers, restricted to the probe's targets — makes
        every subsequent probe a dictionary lookup plus one float
        comparison.
        """
        targets = list(targets)
        self.warm(source, targets)
        row = self._dist[source]
        if self.break_ties_by_hops:
            return {t: row[t] for t in targets if t in row}
        index = self._csr.csr.index
        out: dict[Node, float] = {}
        for t in targets:
            it = index.get(t)
            if it is not None and row[it] != INF:
                out[t] = row[it]
        return out

    def distance(self, u: Node, v: Node) -> float:
        """Shortest distance source->target; raises NoPath if unreachable."""
        row = self._dist.get(u)
        if row is not None and self._covered(row, v):
            return row[v] if self.break_ties_by_hops else row[self._csr.csr.index[v]]
        if u not in self._complete:
            self._ensure(u)
            row = self._dist[u]
            if self._covered(row, v):
                return (
                    row[v]
                    if self.break_ties_by_hops
                    else row[self._csr.csr.index[v]]
                )
        raise NoPath(f"no path from {u!r} to {v!r}")

    def has_path(self, u: Node, v: Node) -> bool:
        """True if a path exists (and the source is covered)."""
        row = self._dist.get(u)
        if row is not None and self._covered(row, v):
            return True
        if u in self._complete:
            return False
        self._ensure(u)
        return self._covered(self._dist[u], v)

    def path(self, u: Node, v: Node) -> Path:
        """One shortest path for the pair, from the cached pred buffers."""
        if u not in self._complete:
            self._ensure(u)
        if self.break_ties_by_hops:
            return reconstruct_path(self._pred[u], u, v)
        csr = self._csr.csr
        dist, pred = self._dist[u], self._pred[u]
        iv = csr.index.get(v)
        if iv is None or dist[iv] == INF:
            raise NoPath(f"no path from {u!r} to {v!r}")
        iu = csr.index[u]
        chain = [iv]
        x = iv
        while x != iu:
            x = pred[x]
            chain.append(x)
        chain.reverse()
        return Path([csr.nodes[i] for i in chain])

    def cached_sources(self) -> list[Node]:
        """Sources whose rows are currently cached."""
        return list(self._dist)

    def ensure_rows(self, sources: Iterable[Node]) -> None:
        """Build full rows for every listed source (publisher warm-up).

        ``warm_many`` batches the cold sources through the kernel
        backend, then a lazy ``_ensure`` sweep picks up whatever the
        backend declined (reference backend, batches of one) plus any
        truncated rows.  No-op in hop-count tie mode.
        """
        if self.break_ties_by_hops:
            return
        wanted = list(dict.fromkeys(sources))
        with warm_up_phase():
            self.warm_many(wanted)
            for s in wanted:
                self._ensure(s)

    def export_rows(self) -> dict[int, tuple[list[float], list[int]]]:
        """Complete array-mode rows keyed by CSR source index.

        The publication payload for
        :func:`repro.graph.shm.publish_rows`: truncated rows are
        excluded (their ``INF`` labels are ambiguous — an adopter could
        not tell unsettled from unreachable), and hop-count tie mode
        exports nothing (dict rows have no flat layout).
        """
        if self.break_ties_by_hops:
            return {}
        index = self._csr_view().csr.index
        return {
            index[s]: (self._dist[s], self._pred[s])
            for s in self._complete
        }

    def adopt_rows(self, table) -> int:
        """Install warm full rows from an attached shm ``RowTable``.

        Mirrors :meth:`repro.graph.incremental.SptCache.adopt_rows`:
        only sources with **no cached row at all** are filled (a
        truncated local row keeps its normal promotion path so
        ``oracle_promotions`` accounting is undisturbed), the installed
        views are zero-copy and read-only, and the only counter moved
        is ``warm_rows_adopted`` — adoption must never look like
        search work.  Returns the number of rows installed; raises
        ``ValueError`` on a kind/shape/version mismatch or in
        hop-count tie mode.
        """
        if self.break_ties_by_hops:
            raise ValueError(
                "cannot adopt array rows with break_ties_by_hops"
            )
        if table.kind != "oracle":
            raise ValueError(
                f"cannot adopt {table.kind!r} rows into a distance oracle"
            )
        csr = self._csr_view().csr
        if table.n != csr.n:
            raise ValueError(
                f"row table has n={table.n}, oracle graph has n={csr.n}"
            )
        if (
            table.source_version is not None
            and csr.source_version is not None
            and table.source_version != csr.source_version
        ):
            raise ValueError(
                f"row table published for graph version "
                f"{table.source_version}, oracle snapshot is version "
                f"{csr.source_version}"
            )
        nodes = csr.nodes
        adopted = 0
        for i in table.sources:
            s = nodes[i]
            if s in self._dist:
                continue
            self._dist[s], self._pred[s] = table.row(i)
            self._complete.add(s)
            adopted += 1
        COUNTERS.warm_rows_adopted += adopted
        return adopted
