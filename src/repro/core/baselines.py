"""Baseline restoration schemes from the related work RBPC argues against.

Section 1: *"Previous work proposed to address this costly
establishment by compromising the 'quality' of the backup paths (e.g.,
use non-shortest paths); for the simpler aim of maintaining
connectivity, it is sufficient to use a small number of pre-established
paths [16, 3]."*  These baselines make that trade-off concrete so the
benchmarks can measure it:

* :class:`DisjointBackupScheme` — one pre-established backup LSP per
  demand, edge-disjoint from the primary (Suurballe-optimal pair, or
  primary-preserving).  Instant switchover on any primary failure, but
  the backup is fixed: its quality is whatever disjointness allowed,
  and a failure hitting *both* paths is unrecoverable without
  re-signaling.
* :class:`KShortestPathsScheme` — the k cheapest simple paths
  pre-established per demand [7]; on failure, traffic takes the first
  surviving one.

Both report the same :class:`BaselineOutcome` shape so the comparison
benchmark can score RBPC against them on quality (stretch vs. the true
post-failure shortest path), coverage, and pre-provisioned ILM load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exceptions import NoPath
from ..failures.models import FailureScenario
from ..graph.graph import Graph, Node
from ..graph.ksp import (
    edge_disjoint_backup,
    node_disjoint_backup,
    suurballe_disjoint_pair,
    yen_k_shortest_paths,
)
from ..graph.paths import Path
from ..graph.shortest_paths import shortest_path
from .base_paths import BaseSet


@dataclass(frozen=True)
class BaselineOutcome:
    """What one scheme delivers for one (demand, failure scenario)."""

    restored: bool
    route: Optional[Path]
    stretch: Optional[float]  # route cost / optimal restoration cost


def _score(graph: Graph, scenario: FailureScenario, route: Optional[Path],
           source: Node, target: Node, weighted: bool) -> BaselineOutcome:
    if route is None or scenario.disturbs(route):
        return BaselineOutcome(restored=False, route=None, stretch=None)
    view = scenario.apply(graph)
    try:
        optimal = shortest_path(view, source, target, weighted=weighted)
    except NoPath:
        # Nothing could have restored this; the surviving route is a bonus.
        return BaselineOutcome(restored=True, route=route, stretch=1.0)
    optimal_cost = optimal.cost(graph) if weighted else float(optimal.hops)
    route_cost = route.cost(graph) if weighted else float(route.hops)
    stretch = route_cost / optimal_cost if optimal_cost > 0 else 1.0
    return BaselineOutcome(restored=True, route=route, stretch=stretch)


class DisjointBackupScheme:
    """Pre-established edge-disjoint backup per demand ([16, 3]-style)."""

    def __init__(
        self,
        graph: Graph,
        base: BaseSet,
        weighted: bool = True,
        suurballe: bool = True,
        disjointness: str = "edge",
    ) -> None:
        if disjointness not in ("edge", "node"):
            raise ValueError(f"unknown disjointness {disjointness!r}")
        self.graph = graph
        self.base = base
        self.weighted = weighted
        self.suurballe = suurballe
        #: "edge" protects against link failures; "node" additionally
        #: against single interior-router failures (primary-preserving
        #: mode only — Suurballe optimizes the edge-disjoint pair).
        self.disjointness = disjointness
        self._plans: dict[tuple[Node, Node], tuple[Path, Optional[Path]]] = {}

    def provision(self, source: Node, target: Node) -> tuple[Path, Optional[Path]]:
        """Compute (and cache) the primary/backup pair for a demand.

        With *suurballe*, both paths come from the optimal disjoint
        pair (the primary may then differ from the shortest path — the
        quality compromise the paper describes); otherwise the primary
        is the base path and the backup avoids all its edges.  The
        backup is ``None`` when the endpoints are separated by a cut
        edge.
        """
        plan = self._plans.get((source, target))
        if plan is not None:
            return plan
        if self.suurballe and self.disjointness == "edge":
            try:
                primary, backup = suurballe_disjoint_pair(self.graph, source, target)
            except NoPath:
                primary = self.base.path_for(source, target)
                backup = None
        else:
            primary = self.base.path_for(source, target)
            if self.disjointness == "node":
                backup = node_disjoint_backup(self.graph, primary)
            else:
                backup = edge_disjoint_backup(self.graph, primary)
        self._plans[(source, target)] = (primary, backup)
        return primary, backup

    def restore(
        self, source: Node, target: Node, scenario: FailureScenario
    ) -> BaselineOutcome:
        """Outcome for a failure: switch to the backup iff it survived."""
        primary, backup = self.provision(source, target)
        if not scenario.disturbs(primary):
            return _score(self.graph, scenario, primary, source, target, self.weighted)
        return _score(self.graph, scenario, backup, source, target, self.weighted)

    def ilm_entries(self) -> int:
        """ILM load of everything provisioned (one entry per router per LSP)."""
        total = 0
        for primary, backup in self._plans.values():
            total += len(primary.nodes)
            if backup is not None:
                total += len(backup.nodes)
        return total


class MaxFlowScheme:
    """All edge-disjoint paths pre-established per demand ([7]'s max-flow).

    The maximal pre-provisioning a topology allows: every edge-disjoint
    path between the endpoints becomes an LSP, and traffic fails over
    to the cheapest surviving one.  Coverage is the best any
    fixed-path scheme can do against link failures (by Menger), at the
    price of the largest pre-provisioned footprint and arbitrarily
    stretched survivors.
    """

    def __init__(self, graph: Graph, weighted: bool = True) -> None:
        self.graph = graph
        self.weighted = weighted
        self._plans: dict[tuple[Node, Node], list[Path]] = {}

    def provision(self, source: Node, target: Node) -> list[Path]:
        """Compute (and cache) this scheme's plan for the demand."""
        plan = self._plans.get((source, target))
        if plan is None:
            from ..graph.maxflow import edge_disjoint_paths

            plan = sorted(
                edge_disjoint_paths(self.graph, source, target),
                key=lambda p: p.cost(self.graph),
            )
            self._plans[(source, target)] = plan
        return plan

    def restore(
        self, source: Node, target: Node, scenario: FailureScenario
    ) -> BaselineOutcome:
        """Traffic takes the cheapest pre-established disjoint path that survived."""
        for route in self.provision(source, target):
            if not scenario.disturbs(route):
                return _score(self.graph, scenario, route, source, target, self.weighted)
        return BaselineOutcome(restored=False, route=None, stretch=None)

    def ilm_entries(self) -> int:
        """Total ILM entries the provisioned plans consume."""
        return sum(
            len(route.nodes) for plan in self._plans.values() for route in plan
        )


class KShortestPathsScheme:
    """k pre-established cheapest simple paths per demand ([7]-style)."""

    def __init__(self, graph: Graph, k: int = 3, weighted: bool = True) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.graph = graph
        self.k = k
        self.weighted = weighted
        self._plans: dict[tuple[Node, Node], list[Path]] = {}

    def provision(self, source: Node, target: Node) -> list[Path]:
        """Compute (and cache) this scheme's plan for the demand."""
        plan = self._plans.get((source, target))
        if plan is None:
            plan = yen_k_shortest_paths(self.graph, source, target, self.k)
            self._plans[(source, target)] = plan
        return plan

    def restore(
        self, source: Node, target: Node, scenario: FailureScenario
    ) -> BaselineOutcome:
        """Traffic takes the cheapest pre-established path that survived."""
        for route in self.provision(source, target):
            if not scenario.disturbs(route):
                return _score(self.graph, scenario, route, source, target, self.weighted)
        return BaselineOutcome(restored=False, route=None, stretch=None)

    def ilm_entries(self) -> int:
        """Total ILM entries the provisioned plans consume."""
        return sum(
            len(route.nodes) for plan in self._plans.values() for route in plan
        )
