"""Metric definitions for the paper's evaluation (Section 5).

Table 2 reports, per (network, failure mode):

* **ILM stretch factor** — "the size of the ILM table necessary to
  provision the basic LSP's used in the experiment, as a percent of
  the size that would be needed to explicitly pre-provision each
  backup LSP".  Computed per router: the base-LSP entry count divided
  by the entry count under naive backup pre-provisioning (primaries
  plus one dedicated backup LSP per (demand, failure scenario));
  Table 2 reports the minimum and the average over routers.
* **average PC length** — mean over restorable cases of the *smallest*
  number of basic LSPs covering the backup path.
* **length stretch factor** — average backup-path hop count divided by
  average primary-path hop count.
* **redundancy** — percentage of backup paths whose cost equals the
  original shortest path's (the failure cost nothing because an
  equal-cost alternative existed).

All of it is computed from a flat list of :class:`CaseResult` records
produced by the experiment drivers, so the same machinery serves every
topology and failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..failures.models import FailureScenario
from ..graph.graph import Node
from ..graph.paths import Path
from ..graph.shortest_paths import costs_equal
from ..core.decomposition import Decomposition


@dataclass(frozen=True)
class CaseResult:
    """Outcome of one (demand pair, failure scenario) experimental unit."""

    source: Node
    destination: Node
    scenario: FailureScenario
    primary: Path
    primary_cost: float
    backup: Optional[Path]  # None when the failure disconnects the pair
    backup_cost: Optional[float]
    decomposition: Optional[Decomposition]

    @property
    def restorable(self) -> bool:
        """True when a backup path exists for this case."""
        return self.backup is not None

    @property
    def pc_length(self) -> int:
        """The paper's PC length: components in the minimal concatenation.

        Policies that restore onto a single pre-provisioned route (the
        baselines, MRC) carry no decomposition; their restored route is
        one piece by definition.
        """
        if self.decomposition is None:
            if self.restorable:
                return 1
            raise ValueError("case is not restorable")
        return self.decomposition.num_pieces

    @property
    def zero_cost_penalty(self) -> bool:
        """True when the backup path costs exactly what the primary did."""
        return (
            self.backup_cost is not None
            and costs_equal(self.backup_cost, self.primary_cost)
        )


@dataclass(frozen=True)
class TableTwoRow:
    """One row of Table 2."""

    network: str
    mode: str
    cases: int
    restorable_cases: int
    min_ilm_stretch: float  # percent
    avg_ilm_stretch: float  # percent
    avg_pc_length: float
    length_stretch: float
    redundancy: float  # percent
    max_multiplicity: Optional[int] = None

    def formatted(self) -> str:
        """Fixed-width rendering of this row."""
        suffix = f" ({self.max_multiplicity})" if self.max_multiplicity else ""
        return (
            f"{self.network:<18} {self.min_ilm_stretch:>7.1f}% {self.avg_ilm_stretch:>8.1f}% "
            f"{self.avg_pc_length:>8.2f} {self.length_stretch:>7.2f} "
            f"{self.redundancy:>7.1f}%{suffix}"
        )


def average_pc_length(results: Iterable[CaseResult]) -> float:
    """Mean PC length over restorable cases (NaN if none)."""
    values = [r.pc_length for r in results if r.restorable]
    if not values:
        return float("nan")
    return sum(values) / len(values)


def pc_length_histogram(results: Iterable[CaseResult]) -> dict[int, float]:
    """Percent of restorable cases per PC length.

    Supports the paper's §4 claim that "in practice two basic paths
    suffice in the vast majority of cases": the mass at 2 (and below)
    is the quantity to look at.
    """
    counts: dict[int, int] = {}
    total = 0
    for result in results:
        if not result.restorable:
            continue
        total += 1
        counts[result.pc_length] = counts.get(result.pc_length, 0) + 1
    if total == 0:
        return {}
    return {pieces: 100.0 * n / total for pieces, n in sorted(counts.items())}


def length_stretch_factor(results: list[CaseResult]) -> float:
    """avg backup hop count / avg primary hop count (restorable cases)."""
    restorable = [r for r in results if r.restorable]
    if not restorable:
        return float("nan")
    avg_backup = sum(r.backup.hops for r in restorable) / len(restorable)
    avg_primary = sum(r.primary.hops for r in restorable) / len(restorable)
    if avg_primary == 0:
        return float("nan")
    return avg_backup / avg_primary


def redundancy_percent(results: list[CaseResult]) -> float:
    """Percent of restorable cases whose backup cost equals the primary cost."""
    restorable = [r for r in results if r.restorable]
    if not restorable:
        return float("nan")
    equal = sum(1 for r in restorable if r.zero_cost_penalty)
    return 100.0 * equal / len(restorable)


def _add_path_entries(counter: dict[Node, int], path: Path) -> None:
    for node in path.nodes:
        counter[node] = counter.get(node, 0) + 1


def ilm_stretch_factors(results: list[CaseResult]) -> tuple[float, float]:
    """``(min %, avg %)`` ILM stretch over routers touched by the experiment.

    Numerator (RBPC): one ILM entry per router per *distinct* base LSP
    used — the primaries plus every decomposition piece, deduplicated
    (that is the whole point: pieces are shared across failures and
    demands).  Denominator (naive): the primaries plus one dedicated
    backup LSP per restorable (demand, scenario) case — no sharing, by
    construction, since each backup LSP is bound to its trigger.
    Routers the naive scheme never touches contribute nothing.
    """
    base_paths: set[Path] = set()
    base_counter: dict[Node, int] = {}
    naive_counter: dict[Node, int] = {}
    primaries: set[Path] = set()

    for result in results:
        if result.primary not in primaries:
            primaries.add(result.primary)
            _add_path_entries(naive_counter, result.primary)
        if not result.restorable:
            continue
        assert result.backup is not None
        _add_path_entries(naive_counter, result.backup)
        # Decomposition-free policies provision their restored route
        # whole: the route itself is the single shared "piece".
        pieces = (
            result.decomposition.pieces
            if result.decomposition is not None
            else (result.backup,)
        )
        for piece in pieces:
            if piece not in base_paths:
                base_paths.add(piece)
                _add_path_entries(base_counter, piece)
    # Primaries are base LSPs too (they are shortest paths).
    for path in primaries:
        if path not in base_paths:
            base_paths.add(path)
            _add_path_entries(base_counter, path)

    ratios = []
    for node, naive in naive_counter.items():
        if naive <= 0:
            continue
        ratios.append(100.0 * base_counter.get(node, 0) / naive)
    if not ratios:
        return float("nan"), float("nan")
    return min(ratios), sum(ratios) / len(ratios)


def build_row(
    network: str,
    mode: str,
    results: list[CaseResult],
    max_multiplicity: Optional[int] = None,
) -> TableTwoRow:
    """Assemble the Table 2 row from raw case results."""
    min_sf, avg_sf = ilm_stretch_factors(results)
    return TableTwoRow(
        network=network,
        mode=mode,
        cases=len(results),
        restorable_cases=sum(1 for r in results if r.restorable),
        min_ilm_stretch=min_sf,
        avg_ilm_stretch=avg_sf,
        avg_pc_length=average_pc_length(results),
        length_stretch=length_stretch_factor(results),
        redundancy=redundancy_percent(results),
        max_multiplicity=max_multiplicity,
    )
