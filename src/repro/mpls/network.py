"""The MPLS domain: provisioning, failures, and the forwarding engine.

:class:`MplsNetwork` binds everything together:

* a topology (:class:`~repro.graph.graph.Graph`) with a live operational
  state (failed links/routers), exposed as a
  :class:`~repro.graph.graph.FilteredView` for routing computations;
* one :class:`~repro.mpls.lsr.LabelSwitchRouter` per node;
* LSP provisioning/teardown with downstream label assignment and
  signaling-cost accounting;
* a forwarding engine that walks packets hop by hop through real ILM
  lookups and label-stack operations — the tests verify restoration
  schemes by actually *forwarding packets* and checking where they go.

Forwarding never raises for data-plane outcomes (drops, loops, TTL):
those come back in a :class:`ForwardingResult` with a status, because a
dropped packet is an experimental observation, not a programming error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from ..exceptions import InvalidPath, LSPNotFound, SignalingError
from ..graph.graph import Edge, FilteredView, Graph, Node, edge_key
from ..graph.paths import Path
from .fec import FecEntry
from .ilm import IlmEntry
from .labels import Label
from .lsp import Lsp
from .lsr import LabelSwitchRouter
from .packet import DEFAULT_TTL, Packet
from .signaling import SignalingLedger


class ForwardingStatus(enum.Enum):
    """Terminal state of a forwarded packet."""

    DELIVERED = "delivered"
    DROPPED_LINK_DOWN = "dropped: next hop link is down"
    DROPPED_ROUTER_DOWN = "dropped: next hop router is down"
    DROPPED_NO_ILM_ENTRY = "dropped: no ILM entry for top label"
    DROPPED_NO_FEC_ENTRY = "dropped: no FEC entry for destination"
    DROPPED_TTL_EXPIRED = "dropped: TTL expired"
    DROPPED_LOOP = "dropped: forwarding loop detected"
    DROPPED_STACK_OVERFLOW = "dropped: label stack exceeded hardware depth"


@dataclass
class ForwardingResult:
    """Outcome of injecting one packet."""

    status: ForwardingStatus
    packet: Packet
    drop_router: Optional[Node] = None

    @property
    def delivered(self) -> bool:
        """True when the packet reached its destination."""
        return self.status is ForwardingStatus.DELIVERED

    @property
    def walk(self) -> list[Node]:
        """Routers visited, in order (concatenation stops collapsed)."""
        return self.packet.routers_visited()

    @property
    def hops(self) -> int:
        """Number of links the LSP traverses."""
        return max(0, len(self.walk) - 1)

    def __repr__(self) -> str:
        return f"<ForwardingResult {self.status.name} walk={self.walk}>"


class MplsNetwork:
    """An MPLS domain over a topology graph.

    *max_stack_depth* models the hardware limit real LSRs put on the
    label stack (often 3-5 entries).  RBPC's stack depth equals its PC
    length, so by Theorem 1 a depth budget of ``k + 1`` suffices for
    ``k``-failure restoration — a packet that would exceed the budget
    is dropped with ``DROPPED_STACK_OVERFLOW``, never silently
    truncated.  ``None`` means unlimited.
    """

    def __init__(
        self,
        graph: Graph,
        max_label: Optional[Label] = None,
        max_stack_depth: Optional[int] = None,
    ) -> None:
        if max_stack_depth is not None and max_stack_depth < 1:
            raise ValueError("max_stack_depth must be >= 1")
        self.graph = graph
        self.max_stack_depth = max_stack_depth
        self.routers: dict[Node, LabelSwitchRouter] = {
            u: LabelSwitchRouter(u, max_label=max_label) for u in graph.nodes
        }
        self.ledger = SignalingLedger()
        self._lsps: dict[int, Lsp] = {}
        self._lsps_by_pair: dict[tuple[Node, Node], list[int]] = {}
        self._next_lsp_id = 1
        self._failed_links: set[Edge] = set()
        self._failed_routers: set[Node] = set()

    # -- operational state ---------------------------------------------------

    @property
    def operational_view(self) -> FilteredView:
        """The surviving topology (a zero-copy view of the base graph)."""
        return self.graph.without(
            edges=self._failed_links, nodes=self._failed_routers
        )

    @property
    def failed_links(self) -> frozenset[Edge]:
        """Currently failed links (canonical keys)."""
        return frozenset(self._failed_links)

    @property
    def failed_routers(self) -> frozenset[Node]:
        """Currently failed routers."""
        return frozenset(self._failed_routers)

    def fail_link(self, u: Node, v: Node) -> None:
        """Take link *(u, v)* down (idempotent)."""
        self._failed_links.add(edge_key(u, v))

    def restore_link(self, u: Node, v: Node) -> None:
        """Bring link *(u, v)* back up (idempotent)."""
        self._failed_links.discard(edge_key(u, v))

    def fail_router(self, router: Node) -> None:
        """Take *router* down (idempotent)."""
        self._failed_routers.add(router)

    def restore_router(self, router: Node) -> None:
        """Bring *router* back up (idempotent)."""
        self._failed_routers.discard(router)

    def link_is_up(self, u: Node, v: Node) -> bool:
        """True if the link exists and neither it nor its ends failed."""
        return (
            edge_key(u, v) not in self._failed_links
            and u not in self._failed_routers
            and v not in self._failed_routers
            and self.graph.has_edge(u, v)
        )

    def set_observer(self, observer) -> None:
        """Attach an LSR observer (see :mod:`repro.mpls.lsr`) to every router.

        ``None`` detaches.  The discrete-event orchestrator uses this to
        timestamp ILM mutations into its structured event log.
        """
        for router in self.routers.values():
            router.observer = observer

    # -- LSP provisioning ------------------------------------------------------

    def provision_lsp(self, path: Path, php: bool = False) -> Lsp:
        """Establish an LSP along *path* with downstream label assignment.

        Labels are allocated at every router that must recognize the LSP
        (all of them; with *php* the tail is skipped since the label is
        popped one hop early), ILM entries installed, and the signaling
        cost recorded.  Raises :class:`SignalingError` if the path
        crosses a failed link/router — you cannot signal over a dead
        wire — and :class:`InvalidPath` for trivial paths.
        """
        if path.hops < 1:
            raise InvalidPath("cannot provision an LSP over a trivial path")
        view = self.operational_view
        if not path.is_valid_in(view):
            raise SignalingError(f"path {path!r} crosses failed components")

        lsp_id = self._next_lsp_id
        self._next_lsp_id += 1
        lsp = Lsp(lsp_id=lsp_id, path=path, php=php)

        nodes = path.nodes
        labeled_nodes = nodes[:-1] if php else nodes
        for router_name in labeled_nodes:
            lsp.labels[router_name] = self.routers[router_name].allocate_label()

        for i, router_name in enumerate(nodes[:-1]):
            router = self.routers[router_name]
            incoming = lsp.labels[router_name]
            next_hop = nodes[i + 1]
            is_penultimate = i == len(nodes) - 2
            if is_penultimate and php:
                entry = IlmEntry(push=(), next_hop=next_hop, lsp_id=lsp_id)
            else:
                entry = IlmEntry(
                    push=(lsp.labels[next_hop],), next_hop=next_hop, lsp_id=lsp_id
                )
            router.install_ilm(incoming, entry)
        if not php:
            tail = self.routers[nodes[-1]]
            tail.install_ilm(lsp.labels[nodes[-1]], IlmEntry(push=(), next_hop=None, lsp_id=lsp_id))

        self._lsps[lsp_id] = lsp
        pair = (path.source, path.target)
        self._lsps_by_pair.setdefault(pair, []).append(lsp_id)
        self.ledger.record_lsp_setup(path.hops, detail=f"lsp {lsp_id}")
        return lsp

    def teardown_lsp(self, lsp_id: int) -> None:
        """Remove an LSP: delete its ILM entries and release its labels."""
        lsp = self.get_lsp(lsp_id)
        for router_name, label in lsp.labels.items():
            router = self.routers[router_name]
            if label in router.ilm and router.ilm.lookup(label).lsp_id == lsp_id:
                router.remove_ilm(label)
            router.release_label(label)
        del self._lsps[lsp_id]
        pair = (lsp.head, lsp.tail)
        self._lsps_by_pair[pair].remove(lsp_id)
        if not self._lsps_by_pair[pair]:
            del self._lsps_by_pair[pair]
        self.ledger.record_lsp_teardown(lsp.hops, detail=f"lsp {lsp_id}")

    def get_lsp(self, lsp_id: int) -> Lsp:
        """The LSP with *lsp_id*; raises LSPNotFound."""
        lsp = self._lsps.get(lsp_id)
        if lsp is None:
            raise LSPNotFound(f"no LSP with id {lsp_id}")
        return lsp

    def lsps(self) -> list[Lsp]:
        """All provisioned LSPs."""
        return list(self._lsps.values())

    def lsps_between(self, source: Node, target: Node) -> list[Lsp]:
        """Provisioned LSPs from *source* to *target*."""
        return [self._lsps[i] for i in self._lsps_by_pair.get((source, target), [])]

    def find_lsp(self, path: Path) -> Optional[Lsp]:
        """The provisioned LSP riding exactly *path*, if any."""
        for lsp in self.lsps_between(path.source, path.target):
            if lsp.path == path:
                return lsp
        return None

    # -- FEC management -----------------------------------------------------------

    def set_fec(
        self,
        router: Node,
        destination: Node,
        lsp_ids: Sequence[int],
        restoration: bool = False,
    ) -> None:
        """Point *router*'s FEC entry for *destination* at a chain of LSPs.

        The chain must start at *router*, be contiguous (each LSP ends
        where the next begins), and end at *destination*.  Restoration
        entries are installed as overrides so recovery can revert them.
        """
        chain = [self.get_lsp(i) for i in lsp_ids]
        if not chain:
            raise InvalidPath("FEC entry needs at least one LSP")
        if chain[0].head != router:
            raise InvalidPath(f"first LSP starts at {chain[0].head!r}, not {router!r}")
        for a, b in zip(chain, chain[1:]):
            if a.tail != b.head:
                raise InvalidPath(f"LSP chain broken: {a!r} then {b!r}")
        if chain[-1].tail != destination:
            raise InvalidPath(
                f"last LSP ends at {chain[-1].tail!r}, not {destination!r}"
            )
        entry = FecEntry(
            destination=destination, lsp_ids=tuple(lsp_ids), restoration=restoration
        )
        fec = self.routers[router].fec
        if restoration:
            fec.override(entry)
        else:
            fec.install(entry)
        self.ledger.record_fec_update(detail=f"{router!r}->{destination!r}")

    def revert_fec(self, router: Node, destination: Node) -> None:
        """Revert a restoration FEC override (link recovered)."""
        self.routers[router].fec.restore(destination)
        self.ledger.record_fec_update(detail=f"revert {router!r}->{destination!r}")

    # -- forwarding engine -----------------------------------------------------------

    def inject(
        self, source: Node, destination: Node, ttl: int = DEFAULT_TTL
    ) -> ForwardingResult:
        """Inject an unlabeled packet at *source* bound for *destination*."""
        packet = Packet(destination=destination, ttl=ttl)
        return self._run(packet, source, ingress_lookup=True)

    def send_on_lsps(
        self,
        lsp_ids: Sequence[int],
        destination: Optional[Node] = None,
        ttl: int = DEFAULT_TTL,
    ) -> ForwardingResult:
        """Send a packet with an explicit LSP chain (bypassing the FEC map)."""
        chain = [self.get_lsp(i) for i in lsp_ids]
        if destination is None:
            destination = chain[-1].tail
        packet = Packet(destination=destination, ttl=ttl)
        for lsp in reversed(chain):
            packet.push(lsp.head_label)
        return self._run(packet, chain[0].head, ingress_lookup=False)

    def send_with_stack(
        self,
        start: Node,
        labels: Sequence[Label],
        destination: Node,
        ttl: int = DEFAULT_TTL,
    ) -> ForwardingResult:
        """Send a packet with an explicit label stack (bottom first).

        Bypasses both the FEC map and the LSP registry — used by
        merged-label forwarding (:mod:`repro.mpls.merging`) and by
        tests that hand-craft stacks.
        """
        packet = Packet(destination=destination, ttl=ttl)
        for label in labels:
            packet.push(label)
        return self._run(packet, start, ingress_lookup=False)

    def _run(self, packet: Packet, start: Node, ingress_lookup: bool) -> ForwardingResult:
        router_name = start
        if (
            self.max_stack_depth is not None
            and packet.stack_depth > self.max_stack_depth
        ):
            packet.record(router_name)
            return ForwardingResult(
                ForwardingStatus.DROPPED_STACK_OVERFLOW,
                packet,
                drop_router=router_name,
            )
        seen_states: set[tuple[Node, tuple[Label, ...]]] = set()
        while True:
            packet.record(router_name)
            state = (router_name, tuple(packet.label_stack))
            if state in seen_states:
                return ForwardingResult(
                    ForwardingStatus.DROPPED_LOOP, packet, drop_router=router_name
                )
            seen_states.add(state)

            if not packet.label_stack:
                if router_name == packet.destination:
                    return ForwardingResult(ForwardingStatus.DELIVERED, packet)
                # Unlabeled at a transit router: classify via the FEC map
                # (packets without a label are routed by FEC, Section 2).
                entry = self.routers[router_name].fec.lookup(packet.destination)
                if entry is None or not ingress_lookup:
                    return ForwardingResult(
                        ForwardingStatus.DROPPED_NO_FEC_ENTRY,
                        packet,
                        drop_router=router_name,
                    )
                try:
                    chain = [self.get_lsp(i) for i in entry.lsp_ids]
                except LSPNotFound:
                    return ForwardingResult(
                        ForwardingStatus.DROPPED_NO_FEC_ENTRY,
                        packet,
                        drop_router=router_name,
                    )
                for lsp in reversed(chain):
                    packet.push(lsp.head_label)
                if (
                    self.max_stack_depth is not None
                    and packet.stack_depth > self.max_stack_depth
                ):
                    return ForwardingResult(
                        ForwardingStatus.DROPPED_STACK_OVERFLOW,
                        packet,
                        drop_router=router_name,
                    )
                continue

            label = packet.top_label
            assert label is not None
            ilm = self.routers[router_name].ilm
            if label not in ilm:
                return ForwardingResult(
                    ForwardingStatus.DROPPED_NO_ILM_ENTRY,
                    packet,
                    drop_router=router_name,
                )
            ilm_entry = ilm.lookup(label)
            packet.pop()
            for pushed in ilm_entry.push:
                packet.push(pushed)
            if (
                self.max_stack_depth is not None
                and packet.stack_depth > self.max_stack_depth
            ):
                return ForwardingResult(
                    ForwardingStatus.DROPPED_STACK_OVERFLOW,
                    packet,
                    drop_router=router_name,
                )

            if ilm_entry.next_hop is None:
                continue  # concatenation point / egress pop: stay here

            next_hop = ilm_entry.next_hop
            if next_hop in self._failed_routers:
                return ForwardingResult(
                    ForwardingStatus.DROPPED_ROUTER_DOWN,
                    packet,
                    drop_router=router_name,
                )
            if not self.link_is_up(router_name, next_hop):
                return ForwardingResult(
                    ForwardingStatus.DROPPED_LINK_DOWN,
                    packet,
                    drop_router=router_name,
                )
            packet.ttl -= 1
            if packet.ttl <= 0:
                return ForwardingResult(
                    ForwardingStatus.DROPPED_TTL_EXPIRED,
                    packet,
                    drop_router=router_name,
                )
            router_name = next_hop

    # -- measurement --------------------------------------------------------------

    def ilm_sizes(self) -> dict[Node, int]:
        """Per-router ILM occupancy — raw material of the ILM stretch factor."""
        return {name: r.ilm.size() for name, r in self.routers.items()}

    def total_ilm_size(self) -> int:
        """Sum of ILM occupancy across all routers."""
        return sum(self.ilm_sizes().values())

    def max_ilm_size(self) -> int:
        """Largest per-router ILM occupancy."""
        sizes = self.ilm_sizes()
        return max(sizes.values()) if sizes else 0

    def __repr__(self) -> str:
        return (
            f"<MplsNetwork n={self.graph.number_of_nodes()} "
            f"lsps={len(self._lsps)} failed_links={len(self._failed_links)}>"
        )
