"""Pure-Python reference kernels — the semantics every backend must match.

These are the original hot loops of :mod:`repro.graph.csr`,
:mod:`repro.graph.incremental`, and
:mod:`repro.experiments.ilm_accounting`, moved behind the backend
interface unchanged.  Dead-edge/dead-node probes use the flat bytearray
masks of :meth:`~repro.graph.csr.CsrView.masks` instead of per-slot set
membership — an index costs what an empty-frozenset probe used to, and
beats hashing whenever a mask is non-empty — with counter accounting
identical to the historical set-based loops.

Backend interface (duck-typed module):

``NAME``
    Backend identifier stamped into BENCH headers.
``dijkstra_canonical(view, source, targets) -> (dist, pred, exhausted)``
    Canonical-tie-order Dijkstra; the caller has already verified the
    source is alive.
``bfs(view, source, target) -> (dist, pred)``
    Canonical index-ordered BFS with optional early target exit.
``rows_many(view, sources, unit) -> dict | None``
    Batched full rows; ``None`` means "no batched path — caller loops".
``repair_resettle(view, source, dist, pred, affected, unit)``
    Ramalingam–Reps re-settle of a non-empty affected subtree; returns
    fresh ``(new_dist, new_pred)`` and accounts
    ``spt_nodes_resettled`` / ``csr_relaxations``.
``decompose_flat(chain, cum, row_for) -> (best, choice, probes)``
    The min-pieces decomposition DP over prefix sums and oracle rows.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

from ..perf import COUNTERS

NAME = "python"
INF = float("inf")


def dijkstra_canonical(
    view, source: int, targets: Optional[Iterable[int]] = None
) -> tuple[list[float], list[int], bool]:
    """Lazy-heap canonical Dijkstra (see ``dijkstra_csr_canonical``)."""
    csr = view.csr
    indptr, indices, weights = csr.indptr, csr.indices, csr.weights
    edge_dead, node_dead = view.masks()
    dist = [INF] * csr.n
    pred = [-1] * csr.n
    best = [INF] * csr.n
    best[source] = 0.0
    remaining: Optional[set[int]] = None
    if targets is not None:
        remaining = {t for t in targets if t != source and not node_dead[t]}
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled = 0
    relaxations = 0
    exhausted = True
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d_u, u = pop(heap)
        if dist[u] != INF:
            continue
        dist[u] = d_u
        settled += 1
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                exhausted = not heap
                break
        for slot in range(indptr[u], indptr[u + 1]):
            v = indices[slot]
            if node_dead[v] or edge_dead[slot]:
                continue
            relaxations += 1
            if dist[v] != INF:
                continue
            candidate = d_u + weights[slot]
            if candidate < best[v]:
                best[v] = candidate
                pred[v] = u
                push(heap, (candidate, v))
            # candidate == best[v] cannot name a better (dist, index)
            # parent here: parents relax in settle order, which IS the
            # (dist, index) order, so the first tight parent already won.
    COUNTERS.csr_relaxations += relaxations
    COUNTERS.csr_settled += settled
    return dist, pred, exhausted


def bfs(view, source: int, target: int = -1) -> tuple[list[float], list[int]]:
    """Canonical index-ordered BFS (see ``bfs_csr``)."""
    csr = view.csr
    indptr, indices = csr.indptr, csr.indices
    edge_dead, node_dead = view.masks()
    dist = [INF] * csr.n
    pred = [-1] * csr.n
    dist[source] = 0.0
    settled = 1
    relaxations = 0
    if source == target:
        COUNTERS.csr_settled += settled
        return dist, pred
    frontier = [source]
    while frontier:
        frontier.sort()
        next_frontier = []
        for u in frontier:
            d_next = dist[u] + 1.0
            for slot in range(indptr[u], indptr[u + 1]):
                v = indices[slot]
                if node_dead[v] or edge_dead[slot]:
                    continue
                relaxations += 1
                if dist[v] == INF:
                    dist[v] = d_next
                    pred[v] = u
                    settled += 1
                    if v == target:
                        COUNTERS.csr_relaxations += relaxations
                        COUNTERS.csr_settled += settled
                        return dist, pred
                    next_frontier.append(v)
        frontier = next_frontier
    COUNTERS.csr_relaxations += relaxations
    COUNTERS.csr_settled += settled
    return dist, pred


def rows_many(view, sources: list[int], unit: bool):
    """No batched path in the reference backend — callers loop."""
    return None


def repair_resettle(
    view,
    source: int,
    dist: list[float],
    pred: list[int],
    affected: set[int],
    unit: bool,
) -> tuple[list[float], list[int]]:
    """Boundary offers + bounded heap re-settle of the affected subtree.

    The body of the historical ``repair_spt`` hot path: blank the
    affected labels, seed a heap with every surviving edge from an
    intact node into the region (equal offers resolved by the canonical
    ``(dist[parent], parent index)`` rule), then re-settle restricted to
    the region.  The caller owns the policy (affected computation,
    fallback threshold, ``spt_repairs``); *affected* is non-empty and
    does not contain *source*.
    """
    csr = view.csr
    indptr, indices, weights = csr.indptr, csr.indices, csr.weights
    edge_dead, node_dead = view.masks()

    new_dist = list(dist)
    new_pred = list(pred)
    for x in affected:
        new_dist[x] = INF
        new_pred[x] = -1

    # Boundary offers: surviving edges from intact nodes into the
    # affected region.  Scanning each affected node's adjacency finds
    # them because the graphs are undirected (every in-edge is visible
    # as an out-edge).  The equal-offer tie rule — parent minimizing
    # ``(dist[parent], parent index)`` — reproduces the canonical
    # kernel's "first tight parent in settle order" choice, so repaired
    # predecessors match a from-scratch run exactly.
    best: dict[int, tuple[float, int]] = {}
    heap: list[tuple[float, int]] = []
    relaxations = 0
    for x in affected:
        if node_dead[x]:
            continue
        for slot in range(indptr[x], indptr[x + 1]):
            u = indices[slot]
            if u in affected or node_dead[u] or edge_dead[slot]:
                continue
            relaxations += 1
            candidate = new_dist[u] + (1.0 if unit else weights[slot])
            old = best.get(x)
            if (
                old is None
                or candidate < old[0]
                or (
                    candidate == old[0]
                    and (new_dist[u], u) < (new_dist[old[1]], old[1])
                )
            ):
                best[x] = (candidate, u)
    for x, (candidate, _) in best.items():
        heapq.heappush(heap, (candidate, x))

    settled = 0
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d_x, x = pop(heap)
        if new_dist[x] != INF:
            continue
        if d_x != best[x][0]:
            continue  # stale entry superseded by a better offer
        new_dist[x] = d_x
        new_pred[x] = best[x][1]
        settled += 1
        for slot in range(indptr[x], indptr[x + 1]):
            v = indices[slot]
            if v not in affected or node_dead[v] or edge_dead[slot]:
                continue
            relaxations += 1
            if new_dist[v] != INF:
                continue
            candidate = d_x + (1.0 if unit else weights[slot])
            old = best.get(v)
            if (
                old is None
                or candidate < old[0]
                or (
                    candidate == old[0]
                    and (d_x, x) < (new_dist[old[1]], old[1])
                )
            ):
                best[v] = (candidate, x)
                push(heap, (candidate, v))
    COUNTERS.spt_nodes_resettled += settled
    COUNTERS.csr_relaxations += relaxations
    return new_dist, new_pred


def decompose_flat(
    chain: tuple[int, ...],
    cum: list[float],
    row_for: Callable[[int], list[float]],
) -> tuple[list[int], list[int], int]:
    """Min-pieces DP over prefix sums — forward pass, first-minimal-j ties.

    *cum* holds prefix sums of the chain's probe-graph weights;
    ``row_for(j)`` yields the oracle distance row of ``chain[j]``
    (fetched lazily, memoized per call).  Returns ``(best, choice,
    probes)`` with ``best[i] == len(chain) + 1`` meaning unset; the
    caller extracts pieces and accounts the probes.
    """
    from ..graph.shortest_paths import costs_equal

    n = len(chain)
    unset = n + 1
    best = [unset] * n
    choice = [0] * n
    best[0] = 0
    rows: dict[int, list[float]] = {}
    probes = 0
    for i in range(1, n):
        ci = chain[i]
        cum_i = cum[i]
        bi = unset
        cj = 0
        for j in range(i):
            bj = best[j]
            if bj == unset:
                continue
            probes += 1
            if i - j > 1:
                row = rows.get(j)
                if row is None:
                    row = rows[j] = row_for(j)
                d = row[ci]
                if d == INF or not costs_equal(cum_i - cum[j], d):
                    continue
            candidate = bj + 1
            if candidate < bi:
                bi = candidate
                cj = j
        best[i] = bi
        choice[i] = cj
    return best, choice, probes
