"""Ablation benchmarks for the design choices DESIGN.md calls out.

* greedy largest-prefix vs. optimal (DP) decomposition — §4.1's greedy
  is near-optimal in practice and much cheaper;
* binary-search vs. linear prefix probing inside the greedy;
* base-set flavor (all shortest paths / unique per pair / Corollary 4
  expanded) — PC length vs. provisioned-set size trade-off;
* restoration cost: RBPC's FEC rewrite vs. tearing down and
  re-signaling an LSP, measured on the live MPLS simulator's ledger.
"""

from __future__ import annotations

import random

import pytest

from repro.core.base_paths import (
    AllShortestPathsBase,
    UniqueShortestPathsBase,
    expanded_base_set,
    provision_base_set,
    unique_shortest_path_base,
)
from repro.core.decomposition import (
    concatenation_shortest_path,
    greedy_decompose,
    min_pieces_decompose,
)
from repro.core.restoration import SourceRouterRbpc
from repro.exceptions import NoPath
from repro.graph.shortest_paths import shortest_path
from repro.mpls.network import MplsNetwork
from repro.topology.isp import generate_isp_topology


@pytest.fixture(scope="module")
def failure_instances(isp200, isp200_base, isp200_pairs):
    """(backup path, failed link) for one failed link per sampled demand."""
    instances = []
    for s, t in isp200_pairs:
        primary = isp200_base.path_for(s, t)
        if primary.hops < 2:
            continue
        failed = list(primary.edges())[primary.hops // 2]
        view = isp200.without(edges=[failed])
        try:
            backup = shortest_path(view, s, t)
        except NoPath:
            continue
        instances.append(backup)
    assert len(instances) >= 20
    return instances


def bench_greedy_decomposition(benchmark, isp200_base, failure_instances):
    def run():
        return [greedy_decompose(b, isp200_base) for b in failure_instances]

    results = benchmark(run)
    assert all(d.num_pieces >= 1 for d in results)


def bench_optimal_decomposition(benchmark, isp200_base, failure_instances):
    def run():
        return [min_pieces_decompose(b, isp200_base) for b in failure_instances]

    results = benchmark(run)
    assert all(d.num_pieces >= 1 for d in results)


def test_greedy_is_near_optimal(isp200_base, failure_instances):
    """§4.1's greedy matches the optimum in the overwhelming majority."""
    gaps = []
    for backup in failure_instances:
        greedy = greedy_decompose(backup, isp200_base)
        optimal = min_pieces_decompose(backup, isp200_base)
        gaps.append(greedy.num_pieces - optimal.num_pieces)
    assert all(g >= 0 for g in gaps)
    assert sum(1 for g in gaps if g == 0) / len(gaps) >= 0.9


def bench_binary_prefix_probe(benchmark, failure_instances, isp200):
    base = AllShortestPathsBase(isp200)
    def run():
        return [
            greedy_decompose(b, base, prefix_probe="binary")
            for b in failure_instances
        ]

    benchmark(run)


def bench_linear_prefix_probe(benchmark, failure_instances, isp200):
    base = AllShortestPathsBase(isp200)
    def run():
        return [
            greedy_decompose(b, base, prefix_probe="linear")
            for b in failure_instances
        ]

    benchmark(run)


def test_probe_strategies_agree(failure_instances, isp200):
    base = AllShortestPathsBase(isp200)
    for backup in failure_instances:
        binary = greedy_decompose(backup, base, prefix_probe="binary")
        linear = greedy_decompose(backup, base, prefix_probe="linear")
        assert binary.pieces == linear.pieces


class TestBaseSetFlavors:
    """PC length / base-set size trade-off across the three flavors."""

    @pytest.fixture(scope="class")
    def small_world(self):
        graph = generate_isp_topology(n=60, seed=21)
        nodes = sorted(graph.nodes, key=repr)
        rng = random.Random(3)
        demands = [tuple(rng.sample(nodes, 2)) for _ in range(25)]
        return graph, demands

    def _avg_pc(self, graph, demands, base, via_aux_graph=False):
        lengths = []
        route_base = UniqueShortestPathsBase(graph)
        for s, t in demands:
            primary = route_base.path_for(s, t)
            if primary.hops < 1:
                continue
            failed = list(primary.edges())[0]
            view = graph.without(edges=[failed])
            try:
                if via_aux_graph:
                    d = concatenation_shortest_path(view, base, s, t)
                else:
                    backup = shortest_path(view, s, t)
                    d = min_pieces_decompose(backup, base)
            except NoPath:
                continue
            lengths.append(d.num_pieces)
        return sum(lengths) / len(lengths)

    def test_all_sp_base_needs_fewest_pieces(self, small_world):
        graph, demands = small_world
        all_sp = self._avg_pc(graph, demands, AllShortestPathsBase(graph))
        unique = self._avg_pc(graph, demands, UniqueShortestPathsBase(graph))
        assert all_sp <= unique + 1e-9

    def test_expanded_base_beats_unique_via_aux_graph(self, small_world):
        """Corollary 4: the expanded set needs no extra edges at all."""
        graph, demands = small_world
        unique = unique_shortest_path_base(graph, seed=1)
        expanded = expanded_base_set(graph, seed=1)
        assert len(expanded) > len(unique)
        pc_unique = self._avg_pc(graph, demands, unique, via_aux_graph=True)
        pc_expanded = self._avg_pc(graph, demands, expanded, via_aux_graph=True)
        assert pc_expanded <= pc_unique + 1e-9

    def bench_corollary4_expansion(self, benchmark, small_world):
        graph, _ = small_world
        expanded = benchmark(expanded_base_set, graph, 1)
        n = graph.number_of_nodes()
        m = graph.number_of_edges()
        # Corollary 4's bound counts ordered-pair paths + edge extensions.
        assert len(expanded) <= n * (n - 1) + 2 * m * (n - 1)


def bench_rbpc_vs_resignaling(benchmark, tiny_suite):
    """Messages and table writes: restore by concatenation vs. rebuild."""
    isp = tiny_suite[0]
    graph = isp.graph
    base = UniqueShortestPathsBase(graph)
    nodes = sorted(graph.nodes, key=repr)
    demand = (nodes[0], nodes[-1])

    def run():
        net = MplsNetwork(graph)
        registry = provision_base_set(net, base, pairs=[demand])
        primary = base.path_for(*demand)
        net.set_fec(demand[0], demand[1], [registry[primary]])
        failed = list(primary.edges())[0]
        net.fail_link(*failed)

        before = net.ledger.snapshot()
        scheme = SourceRouterRbpc(net, base, registry)
        scheme.restore(*demand)
        rbpc_messages = net.ledger.total_messages - before[0]

        # The alternative: tear down the broken LSP, signal the backup.
        backup = scheme.active_restorations()[0].decomposition.path
        before_msgs = net.ledger.total_messages
        net.teardown_lsp(registry[primary])
        net.provision_lsp(backup)
        rebuild_messages = net.ledger.total_messages - before_msgs
        return rbpc_messages, rebuild_messages

    rbpc_messages, rebuild_messages = benchmark(run)
    # RBPC needs on-demand setup only for unprovisioned pieces; even so
    # it must beat the full teardown + end-to-end re-signal.
    assert rbpc_messages < rebuild_messages
