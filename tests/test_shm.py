"""Shared-memory CSR publication: format, lifecycle, and fan-out identity.

Four contracts pinned here:

* **Format round-trip** — a published segment attaches back to a
  ``CsrGraph`` whose buffers are byte-identical to the in-process
  snapshot, with zero payload copies (the attached arrays are
  memoryview casts over the shared pages).
* **Validation** — segments with a wrong magic, a future format
  version, or a foreign tie-order contract are refused with
  :class:`ShmFormatError`, never reinterpreted.
* **Lifecycle / leak-freedom** — after normal teardown *and* after an
  exception inside the publication scope, ``residual_segments()`` is
  empty; attach-side handles can never unlink a creator's segment.
* **Fan-out identity** — per-link ILM accounting produces byte-identical
  results at ``--jobs 1`` and ``--jobs 4``, with shared memory enabled
  and with ``REPRO_SHM=0`` (the rebuild fallback).
"""

from __future__ import annotations

import random

import pytest

from repro.core.cache import shared_unique_base
from repro.experiments import table2
from repro.experiments.ilm_accounting import IlmAccountant
from repro.experiments.networks import cached_suite
from repro.experiments.parallel import chunk_bounds, make_executor, publish_suite
from repro.failures.sampler import sample_pairs
from repro.graph import shm
from repro.graph.csr import CsrGraph, shared_csr
from repro.graph.shm import (
    ShmFormatError,
    attach_csr,
    attach_csr_cached,
    detach_all,
    publish_csr,
    residual_segments,
    segment_exists,
)
from repro.topology import (
    complete_graph,
    cycle_graph,
    four_cycle,
    generate_as_graph,
    generate_internet_graph,
    generate_isp_topology,
    grid_graph,
    path_graph,
)
from repro.topology.classic import (
    comb_graph,
    two_level_star,
    weighted_comb_graph,
)
from repro.topology.powerlaw import preferential_attachment


def publish_or_skip(csr: CsrGraph):
    seg = publish_csr(csr)
    if seg is None:
        pytest.skip("shared memory unavailable on this platform")
    return seg


class TestFormatRoundTrip:
    def test_attach_reproduces_buffers_exactly(self):
        csr = shared_csr(grid_graph(3, 4))
        with publish_or_skip(csr) as seg:
            attached, handle = attach_csr(seg.name)
            try:
                assert attached.nodes == csr.nodes
                assert attached.n == csr.n
                assert attached.directed == csr.directed
                assert attached.source_version == csr.source_version
                assert bytes(attached.indptr) == bytes(csr.indptr)
                assert bytes(attached.indices) == bytes(csr.indices)
                assert bytes(attached.weights) == bytes(csr.weights)
            finally:
                handle.close()

    def test_attach_is_zero_copy(self):
        """The numeric sections come back as casts over the shared pages."""
        csr = shared_csr(cycle_graph(5))
        with publish_or_skip(csr) as seg:
            attached, handle = attach_csr(seg.name)
            try:
                for buf in (attached.indptr, attached.indices, attached.weights):
                    assert isinstance(buf, memoryview)
                    assert buf.readonly is False  # cast of the live mapping
                # The graph pins its segment so the mapping outlives
                # local references to the handle.
                assert attached.keepalive is handle
            finally:
                handle.close()

    def test_empty_graph_round_trips(self):
        from repro.graph.graph import Graph

        csr = CsrGraph(Graph())
        with publish_or_skip(csr) as seg:
            attached, handle = attach_csr(seg.name)
            try:
                assert attached.n == 0
                assert attached.nodes == []
                assert len(attached.indices) == 0
            finally:
                handle.close()


class TestValidation:
    def _corrupt(self, seg, offset: int, payload: bytes) -> None:
        view = shm._attach_untracked(seg.name)
        try:
            view.buf[offset : offset + len(payload)] = payload
        finally:
            view.close()

    def test_version_mismatch_is_refused(self):
        csr = shared_csr(path_graph(4))
        with publish_or_skip(csr) as seg:
            # Preamble layout: magic[0:4], version u32 [4:8].
            self._corrupt(seg, 4, (999).to_bytes(4, "little"))
            with pytest.raises(ShmFormatError, match="format v999"):
                attach_csr(seg.name)

    def test_bad_magic_is_refused(self):
        csr = shared_csr(path_graph(4))
        with publish_or_skip(csr) as seg:
            self._corrupt(seg, 0, b"NOPE")
            with pytest.raises(ShmFormatError, match="magic"):
                attach_csr(seg.name)

    def test_foreign_tie_order_is_refused(self, monkeypatch):
        csr = shared_csr(path_graph(4))
        with publish_or_skip(csr) as seg:
            monkeypatch.setattr(shm, "SHM_TIE_ORDER", "hops")
            with pytest.raises(ShmFormatError, match="tie order"):
                attach_csr(seg.name)

    def test_failed_attach_leaves_no_local_handle(self):
        csr = shared_csr(path_graph(4))
        with publish_or_skip(csr) as seg:
            self._corrupt(seg, 0, b"NOPE")
            with pytest.raises(ShmFormatError):
                attach_csr(seg.name)
            # The refused attach closed its own mapping; the creator's
            # segment itself is untouched and still published.
            assert segment_exists(seg.name)


class TestLifecycle:
    def test_normal_teardown_leaves_no_residue(self):
        csr = shared_csr(four_cycle())
        seg = publish_or_skip(csr)
        name = seg.name
        assert segment_exists(name)
        seg.close()
        seg.unlink()
        assert not segment_exists(name)
        assert residual_segments() == []

    def test_exceptional_teardown_leaves_no_residue(self):
        csr = shared_csr(four_cycle())
        name = None
        with pytest.raises(RuntimeError, match="boom"):
            with publish_or_skip(csr) as seg:
                name = seg.name
                raise RuntimeError("boom")
        assert name is not None
        assert not segment_exists(name)
        assert residual_segments() == []

    def test_attacher_cannot_unlink(self):
        csr = shared_csr(four_cycle())
        with publish_or_skip(csr) as seg:
            _attached, handle = attach_csr(seg.name)
            handle.unlink()  # no-op: not the creator
            assert segment_exists(seg.name)
            handle.close()
        assert not segment_exists(seg.name)

    def test_close_and_unlink_are_idempotent(self):
        csr = shared_csr(four_cycle())
        seg = publish_or_skip(csr)
        for _ in range(2):
            seg.close()
            seg.unlink()
        assert residual_segments() == []

    def test_attach_cache_is_per_name_and_detachable(self):
        csr = shared_csr(grid_graph(2, 3))
        with publish_or_skip(csr) as seg:
            first = attach_csr_cached(seg.name)
            second = attach_csr_cached(seg.name)
            assert first is second
            detach_all()
            third = attach_csr_cached(seg.name)
            assert third is not first
            detach_all()

    def test_disabled_publication_falls_back(self, monkeypatch):
        from repro.perf import COUNTERS

        monkeypatch.setenv("REPRO_SHM", "0")
        before = COUNTERS.shm_fallbacks
        assert publish_csr(shared_csr(path_graph(3))) is None
        assert COUNTERS.shm_fallbacks == before + 1

    def test_oversize_payload_falls_back(self, monkeypatch):
        from repro.perf import COUNTERS

        monkeypatch.setenv("REPRO_SHM_MAX_BYTES", "16")
        before = COUNTERS.shm_fallbacks
        assert publish_csr(shared_csr(complete_graph(6))) is None
        assert COUNTERS.shm_fallbacks == before + 1
        assert residual_segments() == []


#: One small instance per topology family the generators can produce.
TOPOLOGY_FAMILIES = [
    ("path", lambda: path_graph(7)),
    ("cycle", lambda: cycle_graph(6)),
    ("four-cycle", lambda: four_cycle()),
    ("complete", lambda: complete_graph(5)),
    ("grid", lambda: grid_graph(3, 4)),
    ("comb", lambda: comb_graph(4)[0]),
    ("weighted-comb", lambda: weighted_comb_graph(4)[0]),
    ("two-level-star", lambda: two_level_star(7)[0]),
    ("isp-weighted", lambda: generate_isp_topology(n=40, seed=3)),
    ("isp-unweighted", lambda: generate_isp_topology(n=40, seed=3, weighted=False)),
    ("powerlaw", lambda: preferential_attachment(50, 2.0, seed=5)),
    ("as-graph", lambda: generate_as_graph(n=60, seed=2)),
    ("internet", lambda: generate_internet_graph(n=60, seed=2)),
]


class TestEveryTopologyFamily:
    """Property: publish/attach is the identity on CSR buffers, for a
    representative of every topology family the repo generates."""

    @pytest.mark.parametrize(
        "family", [f for _, f in TOPOLOGY_FAMILIES],
        ids=[name for name, _ in TOPOLOGY_FAMILIES],
    )
    def test_round_trip_preserves_family_csr(self, family):
        csr = shared_csr(family())
        with publish_or_skip(csr) as seg:
            attached, handle = attach_csr(seg.name)
            try:
                assert attached.nodes == csr.nodes
                assert bytes(attached.indptr) == bytes(csr.indptr)
                assert bytes(attached.indices) == bytes(csr.indices)
                assert bytes(attached.weights) == bytes(csr.weights)
            finally:
                handle.close()
        assert residual_segments() == []


def _ilm_reference(network, pairs, scenarios):
    """Sequential per-link accounting for one network/mode."""
    base = shared_unique_base(network.graph)
    accountant = IlmAccountant(
        network.graph,
        base,
        demand_sources=table2.ilm_demand_sources(network.graph, pairs),
        weighted=network.weighted,
    )
    accountant.process_scenarios(scenarios)
    return accountant


def _ilm_summary(accountant):
    return (
        accountant.stretch_factors(),
        accountant.table_sizes(),
        accountant.base_lsp_count(),
        accountant.demands_restored,
        accountant.demands_unrestorable,
    )


class TestIlmChunkMergeIdentity:
    """The order-free accountant merge: chunked == sequential, exactly."""

    def test_shuffled_chunk_merge_matches_sequential(self):
        network = cached_suite(scale="tiny", seed=1)[0]
        base = shared_unique_base(network.graph)
        pairs = sample_pairs(network.graph, network.sample_pairs, seed=1)
        scenarios = table2.ilm_scenarios(base, pairs, "link", 200)
        assert len(scenarios) > 4

        sequential = _ilm_reference(network, pairs, scenarios)

        states = []
        for start, end in chunk_bounds(len(scenarios), 4):
            chunk = IlmAccountant(
                network.graph,
                base,
                demand_sources=table2.ilm_demand_sources(network.graph, pairs),
                weighted=network.weighted,
            )
            chunk.process_scenarios(scenarios[start:end])
            states.append(chunk.export_state())
        random.Random(7).shuffle(states)  # merge must be order-free

        merged = IlmAccountant(
            network.graph,
            base,
            demand_sources=table2.ilm_demand_sources(network.graph, pairs),
            weighted=network.weighted,
        )
        for state in states:
            merged.merge_state(state)

        assert _ilm_summary(merged) == _ilm_summary(sequential)


class TestIlmJobsIdentity:
    """End-to-end: per-link rows identical at jobs=1 and jobs=4, with
    the shared-memory fast path and with REPRO_SHM=0 (rebuild fallback)."""

    def _rows(self, jobs: int) -> dict:
        network = cached_suite(scale="tiny", seed=1)[0]
        executor = make_executor(jobs) if jobs > 1 else None
        publication = None
        try:
            if executor is not None:
                publication = publish_suite([network], with_base=True)
            return table2.evaluate_network(
                network,
                modes=("link",),
                seed=1,
                with_multiplicity=False,
                ilm_accounting="per-link",
                jobs=jobs,
                suite_ref=("tiny", 1, 0),
                executor=executor,
                shm_ref=publication.ref(0) if publication else None,
            )
        finally:
            if executor is not None:
                executor.shutdown()
            if publication is not None:
                publication.release()

    def test_jobs4_matches_jobs1_with_shm(self):
        from repro.perf import COUNTERS

        sequential = self._rows(jobs=1)
        before_chunks = COUNTERS.ilm_scenario_chunks
        parallel = self._rows(jobs=4)
        assert parallel == sequential
        assert COUNTERS.ilm_scenario_chunks > before_chunks
        assert residual_segments() == []

    def test_jobs4_matches_jobs1_without_shm(self, monkeypatch):
        sequential = self._rows(jobs=1)
        monkeypatch.setenv("REPRO_SHM", "0")
        parallel = self._rows(jobs=4)
        assert parallel == sequential
        assert residual_segments() == []
