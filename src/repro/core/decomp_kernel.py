"""O(1) sub-path membership probes — the decomposition kernel.

The decomposition algorithms (`greedy_decompose`, `min_pieces_decompose`,
`min_base_paths_decompose`) are built on one primitive: "is the sub-path
of the restoration path between node positions *j* and *i* a base
path?".  The straightforward implementation allocates a
:class:`~repro.graph.paths.Path` per probe and re-walks its edges to sum
its cost — O(L) work per probe, repeated O(L²) times by the dynamic
programs, dominating the per-case restoration cost.

This module turns the probe into arithmetic.  For the implicit
shortest-path base sets the membership test is "does the sub-path's cost
(in the probe graph — padded for the Theorem 3 unique-choice set) equal
the shortest distance between its endpoints?".  Both sides can be
precomputed:

* ``cum[t]`` — cumulative probe-graph cost of the restoration path's
  first ``t`` hops, computed once in O(L); the sub-path cost is then
  ``cum[i] - cum[j]``;
* per-source distance rows, fetched from the base set's shared
  :class:`~repro.graph.all_pairs.LazyDistanceOracle` via a single
  target-pruned request per probed source position (the targets are
  exactly the later nodes of the restoration path).

so each probe is two list indexings, a dict lookup, and one
float-tolerant comparison — no allocation, no edge walk.

Float caveat (see ``docs/performance.md``): ``cum[i] - cum[j]``
accumulates rounding differently than the direct left-to-right summation
in ``Path.cost``.  The discrepancy is bounded by a few ulps of the total
path cost (~1e-13 relative), six orders of magnitude below the 1e-9
relative tolerance of :func:`~repro.graph.shortest_paths.costs_equal`,
so both formulations land on the same side of every comparison the
pipeline makes; the equivalence tests pin this down.
"""

from __future__ import annotations

from ..graph.paths import Path
from ..graph.shortest_paths import costs_equal
from ..perf import COUNTERS


class SubpathProbe:
    """Fallback probe: allocate the sub-path and ask the base set.

    Correct for *any* base set (explicit sets, invalid walks, graphs the
    oracle does not cover) — the O(1) kernel falls back to this whenever
    its preconditions do not hold.  Probes are counted in
    ``COUNTERS.path_probes``.
    """

    __slots__ = ("path", "base_set")

    def __init__(self, path: Path, base_set) -> None:
        self.path = path
        self.base_set = base_set

    def is_base(self, j: int, i: int) -> bool:
        """True if ``path.subpath(j, i)`` is a base path."""
        COUNTERS.probe_calls += 1
        COUNTERS.path_probes += 1
        if i <= j:
            return False
        return self.base_set.is_base_path(self.path.subpath(j, i))

    def piece(self, j: int, i: int, allow_edges: bool) -> tuple[bool, bool]:
        """``(admissible, is_base)`` for the candidate piece ``subpath(j, i)``."""
        if self.is_base(j, i):
            return True, True
        if (
            allow_edges
            and i - j == 1
            and self.base_set.graph.has_edge(self.path.nodes[j], self.path.nodes[i])
        ):
            return True, False
        return False, False


class PrefixSumProbe(SubpathProbe):
    """O(1) probe for implicit shortest-path base sets.

    Preconditions (enforced by the ``subpath_probe`` factory methods on
    the base sets):

    * the restoration path is valid in the base set's graph — then every
      contiguous sub-path is valid too, so the validity clause of
      ``is_base_path`` is discharged once up front;
    * *probe_graph* carries the weights membership is defined on (the
      padded graph for :class:`UniqueShortestPathsBase`, the original
      for :class:`AllShortestPathsBase`) and *oracle* its distances.

    Distance rows are pulled lazily, one target-pruned oracle request
    per probed source position; the greedy decomposition touches only
    the positions its binary search visits, while the dynamic programs
    end up warming every position exactly once.
    """

    __slots__ = ("_nodes", "_cum", "_oracle", "_rows", "_include_edges")

    def __init__(self, path: Path, base_set, probe_graph, oracle, include_all_edges: bool) -> None:
        super().__init__(path, base_set)
        self._nodes = path.nodes
        cum = [0.0]
        total = 0.0
        for u, v in path.edges():
            total += probe_graph.weight(u, v)
            cum.append(total)
        self._cum = cum
        self._oracle = oracle
        self._rows: dict[int, dict] = {}
        self._include_edges = include_all_edges

    def _row(self, j: int) -> dict:
        row = self._rows.get(j)
        if row is None:
            row = self._oracle.distances_from(self._nodes[j], self._nodes[j + 1 :])
            self._rows[j] = row
        return row

    def is_base(self, j: int, i: int) -> bool:
        """True if ``path.subpath(j, i)`` is a base path — pure arithmetic."""
        COUNTERS.probe_calls += 1
        COUNTERS.o1_probes += 1
        if i <= j:
            return False
        if self._include_edges and i - j == 1:
            return True
        d = self._row(j).get(self._nodes[i])
        if d is None:
            return False
        return costs_equal(self._cum[i] - self._cum[j], d)

    def piece(self, j: int, i: int, allow_edges: bool) -> tuple[bool, bool]:
        """``(admissible, is_base)`` — single-edge pieces of a valid path
        always exist in the graph, so no ``has_edge`` lookup is needed."""
        if self.is_base(j, i):
            return True, True
        if allow_edges and i - j == 1:
            return True, False
        return False, False
