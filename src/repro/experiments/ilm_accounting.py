"""Faithful ILM stretch accounting — Table 2's first two columns.

The naive alternative the paper measures against is Section 4's
per-failure pre-provisioning: *"for each link pre-compute all the
paths that would be affected by its failure, and for each affected
path establish a backup LSP"*.  The comparison is therefore scoped per
*failure scenario* over a whole *demand universe*, not per sampled
demand:

* **denominator** (naive): for every scenario, every affected demand
  of the universe gets its own dedicated backup LSP — an ILM entry at
  each router of its backup path, never shared (each backup is bound
  to its trigger), plus the primary LSPs themselves;
* **numerator** (RBPC): the union of base LSPs (decomposition pieces
  plus primaries) that restoration *uses*, deduplicated globally —
  sharing across demands and scenarios is the whole point.

The stretch factor at a router is numerator/denominator; Table 2
reports the minimum and mean over routers the naive scheme touches.

:class:`IlmAccountant` batches the computation per scenario: all
touched sources go through one
:meth:`~repro.graph.incremental.SptCache.repair_batch_idx` call — the
scenario's dead edges are decoded once, each source's cached
pre-failure row is repaired (not recomputed), and every affected
demand of that source reads its backup off the repaired predecessor
array.  That is what makes all-pairs demand universes tractable on the
ISP and sampled-source universes tractable on the large graphs.

**Flat-array bookkeeping.**  All per-scenario mutation state lives in
CSR index space (``shared_csr(graph).nodes`` positions): primaries are
integer chains read straight off the base oracle's flat predecessor
rows, the reverse link/router indices are keyed by ``(min, max)``
index pairs, per-router naive counts accumulate into one
``array('l')``, and repeated backup chains skip the decomposition DP
through a chain-keyed memo.  Node/:class:`~repro.graph.paths.Path`
objects are materialized only on a decomposition-memo miss.

**Parallel fan-out.**  The accumulated state is a pure function of the
*set* of processed scenarios — counts are additive, primaries/pieces
dedup by set union, and the derived counters (:meth:`stretch_factors`,
:meth:`table_sizes`, :meth:`base_lsp_count`) are finalized from that
state in node-index order.  Workers therefore process disjoint
scenario chunks and ship :meth:`export_state`; the parent
:meth:`merge_state`-s them and gets results byte-identical to the
sequential run, independent of chunking or merge order.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Optional

from ..core.base_paths import BaseSet
from ..core.cache import shared_spt_cache
from ..core.decomposition import min_pieces_decompose
from ..exceptions import DecompositionError
from ..failures.models import FailureScenario
from ..graph.csr import INF, shared_csr
from ..graph.graph import Graph, Node
from ..graph.paths import Path
from ..kernels import kernel_backend
from ..obs import heartbeat
from ..perf import COUNTERS, warm_up_phase

#: A path in CSR index space: the node-index sequence, source first.
Chain = tuple[int, ...]


class IlmAccountant:
    """Per-scenario, demand-universe-wide ILM stretch computation."""

    def __init__(
        self,
        graph: Graph,
        base: BaseSet,
        demand_sources: Optional[list[Node]] = None,
        weighted: bool = True,
    ) -> None:
        self.graph = graph
        self.base = base
        self.weighted = weighted
        self.csr = shared_csr(graph)
        if demand_sources is None:
            demand_sources = sorted(graph.nodes, key=repr)
        self.demand_sources = list(demand_sources)
        index = self.csr.index
        self._source_idx = [index[source] for source in self.demand_sources]
        self._oracle = self._aligned_oracle()
        # source idx -> {target idx: primary chain}, built lazily per
        # source (the parent of a parallel run only ever materializes
        # chains for demands its workers actually touched).
        self._chains: dict[int, dict[int, Chain]] = {}
        # Reverse indices over the demand universe: which demands a
        # failed link / router disturbs.  Built on first use; makes
        # process_scenario O(affected) instead of O(universe).
        self._by_edge: Optional[dict[tuple[int, int], list]] = None
        self._by_router: Optional[dict[int, list]] = None
        # Mergeable accounting state (see the module docstring).
        self._probe_weights: Optional[dict[tuple[int, int], float]] = None
        self._backup_naive = array("l", bytes(array("l").itemsize * self.csr.n))
        self._primaries_touched: set[tuple[int, int]] = set()
        self._pieces: set[Chain] = set()
        self._decomp_memo: dict[Chain, Optional[tuple[Chain, ...]]] = {}
        self._final: Optional[tuple[list[int], list[int], int]] = None
        self.scenarios_processed = 0
        self.demands_restored = 0
        self.demands_unrestorable = 0

    def reset_accounting(self) -> None:
        """Zero the mergeable accounting state, keep the caches.

        A worker process reuses one accountant per network/mode across
        every chunk it pulls from the shared work queue: the demand
        universe (chain indices, reverse edge/router maps, probe
        weights) and the decomposition memo are pure functions of the
        network and stay warm, while the per-chunk tallies exported by
        :meth:`export_state` start from zero so the parent's merge sees
        each chunk exactly once.
        """
        self._backup_naive = array(
            "l", bytes(array("l").itemsize * self.csr.n)
        )
        self._primaries_touched = set()
        self._pieces = set()
        self._final = None
        self.scenarios_processed = 0
        self.demands_restored = 0
        self.demands_unrestorable = 0

    # -- demand universe ------------------------------------------------------

    def _aligned_oracle(self):
        """The base set's oracle, iff its flat rows share our index space."""
        oracle = getattr(self.base, "oracle", None)
        if oracle is None or getattr(oracle, "break_ties_by_hops", False):
            return None
        try:
            aligned = oracle.csr().nodes == self.csr.nodes
        except Exception:
            return None
        return oracle if aligned else None

    def _chains_for(self, si: int) -> dict[int, Chain]:
        """Primary chains from source *si* to every reachable target.

        Fast path: one flat oracle row; every node's chain is built
        exactly once by extending its predecessor's chain (total work
        proportional to the sum of chain lengths, no Path objects).
        Fallback (explicit or index-misaligned base sets): one
        ``path_for`` per covered pair.
        """
        chains = self._chains.get(si)
        if chains is not None:
            return chains
        nodes, index = self.csr.nodes, self.csr.index
        if self._oracle is not None:
            dist, pred = self._oracle.row_arrays(nodes[si])
            built: dict[int, Chain] = {si: (si,)}
            for ti, d in enumerate(dist):
                if d == INF or ti in built:
                    continue
                stack = []
                x = ti
                while x not in built:
                    stack.append(x)
                    x = pred[x]
                prefix = built[x]
                for x in reversed(stack):
                    prefix = prefix + (x,)
                    built[x] = prefix
            del built[si]
            chains = built
        else:
            chains = {}
            source = nodes[si]
            for ti, target in enumerate(nodes):
                if ti != si and self.base.has_pair(source, target):
                    chains[ti] = tuple(
                        index[node]
                        for node in self.base.path_for(source, target).nodes
                    )
        self._chains[si] = chains
        return chains

    # -- accounting -----------------------------------------------------------

    def _ensure_indices(self) -> None:
        if self._by_edge is not None:
            return
        by_edge: dict[tuple[int, int], list] = {}
        by_router: dict[int, list] = {}
        # Universe warm-up: the oracle rows every demand chain reads
        # are batch-warmed (and lazily swept by _chains_for) here —
        # exactly the set a parent publishes, so builds inside this
        # phase count as warm_row_builds.
        with warm_up_phase():
            if self._oracle is not None:
                nodes = self.csr.nodes
                self._oracle.warm_many(
                    nodes[si]
                    for si in self._source_idx
                    if si not in self._chains
                )
            for si in self._source_idx:
                self._chains_for(si)
        for si in self._source_idx:
            for ti, chain in self._chains_for(si).items():
                demand = (si, ti)
                prev = chain[0]
                for x in chain[1:]:
                    key = (prev, x) if prev < x else (x, prev)
                    by_edge.setdefault(key, []).append(demand)
                    prev = x
                for x in chain:
                    by_router.setdefault(x, []).append(demand)
        self._by_edge = by_edge
        self._by_router = by_router

    def _affected_by(self, scenario: FailureScenario) -> dict[int, list[int]]:
        """``source idx -> [target idxs]`` of disturbed demands."""
        self._ensure_indices()
        assert self._by_edge is not None and self._by_router is not None
        index = self.csr.index
        hit: set[tuple[int, int]] = set()
        for u, v in scenario.links:
            iu, iv = index.get(u), index.get(v)
            if iu is None or iv is None:
                continue
            hit.update(self._by_edge.get((iu, iv) if iu < iv else (iv, iu), ()))
        dead_routers: set[int] = set()
        for router in scenario.routers:
            ri = index.get(router)
            if ri is None:
                continue
            dead_routers.add(ri)
            hit.update(self._by_router.get(ri, ()))
        grouped: dict[int, list[int]] = {}
        for si, ti in hit:
            if si in dead_routers:
                # Source down: no flow to restore.  (A dead *target* is
                # kept and lands in unrestorable — nothing to reach.)
                continue
            grouped.setdefault(si, []).append(ti)
        return grouped

    def plan_scenarios(
        self, scenarios: list[FailureScenario]
    ) -> tuple[list[int], list[int]]:
        """Cost-model pass over *scenarios* (the fan-out scheduler input).

        Returns ``(costs, touched)``: a per-scenario work estimate and
        the sorted CSR indices of every source any scenario repairs.
        The estimate is the summed
        :meth:`~repro.graph.incremental.SptCache.repair_cost_estimate`
        over the scenario's touched sources — pre-failure subtree sizes
        below the dead links/routers, the dominant ``repair_spt`` term
        — plus the affected-demand count (backup walks and
        decomposition probes scale with it).  As a side effect this
        warms the exact SPT row set a parallel run wants to publish,
        which is the same row set a sequential run builds one scenario
        at a time.  Deterministic: pure arithmetic over cached rows.
        """
        index = self.csr.index
        cache = shared_spt_cache(self.graph, weighted=self.weighted)
        grouped_list = [self._affected_by(s) for s in scenarios]
        touched = sorted({si for g in grouped_list for si in g})
        cache.ensure_rows(touched)
        costs: list[int] = []
        for scenario, grouped in zip(scenarios, grouped_list):
            dead_pairs: list[tuple[int, int]] = []
            for u, v in scenario.links:
                iu, iv = index.get(u), index.get(v)
                if iu is not None and iv is not None:
                    dead_pairs.append((iu, iv))
            dead_nodes = [
                index[r] for r in scenario.routers if r in index
            ]
            cost = 0
            for si, targets in grouped.items():
                cost += cache.repair_cost_estimate(
                    si, dead_pairs, dead_nodes
                ) + len(targets)
            costs.append(cost)
        return costs, touched

    def publish_warm_rows(self):
        """Publish this accountant's warm rows for a scenario fan-out.

        Ships every cached SPT row of the shared cache and every
        complete oracle row (the sets :meth:`plan_scenarios` just
        warmed, plus whatever earlier stages left behind) as two
        ``RROW`` segments.  Returns ``(row_ref, segments)`` where
        *row_ref* is the ``(spt name, oracle name)`` pair for
        :func:`~repro.experiments.parallel.ilm_scenario_chunk` — or
        ``None`` when nothing published — and *segments* are the
        creator handles the caller must unlink after the fan-out.
        """
        from ..graph import shm

        if not shm.shm_enabled():
            return None, []
        segments: list = []
        spt_name = oracle_name = None
        cache = shared_spt_cache(self.graph, weighted=self.weighted)
        seg = shm.publish_rows(
            "spt", self.csr.n, self.weighted, self.csr.source_version,
            cache.export_rows(),
        )
        if seg is not None:
            segments.append(seg)
            spt_name = seg.name
        if self._oracle is not None:
            ocsr = self._oracle.csr()
            seg = shm.publish_rows(
                "oracle", ocsr.n, True, ocsr.source_version,
                self._oracle.export_rows(),
            )
            if seg is not None:
                segments.append(seg)
                oracle_name = seg.name
        if spt_name is None and oracle_name is None:
            return None, segments
        return (spt_name, oracle_name), segments

    def _decompose(self, chain: Chain) -> Optional[tuple[Chain, ...]]:
        """Min-pieces decomposition of a backup chain (memoized); None
        when the backup admits no base-path decomposition."""
        memo = self._decomp_memo
        try:
            return memo[chain]
        except KeyError:
            pass
        if self._oracle is not None and getattr(
            self.base, "include_all_edges", False
        ):
            result = self._decompose_flat(chain)
        else:
            result = self._decompose_path(chain)
        memo[chain] = result
        return result

    def _probe_weight_map(self) -> dict[tuple[int, int], float]:
        """Directed ``(u idx, v idx) -> weight`` over the probe graph.

        The probe graph is whatever the base oracle's snapshot covers —
        the padded graph for the unique base set, the original for the
        all-shortest-paths one — so prefix sums land in the same cost
        space as the oracle's distances.
        """
        weights = self._probe_weights
        if weights is None:
            pcsr = self._oracle.csr()
            indptr, indices, warr = pcsr.indptr, pcsr.indices, pcsr.weights
            weights = {}
            for u in range(pcsr.n):
                for k in range(indptr[u], indptr[u + 1]):
                    weights[(u, indices[k])] = warr[k]
            self._probe_weights = weights
        return weights

    def _decompose_flat(self, chain: Chain) -> tuple[Chain, ...]:
        """All-array :func:`min_pieces_decompose` for index-aligned
        implicit base sets with every edge admitted.

        Mirrors the DP cell-for-cell — same lexicographic objective,
        same first-minimal-``j`` tie-break, same probe arithmetic as
        :class:`~repro.core.decomp_kernel.PrefixSumProbe` — so the
        returned pieces are identical to the Path-based kernel's; only
        the Path/dict materialization is gone.  Every 1-hop piece is a
        base path here (``include_all_edges``), so a decomposition
        always exists and ``extra_edges`` stays 0.

        The DP itself runs on the active kernel backend: every chain
        prefix with a longer-than-one-hop suffix needs its oracle row
        exactly once (one-hop pieces always extend the DP, so every
        prefix is reachable), so the rows are batch-warmed up front and
        ``decompose_flat`` receives a row getter that only ever hits
        cache — identical fetch set, hence identical oracle counters,
        under either backend.
        """
        weight = self._probe_weight_map()
        cum = [0.0]
        total = 0.0
        for u, v in zip(chain, chain[1:]):
            total += weight[(u, v)]
            cum.append(total)
        nodes = self.csr.nodes
        oracle = self._oracle
        oracle.warm_many(nodes[c] for c in chain[:-2])

        def row_for(j: int) -> list[float]:
            return oracle.row_arrays(nodes[chain[j]])[0]

        best, choice, probes = kernel_backend().decompose_flat(
            chain, cum, row_for
        )
        COUNTERS.probe_calls += probes
        COUNTERS.o1_probes += probes
        pieces: list[Chain] = []
        i = len(chain) - 1
        while i > 0:
            j = choice[i]
            pieces.append(chain[j : i + 1])
            i = j
        pieces.reverse()
        return tuple(pieces)

    def _decompose_path(self, chain: Chain) -> Optional[tuple[Chain, ...]]:
        """Path-based decomposition fallback (explicit/unaligned bases)."""
        nodes, index = self.csr.nodes, self.csr.index
        backup = Path(nodes[i] for i in chain)
        try:
            decomposition = min_pieces_decompose(
                backup, self.base, allow_edges=True
            )
        except DecompositionError:
            return None
        return tuple(
            tuple(index[node] for node in piece.nodes)
            for piece in decomposition.pieces
        )

    def process_scenario(self, scenario: FailureScenario) -> int:
        """Account one failure scenario; returns affected-demand count."""
        grouped = self._affected_by(scenario)
        cache = shared_spt_cache(self.graph, weighted=self.weighted)
        # Multi-source batched repair: one scenario decode, every
        # touched source re-settled via its cached pre-failure row.
        rows = cache.repair_batch_idx(grouped, scenario)
        backup_naive = self._backup_naive
        affected_total = 0
        for si, targets in grouped.items():
            row = rows.get(si)
            dist, pred = row if row is not None else (None, None)
            affected_total += len(targets)
            for ti in targets:
                self._primaries_touched.add((si, ti))
                if dist is None or dist[ti] == INF:
                    self.demands_unrestorable += 1
                    continue
                chain = [ti]
                x = ti
                while x != si:
                    x = pred[x]
                    chain.append(x)
                chain.reverse()
                backup = tuple(chain)
                for x in backup:
                    backup_naive[x] += 1
                pieces = self._decompose(backup)
                if pieces is None:
                    self.demands_unrestorable += 1
                    continue
                self.demands_restored += 1
                self._pieces.update(pieces)
        self.scenarios_processed += 1
        self._final = None
        return affected_total

    def process_scenarios(
        self,
        scenarios: Iterable[FailureScenario],
        progress_chunk: Optional[tuple[int, int]] = None,
    ) -> None:
        """Account every scenario in the iterable.

        With a heartbeat channel configured (see
        :mod:`repro.obs.heartbeat`), emits ``scenario-progress`` ticks
        — roughly eight per chunk — so ``python -m repro.obs watch``
        can show intra-chunk progress on the long per-link fan-outs;
        *progress_chunk* labels the ticks with the caller's
        ``[start, end)`` scenario bounds.  Without a channel the loop
        is untouched (one boolean check up front).
        """
        if not heartbeat.enabled():
            for scenario in scenarios:
                self.process_scenario(scenario)
            return
        scenarios = list(scenarios)
        total = len(scenarios)
        chunk = (
            list(progress_chunk) if progress_chunk is not None
            else [0, total]
        )
        tick = max(1, total // 8)
        # Inside a fan-out chunk the ticks adopt its label so watch
        # attributes them to the right group; "ilm" covers sequential
        # callers.
        label = heartbeat.current_label() or "ilm"
        for done, scenario in enumerate(scenarios, start=1):
            self.process_scenario(scenario)
            if done % tick == 0 or done == total:
                heartbeat.emit(
                    "scenario-progress", label=label, chunk=chunk,
                    done=done, total=total,
                )

    # -- parallel fan-out -----------------------------------------------------

    def export_state(self) -> dict:
        """Mergeable accounting state (picklable; see :meth:`merge_state`).

        Sets are exported sorted so the payload bytes are deterministic
        for a given scenario chunk regardless of processing order.
        """
        return {
            "policy": "concatenation",
            "backup_naive": self._backup_naive.tobytes(),
            "primaries": sorted(self._primaries_touched),
            "pieces": sorted(self._pieces),
            "scenarios": self.scenarios_processed,
            "restored": self.demands_restored,
            "unrestorable": self.demands_unrestorable,
        }

    def merge_state(self, state: dict) -> None:
        """Fold a worker's :meth:`export_state` into this accountant.

        Counts add, primaries/pieces union; since the derived results
        are a pure function of that state, merging per-chunk exports in
        any order reproduces the sequential run byte-for-byte.
        """
        policy = state.get("policy", "concatenation")
        if policy != "concatenation":
            # The piece-sharing model below is the concatenation
            # scheme's; silently folding another policy's tallies would
            # corrupt the ILM columns.
            raise ValueError(
                f"cannot merge ILM state computed under policy {policy!r}"
            )
        incoming = array("l")
        incoming.frombytes(state["backup_naive"])
        backup_naive = self._backup_naive
        for i, count in enumerate(incoming):
            if count:
                backup_naive[i] += count
        self._primaries_touched.update(
            tuple(demand) for demand in state["primaries"]
        )
        self._pieces.update(tuple(chain) for chain in state["pieces"])
        self.scenarios_processed += state["scenarios"]
        self.demands_restored += state["restored"]
        self.demands_unrestorable += state["unrestorable"]
        self._final = None

    # -- results --------------------------------------------------------------

    def _finalize(self) -> tuple[list[int], list[int], int]:
        """``(base counts, naive counts, base LSP count)`` per node index.

        Primaries enter both sides here rather than in the scenario
        loop: each touched primary is counted once globally (never per
        scenario), which is also what makes worker exports mergeable.
        """
        final = self._final
        if final is not None:
            return final
        naive = list(self._backup_naive)
        base_paths: set[Chain] = set(self._pieces)
        for si, ti in self._primaries_touched:
            chain = self._chains_for(si)[ti]
            for x in chain:
                naive[x] += 1
            base_paths.add(chain)
        base_counter = [0] * self.csr.n
        for chain in base_paths:
            for x in chain:
                base_counter[x] += 1
        self._final = (base_counter, naive, len(base_paths))
        return self._final

    def stretch_factors(self) -> tuple[float, float]:
        """``(min %, avg %)`` over routers the naive scheme touches."""
        base_counter, naive, _ = self._finalize()
        ratios = [
            100.0 * base_counter[i] / count
            for i, count in enumerate(naive)
            if count > 0
        ]
        if not ratios:
            return float("nan"), float("nan")
        return min(ratios), sum(ratios) / len(ratios)

    def table_sizes(self) -> tuple[int, int]:
        """Total ILM entries: ``(RBPC base set, naive pre-provisioning)``."""
        base_counter, naive, _ = self._finalize()
        return sum(base_counter), sum(naive)

    def base_lsp_count(self) -> int:
        """Distinct base LSPs the restorations used."""
        return self._finalize()[2]


def scenarios_from_cases(cases) -> list[FailureScenario]:
    """Deduplicated scenarios from a stream of sampler FailureCases."""
    seen: set[FailureScenario] = set()
    ordered: list[FailureScenario] = []
    for case in cases:
        if case.scenario not in seen:
            seen.add(case.scenario)
            ordered.append(case.scenario)
    return ordered
