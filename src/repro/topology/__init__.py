"""Topology generators, loaders, and statistics.

* :mod:`repro.topology.classic` — paper-figure constructions and
  standard parametric families.
* :mod:`repro.topology.isp` — synthetic ISP backbone (Table 1 row 1).
* :mod:`repro.topology.powerlaw` — AS-graph / Internet stand-ins
  (Table 1 rows 2-3).
* :mod:`repro.topology.loader` — plain-text persistence.
* :mod:`repro.topology.stats` — Table 1 statistics.
"""

from .classic import (
    comb_graph,
    complete_graph,
    cycle_graph,
    directed_counterexample,
    four_cycle,
    grid_graph,
    path_graph,
    two_level_star,
    weighted_comb_graph,
)
from .isp import generate_isp_pair, generate_isp_topology
from .loader import load_edgelist, save_edgelist
from .powerlaw import (
    generate_as_graph,
    generate_internet_graph,
    preferential_attachment,
)
from .stats import TopologyStats, degree_histogram, estimate_powerlaw_exponent, summarize

__all__ = [
    "TopologyStats",
    "comb_graph",
    "complete_graph",
    "cycle_graph",
    "degree_histogram",
    "directed_counterexample",
    "estimate_powerlaw_exponent",
    "four_cycle",
    "generate_as_graph",
    "generate_internet_graph",
    "generate_isp_pair",
    "generate_isp_topology",
    "grid_graph",
    "load_edgelist",
    "path_graph",
    "preferential_attachment",
    "save_edgelist",
    "summarize",
    "two_level_star",
    "weighted_comb_graph",
]
