"""Tests for topology generators, loaders, and Table 1 statistics."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.graph.connectivity import is_connected, is_two_edge_connected
from repro.graph.graph import Graph
from repro.graph.shortest_paths import shortest_path, shortest_path_length
from repro.topology.classic import (
    comb_graph,
    complete_graph,
    cycle_graph,
    directed_counterexample,
    four_cycle,
    grid_graph,
    path_graph,
    two_level_star,
    weighted_comb_graph,
)
from repro.topology.isp import generate_isp_pair, generate_isp_topology
from repro.topology.loader import load_edgelist, save_edgelist
from repro.topology.powerlaw import (
    generate_as_graph,
    generate_internet_graph,
    preferential_attachment,
)
from repro.topology.stats import (
    degree_histogram,
    estimate_powerlaw_exponent,
    summarize,
)


class TestClassic:
    def test_path_graph(self):
        g = path_graph(5)
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 4

    def test_path_graph_single_node(self):
        assert path_graph(1).number_of_nodes() == 1

    def test_cycle_graph(self):
        g = cycle_graph(6)
        assert g.number_of_edges() == 6
        assert all(g.degree(u) == 2 for u in g.nodes)

    def test_cycle_too_small(self):
        with pytest.raises(TopologyError):
            cycle_graph(2)

    def test_four_cycle(self):
        assert four_cycle().number_of_nodes() == 4

    def test_complete_graph(self):
        g = complete_graph(5)
        assert g.number_of_edges() == 10

    def test_grid_graph(self):
        g = grid_graph(3, 4)
        assert g.number_of_nodes() == 12
        assert g.number_of_edges() == 3 * 3 + 2 * 4

    def test_invalid_sizes(self):
        with pytest.raises(TopologyError):
            grid_graph(0, 3)
        with pytest.raises(TopologyError):
            complete_graph(0)
        with pytest.raises(TopologyError):
            path_graph(0)


class TestComb:
    @pytest.mark.parametrize("k", [1, 2, 4, 7])
    def test_structure(self, k):
        g, failed, s, t = comb_graph(k)
        assert g.number_of_nodes() == 2 * k + 1
        assert g.number_of_edges() == 3 * k
        assert len(failed) == k
        assert shortest_path_length(g, s, t, weighted=False) == k

    def test_survivor_is_unique_detour(self):
        g, failed, s, t = comb_graph(3)
        view = g.without(edges=failed)
        survivor = shortest_path(view, s, t, weighted=False)
        assert survivor.hops == 6  # 2k

    def test_k_zero_rejected(self):
        with pytest.raises(TopologyError):
            comb_graph(0)


class TestWeightedComb:
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_gadget_edges_are_not_shortest(self, k):
        g, failed, s, t = weighted_comb_graph(k)
        # Each 1+eps edge is beaten by the cheap two-hop route.
        for u, v, w in g.weighted_edges():
            if w > 1.0:
                assert shortest_path_length(g, u, v) < w

    def test_failed_edges_count(self):
        _, failed, _, _ = weighted_comb_graph(4)
        assert len(failed) == 4

    def test_eps_bounds(self):
        with pytest.raises(TopologyError):
            weighted_comb_graph(2, eps=0.9)
        with pytest.raises(TopologyError):
            weighted_comb_graph(2, eps=0.0)


class TestTwoLevelStar:
    def test_all_nonadjacent_pairs_at_distance_two(self):
        g, hub, s, t = two_level_star(12)
        for u in g.nodes:
            for v in g.nodes:
                if u != v and not g.has_edge(u, v):
                    assert shortest_path_length(g, u, v, weighted=False) == 2

    def test_hub_failure_leaves_ring(self):
        g, hub, s, t = two_level_star(10)
        view = g.without(nodes=[hub])
        assert is_connected(view)
        assert shortest_path_length(view, s, t, weighted=False) >= 4

    def test_too_small(self):
        with pytest.raises(TopologyError):
            two_level_star(4)


class TestDirectedCounterexample:
    def test_shortcut_dominates(self):
        g, failed, s, t = directed_counterexample(12)
        assert shortest_path_length(g, s, t, weighted=False) == 3

    def test_failure_forces_chain(self):
        g, failed, s, t = directed_counterexample(12)
        view = g.without(edges=[failed])
        assert shortest_path_length(view, s, t, weighted=False) == (12 - 2) - 1

    def test_too_small(self):
        with pytest.raises(TopologyError):
            directed_counterexample(5)


class TestIsp:
    def test_deterministic(self):
        a = generate_isp_topology(n=80, seed=3)
        b = generate_isp_topology(n=80, seed=3)
        assert sorted(a.weighted_edges()) == sorted(b.weighted_edges())

    def test_different_seeds_differ(self):
        a = generate_isp_topology(n=80, seed=3)
        b = generate_isp_topology(n=80, seed=4)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_connected_and_sized(self):
        g = generate_isp_topology(n=100, seed=1)
        assert g.number_of_nodes() == 100
        assert is_connected(g)
        assert 3.0 <= g.average_degree() <= 5.0

    def test_core_is_two_edge_connected(self):
        g = generate_isp_topology(n=100, seed=2)
        core_nodes = [u for u in g.nodes if u[0] == "core"]
        core = Graph()
        for u in core_nodes:
            core.add_node(u)
        for u, v, w in g.weighted_edges():
            if u[0] == "core" and v[0] == "core":
                core.add_edge(u, v, weight=w)
        assert is_two_edge_connected(core)

    def test_access_routers_dual_homed(self):
        g = generate_isp_topology(n=100, seed=1)
        for u in g.nodes:
            if u[0] == "acc":
                assert g.degree(u) == 2

    def test_weights_are_symmetric_positive(self):
        g = generate_isp_topology(n=60, seed=1)
        for u, v, w in g.weighted_edges():
            assert w >= 1.0
            assert g.weight(v, u) == w

    def test_unweighted_pair_shares_topology(self):
        weighted, unweighted = generate_isp_pair(n=60, seed=5)
        assert sorted(weighted.edges()) == sorted(unweighted.edges())
        assert unweighted.is_unweighted()
        assert not weighted.is_unweighted()

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            generate_isp_topology(n=5)


class TestPowerlaw:
    def test_deterministic(self):
        a = preferential_attachment(200, 2.0, seed=9)
        b = preferential_attachment(200, 2.0, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_connected(self):
        g = preferential_attachment(500, 2.0, seed=1)
        assert is_connected(g)

    def test_average_degree_calibration(self):
        g = generate_as_graph(n=2000, seed=1)
        assert 3.8 <= g.average_degree() <= 4.6
        g2 = generate_internet_graph(n=2000, seed=1)
        assert 4.6 <= g2.average_degree() <= 5.5

    def test_degree_distribution_has_heavy_tail(self):
        g = preferential_attachment(2000, 2.0, seed=1)
        histogram = degree_histogram(g)
        alpha = estimate_powerlaw_exponent(histogram)
        assert alpha is not None and alpha < -1.0
        assert max(histogram) > 20  # hubs exist

    def test_parameter_validation(self):
        with pytest.raises(TopologyError):
            preferential_attachment(2, 2.0)
        with pytest.raises(TopologyError):
            preferential_attachment(100, 0.5)


class TestStats:
    def test_summarize(self, triangle):
        s = summarize(triangle, "tri")
        assert s.nodes == 3 and s.links == 3
        assert s.average_degree == 2.0
        assert s.min_degree == s.max_degree == 2
        assert "tri" in s.table1_row()

    def test_histogram(self, line5):
        assert degree_histogram(line5) == {1: 2, 2: 3}

    def test_powerlaw_estimate_needs_data(self):
        assert estimate_powerlaw_exponent({2: 10}) is None


class TestLoader:
    def test_roundtrip_undirected(self, tmp_path, weighted_diamond):
        path = tmp_path / "g.edges"
        save_edgelist(weighted_diamond, path)
        loaded = load_edgelist(path)
        assert sorted(loaded.weighted_edges()) == sorted(
            weighted_diamond.weighted_edges()
        )
        assert not loaded.directed

    def test_roundtrip_directed(self, tmp_path):
        from repro.graph.graph import DiGraph

        g = DiGraph()
        g.add_edge("a", "b", weight=2.0)
        g.add_edge("b", "a", weight=3.0)
        path = tmp_path / "d.edges"
        save_edgelist(g, path)
        loaded = load_edgelist(path)
        assert loaded.directed
        assert loaded.weight("a", "b") == 2.0
        assert loaded.weight("b", "a") == 3.0

    def test_roundtrip_tuple_nodes(self, tmp_path):
        g = Graph()
        g.add_edge(("core", 1), ("acc", 2), weight=4.0)
        path = tmp_path / "t.edges"
        save_edgelist(g, path)
        loaded = load_edgelist(path)
        assert loaded.has_edge(("core", 1), ("acc", 2))

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1 2 3\n")  # spaces, not tabs
        with pytest.raises(TopologyError):
            load_edgelist(path)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "ok.edges"
        path.write_text("# directed: false\n\n1\t2\t1.5\n")
        loaded = load_edgelist(path)
        assert loaded.weight(1, 2) == 1.5
