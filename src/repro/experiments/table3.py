"""Table 3 — hop-count distribution of min-cost edge bypasses.

For every link of every network: the length (in hops) of the min-cost
path between the link's endpoints once the link itself is removed —
the path edge-bypass local RBPC rides.  The paper reports the percent
of links with bypass hop count 2, 3, ... 9.

Run with ``python -m repro.experiments.table3 [--scale small]``.
"""

from __future__ import annotations

import argparse
from typing import Optional

from ..core.local_restoration import bypass_path
from ..exceptions import NoPath, NoRestorationPath
from ..graph.graph import Graph
from ..graph.shortest_paths import shortest_path
from ..obs import TRACER, activate_from_args, add_obs_arguments, bench_observability
from ..obs.metrics import DEPTH_EDGES, METRICS
from ..kernels import add_kernel_argument, apply_kernel
from ..policies import (
    DEFAULT_FAILURE_MODEL,
    active_failure_model_name,
    active_policy_name,
    add_policy_arguments,
    apply_policy_arguments,
    make_failure_model,
)
from ..perf import COUNTERS
from .bench import (
    StageTimer,
    add_repair_fallback_argument,
    apply_repair_fallback,
    write_bench_json,
)
from .networks import cached_suite, scales
from .parallel import (
    make_executor,
    publish_suite,
    resolve_jobs,
    run_chunked,
    table3_bypass_chunk,
)
from .reporting import format_table

#: Published Table 3 (percent of links per bypass hop count).
PAPER_TABLE3 = {
    "ISP, Weighted": {2: 89.05, 3: 2.95, 4: 1.18, 5: 4.14, 6: 0.88, 7: 1.77},
    "ISP, Unweighted": {2: 90.11, 3: 2.99, 4: 1.79, 5: 5.08},
    "AS Graph": {2: 61.27, 3: 30.88, 4: 6.22, 5: 1.29, 6: 0.32},
    "Internet": {2: 54.96, 3: 37.68, 4: 2.37, 5: 1.72, 6: 2.05, 7: 0.64, 8: 0.95, 9: 0.23},
}

MAX_REPORTED_HOPS = 9


def link_bypass_hops(
    graph: Graph, u, v, weighted: bool, model=None
) -> Optional[int]:
    """Hop count of the min-cost bypass of link ``(u, v)``; None for bridges.

    Under the default (independent) failure model this is exactly
    :func:`~repro.core.local_restoration.bypass_path` — byte-identical
    to the pre-policy sweep.  A correlated model expands the link into
    its full fault set first (e.g. the whole SRLG group), so the bypass
    must survive every correlated casualty, not just the link itself.
    """
    if model is None or model.name == DEFAULT_FAILURE_MODEL:
        try:
            return bypass_path(graph, u, v, weighted=weighted).hops
        except NoRestorationPath:
            return None
    view = model.scenario_for_link((u, v)).apply(graph)
    try:
        return shortest_path(view, u, v, weighted=weighted).hops
    except NoPath:
        return None


def bypass_distribution(
    graph: Graph, weighted: bool, max_links: int | None = None, model=None
) -> tuple[dict[int, float], float]:
    """``(percent per hop count, percent of bridge links)`` over all links.

    Bridges have no bypass at all; the paper's topologies are nearly
    bridge-free, ours report the fraction explicitly.
    """
    hops_list: list[Optional[int]] = []
    for u, v in graph.edges():
        if max_links is not None and len(hops_list) >= max_links:
            break
        hops_list.append(link_bypass_hops(graph, u, v, weighted, model))
    return _aggregate(hops_list)


def _aggregate(
    hops_list: list[Optional[int]],
) -> tuple[dict[int, float], float]:
    """Fold per-link bypass hop counts (None = bridge) into percentages."""
    total = len(hops_list)
    if total == 0:
        return {}, 0.0
    counts: dict[int, int] = {}
    bridges = 0
    record = METRICS.enabled
    for hops in hops_list:
        if hops is None:
            bridges += 1
            if record:
                METRICS.counter("table3.bridges").inc()
        else:
            counts[hops] = counts.get(hops, 0) + 1
            if record:
                METRICS.histogram("table3.bypass_hops", DEPTH_EDGES).observe(hops)
    percents = {hops: 100.0 * n / total for hops, n in sorted(counts.items())}
    return percents, 100.0 * bridges / total


def run(
    scale: str = "small",
    seed: int = 1,
    max_links: int | None = None,
    jobs: int = 1,
    failure_model: Optional[str] = None,
) -> dict[str, tuple[dict[int, float], float]]:
    """Distribution per network name.

    With ``jobs > 1`` the links of each network are fanned out over
    worker processes; reassembly in link order keeps the distribution
    byte-identical to the sequential run.  *failure_model* defaults to
    the active registry selection.
    """
    jobs = resolve_jobs(jobs)
    model_name = (
        failure_model if failure_model is not None else active_failure_model_name()
    )
    executor = make_executor(jobs)
    results: dict[str, tuple[dict[int, float], float]] = {}
    networks = cached_suite(scale=scale, seed=seed)
    if executor is None:
        for network in networks:
            results[network.name] = bypass_distribution(
                network.graph,
                network.weighted,
                max_links=max_links,
                model=make_failure_model(model_name, network.graph, seed=seed),
            )
        return results
    # Bypass sweeps never touch a base set, so only the graph CSRs are
    # published; release after the pool drains (exception-safe).
    publication = publish_suite(networks, with_base=False)
    try:
        with executor:
            for index, network in enumerate(networks):
                n_links = network.graph.number_of_edges()
                if max_links is not None:
                    n_links = min(n_links, max_links)
                hops_list = run_chunked(
                    executor,
                    table3_bypass_chunk,
                    (scale, seed, index, publication.ref(index), model_name),
                    n_links,
                    jobs,
                )
                results[network.name] = _aggregate(hops_list)
    finally:
        publication.release()
    return results


def render(results: dict[str, tuple[dict[int, float], float]]) -> str:
    """Render the computed results as a paper-style text report."""
    names = list(results)
    max_hops = MAX_REPORTED_HOPS
    for percents, _ in results.values():
        if percents:
            max_hops = max(max_hops, max(percents))
    rows = []
    for hops in range(2, max_hops + 1):
        row: list[object] = [hops]
        for name in names:
            percents, _ = results[name]
            row.append(f"{percents.get(hops, 0.0):.2f}%")
            paper = PAPER_TABLE3.get(name, {}).get(hops)
            row.append(f"({paper:.2f}%)" if paper is not None else "")
        rows.append(row)
    bridge_row: list[object] = ["bridge"]
    for name in names:
        _, bridge_pct = results[name]
        bridge_row.append(f"{bridge_pct:.2f}%")
        bridge_row.append("")
    rows.append(bridge_row)
    headers = ["Bypass hops"]
    for name in names:
        headers.extend([name, "paper"])
    return format_table(
        headers, rows, title="Table 3: length of the bypass of an edge"
    )


def main(argv: list[str] | None = None) -> str:
    """CLI entry point; prints and returns the report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=scales(), default="small")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--max-links",
        type=int,
        default=None,
        help="cap on links sampled per network (full enumeration by default)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the per-link fan-out (0 = auto)",
    )
    parser.add_argument(
        "--bench-json", type=str, default=None,
        help="path for the BENCH JSON (default results/BENCH_table3.json; "
             "'-' disables)",
    )
    add_repair_fallback_argument(parser)
    add_kernel_argument(parser)
    add_policy_arguments(parser)
    add_obs_arguments(parser)
    args = parser.parse_args(argv)
    apply_repair_fallback(args)  # before any worker fork
    apply_kernel(args)  # before any worker fork
    apply_policy_arguments(args)  # before any worker fork
    activate_from_args(args)
    timer = StageTimer(prefix="table3")
    before = COUNTERS.snapshot()
    with TRACER.span("table3", scale=args.scale, seed=args.seed):
        with timer.stage("bypasses"):
            results = run(
                scale=args.scale,
                seed=args.seed,
                max_links=args.max_links,
                jobs=args.jobs,
            )
        with timer.stage("render"):
            report = render(results)
    print(report)
    if args.bench_json != "-":
        counters = COUNTERS.delta(before).as_dict()
        payload = {
            "name": "table3",
            "scale": args.scale,
            "seed": args.seed,
            "jobs": args.jobs,
            "policy": active_policy_name(),
            "failure_model": active_failure_model_name(),
            "wall_clock_s": round(timer.total(), 4),
            "stages": timer.as_dict(),
            "counters": counters,
        }
        payload.update(bench_observability(args, counters))
        write_bench_json("table3", payload, path=args.bench_json)
    else:
        bench_observability(args)
    return report


if __name__ == "__main__":
    main()
