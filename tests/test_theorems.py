"""Property tests of Theorems 1-3 and the proof machinery (Section 3).

These are the paper's headline claims run as executable checks:
random graphs, random failure sets, random demands — the bound must
hold every single time.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.base_paths import (
    AllShortestPathsBase,
    padded_graph,
    unique_shortest_path_base,
)
from repro.core.decomposition import min_base_paths_decompose, min_pieces_decompose
from repro.core.theory import (
    eulerian_path,
    gf2_dependent_subset,
    proof_bypasses,
    theorem1_bound,
    theorem2_bound,
    verify_theorem1,
    verify_theorem2,
)
from repro.exceptions import GraphError, NoPath
from repro.failures.models import FailureScenario
from repro.graph.graph import Graph
from repro.graph.shortest_paths import shortest_path
from repro.topology.classic import comb_graph, four_cycle, weighted_comb_graph
from repro.topology.isp import generate_isp_topology
from repro.topology.powerlaw import preferential_attachment


def random_connected_graph(seed: int, n: int = 24, extra: int = 14) -> Graph:
    rng = random.Random(seed)
    g = Graph()
    for i in range(1, n):
        g.add_edge(rng.randrange(i), i)
    for _ in range(extra):
        u, v = rng.sample(range(n), 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


class TestTheorem1:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(1, 4),
        pair_seed=st.integers(0, 10_000),
    )
    def test_holds_on_random_graphs(self, seed, k, pair_seed):
        g = random_connected_graph(seed)
        rng = random.Random(pair_seed)
        edges = sorted(g.edges())
        failed = rng.sample(edges, min(k, len(edges)))
        s, t = rng.sample(sorted(g.nodes), 2)
        scenario = FailureScenario.link_set(failed)
        try:
            holds, decomposition = verify_theorem1(g, scenario, s, t)
        except NoPath:
            return  # disconnected: nothing to restore
        assert holds, (
            f"Theorem 1 violated: {decomposition.num_pieces} pieces for "
            f"k={scenario.effective_k_edges(g)}"
        )

    def test_tight_on_comb(self):
        for k in (1, 2, 3, 6):
            g, failed, s, t = comb_graph(k)
            holds, decomposition = verify_theorem1(
                g, FailureScenario.link_set(failed), s, t
            )
            assert holds
            assert decomposition.num_pieces == theorem1_bound(k)

    def test_rejects_weighted_graph(self, weighted_diamond):
        with pytest.raises(GraphError):
            verify_theorem1(
                weighted_diamond, FailureScenario.single_link(1, 2), 1, 4
            )

    def test_holds_on_powerlaw_graphs(self):
        g = preferential_attachment(150, 2.0, seed=5)
        rng = random.Random(9)
        nodes = sorted(g.nodes)
        for trial in range(15):
            k = rng.randrange(1, 4)
            failed = rng.sample(sorted(g.edges()), k)
            s, t = rng.sample(nodes, 2)
            try:
                holds, _ = verify_theorem1(
                    g, FailureScenario.link_set(failed), s, t
                )
            except NoPath:
                continue
            assert holds


class TestTheorem2:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(1, 3),
        pair_seed=st.integers(0, 10_000),
    )
    def test_holds_on_random_weighted_graphs(self, seed, k, pair_seed):
        g = random_connected_graph(seed, n=18, extra=10)
        rng = random.Random(seed ^ 0xBEEF)
        weighted = Graph()
        for u, v, _ in g.weighted_edges():
            weighted.add_edge(u, v, weight=rng.choice([1, 1, 2, 3, 5, 10]))
        rng2 = random.Random(pair_seed)
        failed = rng2.sample(sorted(weighted.edges()), k)
        s, t = rng2.sample(sorted(weighted.nodes), 2)
        try:
            holds, decomposition = verify_theorem2(
                weighted, FailureScenario.link_set(failed), s, t
            )
        except NoPath:
            return
        assert holds, (
            f"Theorem 2 violated: {decomposition.num_base_paths} paths + "
            f"{decomposition.num_extra_edges} edges for k={k}"
        )

    def test_regression_seed_139_greedy_is_not_a_witness(self):
        """Pinned falsifying instance of the old greedy-based check.

        At ``seed=139, k=1, pair_seed=1`` the greedy largest-prefix
        partition spends 3 base paths (+0 edges) where Theorem 2
        promises a covering with at most 2 base paths and 1 edge — the
        theorem is an existence claim, so the verifier must search
        within the bound (``min_base_paths_decompose``), not trust the
        greedy's piece mix.  This instance made the hypothesis suite
        red until ``verify_theorem2`` switched decompositions.
        """
        from repro.core.decomposition import greedy_decompose
        from repro.core.theory import restoration_decomposition

        g = random_connected_graph(139, n=18, extra=10)
        rng = random.Random(139 ^ 0xBEEF)
        weighted = Graph()
        for u, v, _ in g.weighted_edges():
            weighted.add_edge(u, v, weight=rng.choice([1, 1, 2, 3, 5, 10]))
        rng2 = random.Random(1)
        failed = rng2.sample(sorted(weighted.edges()), 1)
        s, t = rng2.sample(sorted(weighted.nodes), 2)
        scenario = FailureScenario.link_set(failed)

        # The greedy partition itself still exceeds the bound ...
        greedy, _ = restoration_decomposition(
            weighted, scenario, s, t, weighted=True
        )
        assert greedy.num_base_paths == 3 and greedy.num_extra_edges == 0

        # ... but a witness within the bound exists and the fixed
        # verifier finds it.
        holds, decomposition = verify_theorem2(weighted, scenario, s, t)
        assert holds
        assert decomposition.num_base_paths <= 2
        assert decomposition.num_extra_edges <= 1

    def test_tight_on_weighted_comb(self):
        for k in (1, 2, 4):
            g, failed, s, t = weighted_comb_graph(k)
            holds, decomposition = verify_theorem2(
                g, FailureScenario.link_set(failed), s, t
            )
            assert holds
            max_paths, max_edges = theorem2_bound(k)
            assert decomposition.num_base_paths == max_paths
            assert decomposition.num_extra_edges == max_edges

    def test_holds_on_weighted_isp_with_router_failures(self):
        g = generate_isp_topology(n=50, seed=11)
        rng = random.Random(1)
        nodes = sorted(g.nodes, key=repr)
        for _ in range(10):
            router = rng.choice(nodes)
            s, t = rng.sample(nodes, 2)
            if router in (s, t):
                continue
            scenario = FailureScenario.single_router(router)
            try:
                holds, _ = verify_theorem2(g, scenario, s, t)
            except NoPath:
                continue
            assert holds


class TestTheorem3:
    """One base path per pair: k+1 base paths plus k edges still suffice."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 3_000), pair_seed=st.integers(0, 3_000))
    def test_unique_base_set_restores_single_failure(self, seed, pair_seed):
        g = random_connected_graph(seed, n=14, extra=8)
        base = unique_shortest_path_base(g, seed=3)
        rng = random.Random(pair_seed)
        failed = rng.choice(sorted(g.edges()))
        s, t = rng.sample(sorted(g.nodes), 2)
        # Theorem 3's guarantee is for the restoration path chosen
        # under the SAME infinitesimal padding that made the base set
        # unique — an arbitrarily tie-broken shortest path in the
        # unpadded surviving graph can legitimately need k+2 base
        # paths (e.g. seed=18, pair_seed=147).
        view = padded_graph(g, seed=3).without(edges=[failed])
        try:
            backup = shortest_path(view, s, t)
        except NoPath:
            return
        # Theorem 3 with k=1: a covering with at most 2 base paths and 1
        # extra edge EXISTS.  min_pieces_decompose may legitimately
        # return, say, 3 base paths instead of 2 paths + 1 edge (same
        # piece count), so the claim is checked with the edge-bounded
        # decomposition.
        decomposition = min_base_paths_decompose(backup, base, max_edges=1)
        assert decomposition.num_base_paths <= 2
        assert decomposition.num_extra_edges <= 1
        assert min_pieces_decompose(backup, base).num_pieces <= 3

    def test_four_cycle_needs_three_components(self):
        """The Section 3 remark: some failure forces 3 components."""
        g = four_cycle()
        worst = 0
        base = unique_shortest_path_base(g, seed=1)
        for failed in g.edges():
            view = g.without(edges=[failed])
            for s in g.nodes:
                for t in g.nodes:
                    if s == t:
                        continue
                    backup = shortest_path(view, s, t, weighted=False)
                    if backup.is_trivial:
                        continue
                    d = min_pieces_decompose(backup, base, allow_edges=True)
                    worst = max(worst, d.num_pieces)
        assert worst == 3


class TestProofMachinery:
    def test_bypasses_contain_failed_edges(self):
        g, failed, s, t = comb_graph(3)
        view = g.without(edges=failed)
        new_path = shortest_path(view, s, t, weighted=False)
        triples = proof_bypasses(g, new_path, weighted=False)
        assert 1 <= len(triples) <= 3
        failed_set = set(failed)
        for _, _, bypass in triples:
            assert any(
                key in failed_set for key in bypass.edge_keys()
            ), "every proof bypass must contain a failed edge"

    def test_no_bypasses_for_still_shortest_path(self, diamond):
        assert proof_bypasses(diamond, shortest_path(diamond, 1, 4)) == []

    def test_gf2_dependent_subset_xors_to_zero(self):
        vectors = [
            frozenset({"e1"}),
            frozenset({"e1", "e2"}),
            frozenset({"e2"}),
        ]
        subset = gf2_dependent_subset(vectors)
        acc: frozenset = frozenset()
        for i in subset:
            acc = acc ^ vectors[i]
        assert subset
        assert acc == frozenset()

    def test_gf2_k_plus_one_vectors_always_dependent(self):
        rng = random.Random(4)
        universe = [f"e{i}" for i in range(6)]
        for _ in range(50):
            vectors = [
                frozenset(e for e in universe if rng.random() < 0.5) or frozenset({universe[0]})
                for _ in range(len(universe) + 1)
            ]
            subset = gf2_dependent_subset(vectors)
            acc: frozenset = frozenset()
            for i in subset:
                acc = acc ^ vectors[i]
            assert acc == frozenset()

    def test_gf2_independent_raises(self):
        with pytest.raises(ValueError):
            gf2_dependent_subset([frozenset({"a"}), frozenset({"b"})])

    def test_gf2_zero_vector_alone(self):
        assert gf2_dependent_subset([frozenset()]) == [0]

    def test_eulerian_path_simple(self):
        walk = eulerian_path([(1, 2), (2, 3)], 1, 3)
        assert walk == [1, 2, 3]

    def test_eulerian_path_with_parallel_edges(self):
        walk = eulerian_path([(1, 2), (1, 2), (1, 2)], 1, 2)
        assert walk[0] == 1 and walk[-1] == 2
        assert len(walk) == 4

    def test_eulerian_path_with_cycle_splice(self):
        # s-t edge plus a disjoint-looking cycle hanging off s.
        edges = [(1, 2), (1, 3), (3, 4), (4, 1)]
        walk = eulerian_path(edges, 1, 2)
        assert walk[0] == 1 and walk[-1] == 2
        assert len(walk) == 5

    def test_eulerian_wrong_parity_raises(self):
        with pytest.raises(ValueError):
            eulerian_path([(1, 2), (2, 3)], 1, 2)

    def test_eulerian_disconnected_raises(self):
        with pytest.raises(ValueError):
            eulerian_path([(1, 2), (3, 4), (4, 3)], 1, 2)
