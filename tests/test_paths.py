"""Unit and property tests for Path and the concatenation algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import InvalidPath
from repro.graph.graph import Graph
from repro.graph.paths import Path, concat_all, is_concatenation_of


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(InvalidPath):
            Path([])

    def test_trivial_path(self):
        p = Path([1])
        assert p.is_trivial
        assert p.hops == 0
        assert p.source == p.target == 1

    def test_repeated_consecutive_node_rejected(self):
        with pytest.raises(InvalidPath):
            Path([1, 1, 2])

    def test_nonconsecutive_repeat_allowed(self):
        # Walks may revisit nodes (the proof's p' is non-simple).
        p = Path([1, 2, 1])
        assert not p.is_simple()
        assert p.hops == 2

    def test_basic_accessors(self):
        p = Path([1, 2, 3])
        assert p.source == 1
        assert p.target == 3
        assert p.hops == 2
        assert list(p.edges()) == [(1, 2), (2, 3)]
        assert list(p.edge_keys()) == [(1, 2), (2, 3)]
        assert p.interior_nodes() == (2,)


class TestCosts:
    def test_cost_sums_weights(self, weighted_diamond):
        assert Path([1, 2, 4]).cost(weighted_diamond) == 2.0
        assert Path([1, 3, 4]).cost(weighted_diamond) == 4.0

    def test_cost_of_invalid_path_raises(self, triangle):
        with pytest.raises(Exception):
            Path([1, 4]).cost(triangle)

    def test_is_valid_in(self, triangle):
        assert Path([1, 2, 3]).is_valid_in(triangle)
        assert not Path([1, 2, 4]).is_valid_in(triangle)

    def test_valid_in_view_respects_failures(self, triangle):
        view = triangle.without(edges=[(1, 2)])
        assert not Path([1, 2]).is_valid_in(view)
        assert Path([1, 3, 2]).is_valid_in(view)

    def test_uses_edge_and_node(self):
        p = Path([1, 2, 3])
        assert p.uses_edge(2, 1)
        assert not p.uses_edge(2, 1, directed=True)
        assert p.uses_edge(1, 2, directed=True)
        assert p.uses_node(2)
        assert not p.uses_node(9)


class TestSlicing:
    def test_prefix(self):
        p = Path([1, 2, 3, 4])
        assert p.prefix(2).nodes == (1, 2, 3)
        assert p.prefix(0).is_trivial

    def test_prefix_out_of_range(self):
        with pytest.raises(IndexError):
            Path([1, 2]).prefix(5)

    def test_suffix_from(self):
        p = Path([1, 2, 3, 4])
        assert p.suffix_from(2).nodes == (3, 4)

    def test_subpath(self):
        p = Path([1, 2, 3, 4])
        assert p.subpath(1, 3).nodes == (2, 3, 4)
        with pytest.raises(IndexError):
            p.subpath(3, 1)

    def test_subpath_between(self):
        p = Path([1, 2, 3, 4])
        assert p.subpath_between(2, 4).nodes == (2, 3, 4)
        with pytest.raises(InvalidPath):
            p.subpath_between(4, 2)

    def test_reversed(self):
        assert Path([1, 2, 3]).reversed().nodes == (3, 2, 1)

    def test_all_subpaths_count(self):
        p = Path([1, 2, 3, 4])
        # 3 of 1 hop, 2 of 2 hops, 1 of 3 hops.
        assert len(list(p.all_subpaths())) == 6
        assert len(list(p.all_subpaths(min_hops=2))) == 3


class TestConcatenation:
    def test_concat(self):
        assert (Path([1, 2]) + Path([2, 3])).nodes == (1, 2, 3)

    def test_concat_mismatch_raises(self):
        with pytest.raises(InvalidPath):
            Path([1, 2]).concat(Path([3, 4]))

    def test_concat_with_trivial(self):
        assert (Path([1, 2]) + Path([2])).nodes == (1, 2)
        assert (Path([1]) + Path([1, 2])).nodes == (1, 2)

    def test_concat_all(self):
        whole = concat_all([Path([1, 2]), Path([2, 3]), Path([3, 1])])
        assert whole.nodes == (1, 2, 3, 1)

    def test_concat_all_empty_raises(self):
        with pytest.raises(InvalidPath):
            concat_all([])

    def test_is_concatenation_of(self):
        whole = Path([1, 2, 3, 4])
        assert is_concatenation_of(whole, [Path([1, 2, 3]), Path([3, 4])])
        assert not is_concatenation_of(whole, [Path([1, 2]), Path([3, 4])])
        assert not is_concatenation_of(whole, [])


class TestDunder:
    def test_equality_and_hash(self):
        assert Path([1, 2]) == Path([1, 2])
        assert Path([1, 2]) != Path([2, 1])
        assert hash(Path([1, 2])) == hash(Path([1, 2]))
        assert len({Path([1, 2]), Path([1, 2]), Path([2, 1])}) == 2

    def test_iteration_and_indexing(self):
        p = Path([5, 6, 7])
        assert list(p) == [5, 6, 7]
        assert p[1] == 6
        assert p[-1] == 7
        assert 6 in p
        assert len(p) == 3


# -- property tests -----------------------------------------------------------

node_lists = st.lists(st.integers(0, 30), min_size=2, max_size=12).filter(
    lambda ns: all(a != b for a, b in zip(ns, ns[1:]))
)


@given(node_lists)
def test_prefix_suffix_reassemble(nodes):
    """Splitting at any point and concatenating restores the path."""
    p = Path(nodes)
    for cut in range(p.hops + 1):
        prefix = p.prefix(cut)
        suffix = p.suffix_from(cut)
        assert prefix.concat(suffix) == p


@given(node_lists)
def test_reverse_is_involution(nodes):
    p = Path(nodes)
    assert p.reversed().reversed() == p


@given(node_lists)
def test_hops_consistency(nodes):
    p = Path(nodes)
    assert p.hops == len(list(p.edges())) == len(p) - 1


@given(node_lists, node_lists)
def test_concat_cost_is_additive(a_nodes, b_nodes):
    """cost(p + q) == cost(p) + cost(q) on a complete weighted graph."""
    b_nodes = [a_nodes[-1]] + [n + 100 for n in b_nodes[1:]]
    if any(x == y for x, y in zip(b_nodes, b_nodes[1:])):
        return
    g = Graph()
    p, q = Path(a_nodes), Path(b_nodes)
    for u, v in list(p.edges()) + list(q.edges()):
        if not g.has_edge(u, v):
            g.add_edge(u, v, weight=(hash((min(u, v), max(u, v))) % 7) + 1)
    assert p.concat(q).cost(g) == pytest.approx(p.cost(g) + q.cost(g))
