"""The paper's Section 5 sampling methodology, made explicit.

Quoting the paper: *"we randomly chose source-destination pairs, SR and
DR.  Then we simulated a link failure for each link, L, in the basic
LSP connecting SR and DR ... This simulation was repeated 200 times for
the ISP topology and 40 times for the (much larger) other topologies
... We also studied the consequences of pairs of link failures, and of
one and two router failures, using the same methodology."*

Concretely, for each sampled pair we enumerate:

* **one link** — every single link of the pair's base path;
* **two links** — every unordered pair of links of the base path (a
  failure elsewhere does not disturb the path, so restoration for this
  pair is only exercised when at least the path is hit; pairing two
  on-path links is the maximal-stress reading of "the same
  methodology");
* **one router** — every interior router of the base path;
* **two routers** — every unordered pair of interior routers.

All randomness flows through an explicit ``random.Random(seed)`` so
every experiment is exactly repeatable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import combinations
from typing import Iterator

from ..graph.graph import Graph, Node
from ..graph.paths import Path
from ..graph.shortest_paths import reachable_from
from .models import FailureScenario

#: Paper sample sizes (Section 5).
ISP_SAMPLE_PAIRS = 200
LARGE_GRAPH_SAMPLE_PAIRS = 40


def sample_pairs(
    graph: Graph,
    count: int,
    seed: int = 1,
    require_connected: bool = True,
    max_attempts_factor: int = 200,
) -> list[tuple[Node, Node]]:
    """Sample *count* distinct random (source, destination) pairs.

    With *require_connected*, only pairs with a path between them are
    returned (sampling is restricted de facto to the giant component).
    Deterministic in *seed*; raises ``ValueError`` if the graph cannot
    supply enough pairs.
    """
    rng = random.Random(seed)
    nodes = sorted(graph.nodes, key=repr)
    if len(nodes) < 2:
        raise ValueError("need at least two nodes to sample pairs")
    pairs: list[tuple[Node, Node]] = []
    seen: set[tuple[Node, Node]] = set()
    reachability_cache: dict[Node, set[Node]] = {}
    attempts = 0
    max_attempts = max_attempts_factor * count
    while len(pairs) < count and attempts < max_attempts:
        attempts += 1
        s, t = rng.sample(nodes, 2)
        if (s, t) in seen:
            continue
        seen.add((s, t))
        if require_connected:
            if s not in reachability_cache:
                reachability_cache[s] = reachable_from(graph, s)
            if t not in reachability_cache[s]:
                continue
        pairs.append((s, t))
    if len(pairs) < count:
        raise ValueError(
            f"could only sample {len(pairs)}/{count} connected pairs"
        )
    return pairs


@dataclass(frozen=True)
class FailureCase:
    """One experimental unit: a demand pair, its base path, one scenario."""

    source: Node
    destination: Node
    primary_path: Path
    scenario: FailureScenario


def link_failure_cases(
    pair: tuple[Node, Node], primary: Path, k: int = 1
) -> Iterator[FailureCase]:
    """All :class:`FailureCase` for *k* simultaneous link failures on *primary*."""
    edges = list(primary.edge_keys())
    source, destination = pair
    for combo in combinations(edges, k):
        yield FailureCase(
            source=source,
            destination=destination,
            primary_path=primary,
            scenario=FailureScenario.link_set(combo),
        )


def router_failure_cases(
    pair: tuple[Node, Node], primary: Path, k: int = 1
) -> Iterator[FailureCase]:
    """All :class:`FailureCase` for *k* interior-router failures on *primary*.

    Endpoint routers are never failed: with the source or destination
    down there is no flow to restore.
    """
    interior = list(primary.interior_nodes())
    source, destination = pair
    for combo in combinations(interior, k):
        yield FailureCase(
            source=source,
            destination=destination,
            primary_path=primary,
            scenario=FailureScenario.router_set(combo),
        )


def cases_for_pair(
    pair: tuple[Node, Node],
    primary: Path,
    mode: str,
) -> Iterator[FailureCase]:
    """Dispatch on Table 2's four failure modes.

    *mode* is one of ``"link"``, ``"two-links"``, ``"router"``,
    ``"two-routers"``.
    """
    if mode == "link":
        yield from link_failure_cases(pair, primary, k=1)
    elif mode == "two-links":
        yield from link_failure_cases(pair, primary, k=2)
    elif mode == "router":
        yield from router_failure_cases(pair, primary, k=1)
    elif mode == "two-routers":
        yield from router_failure_cases(pair, primary, k=2)
    else:
        raise ValueError(f"unknown failure mode {mode!r}")


#: Table 2 row order.
FAILURE_MODES = ("link", "two-links", "router", "two-routers")


def random_link_scenarios(
    graph: Graph, count: int, k: int = 1, seed: int = 1
) -> list[FailureScenario]:
    """*count* random k-link failure scenarios over the whole graph.

    Not part of the Table 2 methodology (which fails on-path links),
    but used by property tests and the theory benchmarks, where the
    failed set must be independent of any particular demand.
    """
    rng = random.Random(seed)
    edges = sorted(graph.edges(), key=repr)
    if len(edges) < k:
        raise ValueError(f"graph has fewer than k={k} edges")
    return [
        FailureScenario.link_set(rng.sample(edges, k)) for _ in range(count)
    ]
