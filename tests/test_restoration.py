"""Tests for source-router RBPC (plan + live MPLS application)."""

from __future__ import annotations

import pytest

from repro.core.base_paths import AllShortestPathsBase, provision_base_set
from repro.core.restoration import SourceRouterRbpc, plan_restoration
from repro.exceptions import NoRestorationPath
from repro.graph.graph import Graph
from repro.graph.paths import Path
from repro.graph.shortest_paths import shortest_path_length
from repro.mpls.network import ForwardingStatus, MplsNetwork


@pytest.fixture
def net_and_scheme(diamond):
    net = MplsNetwork(diamond)
    base = AllShortestPathsBase(diamond)
    registry = provision_base_set(net, base)
    scheme = SourceRouterRbpc(net, base, registry)
    return net, base, registry, scheme


class TestPlanRestoration:
    def test_plan_is_shortest_and_covered(self, diamond):
        base = AllShortestPathsBase(diamond)
        view = diamond.without(edges=[(1, 2)])
        plan = plan_restoration(view, base, 1, 4)
        assert plan.path.cost(diamond) == shortest_path_length(view, 1, 4)
        assert plan.num_pieces >= 1
        assert all(p.is_valid_in(view) for p in plan.pieces)

    def test_disconnected_raises(self):
        g = Graph.from_edges([(1, 2)])
        base = AllShortestPathsBase(g)
        with pytest.raises(NoRestorationPath):
            plan_restoration(g.without(edges=[(1, 2)]), base, 1, 2)

    def test_unweighted_mode(self, weighted_diamond):
        base = AllShortestPathsBase(weighted_diamond)
        view = weighted_diamond.without(edges=[(1, 2)])
        by_cost = plan_restoration(view, base, 1, 4, weighted=True)
        by_hops = plan_restoration(view, base, 1, 4, weighted=False)
        assert by_cost.path == by_hops.path  # 1-3-4 wins both ways here


class TestSourceRouterRbpc:
    def test_restore_delivers_packets(self, net_and_scheme):
        net, base, registry, scheme = net_and_scheme
        primary = base.path_for(1, 4)
        net.set_fec(1, 4, [registry[primary]])
        failed = list(primary.edges())[0]
        net.fail_link(*failed)
        assert net.inject(1, 4).status is ForwardingStatus.DROPPED_LINK_DOWN

        action = scheme.restore(1, 4)
        result = net.inject(1, 4)
        assert result.delivered
        assert result.walk == list(action.decomposition.path.nodes)

    def test_restoration_path_is_shortest(self, net_and_scheme):
        net, base, registry, scheme = net_and_scheme
        primary = base.path_for(1, 4)
        net.set_fec(1, 4, [registry[primary]])
        net.fail_link(*list(primary.edges())[0])
        action = scheme.restore(1, 4)
        view = net.operational_view
        assert action.decomposition.path.cost(net.graph) == shortest_path_length(
            view, 1, 4
        )

    def test_no_on_demand_provisioning_with_unique_base(self, diamond):
        """With a unique (sub-path closed) base set fully provisioned,
        restoration needs ZERO signaling — the paper's headline property.

        (With an all-shortest-paths membership but canonical-only
        provisioning, a piece can be a non-canonical tie and require
        on-demand setup; the unique base set rules that out because
        every sub-path of a canonical path is canonical.)
        """
        from repro.core.base_paths import UniqueShortestPathsBase

        net = MplsNetwork(diamond)
        base = UniqueShortestPathsBase(diamond)
        registry = provision_base_set(net, base)
        # Provision every sub-path of every canonical path as well.
        for path in list(registry):
            for sub in path.all_subpaths(min_hops=1):
                if sub not in registry:
                    registry[sub] = net.provision_lsp(sub).lsp_id
        scheme = SourceRouterRbpc(net, base, registry)
        primary = base.path_for(1, 4)
        net.set_fec(1, 4, [registry[primary]])
        net.fail_link(*list(primary.edges())[0])
        messages_before = net.ledger.total_messages
        action = scheme.restore(1, 4)
        # The whole point: zero signaling messages to restore.
        assert net.ledger.total_messages == messages_before
        assert action.provisioned_on_demand == 0
        assert net.inject(1, 4).delivered

    def test_on_demand_provisioning_with_empty_registry(self, diamond):
        net = MplsNetwork(diamond)
        base = AllShortestPathsBase(diamond)
        primary = base.path_for(1, 4)
        lsp = net.provision_lsp(primary)
        net.set_fec(1, 4, [lsp.lsp_id])
        net.fail_link(*list(primary.edges())[0])
        scheme = SourceRouterRbpc(net, base, lsp_registry={})
        action = scheme.restore(1, 4)
        assert action.provisioned_on_demand >= 1
        assert net.inject(1, 4).delivered

    def test_recover_reverts_to_primary(self, net_and_scheme):
        net, base, registry, scheme = net_and_scheme
        primary = base.path_for(1, 4)
        net.set_fec(1, 4, [registry[primary]])
        failed = list(primary.edges())[0]
        net.fail_link(*failed)
        scheme.restore(1, 4)
        net.restore_link(*failed)
        scheme.recover(1, 4)
        result = net.inject(1, 4)
        assert result.delivered
        assert result.walk == list(primary.nodes)
        assert scheme.active_restorations() == []

    def test_recover_all(self, net_and_scheme):
        net, base, registry, scheme = net_and_scheme
        primary = base.path_for(1, 4)
        net.set_fec(1, 4, [registry[primary]])
        net.fail_link(*list(primary.edges())[0])
        scheme.restore(1, 4)
        assert len(scheme.active_restorations()) == 1
        scheme.recover_all()
        assert scheme.active_restorations() == []

    def test_restore_disconnected_raises(self):
        g = Graph.from_edges([(1, 2)])
        net = MplsNetwork(g)
        base = AllShortestPathsBase(g)
        net.fail_link(1, 2)
        scheme = SourceRouterRbpc(net, base)
        with pytest.raises(NoRestorationPath):
            scheme.restore(1, 2)

    def test_multi_failure_restoration(self, small_isp):
        """Two failures on a path: restore still works via surviving pieces."""
        net = MplsNetwork(small_isp)
        base = AllShortestPathsBase(small_isp)
        nodes = sorted(small_isp.nodes, key=repr)
        source, dest = nodes[0], nodes[-1]
        primary = base.path_for(source, dest)
        if primary.hops < 3:
            pytest.skip("sampled primary too short for a 2-failure test")
        lsp = net.provision_lsp(primary)
        net.set_fec(source, dest, [lsp.lsp_id])
        edges = list(primary.edges())
        net.fail_link(*edges[0])
        net.fail_link(*edges[-1])
        scheme = SourceRouterRbpc(net, base, lsp_registry={})
        scheme.restore(source, dest)
        result = net.inject(source, dest)
        assert result.delivered
        # Delivered route avoids both failed links.
        walk_edges = set(zip(result.walk, result.walk[1:]))
        for u, v in (edges[0], edges[-1]):
            assert (u, v) not in walk_edges and (v, u) not in walk_edges


class TestAuxGraphStrategy:
    """§4.1's fallback: Dijkstra over surviving base paths."""

    def test_plan_via_aux_graph(self, diamond):
        from repro.core.base_paths import unique_shortest_path_base

        base = unique_shortest_path_base(diamond, seed=1)
        view = diamond.without(edges=[(1, 2)])
        plan = plan_restoration(view, base, 1, 4, strategy="aux-graph")
        assert plan.path.is_valid_in(view)
        assert plan.path.source == 1 and plan.path.target == 4

    def test_aux_graph_needs_explicit_base(self, diamond):
        base = AllShortestPathsBase(diamond)
        with pytest.raises(ValueError):
            plan_restoration(diamond.without(), base, 1, 4, strategy="aux-graph")

    def test_unknown_strategy_rejected(self, diamond):
        base = AllShortestPathsBase(diamond)
        with pytest.raises(ValueError):
            plan_restoration(diamond.without(), base, 1, 4, strategy="teleport")

    def test_scheme_end_to_end_with_aux_graph(self, diamond):
        from repro.core.base_paths import provision_base_set, unique_shortest_path_base

        base = unique_shortest_path_base(diamond, seed=1)
        net = MplsNetwork(diamond)
        registry = provision_base_set(net, base, include_edges=True)
        scheme = SourceRouterRbpc(net, base, registry, strategy="aux-graph")
        primary = base.path_for(1, 4)
        net.set_fec(1, 4, [registry[primary]])
        net.fail_link(*list(primary.edges())[0])
        scheme.restore(1, 4)
        assert net.inject(1, 4).delivered

    def test_aux_graph_disconnection_raises(self):
        from repro.core.base_paths import unique_shortest_path_base

        g = Graph.from_edges([(1, 2)])
        base = unique_shortest_path_base(g, seed=1)
        with pytest.raises(NoRestorationPath):
            plan_restoration(
                g.without(edges=[(1, 2)]), base, 1, 2, strategy="aux-graph"
            )
