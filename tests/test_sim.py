"""Tests for the DES core and the hybrid restoration orchestration."""

from __future__ import annotations

import pytest

from repro.core.base_paths import UniqueShortestPathsBase, provision_base_set
from repro.core.local_restoration import LocalStrategy, upstream_router
from repro.graph.shortest_paths import shortest_path_length
from repro.mpls.network import ForwardingStatus, MplsNetwork
from repro.routing.flooding import FloodingModel
from repro.sim.event_queue import EventQueue
from repro.sim.orchestrator import RestorationSimulation
from repro.topology.isp import generate_isp_topology


class TestEventQueue:
    def test_dispatch_in_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(3.0, lambda: log.append("c"))
        q.schedule(1.0, lambda: log.append("a"))
        q.schedule(2.0, lambda: log.append("b"))
        q.run_until(10.0)
        assert log == ["a", "b", "c"]
        assert q.now == 10.0

    def test_fifo_tie_break(self):
        q = EventQueue()
        log = []
        for tag in "abc":
            q.schedule(1.0, lambda t=tag: log.append(t))
        q.run_all()
        assert log == ["a", "b", "c"]

    def test_run_until_stops_at_boundary(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append(1))
        q.schedule(2.0, lambda: log.append(2))
        assert q.run_until(1.5) == 1
        assert log == [1]
        assert len(q) == 1

    def test_past_scheduling_rejected(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.run_until(5.0)
        with pytest.raises(ValueError):
            q.schedule(2.0, lambda: None)

    def test_events_can_schedule_events(self):
        q = EventQueue()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                q.schedule_in(1.0, lambda: chain(n + 1))

        q.schedule(0.0, lambda: chain(0))
        q.run_all()
        assert log == [0, 1, 2, 3]
        assert q.now == 3.0

    def test_livelock_guard(self):
        q = EventQueue()

        def forever():
            q.schedule_in(0.0, forever)

        q.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            q.run_all(max_events=100)


@pytest.fixture(scope="module")
def sim_world():
    graph = generate_isp_topology(n=60, seed=31)
    net = MplsNetwork(graph)
    base = UniqueShortestPathsBase(graph)
    # Find a demand with a reasonably long primary.
    nodes = sorted(graph.nodes, key=repr)
    best = max(
        ((s, t) for s in nodes[:15] for t in nodes[-15:] if s != t),
        key=lambda pair: base.path_for(*pair).hops,
    )
    registry = provision_base_set(net, base, pairs=[best])
    return graph, net, base, registry, best


def build_sim(sim_world, model=None, strategy=LocalStrategy.EDGE_BYPASS):
    graph, net, base, registry, demand_pair = sim_world
    model = model or FloodingModel(
        detection_delay=0.010, per_hop_delay=0.005, spf_delay=0.050
    )
    sim = RestorationSimulation(
        net, base, dict(registry), model=model, local_strategy=strategy
    )
    demand = sim.add_demand(*demand_pair)
    return sim, demand


class TestRestorationSimulation:
    def test_full_hybrid_timeline(self, sim_world):
        graph, net, base, registry, demand_pair = sim_world
        sim, demand = build_sim(sim_world)
        primary = demand.primary
        failed = list(primary.edges())[primary.hops - 1]  # far from source

        sim.schedule_link_failure(1.0, *failed)

        # Before the failure: primary delivery.
        sim.run_until(0.5)
        assert sim.inject(*demand_pair).walk == list(primary.nodes)

        # Immediately after the failure, before detection: black hole.
        sim.run_until(1.005)
        result = sim.inject(*demand_pair)
        assert result.status is ForwardingStatus.DROPPED_LINK_DOWN

        # After detection: local patch carries traffic.
        sim.run_until(1.012)
        result = sim.inject(*demand_pair)
        assert result.delivered
        assert demand.locally_patched
        assert not demand.source_restored

        # After the flood reaches the source (+ SPF): shortest path restored.
        sim.run_until(2.0)
        assert demand.source_restored
        result = sim.inject(*demand_pair)
        assert result.delivered
        walked_cost = sum(
            graph.weight(u, v) for u, v in zip(result.walk, result.walk[1:])
        )
        expected = shortest_path_length(
            graph.without(edges=[failed]), *demand_pair
        )
        assert walked_cost == pytest.approx(expected)

        # Recovery: primary comes back.
        sim.schedule_link_recovery(3.0, *failed)
        sim.run_until(5.0)
        assert not demand.source_restored and not demand.locally_patched
        assert sim.inject(*demand_pair).walk == list(primary.nodes)

    def test_timeline_event_order(self, sim_world):
        sim, demand = build_sim(sim_world)
        primary = demand.primary
        failed = list(primary.edges())[primary.hops - 1]
        sim.schedule_link_failure(1.0, *failed)
        sim.run_until(10.0)
        actions = [e.action for e in sim.timeline]
        assert actions.index("link-down") < actions.index("detected")
        assert actions.index("detected") < actions.index("local-patch")
        assert actions.index("local-patch") < actions.index("source-restore")

    def test_source_restore_supersedes_local_patch(self, sim_world):
        sim, demand = build_sim(sim_world)
        failed = list(demand.primary.edges())[demand.primary.hops - 1]
        sim.schedule_link_failure(1.0, *failed)
        sim.run_until(10.0)
        assert demand.source_restored
        assert not demand.locally_patched  # retired after source re-route

    def test_failure_near_source_is_detected_by_source(self, sim_world):
        graph, net, base, registry, demand_pair = sim_world
        sim, demand = build_sim(sim_world)
        failed = list(demand.primary.edges())[0]
        assert upstream_router(demand.primary, failed) == demand.source
        sim.schedule_link_failure(1.0, *failed)
        sim.run_until(10.0)
        assert sim.inject(*demand_pair).delivered

    def test_lsdbs_converge(self, sim_world):
        sim, demand = build_sim(sim_world)
        failed = list(demand.primary.edges())[demand.primary.hops - 1]
        sim.schedule_link_failure(1.0, *failed)
        sim.run_until(10.0)
        # Every (connected) router's LSDB must now agree the link is down.
        for router in sim.routers.values():
            assert not router.believes_up(*failed)

    def test_flood_is_quenched(self, sim_world):
        """Stale-sequence suppression must terminate the flood."""
        sim, demand = build_sim(sim_world)
        failed = list(demand.primary.edges())[demand.primary.hops - 1]
        sim.schedule_link_failure(1.0, *failed)
        sim.run_until(50.0)
        assert len(sim.queue) == 0  # nothing left circulating
