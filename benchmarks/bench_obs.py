"""Overhead budget of the observability layer (``repro.obs``).

The contract (docs/observability.md): instrumentation is *unmeasurable*
when disabled — hot paths pay one attribute check and get back a shared
null context manager — and costs at most a few percent when enabled.
These benchmarks time both paths on the real Table 2 pipeline, pin the
disabled fast path directly, and bound the second-generation
instruments (worker heartbeats, memory gauges) against the <2% budget.

``python benchmarks/bench_obs.py --smoke`` runs the budget assertions
standalone for CI (no pytest-benchmark needed).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.experiments.table2 import run as run_table2
from repro.obs import heartbeat
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.profile import memory_report, publish_memory_gauges
from repro.obs.trace import NULL_SPAN, TRACER, Tracer


def _run_table2_tiny():
    return run_table2(scale="tiny", seed=1, modes=("link",), jobs=1)


def _obs_on():
    TRACER.reset()
    TRACER.enabled = True
    METRICS.reset()
    METRICS.enabled = True


def _obs_off():
    TRACER.enabled = False
    TRACER.reset()
    METRICS.enabled = False
    METRICS.reset()


def _min_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_disabled_span_is_free(benchmark):
    """Disabled ``span()`` returns the shared singleton — no allocation."""
    tracer = Tracer(enabled=False)
    assert tracer.span("hot.path") is NULL_SPAN

    def hot_loop():
        span = tracer.span
        for _ in range(10_000):
            with span("hot.path"):
                pass

    benchmark(hot_loop)
    # Absolute ceiling: well under a microsecond per disabled span.
    per_call = _min_of(hot_loop, 3) / 10_000
    assert per_call < 1e-6, f"disabled span costs {per_call * 1e9:.0f}ns"


def bench_enabled_span_tree(benchmark):
    """Enabled spans: build a 10k-node tree, then reset."""
    tracer = Tracer(enabled=True)

    def build():
        tracer.reset()
        with tracer.span("root"):
            for _ in range(10_000):
                with tracer.span("leaf"):
                    pass

    benchmark(build)
    assert len(list(tracer.iter_spans())) == 10_001


def bench_table2_tiny_obs_disabled(benchmark):
    _obs_off()
    rows = benchmark(_run_table2_tiny)
    assert rows["link"]


def bench_table2_tiny_obs_enabled(benchmark):
    _obs_on()
    try:
        rows = benchmark(_run_table2_tiny)
        assert rows["link"]
    finally:
        _obs_off()


def bench_obs_overhead_budget():
    """Enabled tracing + metrics stay within the documented budget.

    Min-of-N wall clocks of the same tiny Table 2 run with the layer
    off and on; the ISSUE budget is <= 5% — asserted with a small
    absolute epsilon so a sub-100ms baseline doesn't turn scheduler
    jitter into failures.
    """
    _obs_off()
    _run_table2_tiny()  # warm the shared topology/oracle caches
    disabled = _min_of(_run_table2_tiny, 5)
    _obs_on()
    try:
        enabled = _min_of(_run_table2_tiny, 5)
    finally:
        _obs_off()
    budget = disabled * 1.05 + 0.025
    assert enabled <= budget, (
        f"obs overhead too high: {disabled:.4f}s off vs {enabled:.4f}s on "
        f"(budget {budget:.4f}s)"
    )


def bench_disabled_heartbeat_is_free(benchmark):
    """Disabled ``emit()`` is one truthiness check — sub-microsecond."""
    heartbeat.set_heartbeat_dir(None)

    def hot_loop():
        emit = heartbeat.emit
        for _ in range(10_000):
            emit("chunk-start", label="hot")

    benchmark(hot_loop)
    per_call = _min_of(hot_loop, 3) / 10_000
    # One kwargs dict + one os.environ lookup — a couple microseconds,
    # paid per *chunk* (not per scenario probe), so invisible in runs.
    assert per_call < 2.5e-6, f"disabled emit costs {per_call * 1e9:.0f}ns"


def bench_memory_report_is_cheap(benchmark):
    """The always-on RSS gauge: one ``getrusage`` syscall per bench."""

    def loop():
        for _ in range(1_000):
            memory_report()

    benchmark(loop)
    per_call = _min_of(loop, 3) / 1_000
    # Stamped once per BENCH write; 50µs keeps it invisible even if a
    # caller polled it every chunk.
    assert per_call < 5e-5, f"memory_report costs {per_call * 1e6:.1f}µs"


def _run_table2_tiny_jobs2():
    return run_table2(scale="tiny", seed=1, modes=("link",), jobs=2)


def bench_heartbeat_memory_overhead_budget():
    """Heartbeats + memory gauges stay under the <2% budget.

    Same tiny Table 2 smoke at ``--jobs 2`` (the fan-out emits ~140
    heartbeat records per run through the real channel directory)
    with the channel off and on, plus the per-run memory stamp and
    gauge publish on the instrumented side.  Min-of-N both ways; the
    small absolute epsilon keeps scheduler jitter on a sub-200ms
    baseline from masquerading as overhead.
    """
    _obs_off()
    _run_table2_tiny_jobs2()  # warm caches and the fork machinery
    baseline = _min_of(_run_table2_tiny_jobs2, 5)

    with tempfile.TemporaryDirectory() as td:
        heartbeat.set_heartbeat_dir(Path(td) / "hb")
        try:
            def instrumented():
                _run_table2_tiny_jobs2()
                metrics = MetricsRegistry(enabled=True)
                publish_memory_gauges(metrics)
                memory_report()

            enabled = _min_of(instrumented, 5)
            emitted = sum(
                1
                for path in (Path(td) / "hb").glob("hb-*.jsonl")
                for _ in path.open()
            )
        finally:
            heartbeat.set_heartbeat_dir(None)

    assert emitted > 0, "instrumented runs emitted no heartbeats"
    budget = baseline * 1.02 + 0.025
    assert enabled <= budget, (
        f"heartbeat+memory overhead too high: {baseline:.4f}s off vs "
        f"{enabled:.4f}s on, {emitted} heartbeats (budget {budget:.4f}s)"
    )


def main(argv=None) -> None:
    """CI smoke entry: run the budget assertions without pytest."""
    import argparse

    from repro.experiments.bench import write_bench_json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI smoke mode (currently identical to the default run)",
    )
    parser.add_argument(
        "--bench-json", type=str, default="-", metavar="PATH",
        help="write a BENCH payload to PATH ('-' skips the write)",
    )
    args = parser.parse_args(argv)

    wall_start = time.perf_counter()
    _obs_off()
    _run_table2_tiny()  # warm caches once for every budget below
    checks = [
        bench_obs_overhead_budget,
        bench_heartbeat_memory_overhead_budget,
    ]
    for check in checks:
        t0 = time.perf_counter()
        check()
        print(f"ok {check.__name__} ({time.perf_counter() - t0:.2f}s)")

    payload = {
        "name": "obs",
        "smoke": bool(args.smoke),
        "checks": [check.__name__ for check in checks],
        "wall_clock_s": round(time.perf_counter() - wall_start, 4),
    }
    if args.bench_json != "-":
        write_bench_json("obs", payload, path=args.bench_json)


if __name__ == "__main__":
    main()
