"""Native backend: build cache, toolchain fallback, and end-to-end parity.

Three contract groups pinned here, complementing the per-kernel
bit-identity sweep in ``tests/test_kernels.py``:

* **Build cache** — the compiled shared object is keyed by source hash
  (plus compiler banner), lives under ``~/.cache/repro/`` or the
  ``REPRO_NATIVE_CACHE`` override, is reused byte-for-byte for
  unchanged source, and recompiles when the source changes.
* **Selection** — ``auto`` resolves native → numpy → python: with the
  toolchain monkeypatched away it silently degrades to today's
  behaviour, while an explicit ``REPRO_KERNEL=native`` raises
  ``ImportError``.  ``set_backend`` exports the *resolved* name into
  the environment pre-fork, so ``--jobs`` workers and spawned
  subprocesses make the same deterministic choice.
* **End-to-end parity** — the table2 per-link ILM pipeline produces
  byte-identical payload rows and perf-counter deltas under
  ``REPRO_KERNEL=native`` and the python reference, at ``--jobs`` 1
  and 4, with the shared-memory fast path and with ``REPRO_SHM=0``
  (mirroring ``tests/test_shm.py::TestIlmJobsIdentity``).
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

import repro.kernels as kernels
from repro.experiments import table2
from repro.experiments.networks import cached_suite
from repro.experiments.parallel import make_executor, publish_suite
from repro.graph.shm import residual_segments
from repro.kernels import backend_name, set_backend
from repro.perf import COUNTERS

try:
    from repro.kernels import numpy_backend  # noqa: F401

    numpy_missing = False
except ImportError:
    numpy_missing = True

try:
    from repro.kernels import native_backend as natk

    native_missing = False
except ImportError:
    natk = None
    native_missing = True

requires_native = pytest.mark.skipif(
    native_missing, reason="no C toolchain for the native backend"
)


@pytest.fixture(autouse=True)
def _restore_backend():
    # Restore the module object directly: teardown must not re-run the
    # import machinery while a test's toolchain monkeypatches linger.
    previous_module = kernels.kernel_backend()
    previous_env = os.environ.get("REPRO_KERNEL")
    yield
    kernels._BACKEND = previous_module
    if previous_env is None:
        os.environ.pop("REPRO_KERNEL", None)
    else:
        os.environ["REPRO_KERNEL"] = previous_env


# -- build cache ----------------------------------------------------------------


@requires_native
class TestBuildCache:
    def test_cache_dir_override_is_respected(self, tmp_path, monkeypatch):
        override = tmp_path / "native-cache"
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(override))
        assert natk.cache_dir() == override
        so = natk.build_library()
        assert so.parent == override
        assert so.exists()

    def test_unchanged_source_reuses_the_cached_object(self, tmp_path):
        source = tmp_path / "kernels.c"
        source.write_bytes(natk._SOURCE_PATH.read_bytes())
        cache = tmp_path / "cache"
        first = natk.build_library(source, cache)
        stamp = first.stat().st_mtime_ns
        again = natk.build_library(source, cache)
        assert again == first
        assert again.stat().st_mtime_ns == stamp  # served, not rebuilt

    def test_source_change_recompiles_under_a_new_key(self, tmp_path):
        source = tmp_path / "kernels.c"
        source.write_bytes(natk._SOURCE_PATH.read_bytes())
        cache = tmp_path / "cache"
        first = natk.build_library(source, cache)
        source.write_bytes(source.read_bytes() + b"\n/* edited */\n")
        second = natk.build_library(source, cache)
        assert second != first  # stale entry can never be served
        assert first.exists() and second.exists()

    def test_loaded_library_comes_from_the_keyed_cache(self):
        path = natk.library_path()
        assert path.exists()
        assert path.name.startswith("repro_native-")


# -- selection and the pre-fork export -------------------------------------------


def _hide_toolchain(monkeypatch):
    """Make this process look like a machine without a C compiler."""
    monkeypatch.delenv("CC", raising=False)
    monkeypatch.setattr(shutil, "which", lambda *args, **kwargs: None)
    # Force _resolve to re-import the backend module from scratch.
    monkeypatch.delitem(
        sys.modules, "repro.kernels.native_backend", raising=False
    )
    if hasattr(kernels, "native_backend"):
        monkeypatch.delattr(kernels, "native_backend")


class TestToolchainFallback:
    def test_find_compiler_reports_absence(self, monkeypatch):
        if native_missing:
            pytest.skip("no C toolchain for the native backend")
        monkeypatch.delenv("CC", raising=False)
        monkeypatch.setattr(shutil, "which", lambda *a, **k: None)
        assert natk.find_compiler() is None

    def test_auto_degrades_silently_without_a_compiler(self, monkeypatch):
        _hide_toolchain(monkeypatch)
        resolved = kernels._resolve("auto")
        expected = "python" if numpy_missing else "numpy"
        assert resolved.NAME == expected  # exactly today's behaviour

    def test_explicit_native_without_a_toolchain_raises(self, monkeypatch):
        _hide_toolchain(monkeypatch)
        with pytest.raises(ImportError, match="C compiler"):
            kernels._resolve("native")

    @requires_native
    def test_set_backend_exports_the_resolved_name(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        set_backend("native")
        assert backend_name() == "native"
        assert os.environ.get("REPRO_KERNEL") == "native"

    @requires_native
    def test_spawned_interpreter_inherits_the_exported_choice(self):
        set_backend("native")
        src_dir = str(Path(kernels.__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.kernels import backend_name; print(backend_name())",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "native"

    @requires_native
    def test_jobs_workers_resolve_the_exported_backend(self):
        set_backend("native")
        executor = make_executor(2)
        if executor is None:
            pytest.skip("cannot fan out on this machine")
        try:
            names = list(executor.map(_worker_kernel_probe, range(2)))
        finally:
            executor.shutdown()
        assert names == [("native", "native")] * 2


def _worker_kernel_probe(_index: int) -> tuple[str, str]:
    from repro.kernels import backend_name

    return os.environ.get("REPRO_KERNEL", ""), backend_name()


# -- end-to-end table2 / per-link ILM parity --------------------------------------


@requires_native
class TestTable2NativeParity:
    """Payload rows and counters: native == python, jobs 1/4, shm on/off."""

    def _rows(self, jobs: int) -> dict:
        network = cached_suite(scale="tiny", seed=1)[0]
        executor = make_executor(jobs) if jobs > 1 else None
        publication = None
        try:
            if executor is not None:
                publication = publish_suite([network], with_base=True)
            return table2.evaluate_network(
                network,
                modes=("link",),
                seed=1,
                with_multiplicity=False,
                ilm_accounting="per-link",
                jobs=jobs,
                suite_ref=("tiny", 1, 0),
                executor=executor,
                shm_ref=publication.ref(0) if publication else None,
            )
        finally:
            if executor is not None:
                executor.shutdown()
            if publication is not None:
                publication.release()

    def test_rows_and_counters_match_at_jobs1(self):
        set_backend("python")
        self._rows(jobs=1)  # warm shared caches: compare like-for-like
        before = COUNTERS.snapshot()
        expected = self._rows(jobs=1)
        ref_delta = COUNTERS.delta(before).as_dict()
        set_backend("native")
        before = COUNTERS.snapshot()
        got = self._rows(jobs=1)
        nat_delta = COUNTERS.delta(before).as_dict()
        assert got == expected
        assert nat_delta == ref_delta

    def test_rows_match_at_jobs4_with_shm(self):
        set_backend("python")
        expected = self._rows(jobs=4)
        set_backend("native")
        assert self._rows(jobs=4) == expected
        assert residual_segments() == []

    def test_rows_match_at_jobs4_without_shm(self, monkeypatch):
        set_backend("python")
        expected = self._rows(jobs=4)
        monkeypatch.setenv("REPRO_SHM", "0")
        set_backend("native")
        assert self._rows(jobs=4) == expected
        assert residual_segments() == []
