"""Tests for the pluggable restoration-policy layer (repro.policies).

Covers the registry semantics (strict idempotent registration, unknown
names listing what exists, the pre-fork env export), the ABC's shared
failover/score/ILM machinery, the built-in schemes (concatenation
byte-identity with the historical pipeline, MRC, drop), and the
Bodwin–Wang (arXiv:2309.07964) concatenation bounds for the k >= 2
failure regime.
"""

from __future__ import annotations

import argparse
import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import shared_spt_cache
from repro.core.decomposition import min_pieces_decompose
from repro.exceptions import NoPath
from repro.experiments.table2 import run_case
from repro.failures.models import FailureScenario
from repro.failures.sampler import FailureCase, link_failure_cases, sample_pairs
from repro.graph.graph import Graph, edge_key
from repro.graph.paths import Path
from repro.graph.shortest_paths import costs_equal, shortest_path
from repro.policies import (
    DEFAULT_FAILURE_MODEL,
    DEFAULT_POLICY,
    RestorationOutcome,
    RestorationPolicy,
    active_failure_model_name,
    active_policy_name,
    add_policy_arguments,
    apply_policy_arguments,
    failure_model_names,
    make_failure_model,
    make_policy,
    policy_names,
    set_failure_model,
    set_policy,
)
from repro.policies.bounds import (
    bw_pieces_bound,
    fault_tolerant_pieces,
    piece_is_valid,
)
from repro.policies.registry import FAILURE_MODEL_ENV, POLICY_ENV, Registry
from repro.policies.schemes import (
    ConcatenationPolicy,
    DoNotRestorePolicy,
    MrcPolicy,
)


class TestRegistry:
    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError) as exc:
            make_policy("meteor-strike", Graph.from_edges([(1, 2)]))
        message = str(exc.value)
        assert "unknown policy 'meteor-strike'" in message
        assert "available:" in message
        assert "concatenation" in message

    def test_unknown_failure_model_lists_available(self):
        with pytest.raises(ValueError) as exc:
            make_failure_model("meteor-strike", Graph.from_edges([(1, 2)]))
        message = str(exc.value)
        assert "unknown failure model" in message
        assert "independent" in message

    def test_registration_is_idempotent_for_same_factory(self):
        registry = Registry("widget")

        def factory():
            return None

        registry.register("x", factory)
        registry.register("x", factory)  # no-op, not an error
        assert registry.names() == ["x"]
        assert "x" in registry

    def test_conflicting_rebind_raises(self):
        registry = Registry("widget")
        registry.register("x", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x", lambda: 2)

    def test_builtin_names_present(self):
        assert {"concatenation", "disjoint", "ksp", "maxflow", "mrc",
                "drop"} <= set(policy_names())
        assert {"independent", "srlg", "regional",
                "router-links"} <= set(failure_model_names())

    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(POLICY_ENV, raising=False)
        monkeypatch.delenv(FAILURE_MODEL_ENV, raising=False)
        assert active_policy_name() == DEFAULT_POLICY == "concatenation"
        assert active_failure_model_name() == DEFAULT_FAILURE_MODEL == "independent"

    def test_set_policy_exports_env_for_workers(self, monkeypatch):
        # Seed the env var so monkeypatch restores it even though
        # set_policy writes os.environ directly (the pre-fork export
        # contract workers rely on — same pattern as REPRO_KERNEL).
        monkeypatch.setenv(POLICY_ENV, DEFAULT_POLICY)
        previous = set_policy("mrc")
        assert previous == DEFAULT_POLICY
        assert os.environ[POLICY_ENV] == "mrc"
        assert active_policy_name() == "mrc"

    def test_set_failure_model_exports_env(self, monkeypatch):
        monkeypatch.setenv(FAILURE_MODEL_ENV, DEFAULT_FAILURE_MODEL)
        previous = set_failure_model("srlg")
        assert previous == DEFAULT_FAILURE_MODEL
        assert os.environ[FAILURE_MODEL_ENV] == "srlg"
        assert active_failure_model_name() == "srlg"

    def test_set_unknown_name_raises_without_side_effect(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV, DEFAULT_POLICY)
        with pytest.raises(ValueError):
            set_policy("meteor-strike")
        assert active_policy_name() == DEFAULT_POLICY

    def test_unknown_env_value_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV, "meteor-strike")
        with pytest.raises(ValueError, match="meteor-strike"):
            active_policy_name()

    def test_apply_policy_arguments(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV, DEFAULT_POLICY)
        monkeypatch.setenv(FAILURE_MODEL_ENV, DEFAULT_FAILURE_MODEL)
        args = argparse.Namespace(policy="drop", failure_model="srlg")
        apply_policy_arguments(args)
        assert os.environ[POLICY_ENV] == "drop"
        assert os.environ[FAILURE_MODEL_ENV] == "srlg"

    def test_apply_policy_arguments_none_is_noop(self, monkeypatch):
        monkeypatch.setenv(POLICY_ENV, DEFAULT_POLICY)
        apply_policy_arguments(argparse.Namespace(policy=None, failure_model=None))
        assert os.environ[POLICY_ENV] == DEFAULT_POLICY

    def test_cli_knobs_validate_choices(self):
        parser = argparse.ArgumentParser()
        add_policy_arguments(parser)
        args = parser.parse_args(["--policy", "mrc", "--failure-model", "srlg"])
        assert args.policy == "mrc"
        assert args.failure_model == "srlg"
        with pytest.raises(SystemExit):
            parser.parse_args(["--policy", "meteor-strike"])


class TestDefaultPolicyByteIdentity:
    """The default policy routes through the historical pipeline code."""

    def _cases(self, graph, n_pairs=6):
        cases = []
        policy = ConcatenationPolicy(graph)
        for pair in sample_pairs(graph, n_pairs, seed=3):
            primary = policy.base.path_for(*pair)
            cases.extend(link_failure_cases(pair, primary, k=1))
        return policy, cases

    def test_run_case_matches_policy_evaluate_case(self, small_isp):
        policy, cases = self._cases(small_isp)
        for case in cases:
            old = run_case(small_isp, policy.base, case, weighted=True)
            new = ConcatenationPolicy(
                small_isp, policy.base, weighted=True
            ).evaluate_case(case)
            assert old == new

    def test_backup_is_post_failure_optimal(self, small_isp):
        policy, cases = self._cases(small_isp)
        restorable = 0
        for case in cases:
            result = policy.evaluate_case(case)
            if not result.restorable:
                continue
            restorable += 1
            view = case.scenario.apply(small_isp)
            optimal = shortest_path(
                view, case.source, case.destination, weighted=True
            )
            assert costs_equal(result.backup_cost, optimal.cost(small_isp))
            assert result.decomposition is not None
        assert restorable > 0

    def test_restore_decomposes_into_base_pieces(self, small_isp):
        policy, cases = self._cases(small_isp, n_pairs=3)
        case = next(c for c in cases)
        outcome = policy.restore(case.source, case.destination, case.scenario)
        assert outcome.restored
        assert outcome.stretch == 1.0
        expected = min_pieces_decompose(
            shared_spt_cache(small_isp, True).backup_path(
                case.source, case.destination, case.scenario
            ),
            policy.base,
            allow_edges=True,
        )
        assert outcome.pieces == tuple(expected.pieces)

    def test_disconnecting_failure_is_unrestorable(self):
        g = Graph.from_edges([(1, 2), (2, 3)])
        policy = ConcatenationPolicy(g, weighted=False)
        outcome = policy.restore(1, 3, FailureScenario.single_link(1, 2))
        assert outcome == RestorationOutcome(
            restored=False, route=None, stretch=None
        )


class _TwoRoutePolicy(RestorationPolicy):
    """Minimal concrete policy: a fixed primary + one fixed backup."""

    name = "test-two-route"
    title = "two fixed routes"

    def provision(self, source, target):
        plan = (Path([1, 2, 4]), Path([1, 3, 4]))
        self._plans[(source, target)] = plan
        return plan


class TestFailoverAbc:
    def test_first_surviving_route_wins(self, diamond):
        policy = _TwoRoutePolicy(diamond, weighted=False)
        outcome = policy.restore(1, 4, FailureScenario())
        assert outcome.restored and outcome.route == Path([1, 2, 4])
        assert outcome.stretch == 1.0

    def test_failover_to_second_route(self, diamond):
        policy = _TwoRoutePolicy(diamond, weighted=False)
        outcome = policy.restore(1, 4, FailureScenario.single_link(1, 2))
        assert outcome.restored and outcome.route == Path([1, 3, 4])
        assert outcome.stretch == 1.0  # 2 hops vs the 2-hop optimum

    def test_all_routes_dead_is_unrestored(self, diamond):
        scenario = FailureScenario.link_set([(1, 2), (1, 3)])
        outcome = _TwoRoutePolicy(diamond, weighted=False).restore(1, 4, scenario)
        assert not outcome.restored
        assert outcome.route is None and outcome.stretch is None

    def test_score_against_disconnected_optimum(self, diamond):
        # Failing router 4's other links leaves only the provisioned
        # route: restoration succeeded where recomputation could not.
        policy = _TwoRoutePolicy(diamond, weighted=False)
        outcome = policy.score(
            Path([1, 2, 4]), 1, 4, FailureScenario.single_link(3, 4)
        )
        assert outcome.restored and outcome.stretch == 1.0

    def test_score_stretch_ratio(self, weighted_diamond):
        policy = _TwoRoutePolicy(weighted_diamond, weighted=True)
        # Optimal post-failure route 1-3-4 costs 4; so does the backup.
        outcome = policy.restore(1, 4, FailureScenario.single_link(1, 2))
        assert outcome.restored
        assert outcome.stretch == pytest.approx(1.0)

    def test_ilm_entries_counts_provisioned_routers(self, diamond):
        policy = _TwoRoutePolicy(diamond, weighted=False)
        assert policy.ilm_entries() == 0
        policy.provision(1, 4)
        assert policy.ilm_entries() == 6  # two 3-node routes

    def test_generic_evaluate_case_has_no_decomposition(self, diamond):
        policy = _TwoRoutePolicy(diamond, weighted=False)
        case = FailureCase(
            source=1,
            destination=4,
            primary_path=Path([1, 2, 4]),
            scenario=FailureScenario.single_link(1, 2),
        )
        result = policy.evaluate_case(case)
        assert result.restorable
        assert result.decomposition is None
        assert result.pc_length == 1  # a single switched-to route

    def test_pc_length_raises_when_unrestorable(self, diamond):
        policy = _TwoRoutePolicy(diamond, weighted=False)
        case = FailureCase(
            source=1,
            destination=4,
            primary_path=Path([1, 2, 4]),
            scenario=FailureScenario.link_set([(1, 2), (1, 3)]),
        )
        result = policy.evaluate_case(case)
        assert not result.restorable
        with pytest.raises(ValueError):
            result.pc_length


class TestDropPolicy:
    def test_sim_hooks_disabled(self):
        assert not DoNotRestorePolicy.uses_local_patch
        assert not DoNotRestorePolicy.uses_source_restore

    def test_disturbed_primary_is_dropped(self, diamond):
        policy = DoNotRestorePolicy(diamond, weighted=False)
        primary = policy.provision(1, 4)[0]
        first_hop = next(iter(primary.edge_keys()))
        outcome = policy.restore(1, 4, FailureScenario.link_set([first_hop]))
        assert not outcome.restored

    def test_surviving_primary_rides_on(self, diamond):
        policy = DoNotRestorePolicy(diamond, weighted=False)
        outcome = policy.restore(1, 4, FailureScenario.single_link(2, 3))
        assert outcome.restored and outcome.stretch == 1.0


class TestMrcPolicy:
    def test_requires_at_least_one_configuration(self, diamond):
        with pytest.raises(ValueError):
            MrcPolicy(diamond, configurations=0)

    def test_deterministic_across_instances(self, small_isp):
        a = MrcPolicy(small_isp, configurations=4, seed=1)
        b = MrcPolicy(small_isp, configurations=4, seed=1)
        for pair in sample_pairs(small_isp, 5, seed=2):
            assert a.provision(*pair) == b.provision(*pair)

    def test_every_element_assigned_one_configuration(self, small_isp):
        policy = MrcPolicy(small_isp, configurations=4, seed=1)
        edges = {edge_key(u, v) for u, v in small_isp.edges()}
        assert set(policy._edge_config) == edges
        assert set(policy._node_config) == set(small_isp.nodes)
        assert set(policy._edge_config.values()) <= set(range(4))

    def test_restored_route_survives_and_stretches(self, small_isp):
        policy = MrcPolicy(small_isp, configurations=4, seed=1)
        restored = 0
        for pair in sample_pairs(small_isp, 8, seed=4):
            primary = policy.base.path_for(*pair)
            for case in link_failure_cases(pair, primary, k=1):
                outcome = policy.restore(*pair, case.scenario)
                if not outcome.restored:
                    continue
                restored += 1
                assert not case.scenario.disturbs(outcome.route)
                assert outcome.stretch >= 1.0 - 1e-9
        # MRC must restore a healthy share of single-link failures on a
        # well-connected topology (every link is isolated somewhere).
        assert restored > 0

    def test_multi_failure_spanning_configs_is_unrestorable(self, small_isp):
        policy = MrcPolicy(small_isp, configurations=4, seed=1)
        for pair in sample_pairs(small_isp, 8, seed=6):
            primary = policy.base.path_for(*pair)
            for case in link_failure_cases(pair, primary, k=2):
                if list(policy._covering_configs(case.scenario)):
                    continue  # some config isolates both — restorable
                outcome = policy.restore(*pair, case.scenario)
                # The primary is disturbed (both failed links lie on
                # it) and no configuration covers the pair: the
                # documented MRC limitation.
                assert not outcome.restored
                return
        pytest.skip("every sampled 2-link scenario had a covering config")


def _random_connected_graph(seed: int, n: int = 16, extra: int = 10) -> Graph:
    rng = random.Random(seed)
    g = Graph()
    for i in range(1, n):
        g.add_edge(rng.randrange(i), i)
    for _ in range(extra):
        u, v = rng.sample(range(n), 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


class TestBodwinWangBounds:
    def test_bound_values(self):
        assert bw_pieces_bound(3, 0) == 4  # the classic lemma: k + 1
        assert bw_pieces_bound(3, 1) == 3
        assert bw_pieces_bound(3, 3) == 1
        assert bw_pieces_bound(0, 0) == 1

    def test_bound_validates_tolerance(self):
        with pytest.raises(ValueError):
            bw_pieces_bound(2, 3)
        with pytest.raises(ValueError):
            bw_pieces_bound(2, -1)

    def test_trivial_piece_is_always_valid(self, diamond):
        assert piece_is_valid(diamond, Path([1]), [], 0)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(2, 3),
        pair_seed=st.integers(0, 10_000),
    )
    def test_pieces_within_bound_at_every_tolerance(self, seed, k, pair_seed):
        g = _random_connected_graph(seed)
        rng = random.Random(pair_seed)
        edges = sorted(g.edges())
        faults = rng.sample(edges, min(k, len(edges)))
        kk = len(faults)
        s, t = rng.sample(sorted(g.nodes), 2)
        view = g.without(edges=frozenset(edge_key(u, v) for u, v in faults))
        try:
            route = shortest_path(view, s, t, weighted=False)
        except NoPath:
            return  # disconnected: nothing to restore
        counts = [
            len(fault_tolerant_pieces(g, route, faults, f, weighted=False))
            for f in range(kk + 1)
        ]
        # The Bodwin–Wang trade-off: pieces(f) <= k - f + 1 ...
        for f, count in enumerate(counts):
            assert count <= bw_pieces_bound(kk, f), (
                f"{count} pieces at tolerance {f} with k={kk}"
            )
        # ... interpolating the classic lemma (f=0: k+1 pieces) down to
        # the restored path itself being one fault-avoiding piece.
        assert counts == sorted(counts, reverse=True)
        assert counts[kk] == 1

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), pair_seed=st.integers(0, 10_000))
    def test_pieces_concatenate_to_the_route(self, seed, pair_seed):
        g = _random_connected_graph(seed)
        rng = random.Random(pair_seed)
        faults = rng.sample(sorted(g.edges()), 2)
        s, t = rng.sample(sorted(g.nodes), 2)
        view = g.without(edges=frozenset(edge_key(u, v) for u, v in faults))
        try:
            route = shortest_path(view, s, t, weighted=False)
        except NoPath:
            return
        pieces = fault_tolerant_pieces(g, route, faults, 1, weighted=False)
        nodes = list(pieces[0].nodes)
        for piece in pieces[1:]:
            assert piece.nodes[0] == nodes[-1]
            nodes.extend(piece.nodes[1:])
        assert nodes == list(route.nodes)
