"""Tests for the span tracer and the StageTimer edge-case contract."""

from __future__ import annotations

import json

import pytest

from repro.experiments.bench import StageTimer
from repro.obs.trace import NULL_SPAN, SPAN_SCHEMA, Tracer, read_jsonl


class FakeClock:
    """A controllable stand-in for ``time.perf_counter``."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock(monkeypatch):
    c = FakeClock()
    monkeypatch.setattr("time.perf_counter", c)
    return c


class TestTracer:
    def test_disabled_span_is_the_shared_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        assert tracer.span("other", key="value") is NULL_SPAN
        with tracer.span("ignored"):
            pass
        assert tracer.roots == []

    def test_enabled_spans_nest_into_a_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner-1"):
                pass
            with tracer.span("inner-2"):
                with tracer.span("leaf"):
                    pass
        assert [r.name for r in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner-1", "inner-2"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]
        assert [s.name for s in tracer.iter_spans()] == [
            "outer", "inner-1", "inner-2", "leaf",
        ]

    def test_span_records_meta(self):
        tracer = Tracer(enabled=True)
        with tracer.span("run", scale="tiny", seed=1) as span:
            pass
        assert span.meta == {"scale": "tiny", "seed": 1}

    def test_exception_still_closes_and_pops(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                with tracer.span("child"):
                    raise ValueError("x")
        assert all(s.end is not None for s in tracer.iter_spans())
        # A new span after the raise is a fresh root, not a child of "boom".
        with tracer.span("after"):
            pass
        assert [r.name for r in tracer.roots] == ["boom", "after"]

    def test_stage_totals_accumulate_and_ignore_reentrancy(self, clock):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            clock.advance(1.0)
            with tracer.span("a"):  # re-entrant: must not double-count
                clock.advance(2.0)
            clock.advance(1.0)
        with tracer.span("a"):  # repeated: must accumulate
            clock.advance(0.5)
        with tracer.span("b"):
            clock.advance(0.25)
        totals = tracer.stage_totals()
        assert totals["a"] == pytest.approx(4.5)
        assert totals["b"] == pytest.approx(0.25)

    def test_reset_drops_spans(self):
        tracer = Tracer(enabled=True)
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.roots == [] and list(tracer.iter_spans()) == []

    def test_records_link_the_tree(self, clock):
        tracer = Tracer(enabled=True)
        with tracer.span("root", scale="tiny"):
            clock.advance(1.0)
            with tracer.span("child"):
                clock.advance(0.5)
        records = tracer.records()
        assert [r["name"] for r in records] == ["root", "child"]
        root, child = records
        assert root["schema"] == SPAN_SCHEMA == "repro.obs.span/1"
        assert root["parent"] is None and root["depth"] == 0
        assert child["parent"] == root["id"] and child["depth"] == 1
        assert child["t0"] >= root["t0"] and child["t1"] <= root["t1"]
        assert root["meta"] == {"scale": "tiny"}

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("root", seed=7):
            with tracer.span("leaf"):
                pass
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        assert read_jsonl(path) == tracer.records()
        # Canonical serialization: writing what we read is byte-stable.
        rewritten = "".join(
            json.dumps(r, sort_keys=True, separators=(",", ":")) + "\n"
            for r in read_jsonl(path)
        )
        assert rewritten == path.read_text()


class TestStageTimer:
    def test_repeated_stages_accumulate(self, clock):
        timer = StageTimer()
        with timer.stage("s"):
            clock.advance(1.0)
        with timer.stage("s"):
            clock.advance(2.0)
        assert timer.stages["s"] == pytest.approx(3.0)

    def test_reentrant_stage_counts_outermost_only(self, clock):
        timer = StageTimer()
        with timer.stage("a"):
            clock.advance(1.0)
            with timer.stage("a"):
                clock.advance(2.0)
            clock.advance(1.0)
        assert timer.stages["a"] == pytest.approx(4.0)  # not 6.0

    def test_raising_stage_keeps_partial_timing(self, clock):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("x"):
                clock.advance(3.0)
                raise RuntimeError("boom")
        assert timer.stages["x"] == pytest.approx(3.0)
        # And the timer still works afterwards.
        with timer.stage("x"):
            clock.advance(1.0)
        assert timer.stages["x"] == pytest.approx(4.0)

    def test_raising_reentrant_stage_accumulates_once(self, clock):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("a"):
                clock.advance(1.0)
                with timer.stage("a"):
                    clock.advance(2.0)
                    raise RuntimeError("boom")
        assert timer.stages["a"] == pytest.approx(3.0)

    def test_stages_feed_prefixed_spans(self):
        tracer = Tracer(enabled=True)
        timer = StageTimer(tracer=tracer, prefix="table2")
        with timer.stage("cases"):
            pass
        assert [s.name for s in tracer.iter_spans()] == ["table2.cases"]
        assert "cases" in timer.stages  # flat keys stay unprefixed

    def test_disabled_tracer_costs_no_spans(self):
        tracer = Tracer(enabled=False)
        timer = StageTimer(tracer=tracer)
        with timer.stage("cases"):
            pass
        assert tracer.roots == []
        assert "cases" in timer.stages  # flat timing still recorded

    def test_as_dict_rounds(self, clock):
        timer = StageTimer()
        with timer.stage("s"):
            clock.advance(1.23456789)
        assert timer.as_dict() == {"s": 1.2346}
        assert timer.as_dict(digits=2) == {"s": 1.23}
