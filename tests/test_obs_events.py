"""Tests for the structured event log: pinned schema, round-trips, and
reconstruction of the simulator's delivery timeline from JSONL alone."""

from __future__ import annotations

import pytest

from repro.core.base_paths import UniqueShortestPathsBase, provision_base_set
from repro.mpls.network import ForwardingStatus, MplsNetwork
from repro.obs.events import SCHEMA, Event, EventLog, jsonable
from repro.routing.flooding import FloodingModel
from repro.sim.orchestrator import CONTROL_PLANE_KINDS, RestorationSimulation
from repro.topology.isp import generate_isp_topology


class TestSchema:
    def test_wire_shape_is_pinned(self):
        """The version-1 envelope. Changing these keys is a version bump."""
        event = EventLog().emit(1.5, ("core", 0), "detected", link=("a", "b"))
        record = event.as_record()
        assert set(record) == {"schema", "seq", "time", "actor", "kind", "detail"}
        assert record["schema"] == SCHEMA == "repro.obs.event/1"
        assert record["seq"] == 0
        assert record["time"] == 1.5
        assert record["actor"] == ["core", 0]  # tuples canonicalize to lists
        assert record["kind"] == "detected"
        assert record["detail"] == {"link": ["a", "b"]}

    def test_unknown_schema_rejected(self):
        record = Event(0, 0.0, "r", "k").as_record()
        record["schema"] = "repro.obs.event/999"
        with pytest.raises(ValueError, match="unsupported event schema"):
            Event.from_record(record)

    def test_jsonable_canonicalization(self):
        assert jsonable((("a", 1), [2.5, None])) == [["a", 1], [2.5, None]]
        assert jsonable({("k", 1): {3, 1, 2}}) == {"('k', 1)": [1, 2, 3]}
        assert jsonable(object()).startswith("<object object")


class TestEventLog:
    def test_emit_assigns_sequence_numbers(self):
        log = EventLog()
        log.emit(1.0, "a", "x")
        log.emit(1.0, "b", "y")
        assert [e.seq for e in log] == [0, 1]

    def test_filter_and_kinds(self):
        log = EventLog()
        log.emit(1.0, "a", "x")
        log.emit(2.0, "b", "y")
        log.emit(3.0, "c", "x")
        assert [e.time for e in log.filter("x")] == [1.0, 3.0]
        assert log.kinds() == {"x": 2, "y": 1}

    def test_jsonl_round_trip_is_byte_identical(self, tmp_path):
        log = EventLog()
        log.emit(1.0, ("core", 0), "link-down", link=(("a", 1), ("b", 2)))
        log.emit(1.01, ("edge", 3), "detected", up=False, text="x down")
        log.emit(2.0, "packet", "delivery", walk=[("a", 1), ("b", 2)], hops=1)
        path = log.write_jsonl(tmp_path / "events.jsonl")
        reread = EventLog.read_jsonl(path)
        assert reread.to_jsonl() == log.to_jsonl() == path.read_text()
        # And a second generation is a fixed point.
        assert EventLog.read_jsonl(path).to_jsonl() == path.read_text()


@pytest.fixture(scope="module")
def sim_world():
    graph = generate_isp_topology(n=60, seed=31)
    net = MplsNetwork(graph)
    base = UniqueShortestPathsBase(graph)
    nodes = sorted(graph.nodes, key=repr)
    best = max(
        ((s, t) for s in nodes[:15] for t in nodes[-15:] if s != t),
        key=lambda pair: base.path_for(*pair).hops,
    )
    registry = provision_base_set(net, base, pairs=[best])
    return graph, net, base, registry, best


class TestOrchestratorRoundTrip:
    """Round-trip an orchestrator run through JSONL and reconstruct the
    exact delivery timeline the live sim tests assert."""

    def test_delivery_timeline_reconstructed_from_jsonl(self, sim_world, tmp_path):
        graph, net, base, registry, demand_pair = sim_world
        model = FloodingModel(
            detection_delay=0.010, per_hop_delay=0.005, spf_delay=0.050
        )
        sim = RestorationSimulation(net, base, dict(registry), model=model)
        demand = sim.add_demand(*demand_pair)
        primary = demand.primary
        failed = list(primary.edges())[primary.hops - 1]

        sim.schedule_link_failure(1.0, *failed)
        sim.schedule_link_recovery(3.0, *failed)

        live = []
        for t in (0.5, 1.005, 1.012, 2.0, 5.0):
            sim.run_until(t)
            live.append(sim.inject(*demand_pair))

        # The live statuses are the hybrid-scheme story the sim tests pin:
        # primary, black hole, local patch, source re-route, primary again.
        assert [r.status for r in live] == [
            ForwardingStatus.DELIVERED,
            ForwardingStatus.DROPPED_LINK_DOWN,
            ForwardingStatus.DELIVERED,
            ForwardingStatus.DELIVERED,
            ForwardingStatus.DELIVERED,
        ]

        path = sim.events.write_jsonl(tmp_path / "events.jsonl")
        log = EventLog.read_jsonl(path)

        # Reconstruct the delivery timeline from the log alone.
        deliveries = log.filter("delivery")
        assert [e.detail["status"] for e in deliveries] == [
            r.status.name for r in live
        ]
        assert [e.time for e in deliveries] == [0.5, 1.005, 1.012, 2.0, 5.0]
        assert [e.detail["walk"] for e in deliveries] == [
            jsonable(r.walk) for r in live
        ]
        assert [e.detail["hops"] for e in deliveries] == [r.hops for r in live]
        # First and last probes walked the primary LSP.
        assert deliveries[0].detail["walk"] == jsonable(list(primary.nodes))
        assert deliveries[-1].detail["walk"] == deliveries[0].detail["walk"]

        # The control-plane ordering (the old timeline assertions) holds
        # in the round-tripped log too.
        kinds = [e.kind for e in log if e.kind in CONTROL_PLANE_KINDS]
        assert kinds.index("link-down") < kinds.index("detected")
        assert kinds.index("detected") < kinds.index("local-patch")
        assert kinds.index("local-patch") < kinds.index("source-restore")

        # Round-tripped timeline matches the live derived view entry for
        # entry (time, actor, action, detail text).
        reread_timeline = [
            (e.time, e.actor, e.kind, e.detail.get("text", ""))
            for e in log
            if e.kind in CONTROL_PLANE_KINDS
        ]
        live_timeline = [
            (e.time, jsonable(e.actor), e.action, e.detail)
            for e in sim.timeline
        ]
        assert reread_timeline == live_timeline

    def test_event_log_covers_data_plane_and_tables(self, sim_world):
        graph, net, base, registry, demand_pair = sim_world
        sim = RestorationSimulation(net, base, dict(registry))
        demand = sim.add_demand(*demand_pair)
        failed = list(demand.primary.edges())[demand.primary.hops - 1]
        sim.schedule_link_failure(1.0, *failed)
        sim.run_until(10.0)
        kinds = sim.events.kinds()
        assert kinds["link-down"] == 1
        assert kinds["detected"] == 2  # both endpoints
        assert kinds["lsa-hop"] >= graph.number_of_nodes() - 2
        assert kinds["local-patch"] == 1
        assert kinds["source-restore"] == 1
        assert kinds["ilm-install"] >= 1  # patch wrote the tables
