"""Orchestrator timeline determinism: same seed + schedule ⇒ the event
log serializes to byte-identical JSONL — across repeat in-process runs
and across process boundaries (the ``--jobs`` fan-out situation)."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.core.base_paths import UniqueShortestPathsBase, provision_base_set
from repro.mpls.network import MplsNetwork
from repro.routing.flooding import FloodingModel
from repro.sim.orchestrator import RestorationSimulation
from repro.topology.isp import generate_isp_topology


def run_scenario() -> str:
    """One fixed failure/recovery scenario; returns the event log JSONL.

    Module-level (picklable) so worker processes can run it verbatim.
    Everything is derived from the seed: the topology, the demand pair
    (longest primary among a sorted candidate set), and the schedule.
    """
    graph = generate_isp_topology(n=40, seed=7)
    net = MplsNetwork(graph)
    base = UniqueShortestPathsBase(graph)
    nodes = sorted(graph.nodes, key=repr)
    pair = max(
        ((s, t) for s in nodes[:10] for t in nodes[-10:] if s != t),
        key=lambda p: base.path_for(*p).hops,
    )
    registry = provision_base_set(net, base, pairs=[pair])
    sim = RestorationSimulation(
        net,
        base,
        dict(registry),
        model=FloodingModel(
            detection_delay=0.010, per_hop_delay=0.005, spf_delay=0.050
        ),
    )
    demand = sim.add_demand(*pair)
    failed = list(demand.primary.edges())[demand.primary.hops - 1]
    sim.schedule_link_failure(1.0, *failed)
    sim.schedule_link_recovery(3.0, *failed)
    for t in (0.5, 1.005, 1.012, 2.0, 5.0):
        sim.run_until(t)
        sim.inject(*pair)
    sim.run_until(10.0)
    return sim.events.to_jsonl()


def test_repeat_runs_are_byte_identical():
    first = run_scenario()
    second = run_scenario()
    assert first  # non-trivial: the scenario actually produced events
    assert first == second


def test_runs_are_byte_identical_across_processes():
    reference = run_scenario()
    for workers in (1, 2):
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = [pool.submit(run_scenario) for _ in range(workers)]
            for future in results:
                assert future.result() == reference
