"""The hybrid scheme (end of Section 4.2): local patch now, source fix later.

"The adjacent router immediately re-routes affected LSP's, though not
always along shortest paths, and the source router eventually redirects
along a shortest path."  This module computes the resulting timeline
for one disrupted demand under the flooding model:

* before local detection: packets crossing the dead link are lost;
* from ``local_time``: packets ride the local (end-route or
  edge-bypass) route — possibly stretched;
* from ``source_time``: the source has learned of the failure, run
  SPF, and re-pointed its FEC entry; packets ride the min-cost
  restoration path.

The interim stretch and the two switchover instants are what the
hybrid ablation benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.graph import Edge, Graph
from ..graph.paths import Path
from ..graph.shortest_paths import shortest_path
from ..routing.flooding import (
    FloodingModel,
    local_restoration_time,
    source_restoration_time,
)
from .local_restoration import LocalStrategy, edge_bypass_route, end_route_route


@dataclass(frozen=True)
class HybridTimeline:
    """What a demand experiences after one link failure under the hybrid scheme."""

    primary: Path
    failed: Edge
    local_route: Path
    source_route: Path
    local_time: float
    source_time: float
    strategy: LocalStrategy

    @property
    def outage(self) -> float:
        """Seconds of black-holing before the local patch engages."""
        return self.local_time

    @property
    def interim_window(self) -> float:
        """Seconds during which traffic rides the (possibly stretched) local route."""
        return max(0.0, self.source_time - self.local_time)

    def route_at(self, time: float) -> Path | None:
        """The route in effect at *time* (None while packets are lost)."""
        if time >= self.source_time:
            return self.source_route
        if time >= self.local_time:
            return self.local_route
        return None

    def interim_stretch(self, graph: Graph) -> float:
        """Cost of the local route relative to the eventual source route."""
        source_cost = self.source_route.cost(graph)
        if source_cost == 0:
            return 1.0
        return self.local_route.cost(graph) / source_cost


def hybrid_timeline(
    graph: Graph,
    primary: Path,
    failed: Edge,
    strategy: LocalStrategy = LocalStrategy.EDGE_BYPASS,
    model: FloodingModel = FloodingModel(),
    weighted: bool = True,
) -> HybridTimeline:
    """Compute the hybrid-restoration timeline for one failure on one demand."""
    view = graph.without(edges=[failed])
    if strategy is LocalStrategy.END_ROUTE:
        local = end_route_route(graph, primary, failed, weighted=weighted)
    else:
        local = edge_bypass_route(graph, primary, failed, weighted=weighted)
    source_route = shortest_path(view, primary.source, primary.target, weighted=weighted)
    return HybridTimeline(
        primary=primary,
        failed=failed,
        local_route=local,
        source_route=source_route,
        local_time=local_restoration_time(model),
        source_time=source_restoration_time(
            view, [failed[0], failed[1]], primary.source, model
        ),
        strategy=strategy,
    )
