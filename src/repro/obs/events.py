"""Structured restoration event log — versioned JSONL timeline records.

The paper's argument is about *time*: the local patch lands at
detection, the source re-route one flood + SPF later.  The simulation
used to record that story as an ad-hoc ``TimelineEntry`` list with a
free-form detail string — good for eyeballing, useless for tooling.
This module defines the single timeline format every emitter
(:mod:`repro.sim.orchestrator`, :mod:`repro.routing.flooding`,
:mod:`repro.mpls.lsr`) writes and every consumer
(``python -m repro.obs timeline``, the determinism tests, the
round-trip schema test) reads.

Schema and versioning policy
----------------------------

Every serialized event carries ``"schema": "repro.obs.event/1"``.  The
record shape of version 1 is pinned by
``tests/test_obs_events.py``::

    {"schema", "seq", "time", "actor", "kind", "detail"}

* Adding a new ``kind`` or a new ``detail`` key is **not** a version
  bump (consumers must ignore unknown kinds/keys).
* Removing or renaming a top-level field, changing a field's type, or
  changing the meaning of an existing ``detail`` key **is** a version
  bump: increment :data:`SCHEMA_VERSION`, keep ``read_jsonl``
  accepting the previous version.

Determinism
-----------

``to_jsonl`` is byte-deterministic for a deterministic run: sorted
keys, fixed separators, sequence numbers in emission order, and actor
values canonicalized by :func:`jsonable` (tuples become lists, exotic
objects their ``repr``).  The orchestrator determinism tests assert
byte-identical logs across runs and across process boundaries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Union

#: Bump per the policy above.
SCHEMA_VERSION = 1

#: The tag stamped on (and required of) every serialized event.
SCHEMA = f"repro.obs.event/{SCHEMA_VERSION}"


def jsonable(value: Any) -> Any:
    """Canonicalize *value* for deterministic JSON serialization.

    Primitives pass through, tuples/lists/dicts recurse (dict keys are
    stringified), anything else — graph nodes are often tuples but may
    be arbitrary hashables — becomes its ``repr``.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (dict,)):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(v) for v in value)
    return repr(value)


@dataclass(frozen=True)
class Event:
    """One timestamped occurrence with a structured detail payload."""

    seq: int
    time: float
    actor: Any
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def as_record(self) -> dict[str, Any]:
        """The pinned version-1 wire shape."""
        return {
            "schema": SCHEMA,
            "seq": self.seq,
            "time": self.time,
            "actor": jsonable(self.actor),
            "kind": self.kind,
            "detail": jsonable(self.detail),
        }

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, no whitespace)."""
        return json.dumps(self.as_record(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "Event":
        """Rebuild an event from a parsed wire record.

        Raises :class:`ValueError` for unknown schema tags so readers
        fail loudly on a future format rather than misparsing it.
        """
        schema = record.get("schema")
        if schema != SCHEMA:
            raise ValueError(
                f"unsupported event schema {schema!r} (expected {SCHEMA!r})"
            )
        return cls(
            seq=record["seq"],
            time=record["time"],
            actor=record["actor"],
            kind=record["kind"],
            detail=dict(record["detail"]),
        )


class EventLog:
    """An append-only, order-preserving list of :class:`Event`.

    >>> log = EventLog()
    >>> _ = log.emit(1.0, "r1", "link-down", link=("a", "b"))
    >>> [e.kind for e in log]
    ['link-down']
    """

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, time: float, actor: Any, kind: str, **detail: Any) -> Event:
        """Append one event; returns it."""
        event = Event(len(self.events), time, actor, kind, detail)
        self.events.append(event)
        return event

    def filter(self, *kinds: str) -> list[Event]:
        """Events whose kind is in *kinds*, in order."""
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def kinds(self) -> dict[str, int]:
        """Occurrence count per kind (diagnostics, summaries)."""
        counts: dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    # -- serialization ---------------------------------------------------------

    def to_jsonl(self) -> str:
        """Byte-deterministic JSONL of the whole log."""
        return "".join(e.to_json() + "\n" for e in self.events)

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Write the log to *path*; returns the path written."""
        out = Path(path)
        out.write_text(self.to_jsonl())
        return out

    @classmethod
    def read_jsonl(
        cls, source: Union[str, Path, Iterable[str]]
    ) -> "EventLog":
        """Parse a log back from a path or an iterable of JSONL lines.

        Actors and detail values come back in canonical (jsonable)
        form — tuples as lists — which is exactly what serializing
        again would produce, so read ∘ write round-trips bytes.
        """
        if isinstance(source, (str, Path)):
            lines: Iterable[str] = Path(source).read_text().splitlines()
        else:
            lines = source
        log = cls()
        for line in lines:
            line = line.strip()
            if line:
                log.events.append(Event.from_record(json.loads(line)))
        return log
