"""Shortest-path DAGs, path counting, and shortest-path enumeration.

Two of the paper's measurements need more than "one shortest path":

* **Redundancy** (Table 2) is "the percentage of backup paths that have
  cost equal to the original shortest path", and the table also reports
  the *maximum number of distinct shortest paths* between any two routers.
  Counting shortest paths is done here on the shortest-path DAG.
* The **greedy decomposition** needs to ask whether a given sub-path is
  *some* shortest path, which the DAG answers without enumeration.

The shortest-path DAG from a source ``s`` contains the edge ``(u, v)``
iff ``dist(s, u) + w(u, v) == dist(s, v)``; every s→t shortest path is a
DAG path and vice versa.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..exceptions import NoPath
from .csr import INF, CsrView, dijkstra_csr_canonical, shared_csr
from .graph import Graph, Node
from .paths import Path
from .shortest_paths import costs_equal, dijkstra


class ShortestPathDag:
    """The DAG of all shortest paths out of a single source.

    >>> from repro.graph.graph import Graph
    >>> g = Graph.from_edges([(1, 2), (2, 4), (1, 3), (3, 4)])
    >>> dag = ShortestPathDag.compute(g, 1)
    >>> dag.count_paths_to(4)
    2
    """

    __slots__ = ("source", "dist", "_parents")

    def __init__(self, source: Node, dist: dict[Node, float], parents: dict[Node, list[Node]]):
        self.source = source
        self.dist = dist
        self._parents = parents

    @classmethod
    def compute(cls, graph, source: Node) -> "ShortestPathDag":
        """Run Dijkstra from *source* and collect *all* tight predecessors.

        The distance labels come from the flat-array CSR kernel when the
        graph supports snapshotting; distances are tie-invariant (each
        label is the same minimal parent-plus-weight sum whatever the
        heap order), so the DAG — built from epsilon-tolerant tightness
        tests — is identical to the dict kernel's.
        """
        if isinstance(graph, Graph):
            csr = shared_csr(graph)
            arr_dist, _, _ = dijkstra_csr_canonical(CsrView(csr), csr.index[source])
            dist = {
                csr.nodes[i]: d for i, d in enumerate(arr_dist) if d != INF
            }
        else:
            dist, _ = dijkstra(graph, source)
        parents: dict[Node, list[Node]] = {v: [] for v in dist}
        for v in dist:
            if v == source:
                continue
            for u, w in graph.adjacency(v):
                if u in dist and costs_equal(dist[u] + w, dist[v]):
                    parents[v].append(u)
        return cls(source, dist, parents)

    def reaches(self, target: Node) -> bool:
        """True if the DAG reaches *target* from its source."""
        return target in self.dist

    def parents(self, v: Node) -> list[Node]:
        """Tight predecessors of *v* (empty for the source)."""
        return self._parents.get(v, [])

    def count_all_paths(self, modulo: Optional[int] = None) -> dict[Node, int]:
        """Shortest-path counts from the source to *every* reached node.

        One dynamic program over the DAG in distance order serves every
        target — the per-target convenience :meth:`count_paths_to` used
        to redo this DP for each query, which made Table 2's
        multiplicity column quadratic in the node count and was the
        single largest cost of the whole experiment pipeline.  The
        counts are exact integers (optionally reduced *modulo*), so
        callers switching from per-target queries to this batched form
        see bit-identical numbers.
        """
        memo: dict[Node, int] = {self.source: 1}
        order = sorted(self.dist, key=self.dist.__getitem__)
        for v in order:
            if v == self.source:
                continue
            total = sum(memo[u] for u in self._parents[v])
            memo[v] = total % modulo if modulo else total
        return memo

    def count_paths_to(self, target: Node, modulo: Optional[int] = None) -> int:
        """Number of distinct shortest paths from the source to *target*.

        Counts can be astronomically large on meshy graphs, hence the
        optional *modulo*.  Raises :class:`~repro.exceptions.NoPath` if
        the target is unreachable.  Prefer :meth:`count_all_paths` when
        querying many targets of the same DAG.
        """
        if target not in self.dist:
            raise NoPath(f"{target!r} unreachable from {self.source!r}")
        return self.count_all_paths(modulo=modulo)[target]

    def iter_paths_to(self, target: Node, limit: Optional[int] = None) -> Iterator[Path]:
        """Yield distinct shortest paths source→target (up to *limit*)."""
        if target not in self.dist:
            raise NoPath(f"{target!r} unreachable from {self.source!r}")
        emitted = 0
        stack: list[tuple[Node, list[Node]]] = [(target, [target])]
        while stack:
            node, suffix = stack.pop()
            if node == self.source:
                yield Path(list(reversed(suffix)))
                emitted += 1
                if limit is not None and emitted >= limit:
                    return
                continue
            for parent in self._parents[node]:
                stack.append((parent, suffix + [parent]))

    def contains_path(self, path: Path) -> bool:
        """True if *path* starts at the source and is a shortest path."""
        if path.source != self.source:
            return False
        if path.target not in self.dist:
            return False
        node = path.target
        for prev in reversed(path.nodes[:-1]):
            if prev not in self._parents.get(node, []):
                return False
            node = prev
        return True

    def first_path_to(self, target: Node) -> Path:
        """One canonical shortest path (first tight predecessor at each hop)."""
        if target not in self.dist:
            raise NoPath(f"{target!r} unreachable from {self.source!r}")
        nodes = [target]
        node = target
        while node != self.source:
            node = self._parents[node][0]
            nodes.append(node)
        return Path(list(reversed(nodes)))


def count_shortest_paths(graph, source: Node, target: Node) -> int:
    """Convenience: number of distinct shortest source→target paths."""
    return ShortestPathDag.compute(graph, source).count_paths_to(target)


def all_shortest_paths(
    graph, source: Node, target: Node, limit: Optional[int] = None
) -> list[Path]:
    """All distinct shortest source→target paths (up to *limit*)."""
    dag = ShortestPathDag.compute(graph, source)
    return list(dag.iter_paths_to(target, limit=limit))


def max_shortest_path_multiplicity(graph, sources: Optional[list[Node]] = None) -> int:
    """Max number of distinct shortest paths over (sampled) source pairs.

    Table 2's "(max)" column annotation reports this per topology.  With
    *sources* given, only DAGs from those sources are examined (sampling
    for the huge graphs); otherwise all nodes are used.
    """
    best = 0
    nodes = sources if sources is not None else list(graph.nodes)
    for s in nodes:
        dag = ShortestPathDag.compute(graph, s)
        counts = dag.count_all_paths()
        best = max(best, max((c for t, c in counts.items() if t != s), default=0))
    return best
