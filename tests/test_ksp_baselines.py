"""Tests for Yen's k-shortest paths, Suurballe, and the baseline schemes."""

from __future__ import annotations

import itertools
import random

import networkx as nx
import pytest

from repro.core.base_paths import UniqueShortestPathsBase
from repro.core.baselines import (
    BaselineOutcome,
    DisjointBackupScheme,
    KShortestPathsScheme,
)
from repro.exceptions import NoPath
from repro.failures.models import FailureScenario
from repro.graph.graph import Graph
from repro.graph.ksp import (
    edge_disjoint_backup,
    suurballe_disjoint_pair,
    yen_k_shortest_paths,
)
from repro.graph.paths import Path
from repro.graph.shortest_paths import costs_equal, shortest_path
from repro.topology.isp import generate_isp_topology


def random_graph(seed: int, n: int = 12, extra: int = 10) -> Graph:
    rng = random.Random(seed)
    g = Graph()
    for i in range(1, n):
        g.add_edge(rng.randrange(i), i, weight=rng.choice([1, 2, 3, 5]))
    for _ in range(extra):
        u, v = rng.sample(range(n), 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v, weight=rng.choice([1, 2, 3, 5]))
    return g


def to_networkx(g: Graph) -> nx.Graph:
    gx = nx.Graph()
    for u, v, w in g.weighted_edges():
        gx.add_edge(u, v, weight=w)
    return gx


class TestYen:
    def test_first_is_shortest(self, diamond):
        paths = yen_k_shortest_paths(diamond, 1, 4, 1)
        assert len(paths) == 1
        assert paths[0].cost(diamond) == 2.0

    def test_finds_all_simple_paths_of_diamond(self, diamond):
        paths = yen_k_shortest_paths(diamond, 1, 4, 10)
        # 1-2-4, 1-3-4, 1-2-3-4, 1-3-2-4: all four simple routes.
        assert len(paths) == 4
        assert all(p.is_simple() for p in paths)

    def test_costs_nondecreasing(self, weighted_diamond):
        paths = yen_k_shortest_paths(weighted_diamond, 1, 4, 5)
        costs = [p.cost(weighted_diamond) for p in paths]
        assert costs == sorted(costs)

    def test_paths_distinct(self):
        g = random_graph(3)
        paths = yen_k_shortest_paths(g, 0, 11, 6)
        assert len(set(paths)) == len(paths)

    def test_matches_networkx(self):
        for seed in range(6):
            g = random_graph(seed)
            gx = to_networkx(g)
            ours = yen_k_shortest_paths(g, 0, 11, 5)
            theirs = list(
                itertools.islice(
                    nx.shortest_simple_paths(gx, 0, 11, weight="weight"), 5
                )
            )
            assert len(ours) == len(theirs)
            for our_path, their_nodes in zip(ours, theirs):
                their_cost = sum(
                    gx[u][v]["weight"] for u, v in zip(their_nodes, their_nodes[1:])
                )
                assert costs_equal(our_path.cost(g), their_cost)

    def test_no_path_raises(self):
        g = Graph.from_edges([(1, 2), (3, 4)])
        with pytest.raises(NoPath):
            yen_k_shortest_paths(g, 1, 3, 2)

    def test_k_validation(self, diamond):
        with pytest.raises(ValueError):
            yen_k_shortest_paths(diamond, 1, 4, 0)


class TestSuurballe:
    def test_pair_is_edge_disjoint(self, diamond):
        p1, p2 = suurballe_disjoint_pair(diamond, 1, 4)
        assert not (set(p1.edge_keys()) & set(p2.edge_keys()))
        assert p1.source == p2.source == 1
        assert p1.target == p2.target == 4

    def test_pair_cost_is_minimal_on_random_graphs(self):
        """Cross-check total cost against brute force over path pairs."""
        for seed in range(8):
            g = random_graph(seed, n=8, extra=6)
            gx = to_networkx(g)
            try:
                p1, p2 = suurballe_disjoint_pair(g, 0, 7)
            except NoPath:
                continue
            total = p1.cost(g) + p2.cost(g)
            best = float("inf")
            all_paths = list(nx.all_simple_paths(gx, 0, 7))
            for a in all_paths:
                ea = {tuple(sorted(e)) for e in zip(a, a[1:])}
                cost_a = sum(gx[u][v]["weight"] for u, v in zip(a, a[1:]))
                for b in all_paths:
                    eb = {tuple(sorted(e)) for e in zip(b, b[1:])}
                    if ea & eb:
                        continue
                    cost_b = sum(gx[u][v]["weight"] for u, v in zip(b, b[1:]))
                    best = min(best, cost_a + cost_b)
            assert best < float("inf")
            assert costs_equal(total, best), f"seed {seed}: {total} != {best}"

    def test_bridge_raises(self, line5):
        with pytest.raises(NoPath):
            suurballe_disjoint_pair(line5, 0, 4)

    def test_same_endpoints_rejected(self, diamond):
        with pytest.raises(ValueError):
            suurballe_disjoint_pair(diamond, 1, 1)

    def test_ordering(self, weighted_diamond):
        p1, p2 = suurballe_disjoint_pair(weighted_diamond, 1, 4)
        assert p1.cost(weighted_diamond) <= p2.cost(weighted_diamond)


class TestEdgeDisjointBackup:
    def test_avoids_primary_edges(self, diamond):
        primary = Path([1, 2, 4])
        backup = edge_disjoint_backup(diamond, primary)
        assert backup is not None
        assert not (set(backup.edge_keys()) & set(primary.edge_keys()))

    def test_none_when_cut(self, line5):
        assert edge_disjoint_backup(line5, Path([0, 1, 2])) is None


class TestDisjointBackupScheme:
    @pytest.fixture(scope="class")
    def world(self):
        graph = generate_isp_topology(n=50, seed=17)
        base = UniqueShortestPathsBase(graph)
        return graph, base

    def test_restores_single_link_failures(self, world):
        graph, base = world
        scheme = DisjointBackupScheme(graph, base)
        nodes = sorted(graph.nodes, key=repr)
        s, t = nodes[0], nodes[-1]
        primary, backup = scheme.provision(s, t)
        assert backup is not None
        for failed in primary.edge_keys():
            outcome = scheme.restore(s, t, FailureScenario.link_set([failed]))
            assert outcome.restored
            assert outcome.stretch >= 1.0 - 1e-9

    def test_unrestored_when_both_paths_hit(self, world):
        graph, base = world
        scheme = DisjointBackupScheme(graph, base)
        nodes = sorted(graph.nodes, key=repr)
        s, t = nodes[0], nodes[-1]
        primary, backup = scheme.provision(s, t)
        scenario = FailureScenario.link_set(
            [next(iter(primary.edge_keys())), next(iter(backup.edge_keys()))]
        )
        outcome = scheme.restore(s, t, scenario)
        assert not outcome.restored

    def test_primary_preserving_mode(self, world):
        graph, base = world
        scheme = DisjointBackupScheme(graph, base, suurballe=False)
        nodes = sorted(graph.nodes, key=repr)
        s, t = nodes[0], nodes[-1]
        primary, backup = scheme.provision(s, t)
        assert primary == base.path_for(s, t)
        if backup is not None:
            assert not (set(primary.edge_keys()) & set(backup.edge_keys()))

    def test_ilm_entries_counts_both_paths(self, world):
        graph, base = world
        scheme = DisjointBackupScheme(graph, base)
        nodes = sorted(graph.nodes, key=repr)
        primary, backup = scheme.provision(nodes[0], nodes[-1])
        expected = len(primary.nodes) + (len(backup.nodes) if backup else 0)
        assert scheme.ilm_entries() == expected

    def test_undisturbed_primary_is_kept(self, world):
        graph, base = world
        scheme = DisjointBackupScheme(graph, base)
        nodes = sorted(graph.nodes, key=repr)
        s, t = nodes[0], nodes[-1]
        primary, _ = scheme.provision(s, t)
        elsewhere = next(
            e for e in graph.edges()
            if not primary.uses_edge(*e)
        )
        outcome = scheme.restore(s, t, FailureScenario.link_set([elsewhere]))
        assert outcome.restored
        assert outcome.route == primary


class TestKShortestPathsScheme:
    def test_first_surviving_path_wins(self, diamond):
        scheme = KShortestPathsScheme(diamond, k=4, weighted=False)
        plan = scheme.provision(1, 4)
        assert len(plan) == 4
        failed = next(iter(plan[0].edge_keys()))
        outcome = scheme.restore(1, 4, FailureScenario.link_set([failed]))
        assert outcome.restored
        assert not outcome.route.uses_edge(*failed)

    def test_exhausted_plan_fails(self, line5):
        scheme = KShortestPathsScheme(line5, k=2, weighted=False)
        outcome = scheme.restore(0, 4, FailureScenario.single_link(1, 2))
        assert not outcome.restored

    def test_k_validation(self, diamond):
        with pytest.raises(ValueError):
            KShortestPathsScheme(diamond, k=0)

    def test_coverage_improves_with_k(self):
        graph = generate_isp_topology(n=40, seed=23)
        nodes = sorted(graph.nodes, key=repr)
        s, t = nodes[0], nodes[-1]
        base = UniqueShortestPathsBase(graph)
        primary = base.path_for(s, t)
        scenarios = [
            FailureScenario.link_set([e]) for e in primary.edge_keys()
        ]

        def coverage(k: int) -> int:
            scheme = KShortestPathsScheme(graph, k=k)
            return sum(scheme.restore(s, t, sc).restored for sc in scenarios)

        assert coverage(1) <= coverage(3) <= coverage(6)


class TestNodeDisjointBackup:
    def test_avoids_interior_routers(self):
        from repro.graph.ksp import node_disjoint_backup

        graph = generate_isp_topology(n=50, seed=17)
        base = UniqueShortestPathsBase(graph)
        nodes = sorted(graph.nodes, key=repr)
        primary = base.path_for(nodes[0], nodes[-1])
        backup = node_disjoint_backup(graph, primary)
        if backup is None:
            pytest.skip("no node-disjoint alternative in this sample")
        assert not (set(backup.interior_nodes()) & set(primary.interior_nodes()))

    def test_none_on_cut_vertex(self):
        from repro.graph.ksp import node_disjoint_backup

        g = Graph.from_edges([(1, 2), (2, 3), (1, 4), (4, 2)])
        # Every 1->3 path goes through router 2.
        primary = Path([1, 2, 3])
        assert node_disjoint_backup(g, primary) is None

    def test_scheme_survives_router_failure(self):
        graph = generate_isp_topology(n=50, seed=17)
        base = UniqueShortestPathsBase(graph)
        scheme = DisjointBackupScheme(
            graph, base, suurballe=False, disjointness="node"
        )
        nodes = sorted(graph.nodes, key=repr)
        tested = 0
        for s, t in [(nodes[0], nodes[-1]), (nodes[2], nodes[-4])]:
            primary, backup = scheme.provision(s, t)
            if backup is None:
                continue
            for victim in primary.interior_nodes():
                outcome = scheme.restore(
                    s, t, FailureScenario.single_router(victim)
                )
                assert outcome.restored
                tested += 1
        assert tested >= 2

    def test_edge_disjoint_scheme_can_die_on_router(self):
        """The weaker edge-disjoint baseline fails some router failures
        that the node-disjoint one survives — the reason Table 2 has
        separate router rows."""
        graph = generate_isp_topology(n=50, seed=17)
        base = UniqueShortestPathsBase(graph)
        edge_scheme = DisjointBackupScheme(graph, base, suurballe=True)
        node_scheme = DisjointBackupScheme(
            graph, base, suurballe=False, disjointness="node"
        )
        nodes = sorted(graph.nodes, key=repr)
        weaker_somewhere = False
        for s in nodes[:8]:
            for t in nodes[-8:]:
                if s == t:
                    continue
                primary, backup = edge_scheme.provision(s, t)
                if backup is None:
                    continue
                shared = set(primary.interior_nodes()) & set(backup.interior_nodes())
                for victim in shared:
                    edge_out = edge_scheme.restore(
                        s, t, FailureScenario.single_router(victim)
                    )
                    node_out = node_scheme.restore(
                        s, t, FailureScenario.single_router(victim)
                    )
                    if not edge_out.restored and node_out.restored:
                        weaker_somewhere = True
        assert weaker_somewhere

    def test_invalid_disjointness_rejected(self):
        graph = generate_isp_topology(n=20, seed=1)
        base = UniqueShortestPathsBase(graph)
        with pytest.raises(ValueError):
            DisjointBackupScheme(graph, base, disjointness="quantum")


class TestMaxFlowScheme:
    def test_survives_every_single_link_failure(self):
        from repro.core.baselines import MaxFlowScheme

        graph = generate_isp_topology(n=50, seed=17)
        scheme = MaxFlowScheme(graph)
        nodes = sorted(graph.nodes, key=repr)
        s, t = nodes[0], nodes[-1]
        plan = scheme.provision(s, t)
        assert len(plan) >= 2  # dual-homed: at least two disjoint routes
        # Menger: some pre-established path survives ANY single link cut.
        for u, v in graph.edges():
            outcome = scheme.restore(s, t, FailureScenario.single_link(u, v))
            assert outcome.restored

    def test_plan_is_cost_sorted_and_disjoint(self):
        from repro.core.baselines import MaxFlowScheme

        graph = generate_isp_topology(n=50, seed=17)
        scheme = MaxFlowScheme(graph)
        nodes = sorted(graph.nodes, key=repr)
        plan = scheme.provision(nodes[2], nodes[-2])
        costs = [p.cost(graph) for p in plan]
        assert costs == sorted(costs)
        used = set()
        for path in plan:
            for key in path.edge_keys():
                assert key not in used
                used.add(key)

    def test_footprint_exceeds_single_backup(self):
        from repro.core.baselines import MaxFlowScheme

        graph = generate_isp_topology(n=50, seed=17)
        base = UniqueShortestPathsBase(graph)
        nodes = sorted(graph.nodes, key=repr)
        s, t = nodes[0], nodes[-1]
        maxflow_scheme = MaxFlowScheme(graph)
        maxflow_scheme.provision(s, t)
        disjoint = DisjointBackupScheme(graph, base)
        disjoint.provision(s, t)
        assert maxflow_scheme.ilm_entries() >= disjoint.ilm_entries() * 0.9
