"""MPLS label spaces and per-router label allocation.

Labels are the scarce resource the paper keeps returning to: ILM tables
live in fast, expensive memory, and the whole point of RBPC is to avoid
pre-provisioning a backup-LSP label for every (path, failure)
combination.  This module models a per-platform label space with the
real MPLS constraints:

* labels ``0-15`` are reserved (RFC 3032) — :data:`EXPLICIT_NULL` and
  :data:`IMPLICIT_NULL` are modelled because penultimate-hop popping
  (Section 6 of the paper) uses implicit null;
* allocation is first-free with a free list, so label reuse after LSP
  teardown behaves like a real LSR;
* exhaustion raises :class:`~repro.exceptions.LabelSpaceExhausted`,
  which the experiments use to find the breaking point of naive
  per-failure backup pre-provisioning.
"""

from __future__ import annotations

from ..exceptions import LabelSpaceExhausted

#: RFC 3032 reserved label values.
IPV4_EXPLICIT_NULL = 0
ROUTER_ALERT = 1
IMPLICIT_NULL = 3

#: First label available for ordinary allocation.
MIN_LABEL = 16

#: A 20-bit label field, as in the MPLS shim header.
MAX_LABEL = (1 << 20) - 1

Label = int


class LabelAllocator:
    """First-free label allocator over ``[MIN_LABEL, max_label]``.

    >>> alloc = LabelAllocator(max_label=17)
    >>> alloc.allocate()
    16
    >>> alloc.allocate()
    17
    >>> alloc.release(16)
    >>> alloc.allocate()
    16
    """

    __slots__ = ("_max_label", "_next", "_free", "_in_use")

    def __init__(self, max_label: Label = MAX_LABEL) -> None:
        if max_label < MIN_LABEL:
            raise ValueError(f"max_label must be >= {MIN_LABEL}")
        self._max_label = max_label
        self._next = MIN_LABEL
        self._free: list[Label] = []
        self._in_use: set[Label] = set()

    @property
    def capacity(self) -> int:
        """Total number of allocatable labels."""
        return self._max_label - MIN_LABEL + 1

    @property
    def in_use(self) -> int:
        """Number of currently allocated labels."""
        return len(self._in_use)

    def allocate(self) -> Label:
        """Return a fresh label; raises :class:`LabelSpaceExhausted` when full."""
        if self._free:
            label = self._free.pop()
        elif self._next <= self._max_label:
            label = self._next
            self._next += 1
        else:
            raise LabelSpaceExhausted(
                f"all {self.capacity} labels in use"
            )
        self._in_use.add(label)
        return label

    def release(self, label: Label) -> None:
        """Return *label* to the pool; raises ``ValueError`` if not allocated."""
        if label not in self._in_use:
            raise ValueError(f"label {label} is not allocated")
        self._in_use.remove(label)
        self._free.append(label)

    def is_allocated(self, label: Label) -> bool:
        """True if *label* is currently allocated."""
        return label in self._in_use
