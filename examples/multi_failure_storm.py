#!/usr/bin/env python
"""Scenario: a failure storm — k links die, RBPC keeps concatenating.

Theorems 1-2 say restoration after k failures needs at most k+1 base
paths (plus k edges in the weighted case).  This example stress-tests
that on a live domain: links fail one after another on a demand's
successive routes, and after each failure the source re-restores by
concatenation.  We track the PC length against the theoretical bound
at every step, and verify delivery by forwarding real packets.

Run:  python examples/multi_failure_storm.py [--failures 4] [--seed 2]
"""

import argparse

from repro.core import (
    SourceRouterRbpc,
    UniqueShortestPathsBase,
    provision_base_set,
    theorem2_bound,
)
from repro.exceptions import NoRestorationPath
from repro.mpls import MplsNetwork
from repro.topology import generate_isp_topology


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--failures", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    graph = generate_isp_topology(n=150, seed=args.seed)
    net = MplsNetwork(graph)
    base = UniqueShortestPathsBase(graph)

    nodes = sorted(graph.nodes, key=repr)
    source, destination = nodes[0], nodes[-1]
    primary = base.path_for(source, destination)
    registry = provision_base_set(net, base, pairs=[(source, destination)])
    net.set_fec(source, destination, [registry[primary]])
    scheme = SourceRouterRbpc(net, base, registry)

    print(f"demand {source} -> {destination}; primary: {primary.hops} hops")
    current = primary
    for k in range(1, args.failures + 1):
        # The storm always hits the route currently carrying traffic.
        failed = list(current.edges())[current.hops // 2]
        net.fail_link(*failed)
        try:
            action = scheme.restore(source, destination)
        except NoRestorationPath:
            print(f"k={k}: {failed} disconnected the demand — storm over")
            return
        result = net.inject(source, destination)
        assert result.delivered
        decomposition = action.decomposition
        max_paths, max_edges = theorem2_bound(k)
        print(
            f"k={k}: failed {failed} -> restored with "
            f"{decomposition.num_base_paths} base paths + "
            f"{decomposition.num_extra_edges} edges "
            f"(theorem bound: {max_paths} + {max_edges}); "
            f"route now {len(result.walk) - 1} hops, "
            f"stack depth {result.packet.max_stack_depth}"
        )
        assert decomposition.num_base_paths <= max_paths
        assert decomposition.num_extra_edges <= max_edges
        current = decomposition.path

    print(
        f"\ntotal signaling messages for the whole storm: "
        f"{sum(e.messages for e in net.ledger.by_kind('fec_update'))} "
        f"(every restoration was a local FEC rewrite)"
    )


if __name__ == "__main__":
    main()
