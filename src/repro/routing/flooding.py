"""LSA flooding simulation: when does each router learn of a failure?

Local RBPC's selling point is *immediacy* — the adjacent router patches
the LSP "as soon as the failure is detected, without waiting for the
link-state protocol to propagate failure information to the path
source" (Section 4.2).  Quantifying that advantage requires a flooding
model:

* the two endpoints of a failed link detect it after
  ``detection_delay`` (loss-of-light / hello timeout);
* each router that learns of the failure re-floods to all neighbors
  over surviving links, each hop adding ``per_hop_delay`` (propagation
  + processing);
* a router acts on the failure after an additional ``spf_delay``
  (SPF computation / FEC update time).

:func:`flood_times` computes the learn-time of every router, which the
hybrid scheme (:mod:`repro.core.hybrid`) uses to decide, per moment,
whether a packet is routed by the local patch or the source re-route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..graph.graph import Node
from ..graph.heap import AddressableHeap
from ..obs.events import EventLog


@dataclass(frozen=True)
class FloodingModel:
    """Timing parameters of failure detection and LSA propagation (seconds)."""

    detection_delay: float = 0.01
    per_hop_delay: float = 0.005
    spf_delay: float = 0.05

    def __post_init__(self) -> None:
        if min(self.detection_delay, self.per_hop_delay, self.spf_delay) < 0:
            raise ValueError("flooding delays must be non-negative")


def flood_times(
    surviving_graph,
    origins: list[Node],
    model: FloodingModel = FloodingModel(),
    events: Optional[EventLog] = None,
) -> dict[Node, float]:
    """Time at which each router *learns* of the failure.

    *origins* are the detecting routers (the failed link's endpoints, or
    a failed router's neighbors); flooding spreads over
    *surviving_graph*.  Unreached routers (partitioned away) are absent
    from the result — they never learn.

    With *events* given, each learn instant is recorded as a
    ``flood-learn`` event (see :mod:`repro.obs.events`) in settle
    order, so the analytic flood front can be rendered on the same
    timeline as the discrete-event simulation's ``lsa-hop`` records.
    """
    times: dict[Node, float] = {}
    heap: AddressableHeap[Node] = AddressableHeap()
    for origin in origins:
        if surviving_graph.has_node(origin):
            heap.push_or_decrease(origin, model.detection_delay)
    while heap:
        router, t = heap.pop()
        times[router] = t  # type: ignore[assignment]
        if events is not None:
            events.emit(t, router, "flood-learn", origins=list(origins))
        for neighbor in surviving_graph.neighbors(router):
            if neighbor not in times:
                heap.push_or_decrease(neighbor, t + model.per_hop_delay)  # type: ignore[operator]
    return times


def action_time(learn_time: float, model: FloodingModel = FloodingModel()) -> float:
    """Time at which a router that learned at *learn_time* has re-routed."""
    return learn_time + model.spf_delay


def source_restoration_time(
    surviving_graph,
    failed_endpoints: list[Node],
    source: Node,
    model: FloodingModel = FloodingModel(),
) -> float:
    """When source-router RBPC takes effect for a path from *source*.

    ``float('inf')`` if the source never learns (partitioned).
    """
    times = flood_times(surviving_graph, failed_endpoints, model)
    if source not in times:
        return float("inf")
    return action_time(times[source], model)


def local_restoration_time(model: FloodingModel = FloodingModel()) -> float:
    """When local RBPC takes effect: detection plus the local table write.

    The adjacent router needs no flood and no SPF — only the ILM entry
    swap, which we charge at one ``per_hop_delay`` of processing.
    """
    return model.detection_delay + model.per_hop_delay
