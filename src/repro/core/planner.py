"""Per-link FEC update precomputation (Section 4.1, Figure 7).

"For each link in the network the router has a set of changes to its
FEC table ... a new entry for each destination that used the failed
link in the original routing.  When a link fails, the original FEC
entries are updated by substituting these new entries."

:class:`FailurePlanner` does that precomputation for a demand set:
given a link, it returns — instantly, from an index — the list of
(source, destination, decomposition) updates to apply.  The difference
between looking this up and computing it online is the paper's "fastest
if pre-computed and indexed by the specific link failure".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import NoRestorationPath
from ..graph.graph import Edge, Graph, Node, edge_key
from ..graph.paths import Path
from .base_paths import BaseSet
from .decomposition import Decomposition
from .restoration import plan_restoration


@dataclass(frozen=True)
class FecUpdate:
    """One precomputed FEC rewrite: which demand, which replacement pieces."""

    source: Node
    destination: Node
    decomposition: Decomposition


class FailurePlanner:
    """Precomputed link-failure → FEC-update-set index for a demand set.

    Parameters
    ----------
    graph:
        The (pre-failure) topology.
    base_set:
        The provisioned base paths; primaries come from
        ``base_set.path_for`` and replacement pieces must be members.
    demands:
        The (source, destination) pairs whose traffic matters.
    weighted:
        Cost model for the replacement shortest paths.
    precompute:
        With ``True`` every link's update set is computed eagerly at
        construction (maximum-readiness mode); otherwise sets are
        computed on first use and cached.
    """

    def __init__(
        self,
        graph: Graph,
        base_set: BaseSet,
        demands: list[tuple[Node, Node]],
        weighted: bool = True,
        precompute: bool = False,
    ) -> None:
        self.graph = graph
        self.base_set = base_set
        self.weighted = weighted
        self.demands = list(demands)
        self._primaries: dict[tuple[Node, Node], Path] = {
            (s, t): base_set.path_for(s, t) for s, t in self.demands
        }
        # link -> demands whose primary uses it
        self._affected: dict[Edge, list[tuple[Node, Node]]] = {}
        for pair, primary in self._primaries.items():
            for key in primary.edge_keys():
                self._affected.setdefault(key, []).append(pair)
        self._cache: dict[Edge, list[FecUpdate]] = {}
        if precompute:
            for link in list(self._affected):
                self.updates_for_link(*link)

    def primary_path(self, source: Node, target: Node) -> Path:
        """The demand's provisioned primary path."""
        return self._primaries[(source, target)]

    def affected_demands(self, u: Node, v: Node) -> list[tuple[Node, Node]]:
        """Demands whose primary path crosses link *(u, v)*."""
        return list(self._affected.get(edge_key(u, v), []))

    def updates_for_link(self, u: Node, v: Node) -> list[FecUpdate]:
        """The FEC update set for failure of link *(u, v)*.

        Demands that the failure disconnects are silently omitted — no
        FEC entry can help them (the fraction is reported by
        :meth:`unrestorable_demands`).
        """
        key = edge_key(u, v)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        view = self.graph.without(edges=[key])
        updates: list[FecUpdate] = []
        for source, destination in self._affected.get(key, []):
            try:
                decomposition = plan_restoration(
                    view, self.base_set, source, destination, weighted=self.weighted
                )
            except NoRestorationPath:
                continue
            updates.append(FecUpdate(source, destination, decomposition))
        self._cache[key] = updates
        return updates

    def unrestorable_demands(self, u: Node, v: Node) -> list[tuple[Node, Node]]:
        """Affected demands with no surviving path (the link was their bridge)."""
        restored = {
            (update.source, update.destination)
            for update in self.updates_for_link(u, v)
        }
        return [
            pair for pair in self.affected_demands(u, v) if pair not in restored
        ]

    def index_size(self) -> int:
        """Total precomputed updates across all cached links."""
        return sum(len(updates) for updates in self._cache.values())
