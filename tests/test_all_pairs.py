"""Tests for the APSP distance oracles."""

from __future__ import annotations

import pytest

from repro.exceptions import NoPath
from repro.graph.all_pairs import ApspDistances, LazyDistanceOracle
from repro.graph.graph import Graph
from repro.graph.shortest_paths import costs_equal, dijkstra


class TestApspDistances:
    def test_all_distances(self, weighted_diamond):
        apsp = ApspDistances.compute(weighted_diamond)
        assert apsp.distance(1, 4) == 2.0
        assert apsp.distance(4, 1) == 2.0
        assert apsp.distance(2, 3) == 3.0  # via 1 or 4, not the w=5 chord

    def test_restricted_sources(self, diamond):
        apsp = ApspDistances.compute(diamond, sources=[1])
        assert apsp.distance(1, 4) == 2.0
        with pytest.raises(NoPath):
            apsp.distance(2, 4)  # source 2 not covered
        assert list(apsp.sources) == [1]

    def test_unreachable_raises(self):
        g = Graph.from_edges([(1, 2), (3, 4)])
        apsp = ApspDistances.compute(g)
        with pytest.raises(NoPath):
            apsp.distance(1, 3)
        assert not apsp.has_path(1, 3)
        assert apsp.has_path(1, 2)

    def test_path_reconstruction(self, weighted_diamond):
        apsp = ApspDistances.compute(weighted_diamond)
        path = apsp.path(1, 4)
        assert path.nodes == (1, 2, 4)

    def test_is_shortest(self, diamond):
        apsp = ApspDistances.compute(diamond)
        assert apsp.is_shortest(apsp.path(1, 4), 2.0)
        assert not apsp.is_shortest(apsp.path(1, 4), 3.0)

    def test_average_distance(self, line5):
        apsp = ApspDistances.compute(line5)
        # Pairs at distances 1,2,3,4 symmetric: mean = 2 * (4*1+3*2+2*3+1*4) / 20.
        assert apsp.average_distance() == pytest.approx(2.0)

    def test_average_distance_empty(self):
        g = Graph()
        g.add_node(1)
        assert ApspDistances.compute(g).average_distance() == 0.0

    def test_tie_break_by_hops(self):
        g = Graph.from_edges([(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 3)])
        apsp = ApspDistances.compute(g, break_ties_by_hops=True)
        assert apsp.path(0, 3).hops == 1


class TestLazyDistanceOracle:
    def test_matches_eager(self, small_isp):
        lazy = LazyDistanceOracle(small_isp)
        nodes = sorted(small_isp.nodes, key=repr)
        eager = ApspDistances.compute(small_isp, sources=nodes[:3])
        for s in nodes[:3]:
            for t in nodes[::7]:
                if s == t:
                    continue
                assert costs_equal(lazy.distance(s, t), eager.distance(s, t))

    def test_caches_sources(self, diamond):
        lazy = LazyDistanceOracle(diamond)
        assert lazy.cached_sources() == []
        lazy.distance(1, 4)
        assert lazy.cached_sources() == [1]
        lazy.distance(1, 3)
        assert lazy.cached_sources() == [1]  # reused, not recomputed

    def test_unreachable_raises(self):
        g = Graph.from_edges([(1, 2), (3, 4)])
        lazy = LazyDistanceOracle(g)
        with pytest.raises(NoPath):
            lazy.distance(1, 4)
        assert not lazy.has_path(1, 4)

    def test_path(self, weighted_diamond):
        lazy = LazyDistanceOracle(weighted_diamond)
        assert lazy.path(1, 4).cost(weighted_diamond) == 2.0

    def test_oracle_on_view(self, diamond):
        view = diamond.without(edges=[(1, 2)])
        lazy = LazyDistanceOracle(view)
        assert lazy.distance(1, 4) == 2.0  # via 3
        assert lazy.path(1, 4).nodes == (1, 3, 4)
