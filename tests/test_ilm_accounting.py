"""Tests for the per-link ILM stretch accounting (Table 2, faithful mode)."""

from __future__ import annotations

import pytest

from repro.core.base_paths import UniqueShortestPathsBase
from repro.experiments.ilm_accounting import IlmAccountant, scenarios_from_cases
from repro.failures.models import FailureScenario
from repro.failures.sampler import FailureCase, link_failure_cases, sample_pairs
from repro.graph.graph import Graph
from repro.graph.paths import Path
from repro.topology.isp import generate_isp_topology


@pytest.fixture(scope="module")
def world():
    graph = generate_isp_topology(n=40, seed=3)
    base = UniqueShortestPathsBase(graph)
    return graph, base


class TestAccountant:
    def test_empty_run_is_nan(self, world):
        graph, base = world
        accountant = IlmAccountant(graph, base)
        min_sf, avg_sf = accountant.stretch_factors()
        assert min_sf != min_sf and avg_sf != avg_sf  # NaN

    def test_single_scenario_counts_affected_demands(self, world):
        graph, base = world
        accountant = IlmAccountant(graph, base)
        nodes = sorted(graph.nodes, key=repr)
        primary = base.path_for(nodes[0], nodes[-1])
        failed = next(iter(primary.edge_keys()))
        affected = accountant.process_scenario(
            FailureScenario.link_set([failed])
        )
        # At minimum the demand we derived the link from is affected.
        assert affected >= 1
        assert accountant.scenarios_processed == 1
        assert accountant.demands_restored + accountant.demands_unrestorable == affected

    def test_stretch_below_100_percent(self, world):
        """Sharing must make the base table smaller than naive backups."""
        graph, base = world
        accountant = IlmAccountant(graph, base)
        pairs = sample_pairs(graph, 10, seed=2)
        cases = []
        for pair in pairs:
            cases.extend(link_failure_cases(pair, base.path_for(*pair), k=1))
        accountant.process_scenarios(scenarios_from_cases(cases))
        min_sf, avg_sf = accountant.stretch_factors()
        assert 0 < min_sf <= avg_sf
        assert avg_sf < 100.0

    def test_table_sizes_consistent(self, world):
        graph, base = world
        accountant = IlmAccountant(graph, base)
        nodes = sorted(graph.nodes, key=repr)
        primary = base.path_for(nodes[0], nodes[-1])
        accountant.process_scenario(
            FailureScenario.link_set([next(iter(primary.edge_keys()))])
        )
        base_entries, naive_entries = accountant.table_sizes()
        assert 0 < base_entries
        assert base_entries <= naive_entries + base_entries  # sanity
        assert accountant.base_lsp_count() >= 1

    def test_restricted_demand_sources(self, world):
        graph, base = world
        nodes = sorted(graph.nodes, key=repr)
        accountant = IlmAccountant(graph, base, demand_sources=nodes[:3])
        primary = base.path_for(nodes[0], nodes[-1])
        affected = accountant.process_scenario(
            FailureScenario.link_set([next(iter(primary.edge_keys()))])
        )
        full = IlmAccountant(graph, base)
        affected_full = full.process_scenario(
            FailureScenario.link_set([next(iter(primary.edge_keys()))])
        )
        assert affected <= affected_full

    def test_bridge_demand_counted_unrestorable(self):
        g = Graph.from_edges([(1, 2), (2, 3), (3, 1), (3, 4)])
        base = UniqueShortestPathsBase(g)
        accountant = IlmAccountant(g, base)
        accountant.process_scenario(FailureScenario.single_link(3, 4))
        assert accountant.demands_unrestorable > 0

    def test_more_scenarios_never_raise_stretch(self, world):
        """Adding scenarios adds naive backups faster than shared pieces."""
        graph, base = world
        pairs = sample_pairs(graph, 12, seed=5)
        cases = []
        for pair in pairs:
            cases.extend(link_failure_cases(pair, base.path_for(*pair), k=1))
        scenarios = scenarios_from_cases(cases)
        few = IlmAccountant(graph, base)
        few.process_scenarios(scenarios[:3])
        many = IlmAccountant(graph, base)
        many.process_scenarios(scenarios)
        assert many.stretch_factors()[1] <= few.stretch_factors()[1] + 10.0


class TestScenariosFromCases:
    def test_dedup_preserves_order(self):
        primary = Path([1, 2, 3])
        sc1 = FailureScenario.single_link(1, 2)
        sc2 = FailureScenario.single_link(2, 3)
        cases = [
            FailureCase(1, 3, primary, sc1),
            FailureCase(1, 3, primary, sc2),
            FailureCase(4, 5, primary, sc1),  # duplicate scenario
        ]
        assert scenarios_from_cases(cases) == [sc1, sc2]
