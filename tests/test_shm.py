"""Shared-memory CSR publication: format, lifecycle, and fan-out identity.

Four contracts pinned here:

* **Format round-trip** — a published segment attaches back to a
  ``CsrGraph`` whose buffers are byte-identical to the in-process
  snapshot, with zero payload copies (the attached arrays are
  memoryview casts over the shared pages).
* **Validation** — segments with a wrong magic, a future format
  version, or a foreign tie-order contract are refused with
  :class:`ShmFormatError`, never reinterpreted.
* **Lifecycle / leak-freedom** — after normal teardown *and* after an
  exception inside the publication scope, ``residual_segments()`` is
  empty; attach-side handles can never unlink a creator's segment.
* **Fan-out identity** — per-link ILM accounting produces byte-identical
  results at ``--jobs 1`` and ``--jobs 4``, with shared memory enabled
  and with ``REPRO_SHM=0`` (the rebuild fallback).
"""

from __future__ import annotations

import random

import pytest

from repro.core.cache import shared_unique_base
from repro.experiments import table2
from repro.experiments.ilm_accounting import IlmAccountant
from repro.experiments.networks import cached_suite
from repro.experiments.parallel import chunk_bounds, make_executor, publish_suite
from repro.failures.sampler import sample_pairs
from repro.graph import shm
from repro.graph.csr import CsrGraph, shared_csr
from repro.graph.shm import (
    ShmFormatError,
    attach_csr,
    attach_csr_cached,
    attach_rows,
    detach_all,
    publish_csr,
    publish_rows,
    residual_segments,
    segment_exists,
)
from repro.topology import (
    complete_graph,
    cycle_graph,
    four_cycle,
    generate_as_graph,
    generate_internet_graph,
    generate_isp_topology,
    grid_graph,
    path_graph,
)
from repro.topology.classic import (
    comb_graph,
    two_level_star,
    weighted_comb_graph,
)
from repro.topology.powerlaw import preferential_attachment


def publish_or_skip(csr: CsrGraph):
    seg = publish_csr(csr)
    if seg is None:
        pytest.skip("shared memory unavailable on this platform")
    return seg


class TestFormatRoundTrip:
    def test_attach_reproduces_buffers_exactly(self):
        csr = shared_csr(grid_graph(3, 4))
        with publish_or_skip(csr) as seg:
            attached, handle = attach_csr(seg.name)
            try:
                assert attached.nodes == csr.nodes
                assert attached.n == csr.n
                assert attached.directed == csr.directed
                assert attached.source_version == csr.source_version
                assert bytes(attached.indptr) == bytes(csr.indptr)
                assert bytes(attached.indices) == bytes(csr.indices)
                assert bytes(attached.weights) == bytes(csr.weights)
            finally:
                handle.close()

    def test_attach_is_zero_copy(self):
        """The numeric sections come back as casts over the shared pages."""
        csr = shared_csr(cycle_graph(5))
        with publish_or_skip(csr) as seg:
            attached, handle = attach_csr(seg.name)
            try:
                for buf in (attached.indptr, attached.indices, attached.weights):
                    assert isinstance(buf, memoryview)
                    assert buf.readonly is False  # cast of the live mapping
                # The graph pins its segment so the mapping outlives
                # local references to the handle.
                assert attached.keepalive is handle
            finally:
                handle.close()

    def test_empty_graph_round_trips(self):
        from repro.graph.graph import Graph

        csr = CsrGraph(Graph())
        with publish_or_skip(csr) as seg:
            attached, handle = attach_csr(seg.name)
            try:
                assert attached.n == 0
                assert attached.nodes == []
                assert len(attached.indices) == 0
            finally:
                handle.close()


class TestValidation:
    def _corrupt(self, seg, offset: int, payload: bytes) -> None:
        view = shm._attach_untracked(seg.name)
        try:
            view.buf[offset : offset + len(payload)] = payload
        finally:
            view.close()

    def test_version_mismatch_is_refused(self):
        csr = shared_csr(path_graph(4))
        with publish_or_skip(csr) as seg:
            # Preamble layout: magic[0:4], version u32 [4:8].
            self._corrupt(seg, 4, (999).to_bytes(4, "little"))
            with pytest.raises(ShmFormatError, match="format v999"):
                attach_csr(seg.name)

    def test_bad_magic_is_refused(self):
        csr = shared_csr(path_graph(4))
        with publish_or_skip(csr) as seg:
            self._corrupt(seg, 0, b"NOPE")
            with pytest.raises(ShmFormatError, match="magic"):
                attach_csr(seg.name)

    def test_foreign_tie_order_is_refused(self, monkeypatch):
        csr = shared_csr(path_graph(4))
        with publish_or_skip(csr) as seg:
            monkeypatch.setattr(shm, "SHM_TIE_ORDER", "hops")
            with pytest.raises(ShmFormatError, match="tie order"):
                attach_csr(seg.name)

    def test_failed_attach_leaves_no_local_handle(self):
        csr = shared_csr(path_graph(4))
        with publish_or_skip(csr) as seg:
            self._corrupt(seg, 0, b"NOPE")
            with pytest.raises(ShmFormatError):
                attach_csr(seg.name)
            # The refused attach closed its own mapping; the creator's
            # segment itself is untouched and still published.
            assert segment_exists(seg.name)


class TestLifecycle:
    def test_normal_teardown_leaves_no_residue(self):
        csr = shared_csr(four_cycle())
        seg = publish_or_skip(csr)
        name = seg.name
        assert segment_exists(name)
        seg.close()
        seg.unlink()
        assert not segment_exists(name)
        assert residual_segments() == []

    def test_exceptional_teardown_leaves_no_residue(self):
        csr = shared_csr(four_cycle())
        name = None
        with pytest.raises(RuntimeError, match="boom"):
            with publish_or_skip(csr) as seg:
                name = seg.name
                raise RuntimeError("boom")
        assert name is not None
        assert not segment_exists(name)
        assert residual_segments() == []

    def test_attacher_cannot_unlink(self):
        csr = shared_csr(four_cycle())
        with publish_or_skip(csr) as seg:
            _attached, handle = attach_csr(seg.name)
            handle.unlink()  # no-op: not the creator
            assert segment_exists(seg.name)
            handle.close()
        assert not segment_exists(seg.name)

    def test_close_and_unlink_are_idempotent(self):
        csr = shared_csr(four_cycle())
        seg = publish_or_skip(csr)
        for _ in range(2):
            seg.close()
            seg.unlink()
        assert residual_segments() == []

    def test_attach_cache_is_per_name_and_detachable(self):
        csr = shared_csr(grid_graph(2, 3))
        with publish_or_skip(csr) as seg:
            first = attach_csr_cached(seg.name)
            second = attach_csr_cached(seg.name)
            assert first is second
            detach_all()
            third = attach_csr_cached(seg.name)
            assert third is not first
            detach_all()

    def test_disabled_publication_falls_back(self, monkeypatch):
        from repro.perf import COUNTERS

        monkeypatch.setenv("REPRO_SHM", "0")
        before = COUNTERS.shm_fallbacks
        assert publish_csr(shared_csr(path_graph(3))) is None
        assert COUNTERS.shm_fallbacks == before + 1

    def test_oversize_payload_falls_back(self, monkeypatch):
        from repro.perf import COUNTERS

        monkeypatch.setenv("REPRO_SHM_MAX_BYTES", "16")
        before = COUNTERS.shm_fallbacks
        assert publish_csr(shared_csr(complete_graph(6))) is None
        assert COUNTERS.shm_fallbacks == before + 1
        assert residual_segments() == []


#: One small instance per topology family the generators can produce.
TOPOLOGY_FAMILIES = [
    ("path", lambda: path_graph(7)),
    ("cycle", lambda: cycle_graph(6)),
    ("four-cycle", lambda: four_cycle()),
    ("complete", lambda: complete_graph(5)),
    ("grid", lambda: grid_graph(3, 4)),
    ("comb", lambda: comb_graph(4)[0]),
    ("weighted-comb", lambda: weighted_comb_graph(4)[0]),
    ("two-level-star", lambda: two_level_star(7)[0]),
    ("isp-weighted", lambda: generate_isp_topology(n=40, seed=3)),
    ("isp-unweighted", lambda: generate_isp_topology(n=40, seed=3, weighted=False)),
    ("powerlaw", lambda: preferential_attachment(50, 2.0, seed=5)),
    ("as-graph", lambda: generate_as_graph(n=60, seed=2)),
    ("internet", lambda: generate_internet_graph(n=60, seed=2)),
]


class TestEveryTopologyFamily:
    """Property: publish/attach is the identity on CSR buffers, for a
    representative of every topology family the repo generates."""

    @pytest.mark.parametrize(
        "family", [f for _, f in TOPOLOGY_FAMILIES],
        ids=[name for name, _ in TOPOLOGY_FAMILIES],
    )
    def test_round_trip_preserves_family_csr(self, family):
        csr = shared_csr(family())
        with publish_or_skip(csr) as seg:
            attached, handle = attach_csr(seg.name)
            try:
                assert attached.nodes == csr.nodes
                assert bytes(attached.indptr) == bytes(csr.indptr)
                assert bytes(attached.indices) == bytes(csr.indices)
                assert bytes(attached.weights) == bytes(csr.weights)
            finally:
                handle.close()
        assert residual_segments() == []


def _ilm_reference(network, pairs, scenarios):
    """Sequential per-link accounting for one network/mode."""
    base = shared_unique_base(network.graph)
    accountant = IlmAccountant(
        network.graph,
        base,
        demand_sources=table2.ilm_demand_sources(network.graph, pairs),
        weighted=network.weighted,
    )
    accountant.process_scenarios(scenarios)
    return accountant


def _ilm_summary(accountant):
    return (
        accountant.stretch_factors(),
        accountant.table_sizes(),
        accountant.base_lsp_count(),
        accountant.demands_restored,
        accountant.demands_unrestorable,
    )


class TestIlmChunkMergeIdentity:
    """The order-free accountant merge: chunked == sequential, exactly."""

    def test_shuffled_chunk_merge_matches_sequential(self):
        network = cached_suite(scale="tiny", seed=1)[0]
        base = shared_unique_base(network.graph)
        pairs = sample_pairs(network.graph, network.sample_pairs, seed=1)
        scenarios = table2.ilm_scenarios(base, pairs, "link", 200)
        assert len(scenarios) > 4

        sequential = _ilm_reference(network, pairs, scenarios)

        states = []
        for start, end in chunk_bounds(len(scenarios), 4):
            chunk = IlmAccountant(
                network.graph,
                base,
                demand_sources=table2.ilm_demand_sources(network.graph, pairs),
                weighted=network.weighted,
            )
            chunk.process_scenarios(scenarios[start:end])
            states.append(chunk.export_state())
        random.Random(7).shuffle(states)  # merge must be order-free

        merged = IlmAccountant(
            network.graph,
            base,
            demand_sources=table2.ilm_demand_sources(network.graph, pairs),
            weighted=network.weighted,
        )
        for state in states:
            merged.merge_state(state)

        assert _ilm_summary(merged) == _ilm_summary(sequential)


class TestIlmJobsIdentity:
    """End-to-end: per-link rows identical at jobs=1 and jobs=4, with
    the shared-memory fast path and with REPRO_SHM=0 (rebuild fallback)."""

    def _rows(self, jobs: int) -> dict:
        network = cached_suite(scale="tiny", seed=1)[0]
        executor = make_executor(jobs) if jobs > 1 else None
        publication = None
        try:
            if executor is not None:
                publication = publish_suite([network], with_base=True)
            return table2.evaluate_network(
                network,
                modes=("link",),
                seed=1,
                with_multiplicity=False,
                ilm_accounting="per-link",
                jobs=jobs,
                suite_ref=("tiny", 1, 0),
                executor=executor,
                shm_ref=publication.ref(0) if publication else None,
            )
        finally:
            if executor is not None:
                executor.shutdown()
            if publication is not None:
                publication.release()

    def test_jobs4_matches_jobs1_with_shm(self):
        from repro.perf import COUNTERS

        sequential = self._rows(jobs=1)
        before_chunks = COUNTERS.ilm_scenario_chunks
        parallel = self._rows(jobs=4)
        assert parallel == sequential
        assert COUNTERS.ilm_scenario_chunks > before_chunks
        assert residual_segments() == []

    def test_jobs4_matches_jobs1_without_shm(self, monkeypatch):
        sequential = self._rows(jobs=1)
        monkeypatch.setenv("REPRO_SHM", "0")
        parallel = self._rows(jobs=4)
        assert parallel == sequential
        assert residual_segments() == []


# -- warm-row (RROW) segments -------------------------------------------------


def _warm_spt_cache(graph, sources=(0, 1, 2), weighted=True):
    """A fresh (non-shared) SptCache with rows built for *sources*."""
    from repro.graph.incremental import SptCache

    cache = SptCache(graph, weighted=weighted)
    cache.ensure_rows(sources)
    return cache


def publish_rows_or_skip(kind, n, weighted, version, rows):
    seg = publish_rows(kind, n, weighted, version, rows)
    if seg is None:
        pytest.skip("shared memory unavailable on this platform")
    return seg


class TestRowSegmentRoundTrip:
    def test_attach_reproduces_rows_exactly(self):
        graph = grid_graph(3, 4)
        cache = _warm_spt_cache(graph, sources=(0, 3, 7))
        csr = cache.csr
        with publish_rows_or_skip(
            "spt", csr.n, True, csr.source_version, cache.export_rows()
        ) as seg:
            table, handle = attach_rows(seg.name)
            try:
                assert table.kind == "spt"
                assert table.n == csr.n
                assert table.weighted is True
                assert table.source_version == csr.source_version
                assert table.sources == (0, 3, 7)
                for i in table.sources:
                    dist, pred = cache.export_rows()[i]
                    got_dist, got_pred = table.row(i)
                    assert list(got_dist) == list(dist)
                    assert list(got_pred) == list(pred)
            finally:
                handle.close()

    def test_attached_rows_are_read_only_views(self):
        graph = grid_graph(2, 3)
        cache = _warm_spt_cache(graph, sources=(0,))
        csr = cache.csr
        with publish_rows_or_skip(
            "spt", csr.n, True, csr.source_version, cache.export_rows()
        ) as seg:
            table, handle = attach_rows(seg.name)
            try:
                dist, pred = table.row(0)
                assert isinstance(dist, memoryview) and dist.readonly
                assert isinstance(pred, memoryview) and pred.readonly
                with pytest.raises(TypeError):
                    dist[0] = 0.0
                with pytest.raises(TypeError):
                    pred[0] = 0
            finally:
                handle.close()

    def test_publication_counters_move(self):
        from repro.perf import COUNTERS

        graph = path_graph(5)
        cache = _warm_spt_cache(graph, sources=(0, 1))
        csr = cache.csr
        before = COUNTERS.snapshot()
        with publish_rows_or_skip(
            "spt", csr.n, True, csr.source_version, cache.export_rows()
        ) as seg:
            table, handle = attach_rows(seg.name)
            handle.close()
        delta = COUNTERS.delta(before)
        assert delta.shm_row_segments == 1
        assert delta.shm_row_attach == 1
        assert delta.warm_rows_published == 2


class TestRowSegmentValidation:
    def _corrupt(self, seg, offset: int, payload: bytes) -> None:
        view = shm._attach_untracked(seg.name)
        try:
            view.buf[offset : offset + len(payload)] = payload
        finally:
            view.close()

    def _published(self):
        graph = path_graph(4)
        cache = _warm_spt_cache(graph, sources=(0,))
        csr = cache.csr
        return publish_rows_or_skip(
            "spt", csr.n, True, csr.source_version, cache.export_rows()
        )

    def test_format_version_mismatch_is_refused(self):
        with self._published() as seg:
            self._corrupt(seg, 4, (999).to_bytes(4, "little"))
            with pytest.raises(ShmFormatError, match="format v999"):
                attach_rows(seg.name)

    def test_bad_magic_is_refused(self):
        with self._published() as seg:
            self._corrupt(seg, 0, b"NOPE")
            with pytest.raises(ShmFormatError, match="magic"):
                attach_rows(seg.name)

    def test_csr_segment_is_not_a_row_segment(self):
        csr = shared_csr(path_graph(4))
        with publish_or_skip(csr) as seg:
            with pytest.raises(ShmFormatError, match="magic"):
                attach_rows(seg.name)

    def test_foreign_tie_order_is_refused(self, monkeypatch):
        with self._published() as seg:
            monkeypatch.setattr(shm, "SHM_TIE_ORDER", "hops")
            with pytest.raises(ShmFormatError, match="tie order"):
                attach_rows(seg.name)

    def test_attach_after_unlink_raises(self):
        seg = self._published()
        name = seg.name
        seg.unlink()
        assert not segment_exists(name)
        with pytest.raises(Exception):
            attach_rows(name)
        assert residual_segments() == []

    def test_adopt_refuses_wrong_kind(self):
        graph = path_graph(4)
        cache = _warm_spt_cache(graph, sources=(0,))
        csr = cache.csr
        with publish_rows_or_skip(
            "oracle", csr.n, True, csr.source_version, cache.export_rows()
        ) as seg:
            table, handle = attach_rows(seg.name)
            try:
                fresh = _warm_spt_cache(graph, sources=())
                with pytest.raises(ValueError, match="cannot adopt"):
                    fresh.adopt_rows(table)
            finally:
                handle.close()

    def test_adopt_refuses_wrong_shape_and_flavor(self):
        graph = path_graph(4)
        cache = _warm_spt_cache(graph, sources=(0,))
        csr = cache.csr
        with publish_rows_or_skip(
            "spt", csr.n, True, csr.source_version, cache.export_rows()
        ) as seg:
            table, handle = attach_rows(seg.name)
            try:
                from repro.graph.incremental import SptCache

                other = SptCache(path_graph(6), weighted=True)
                with pytest.raises(ValueError, match="n="):
                    other.adopt_rows(table)
                unweighted = SptCache(path_graph(4), weighted=False)
                with pytest.raises(ValueError, match="weighted"):
                    unweighted.adopt_rows(table)
            finally:
                handle.close()


class TestRowSegmentLifecycle:
    def test_unlink_leaves_no_residue(self):
        graph = four_cycle()
        cache = _warm_spt_cache(graph, sources=(0, 1))
        csr = cache.csr
        seg = publish_rows_or_skip(
            "spt", csr.n, True, csr.source_version, cache.export_rows()
        )
        name = seg.name
        assert segment_exists(name)
        seg.unlink()
        assert not segment_exists(name)
        assert residual_segments() == []

    def test_attach_cache_survives_creator_unlink(self):
        """POSIX keeps the mapping alive: a memoized attach outlives the
        creator's unlink (the fan-out unlinks right after the last
        future resolves while workers may still hold their views)."""
        from repro.graph.shm import attach_rows_cached

        graph = path_graph(5)
        cache = _warm_spt_cache(graph, sources=(0,))
        csr = cache.csr
        seg = publish_rows_or_skip(
            "spt", csr.n, True, csr.source_version, cache.export_rows()
        )
        expected = [list(b) for b in cache.export_rows()[0]]
        table = attach_rows_cached(seg.name)
        seg.unlink()
        dist, pred = table.row(0)
        assert [list(dist), list(pred)] == expected
        detach_all()
        assert residual_segments() == []

    def test_disabled_publication_falls_back(self, monkeypatch):
        from repro.perf import COUNTERS

        graph = path_graph(3)
        cache = _warm_spt_cache(graph, sources=(0,))
        csr = cache.csr
        monkeypatch.setenv("REPRO_SHM", "0")
        before = COUNTERS.shm_fallbacks
        assert publish_rows(
            "spt", csr.n, True, csr.source_version, cache.export_rows()
        ) is None
        assert COUNTERS.shm_fallbacks == before + 1

    def test_empty_rows_do_not_publish_or_fall_back(self):
        from repro.perf import COUNTERS

        before = COUNTERS.shm_fallbacks
        assert publish_rows("spt", 4, True, None, {}) is None
        assert COUNTERS.shm_fallbacks == before

    def test_copy_on_repair_keeps_shared_rows_intact(self):
        from repro.failures.models import FailureScenario
        from repro.graph.incremental import SptCache

        graph = grid_graph(3, 3)
        cache = _warm_spt_cache(graph, sources=(0,))
        csr = cache.csr
        pristine = [list(b) for b in cache.export_rows()[0]]
        with publish_rows_or_skip(
            "spt", csr.n, True, csr.source_version, cache.export_rows()
        ) as seg:
            table, handle = attach_rows(seg.name)
            try:
                adopter = SptCache(graph, weighted=True)
                assert adopter.adopt_rows(table) == 1
                nodes = csr.nodes
                scenario = FailureScenario.single_link(nodes[0], nodes[1])
                view = adopter.view_for(scenario)
                dist, pred = adopter._repaired_row_idx(0, view)
                # The repair produced a post-failure row...
                assert list(dist) != pristine[0] or list(pred) != pristine[1]
                # ...while the shared pre-failure buffers are untouched.
                got_dist, got_pred = table.row(0)
                assert [list(got_dist), list(got_pred)] == pristine
            finally:
                handle.close()


class TestWorkerWarmUpAccounting:
    """Satellite: adoption is bookkeeping, never search work, and the
    fan-out's worker-side warm-up counters prove it end to end."""

    def test_adoption_moves_no_search_counters(self):
        from repro.graph.incremental import SptCache
        from repro.perf import COUNTERS

        graph = grid_graph(3, 4)
        cache = _warm_spt_cache(graph, sources=(0, 5))
        csr = cache.csr
        with publish_rows_or_skip(
            "spt", csr.n, True, csr.source_version, cache.export_rows()
        ) as seg:
            table, handle = attach_rows(seg.name)
            try:
                fresh = SptCache(graph, weighted=True)
                before = COUNTERS.snapshot()
                assert fresh.adopt_rows(table) == 2
                delta = COUNTERS.delta(before)
                assert delta.warm_rows_adopted == 2
                assert delta.csr_settled == 0
                assert delta.csr_relaxations == 0
                assert delta.dijkstra_relaxations == 0
                assert delta.dijkstra_settled == 0
                assert delta.warm_row_builds == 0
            finally:
                handle.close()

    def _evaluate(self, jobs: int, with_rows: bool) -> tuple[dict, object]:
        from repro.core.cache import clear_cache
        from repro.perf import COUNTERS

        # Start from cold shared caches: fork-started workers inherit
        # the parent's warm state, which would mask the adopt-vs-rebuild
        # distinction this class is pinning.
        clear_cache()
        network = cached_suite(scale="tiny", seed=1)[0]
        executor = make_executor(jobs) if jobs > 1 else None
        publication = None
        before = COUNTERS.snapshot()
        try:
            if executor is not None:
                publication = publish_suite(
                    [network], with_base=True, with_rows=with_rows, seed=1
                )
            rows = table2.evaluate_network(
                network,
                modes=("link",),
                seed=1,
                with_multiplicity=False,
                ilm_accounting="per-link",
                jobs=jobs,
                suite_ref=("tiny", 1, 0),
                executor=executor,
                shm_ref=publication.ref(0) if publication else None,
            )
        finally:
            if executor is not None:
                executor.shutdown()
            if publication is not None:
                publication.release()
        return rows, COUNTERS.delta(before)

    def test_ilm_work_counter_parity_weighted_chunks_vs_sequential(self):
        """Pinned parity: the cost-weighted partition performs exactly
        the sequential run's repair work — same repairs, same re-settled
        vertices, same fallbacks — just distributed."""
        from repro.experiments.parallel import weighted_chunks
        from repro.perf import COUNTERS

        network = cached_suite(scale="tiny", seed=1)[0]
        base = shared_unique_base(network.graph)
        pairs = sample_pairs(network.graph, network.sample_pairs, seed=1)
        scenarios = table2.ilm_scenarios(base, pairs, "link", 200)

        def accountant():
            return IlmAccountant(
                network.graph,
                base,
                demand_sources=table2.ilm_demand_sources(
                    network.graph, pairs
                ),
                weighted=network.weighted,
            )

        sequential = accountant()
        before = COUNTERS.snapshot()
        sequential.process_scenarios(scenarios)
        seq = COUNTERS.delta(before)

        planner = accountant()
        costs, _touched = planner.plan_scenarios(scenarios)
        chunks = weighted_chunks(costs, jobs=4)
        covered = sorted(i for indices, _cost in chunks for i in indices)
        assert covered == list(range(len(scenarios)))

        before = COUNTERS.snapshot()
        merged = accountant()
        for indices, _cost in chunks:
            worker = accountant()
            worker.process_scenarios([scenarios[i] for i in indices])
            merged.merge_state(worker.export_state())
        par = COUNTERS.delta(before)

        for name in ("spt_repairs", "spt_nodes_resettled", "spt_fallbacks"):
            assert getattr(par, name) == getattr(seq, name), name
        assert merged.stretch_factors() == sequential.stretch_factors()
        assert merged.table_sizes() == sequential.table_sizes()

    def test_jobs4_rows_identical_and_workers_adopt(self):
        """End to end: publication on, jobs-4 payload rows byte-identical
        to jobs-1, workers adopt instead of re-settling (their warm-up
        counter is zero)."""
        probe = shm.publish_csr(shared_csr(path_graph(3)))
        if probe is None:
            pytest.skip("shared memory unavailable on this platform")
        probe.unlink()
        detach_all()
        seq_rows, seq = self._evaluate(jobs=1, with_rows=False)
        par_rows, par = self._evaluate(jobs=4, with_rows=True)
        assert par_rows == seq_rows
        assert seq.worker_warm_row_builds == 0
        assert par.worker_warm_row_builds == 0
        assert par.warm_rows_adopted > 0
        assert par.shm_row_segments > 0
        assert residual_segments() == []

    def test_worker_warm_up_returns_without_publication(self, monkeypatch):
        """The counter measures real duplication: with REPRO_SHM=0 the
        workers are back to re-settling sources per process."""
        monkeypatch.setenv("REPRO_SHM", "0")
        _rows, par = self._evaluate(jobs=4, with_rows=True)
        assert par.worker_warm_row_builds > 0
        assert residual_segments() == []
