"""Parallel experiment fan-out — chunked failure cases over processes.

The experiments are embarrassingly parallel across demand pairs (and,
for Table 3, across links): each unit rebuilds nothing and mutates
nothing, so the only engineering is in keeping the output *bit-identical*
to the sequential run:

* **Work references, not work payloads.**  A worker receives
  ``(scale, seed, network index, mode, chunk bounds)`` — never a graph.
  It rebuilds the deterministic topology via
  :func:`~repro.experiments.networks.cached_suite` (cached per process,
  and inherited for free under ``fork`` start methods) and takes its
  base set from the shared cache (:mod:`repro.core.cache`), so oracle
  rows warm up once per worker and amortize across its chunks.
* **Deterministic ordering.**  Chunks are keyed by their start index;
  the parent reassembles results in index order, so the concatenated
  case list is exactly the sequential one and every downstream
  aggregate (metrics averages, histogram buckets) is byte-identical.
* **Counter fan-in.**  Each chunk returns the deltas of the global
  :data:`~repro.perf.COUNTERS` *and* of the metrics registry
  (:data:`repro.obs.METRICS`) it accumulated; the parent merges both,
  so ``BENCH_*.json`` totals include work done in workers and
  histograms are jobs-invariant.
* **Shared CSR, not N copies.**  Before fan-out the parent publishes
  each network's CSR snapshot — and the padded-base snapshot the
  distance oracle runs on — into shared memory
  (:func:`publish_suite` / :mod:`repro.graph.shm`) and ships the
  *segment names* in the chunk args; workers attach read-only views
  and adopt them as the graph's snapshot (:func:`_adopt_shared`), so
  every worker's oracle/SPT-cache rows sit on one copy of the buffers.
  The canonical ``(dist, index)`` tie contract makes the rows
  byte-identical no matter which process computes them, so adoption is
  invisible to results.  Publication degrades gracefully (``None``
  refs; workers rebuild locally, ``COUNTERS.shm_fallbacks`` records
  it) and the creator releases every segment in the experiment's
  ``finally`` — see :meth:`SuitePublication.release`.
* **Warm rows, not N warm-ups.**  ``publish_suite(..., with_rows=True)``
  additionally ships the parent's warm ``SptCache`` /
  ``LazyDistanceOracle`` ``dist``/``pred`` rows as ``RROW`` segments
  (:func:`repro.graph.shm.publish_rows`); workers adopt zero-copy
  read-only row views (:meth:`SptCache.adopt_rows` /
  :meth:`LazyDistanceOracle.adopt_rows`) instead of re-running the
  parent's warm-up searches.  Adopted views are read-only buffers, so
  ``repair_batch`` copy-on-repair mutations stay worker-local by
  construction.  ``COUNTERS.worker_warm_row_builds`` — injected into
  each chunk's counter delta by the heartbeat wrappers — records any
  warm-up Dijkstra a worker still had to run itself.
* **Cost-weighted scheduling.**  Count-based :func:`chunk_bounds`
  balances *items*; :func:`weighted_chunks` balances *work*.  The
  parent estimates per-scenario cost from pre-failure SPT subtree
  sizes (:meth:`IlmAccountant.plan_scenarios`), LPT-packs scenarios
  into ``4 x jobs`` bins, and submits the bins in descending-load
  order — the executor's FIFO queue becomes a deterministic shared
  work queue workers pull from, so the expensive hub-failure scenarios
  start first and the tail stays flat.  Order-free
  ``export_state``/``merge_state`` makes results
  placement-independent; :func:`run_weighted` still reassembles chunk
  payloads in queue order so the output is byte-identical to the
  sequential run.  Each chunk's predicted cost rides the heartbeat
  stream (``chunk-start``/``chunk-end`` ``cost`` field) so
  ``repro.obs report``/``watch --cost-model`` can score the estimator
  against actual wall time.

``--jobs 1`` (the default everywhere) bypasses this module entirely and
runs the plain sequential loops; ``--jobs 0`` means "auto" —
``min(cpu_count, 8)``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import Callable, Iterator, Optional, Sequence

from ..obs import heartbeat
from ..obs.metrics import METRICS
from ..perf import COUNTERS

#: Segment names shipped to workers per network: ``(graph CSR segment,
#: padded-base CSR segment, SPT row segment, oracle row segment)`` —
#: any slot may be ``None`` when publication fell back or was not
#: requested, and two-slot refs (CSR only) remain valid.
ShmRef = Optional[tuple[Optional[str], ...]]

#: Per-fan-out row-segment name pair ``(SPT rows, oracle rows)`` for
#: publications scoped to one stage (the ILM scenario fan-out ships the
#: demand-universe rows this way, separately from the suite-level
#: pair-source rows).
RowRef = Optional[tuple[Optional[str], Optional[str]]]


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``--jobs`` value: 0 means auto, otherwise as given."""
    if jobs < 0:
        raise ValueError(f"--jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return min(os.cpu_count() or 1, 8)
    return jobs


def make_executor(jobs: int) -> Optional[ProcessPoolExecutor]:
    """A process pool for *jobs* workers, or None when sequential."""
    jobs = resolve_jobs(jobs)
    if jobs <= 1:
        return None
    return ProcessPoolExecutor(max_workers=jobs)


def chunk_bounds(n_items: int, jobs: int) -> Iterator[tuple[int, int]]:
    """Deterministic ``(start, end)`` chunking of ``range(n_items)``.

    Four chunks per worker balances straggler smoothing against
    per-chunk dispatch overhead.
    """
    if n_items <= 0:
        return
    per_chunk = max(1, -(-n_items // (max(1, jobs) * 4)))
    for start in range(0, n_items, per_chunk):
        yield start, min(start + per_chunk, n_items)


#: Parent-side fan-out counter: every :func:`run_chunked` call gets a
#: unique ``worker#N`` heartbeat label, so repeated fan-outs of the
#: same worker (one per network x mode in Table 2) stay separate
#: groups in ``repro.obs watch``.  The counter follows the parent's
#: deterministic call order, so labels are stable across runs and
#: worker-pool widths.
_fanout_seq = 0


def _worker_with_heartbeat(
    label: str,
    worker: Callable[..., tuple[list, dict, dict]],
    common_args: tuple,
    start: int,
    end: int,
) -> tuple[list, dict, dict]:
    """Chunk wrapper emitting worker-side lifecycle heartbeats.

    Always submitted (it is what makes per-chunk wall times land in
    the telemetry channel); when no ``REPRO_HEARTBEAT_DIR`` is set the
    two :func:`~repro.obs.heartbeat.emit` calls are env lookups and
    the wrapper costs nothing else.  The result payload is untouched —
    telemetry is out-of-band by construction.
    """
    import tracemalloc

    if tracemalloc.is_tracing():
        # ``--mem`` traces the *parent's* heap; fork-started workers
        # inherit the tracing flag and would pay its multiple-x
        # allocation overhead for a peak nobody ever collects.
        tracemalloc.stop()
    heartbeat.emit("chunk-start", label=label, chunk=[start, end])
    heartbeat.set_current_label(label)
    t0 = time.perf_counter()
    try:
        items, delta, metrics_delta = worker(*common_args, start, end)
    finally:
        heartbeat.set_current_label(None)
    heartbeat.emit(
        "chunk-end",
        label=label,
        chunk=[start, end],
        items=end - start,
        wall_s=round(time.perf_counter() - t0, 6),
    )
    return items, _tag_worker_builds(delta), metrics_delta


def _tag_worker_builds(delta: dict) -> dict:
    """Mirror a chunk's ``warm_row_builds`` into the worker-side counter.

    Runs inside the worker, on the counter delta it is about to ship:
    every warm-up row build the chunk performed is by definition a
    *worker-side* build, so the parent's merged
    ``worker_warm_row_builds`` totals exactly the warm-up duplication
    the fan-out failed to eliminate (zero when row publication covered
    everything).
    """
    delta = dict(delta)
    delta["worker_warm_row_builds"] = delta.get("warm_row_builds", 0)
    return delta


def run_chunked(
    executor: Executor,
    worker: Callable[..., tuple[list, dict, dict]],
    common_args: tuple,
    n_items: int,
    jobs: int,
) -> list:
    """Fan ``worker(*common_args, start, end)`` out over chunks.

    The worker returns ``(items, counter_delta, metrics_delta)``; this
    reassembles the item lists in chunk order (sequential-identical)
    and merges every delta into the parent's :data:`COUNTERS` and
    :data:`METRICS`.  With a heartbeat channel configured
    (``--heartbeat-dir`` / :mod:`repro.obs.heartbeat`), the parent
    brackets the fan-out with ``fanout-start``/``fanout-end`` events
    and every worker chunk reports its own bounds and wall time for
    ``python -m repro.obs watch``.
    """
    global _fanout_seq
    label = f"{worker.__name__}#{_fanout_seq}"
    _fanout_seq += 1
    bounds = list(chunk_bounds(n_items, jobs))
    heartbeat.emit(
        "fanout-start", label=label, total=n_items, chunks=len(bounds),
        jobs=jobs,
    )
    t0 = time.perf_counter()
    futures = {
        executor.submit(
            _worker_with_heartbeat, label, worker, common_args, start, end
        ): start
        for start, end in bounds
    }
    by_start: dict[int, list] = {}
    for future, start in futures.items():
        items, delta, metrics_delta = future.result()
        by_start[start] = items
        COUNTERS.merge(delta)
        METRICS.merge(metrics_delta)
    ordered: list = []
    for start in sorted(by_start):
        ordered.extend(by_start[start])
    heartbeat.emit(
        "fanout-end", label=label, total=n_items, chunks=len(bounds),
        jobs=jobs, wall_s=round(time.perf_counter() - t0, 6),
    )
    return ordered


# -- cost-weighted scheduling -------------------------------------------------


def weighted_chunks(
    costs: Sequence[int], jobs: int
) -> list[tuple[tuple[int, ...], int]]:
    """LPT-pack item indices into cost-balanced chunks.

    Deterministic longest-processing-time-first: items sorted by
    ``(-cost, index)`` go one by one into the least-loaded of
    ``min(n, 4 x jobs)`` bins (ties to the lowest bin id; zero-cost
    items still count 1 so no bin starves).  Returns non-empty
    ``(member indices, estimated load)`` chunks sorted by descending
    load — submission in that order makes the executor's FIFO queue a
    shared work queue where the heaviest chunks start first and the
    light ones backfill the stragglers' shadow.  A pure function of
    ``(costs, jobs)``: chunk membership never depends on pool timing.
    """
    n = len(costs)
    if n == 0:
        return []
    bins = min(n, max(1, jobs) * 4)
    loads = [0] * bins
    members: list[list[int]] = [[] for _ in range(bins)]
    for i in sorted(range(n), key=lambda i: (-costs[i], i)):
        b = min(range(bins), key=lambda j: (loads[j], j))
        members[b].append(i)
        loads[b] += max(1, costs[i])
    chunks = [
        (tuple(m), load) for m, load in zip(members, loads) if m
    ]
    chunks.sort(key=lambda chunk: (-chunk[1], chunk[0]))
    return chunks


def _weighted_chunk_with_heartbeat(
    label: str,
    worker: Callable[..., tuple[list, dict, dict]],
    common_args: tuple,
    qpos: int,
    indices: tuple[int, ...],
    cost: int,
) -> tuple[list, dict, dict]:
    """Weighted-chunk twin of :func:`_worker_with_heartbeat`.

    Chunks are identified by queue position (their members are scattered
    index tuples, not ranges) and both lifecycle events carry the cost
    model's prediction, so the telemetry stream holds the
    predicted-vs-actual pair ``repro.obs report`` scores.
    """
    import tracemalloc

    if tracemalloc.is_tracing():
        tracemalloc.stop()
    heartbeat.emit(
        "chunk-start", label=label, chunk=[qpos, qpos + 1],
        items=len(indices), cost=cost,
    )
    heartbeat.set_current_label(label)
    t0 = time.perf_counter()
    try:
        items, delta, metrics_delta = worker(*common_args, qpos, indices)
    finally:
        heartbeat.set_current_label(None)
    heartbeat.emit(
        "chunk-end",
        label=label,
        chunk=[qpos, qpos + 1],
        items=len(indices),
        cost=cost,
        wall_s=round(time.perf_counter() - t0, 6),
    )
    return items, _tag_worker_builds(delta), metrics_delta


def run_weighted(
    executor: Executor,
    worker: Callable[..., tuple[list, dict, dict]],
    common_args: tuple,
    chunks: list[tuple[tuple[int, ...], int]],
    jobs: int,
    total: int,
) -> list:
    """Fan ``worker(*common_args, qpos, indices)`` out over cost chunks.

    The :func:`run_chunked` twin for :func:`weighted_chunks` output:
    chunks are submitted in the given (descending-load) order, chunk
    payloads are reassembled by queue position, and every counter /
    metrics delta merges into the parent.  Byte-identical output does
    not depend on the reassembly order for mergeable state (the ILM
    accountant's ``merge_state`` is order-free) but keeping it
    deterministic makes the payload list stable anyway.
    """
    global _fanout_seq
    label = f"{worker.__name__}#{_fanout_seq}"
    _fanout_seq += 1
    heartbeat.emit(
        "fanout-start", label=label, total=total, chunks=len(chunks),
        jobs=jobs,
    )
    t0 = time.perf_counter()
    futures = {
        executor.submit(
            _weighted_chunk_with_heartbeat, label, worker, common_args,
            qpos, indices, cost,
        ): qpos
        for qpos, (indices, cost) in enumerate(chunks)
    }
    by_pos: dict[int, list] = {}
    for future, qpos in futures.items():
        items, delta, metrics_delta = future.result()
        by_pos[qpos] = items
        COUNTERS.merge(delta)
        METRICS.merge(metrics_delta)
    ordered: list = []
    for qpos in sorted(by_pos):
        ordered.extend(by_pos[qpos])
    heartbeat.emit(
        "fanout-end", label=label, total=total, chunks=len(chunks),
        jobs=jobs, wall_s=round(time.perf_counter() - t0, 6),
    )
    return ordered


# -- shared-memory publication ------------------------------------------------


class SuitePublication:
    """Creator-side handles for a suite's published CSR segments.

    Holds one :class:`~repro.graph.shm.SharedCsrSegment` per published
    snapshot plus the per-network ``(graph, padded)`` name pairs the
    workers receive.  :meth:`release` (idempotent; also the context
    manager exit) unlinks everything — call it in the experiment's
    ``finally`` after the executor has shut down, so a raise or a
    ``KeyboardInterrupt`` mid-fan-out still leaves ``/dev/shm`` clean.
    """

    def __init__(self, refs: list[ShmRef], segments: list) -> None:
        self.refs = refs
        self._segments = segments

    def ref(self, index: int) -> ShmRef:
        """The segment-name tuple for network *index*."""
        if 0 <= index < len(self.refs):
            return self.refs[index]
        return None

    def release(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        segments, self._segments = self._segments, []
        for seg in segments:
            seg.unlink()

    def __enter__(self) -> "SuitePublication":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def publish_suite(
    networks: Sequence,
    with_base: bool = True,
    with_rows: bool = False,
    seed: int = 1,
) -> SuitePublication:
    """Publish each network's CSR snapshot(s) into shared memory.

    *with_base* additionally publishes the padded-graph snapshot of the
    network's shared unique base set — the index space the distance
    oracle's flat rows live in (experiments that never touch a base
    set, e.g. Table 3's bypass sweep, skip it).  *with_rows* warms and
    publishes the demand-pair-source rows of the network's shared
    ``SptCache`` and base oracle (*seed* reproduces the pair sample) as
    ``RROW`` segments, so case-evaluating workers adopt the parent's
    warm rows instead of re-settling each source per process.
    Publication failures leave ``None`` in the affected ref slot
    (workers rebuild locally); the segments that did publish are still
    released normally.
    """
    from ..core.cache import shared_spt_cache, shared_unique_base
    from ..failures.sampler import sample_pairs
    from ..graph import shm
    from ..graph.csr import shared_csr

    refs: list[ShmRef] = []
    segments: list = []
    for network in networks:
        graph_name = padded_name = spt_name = oracle_name = None
        csr = shared_csr(network.graph)
        seg = shm.publish_csr(csr)
        if seg is not None:
            segments.append(seg)
            graph_name = seg.name
        base = None
        if with_base:
            base = shared_unique_base(network.graph)
            seg = shm.publish_csr(shared_csr(base.padded))
            if seg is not None:
                segments.append(seg)
                padded_name = seg.name
        if with_rows and shm.shm_enabled():
            pairs = sample_pairs(
                network.graph, network.sample_pairs, seed=seed
            )
            sources = sorted({csr.index[pair[0]] for pair in pairs})
            cache = shared_spt_cache(
                network.graph, weighted=network.weighted
            )
            cache.ensure_rows(sources)
            seg = shm.publish_rows(
                "spt", csr.n, network.weighted, csr.source_version,
                cache.export_rows(),
            )
            if seg is not None:
                segments.append(seg)
                spt_name = seg.name
            oracle = getattr(base, "oracle", None)
            if oracle is not None and not getattr(
                oracle, "break_ties_by_hops", False
            ):
                nodes = csr.nodes
                oracle.ensure_rows(nodes[si] for si in sources)
                ocsr = oracle.csr()
                seg = shm.publish_rows(
                    "oracle", ocsr.n, True, ocsr.source_version,
                    oracle.export_rows(),
                )
                if seg is not None:
                    segments.append(seg)
                    oracle_name = seg.name
        refs.append((graph_name, padded_name, spt_name, oracle_name))
    return SuitePublication(refs, segments)


def _adopt_shared(graph, shm_ref: ShmRef, slot: int) -> None:
    """Worker side: attach segment *slot* of *shm_ref* as *graph*'s CSR.

    Best-effort — any failure (segment gone, header mismatch, node
    interning mismatch) bumps ``COUNTERS.shm_fallbacks`` and leaves the
    graph on its local rebuild path, never breaking the run.
    """
    if graph is None or not shm_ref:
        return
    name = shm_ref[slot] if slot < len(shm_ref) else None
    if not name:
        return
    from ..graph import shm
    from ..graph.csr import adopt_csr

    try:
        csr = shm.attach_csr_cached(name)
    except Exception:
        COUNTERS.shm_fallbacks += 1
        return
    if not adopt_csr(graph, csr):
        COUNTERS.shm_fallbacks += 1


def _adopt_row_slot(ref, slot: int, adopter) -> None:
    """Worker side: attach row segment *slot* of *ref* and adopt it.

    Same best-effort contract as :func:`_adopt_shared`: a missing or
    mismatching segment bumps ``COUNTERS.shm_fallbacks`` and leaves the
    consumer on its local warm-up path.
    """
    if not ref or slot >= len(ref):
        return
    name = ref[slot]
    if not name:
        return
    from ..graph import shm

    try:
        adopter(shm.attach_rows_cached(name))
    except Exception:
        COUNTERS.shm_fallbacks += 1


def _adopt_network(network, shm_ref: ShmRef, with_base: bool):
    """Adopt a network's published snapshot(s); returns its base set.

    The padded adoption must precede any oracle row computation, so
    this runs first thing in every worker chunk.  CSR slots first, then
    the warm-row slots (row tables validate against the adopted
    snapshots' shape and version).
    """
    from ..core.cache import shared_spt_cache, shared_unique_base

    _adopt_shared(network.graph, shm_ref, 0)
    _adopt_row_slot(
        shm_ref, 2,
        lambda table: shared_spt_cache(
            network.graph, weighted=network.weighted
        ).adopt_rows(table),
    )
    if not with_base:
        return None
    base = shared_unique_base(network.graph)
    _adopt_shared(getattr(base, "padded", None), shm_ref, 1)
    oracle = getattr(base, "oracle", None)
    if oracle is not None and not getattr(
        oracle, "break_ties_by_hops", False
    ):
        _adopt_row_slot(shm_ref, 3, oracle.adopt_rows)
    return base


# -- worker entry points ------------------------------------------------------
#
# Top-level functions (picklable under spawn), importing experiment
# modules lazily to dodge the circular import (experiments import this
# module for their --jobs plumbing).


def _network(scale: str, seed: int, index: int):
    from .networks import cached_suite

    return cached_suite(scale=scale, seed=seed)[index]


#: Worker-process memo of (accountant, scenario list) per ILM fan-out
#: configuration — the demand universe and decomposition memo are
#: chunk-invariant, so a worker pays for them once per network/mode.
_ILM_ACCOUNTANTS: dict = {}


def table2_case_chunk(
    scale: str, seed: int, index: int, mode: str, shm_ref: ShmRef,
    policy: str, failure_model: str, start: int, end: int,
) -> tuple[list, dict, dict]:
    """Evaluate the failure cases of demand pairs ``[start:end)``.

    *policy* and *failure_model* are registry names — the worker
    rebuilds both from its own deterministic state (policies and
    models are pure functions of ``(graph, seed)``), so the fan-out
    ships strings, never pickled policy objects, and survives both
    ``fork`` and ``spawn`` start methods.
    """
    from ..failures.sampler import sample_pairs
    from ..policies import make_failure_model, make_policy

    before = COUNTERS.snapshot()
    m_before = METRICS.snapshot()
    network = _network(scale, seed, index)
    graph = network.graph
    base = _adopt_network(network, shm_ref, with_base=True)
    active = make_policy(policy, graph, base=base, weighted=network.weighted)
    model = make_failure_model(failure_model, graph, seed=seed)
    pairs = sample_pairs(graph, network.sample_pairs, seed=seed)
    results = []
    for pair in pairs[start:end]:
        primary = base.path_for(*pair)
        for case in model.cases_for_pair(pair, primary, mode):
            results.append(active.evaluate_case(case))
    return results, COUNTERS.delta(before).as_dict(), METRICS.delta(m_before)


def table3_bypass_chunk(
    scale: str, seed: int, index: int, shm_ref: ShmRef, failure_model: str,
    start: int, end: int,
) -> tuple[list, dict, dict]:
    """Bypass hop counts (None for bridges) of links ``[start:end)``."""
    from .table3 import link_bypass_hops

    before = COUNTERS.snapshot()
    m_before = METRICS.snapshot()
    network = _network(scale, seed, index)
    graph = network.graph
    _adopt_network(network, shm_ref, with_base=False)
    from ..policies import make_failure_model

    model = make_failure_model(failure_model, graph, seed=seed)
    edges = list(graph.edges())[start:end]
    hops = [
        link_bypass_hops(graph, u, v, network.weighted, model)
        for u, v in edges
    ]
    return hops, COUNTERS.delta(before).as_dict(), METRICS.delta(m_before)


def figure10_stretch_chunk(
    scale: str, seed: int, shm_ref: ShmRef, failure_model: str,
    start: int, end: int,
) -> tuple[list, dict, dict]:
    """Per-pair stretch sample tuples for demand pairs ``[start:end)``.

    Each item is ``(strategy name, cost stretch or None, hop stretch or
    None)`` in the exact order the sequential ``collect`` loop appends.
    """
    from ..policies import make_failure_model
    from .figure10 import collect_pair_samples

    before = COUNTERS.snapshot()
    m_before = METRICS.snapshot()
    network = _network(scale, seed, 0)  # Figure 10 runs on the weighted ISP
    from ..failures.sampler import sample_pairs

    base = _adopt_network(network, shm_ref, with_base=True)
    model = make_failure_model(failure_model, network.graph, seed=seed)
    pairs = sample_pairs(network.graph, network.sample_pairs, seed=seed)
    items: list[tuple[str, Optional[float], Optional[float]]] = []
    for pair in pairs[start:end]:
        items.extend(
            collect_pair_samples(
                network.graph, network.weighted, base, pair, model=model
            )
        )
    return items, COUNTERS.delta(before).as_dict(), METRICS.delta(m_before)


def ilm_scenario_chunk(
    scale: str, seed: int, index: int, mode: str, ilm_max_scenarios: int,
    shm_ref: ShmRef, row_ref: RowRef, failure_model: str,
    qpos: int, indices: tuple[int, ...],
) -> tuple[list, dict, dict]:
    """ILM-account the scenarios at *indices* of one network/mode.

    Rebuilds the deterministic scenario list (sampled pairs -> failure
    cases -> deduplicated, thinned scenarios — exactly the sequential
    construction in :func:`~repro.experiments.table2.ilm_scenarios`),
    adopts the fan-out's warm demand-universe rows (*row_ref*: SPT and
    oracle ``RROW`` segment names published by
    :func:`~repro.experiments.table2.evaluate_network` from the cost
    model's planning pass), accounts its scattered scenario subset, and
    ships the accountant's mergeable state; the parent folds the chunk
    states together
    (:meth:`~repro.experiments.ilm_accounting.IlmAccountant.merge_state`)
    for results byte-identical to the sequential loop regardless of
    how scenarios were packed into chunks.

    The accountant (and its scenario list) is memoized per
    network/mode within the worker process: the demand universe and
    decomposition memo are chunk-invariant pure caches, so a worker
    pulling many small cost-weighted chunks from the shared queue pays
    for them once, with :meth:`reset_accounting` zeroing the mergeable
    tallies between chunks.
    """
    from ..core.cache import shared_spt_cache
    from ..failures.sampler import sample_pairs
    from ..policies import make_failure_model
    from .ilm_accounting import IlmAccountant
    from .table2 import ilm_demand_sources, ilm_scenarios

    before = COUNTERS.snapshot()
    m_before = METRICS.snapshot()
    network = _network(scale, seed, index)
    graph = network.graph
    base = _adopt_network(network, shm_ref, with_base=True)
    _adopt_row_slot(
        row_ref, 0,
        lambda table: shared_spt_cache(
            graph, weighted=network.weighted
        ).adopt_rows(table),
    )
    oracle = getattr(base, "oracle", None)
    if oracle is not None and not getattr(
        oracle, "break_ties_by_hops", False
    ):
        _adopt_row_slot(row_ref, 1, oracle.adopt_rows)
    key = (scale, seed, index, mode, ilm_max_scenarios, failure_model)
    cached = _ILM_ACCOUNTANTS.get(key)
    if cached is None:
        model = make_failure_model(failure_model, graph, seed=seed)
        pairs = sample_pairs(graph, network.sample_pairs, seed=seed)
        scenarios = ilm_scenarios(
            base, pairs, mode, ilm_max_scenarios, model=model
        )
        accountant = IlmAccountant(
            graph,
            base,
            demand_sources=ilm_demand_sources(graph, pairs),
            weighted=network.weighted,
        )
        _ILM_ACCOUNTANTS[key] = (accountant, scenarios)
    else:
        accountant, scenarios = cached
        accountant.reset_accounting()
    accountant.process_scenarios(
        [scenarios[i] for i in indices], progress_chunk=(qpos, qpos + 1)
    )
    state = accountant.export_state()
    return [state], COUNTERS.delta(before).as_dict(), METRICS.delta(m_before)
