"""Decremental SPT repair equivalence vs. from-scratch recomputation.

Randomized trials: delete 1–3 edges (or fail nodes) from assorted
graphs and check that :func:`repair_spt` reproduces the from-scratch
canonical kernel bit-for-bit (weighted **and** unweighted — the
canonical tie contract makes weighted repair legal), that
:class:`SptCache.backup_path` returns exactly the canonical kernel's
pred-chain path with the dict pipeline's cost (including NoPath on
disconnection), and that the fallback policy and its counters fire
when the affected subtree blows past the threshold.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import NoPath
from repro.graph.csr import (
    INF,
    CsrGraph,
    CsrView,
    as_view,
    bfs_csr,
    dijkstra_csr_canonical,
)
from repro.graph.graph import DiGraph, Graph
from repro.graph.incremental import (
    REPAIR_FALLBACK_FRACTION,
    SptCache,
    affected_subtree,
    csr_shortest_path,
    dead_edge_pairs,
    fast_shortest_path,
    repair_spt,
)
from repro.graph.shortest_paths import shortest_path, single_source_distances
from repro.perf import COUNTERS
from repro.topology import cycle_graph, generate_isp_topology, path_graph


def random_graph(rng: random.Random, n=40, extra=40, unit=False) -> Graph:
    """Connected random graph: a scrambled spanning tree plus chords."""
    g = Graph()
    nodes = list(range(n))
    rng.shuffle(nodes)
    weights = [1.0] if unit else [1.0, 2.0, 4.0, 8.0, 16.0]
    for i, v in enumerate(nodes[1:], start=1):
        u = nodes[rng.randrange(i)]
        g.add_edge(u, v, rng.choice(weights))
    added = 0
    while added < extra:
        u, v = rng.sample(nodes, 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v, rng.choice(weights))
            added += 1
    return g


def random_failures(rng: random.Random, g: Graph, k: int):
    edges = [(u, v) for u, v, _ in g.weighted_edges()]
    return rng.sample(edges, k)


class TestRepairSpt:
    @pytest.mark.parametrize("unit", [False, True])
    @pytest.mark.parametrize("seed", range(8))
    def test_repair_matches_scratch_after_deletions(self, seed, unit):
        rng = random.Random(seed)
        g = random_graph(rng, unit=unit)
        csr = CsrGraph(g)
        base = as_view(csr)
        src = csr.index[rng.randrange(40)]
        if unit:
            dist, pred = bfs_csr(base, src)
        else:
            dist, pred, _ = dijkstra_csr_canonical(base, src)
        for k in (1, 2, 3):
            view = csr.with_edges_removed(random_failures(rng, g, k))
            got_dist, got_pred = repair_spt(
                view, src, dist, pred, fallback_fraction=2.0, unit=unit
            )
            want_dist, want_pred, _ = (
                (*bfs_csr(view, src), True)
                if unit
                else dijkstra_csr_canonical(view, src)
            )
            assert got_dist == want_dist  # bitwise: same floats
            # Canonical ties make the repaired tree exactly the scratch
            # tree in both metrics: the min-(dist, index) parent rule is
            # a local property of the final labels.
            assert got_pred == want_pred

    @pytest.mark.parametrize("seed", range(4))
    def test_repair_matches_scratch_after_node_failures(self, seed):
        rng = random.Random(100 + seed)
        g = random_graph(rng)
        csr = CsrGraph(g)
        src = csr.index[0]
        dist, pred, _ = dijkstra_csr_canonical(as_view(csr), src)
        dead = [n for n in rng.sample(range(40), 3) if csr.index[n] != src]
        view = csr.with_edges_removed(nodes=dead)
        got = repair_spt(view, src, dist, pred, fallback_fraction=2.0)
        want = dijkstra_csr_canonical(view, src)
        assert got[0] == want[0] and got[1] == want[1]

    def test_disconnection_yields_inf(self):
        g = path_graph(6)
        csr = CsrGraph(g)
        dist, pred, _ = dijkstra_csr_canonical(as_view(csr), csr.index[0])
        view = csr.with_edges_removed([(2, 3)])
        got_dist, got_pred = repair_spt(
            view, csr.index[0], dist, pred, fallback_fraction=2.0
        )
        for node in (3, 4, 5):
            assert got_dist[csr.index[node]] == INF
            assert got_pred[csr.index[node]] == -1
        assert got_dist[csr.index[2]] == 2.0

    def test_inputs_never_mutated(self):
        g = cycle_graph(8)
        csr = CsrGraph(g)
        dist, pred, _ = dijkstra_csr_canonical(as_view(csr), 0)
        before = (list(dist), list(pred))
        repair_spt(csr.with_edges_removed([(0, 1)]), 0, dist, pred)
        assert (dist, pred) == before

    def test_non_tree_deletion_is_free(self):
        # Deleting an edge no shortest path uses leaves the SPT intact.
        g = Graph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0)]
        )
        csr = CsrGraph(g)
        dist, pred, _ = dijkstra_csr_canonical(as_view(csr), csr.index[0])
        view = csr.with_edges_removed([(0, 2)])
        before = COUNTERS.spt_nodes_resettled
        got_dist, got_pred = repair_spt(view, csr.index[0], dist, pred)
        assert COUNTERS.spt_nodes_resettled == before  # nothing re-settled
        assert got_dist == dist and got_pred == pred

    def test_fallback_counter_and_recompute(self):
        g = path_graph(10)  # cutting the first edge affects ~everything
        csr = CsrGraph(g)
        dist, pred, _ = dijkstra_csr_canonical(as_view(csr), csr.index[0])
        view = csr.with_edges_removed([(0, 1)])
        before_f = COUNTERS.spt_fallbacks
        before_r = COUNTERS.spt_repairs
        got = repair_spt(view, csr.index[0], dist, pred)
        assert COUNTERS.spt_fallbacks == before_f + 1
        assert COUNTERS.spt_repairs == before_r  # abandoned, not a repair
        want = dijkstra_csr_canonical(view, csr.index[0])
        assert got[0] == want[0]

    def test_affected_subtree_helpers(self):
        g = path_graph(5)
        csr = CsrGraph(g)
        dist, pred, _ = dijkstra_csr_canonical(as_view(csr), csr.index[0])
        view = csr.with_edges_removed([(1, 2)])
        pairs = dead_edge_pairs(view)
        assert {frozenset(p) for p in pairs} == {
            frozenset({csr.index[1], csr.index[2]})
        }
        affected = affected_subtree(dist, pred, csr.n, pairs, view.dead_nodes)
        assert affected == {csr.index[v] for v in (2, 3, 4)}


def canonical_reference(cache: SptCache, fv, s, t, weighted: bool):
    """Node tuple of the from-scratch canonical kernel's pred chain."""
    csr = cache.csr
    view = cache.view_for(fv)
    si, ti = csr.index[s], csr.index[t]
    if weighted:
        dist, pred, _ = dijkstra_csr_canonical(view, si)
    else:
        dist, pred = bfs_csr(view, si)
    assert dist[ti] != INF
    chain = [ti]
    x = ti
    while x != si:
        x = pred[x]
        chain.append(x)
    return tuple(csr.nodes[i] for i in reversed(chain))


class TestSptCacheBackupPath:
    @pytest.mark.parametrize("weighted", [True, False])
    @pytest.mark.parametrize("seed", range(6))
    def test_backup_path_matches_canonical_kernel(self, seed, weighted):
        """Node-exact vs. a from-scratch canonical run; cost-exact vs.
        the dict pipeline (equal-cost path choice may differ)."""
        rng = random.Random(1000 + seed)
        g = random_graph(rng, unit=not weighted)
        cache = SptCache(g, weighted=weighted)
        for _ in range(25):
            k = rng.choice((1, 2, 3))
            dead = random_failures(rng, g, k)
            fv = g.without(edges=dead)
            s, t = rng.sample(range(40), 2)
            try:
                want = shortest_path(fv, s, t, weighted=weighted)
            except NoPath:
                with pytest.raises(NoPath):
                    cache.backup_path(s, t, fv)
                continue
            got = cache.backup_path(s, t, fv)
            assert got.nodes == canonical_reference(cache, fv, s, t, weighted)
            if weighted:
                assert got.cost(fv) == pytest.approx(want.cost(fv))
            else:
                assert got.hops == want.hops

    def test_backup_path_with_node_failures(self):
        rng = random.Random(7)
        g = random_graph(rng, unit=True)
        cache = SptCache(g, weighted=False)
        for _ in range(20):
            s, t = rng.sample(range(40), 2)
            dead = [n for n in rng.sample(range(40), 2) if n not in (s, t)]
            fv = g.without(nodes=dead)
            try:
                want = shortest_path(fv, s, t, weighted=False)
            except NoPath:
                with pytest.raises(NoPath):
                    cache.backup_path(s, t, fv)
                continue
            got = cache.backup_path(s, t, fv)
            assert got.hops == want.hops
            assert got.nodes == canonical_reference(cache, fv, s, t, False)

    def test_dead_endpoint_raises(self):
        g = cycle_graph(5)
        cache = SptCache(g)
        fv = g.without(nodes=[2])
        with pytest.raises(NoPath):
            cache.backup_path(2, 4, fv)
        with pytest.raises(NoPath):
            cache.backup_path(4, 2, fv)

    def test_trivial_pair_is_single_node(self):
        g = cycle_graph(5)
        cache = SptCache(g)
        path = cache.backup_path(3, 3, g.without(edges=[(0, 1)]))
        assert path.nodes == (3,)

    def test_unweighted_cache_on_weighted_graph_uses_hops(self):
        # Hop metric must ignore stored weights (unit=True repair).
        rng = random.Random(77)
        g = random_graph(rng, unit=False)
        cache = SptCache(g, weighted=False)
        for _ in range(15):
            dead = random_failures(rng, g, 2)
            fv = g.without(edges=dead)
            s, t = rng.sample(range(40), 2)
            try:
                want = shortest_path(fv, s, t, weighted=False)
            except NoPath:
                continue
            got = cache.backup_path(s, t, fv)
            assert got.hops == want.hops
            assert got.nodes == canonical_reference(cache, fv, s, t, False)

    def test_row_memoized_and_repairs_counted(self):
        g = generate_isp_topology(n=60, seed=7)
        cache = SptCache(g, weighted=True)
        nodes = list(g.nodes)
        assert cache.row(nodes[0]) is cache.row(nodes[0])
        before = COUNTERS.spt_repairs + COUNTERS.spt_fallbacks
        fv = g.without(edges=[next(iter(g.weighted_edges()))[:2]])
        cache.distances(nodes[0], fv)
        assert COUNTERS.spt_repairs + COUNTERS.spt_fallbacks > before

    def test_distances_match_dict_single_source(self):
        g = generate_isp_topology(n=60, seed=7)
        cache = SptCache(g, weighted=True)
        nodes = list(g.nodes)
        u, v, _ = next(iter(g.weighted_edges()))
        fv = g.without(edges=[(u, v)])
        got = cache.distances(nodes[0], fv)
        assert got == single_source_distances(fv, nodes[0], weighted=True)


class TestFastShortestPathDispatch:
    def test_csr_path_none_for_directed(self):
        dg = DiGraph()
        dg.add_edge("a", "b", 1.0)
        dg.add_edge("b", "c", 1.0)
        assert csr_shortest_path(dg, "a", "c") is None
        # ...but the transparent wrapper still answers via the dict path.
        assert fast_shortest_path(dg, "a", "c").nodes == ("a", "b", "c")

    def test_csr_path_none_for_unknown_node(self):
        g = cycle_graph(4)
        csr_shortest_path(g, 0, 2)  # prime the snapshot cache
        assert fast_shortest_path(g, 0, 2).nodes == shortest_path(
            g, 0, 2
        ).nodes

    def test_filtered_view_equivalence(self):
        g = generate_isp_topology(n=60, seed=7)
        rng = random.Random(3)
        nodes = list(g.nodes)
        for _ in range(10):
            dead = random_failures(rng, g, 2)
            fv = g.without(edges=dead)
            s, t = rng.sample(nodes, 2)
            try:
                want = shortest_path(fv, s, t, weighted=True)
            except NoPath:
                with pytest.raises(NoPath):
                    fast_shortest_path(fv, s, t, weighted=True)
                continue
            assert fast_shortest_path(fv, s, t).nodes == want.nodes

    def test_mutation_invalidates_cached_snapshot(self):
        g = cycle_graph(6)
        assert fast_shortest_path(g, 0, 3).hops == 3
        g.add_edge(0, 3, 0.5)  # shortcut added after the snapshot
        assert fast_shortest_path(g, 0, 3).hops == 1


class TestFallbackThreshold:
    def test_threshold_constant_sane(self):
        assert 0.0 < REPAIR_FALLBACK_FRACTION < 1.0

    def test_hub_failure_trips_cache_fallback(self):
        # Failing the hub of a star invalidates every row: the cache
        # must fall back rather than repair node-by-node.
        g = Graph.from_edges([("hub", i) for i in range(12)])
        cache = SptCache(g, weighted=False)
        cache.row(0)
        before = COUNTERS.spt_fallbacks
        fv = g.without(nodes=["hub"])
        with pytest.raises(NoPath):
            cache.backup_path(0, 5, fv)
        assert COUNTERS.spt_fallbacks >= before
