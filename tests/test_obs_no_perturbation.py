"""The obs layer never perturbs payloads — rows and counters are
byte-identical with every instrument on vs. everything off.

Subprocess runs, not in-process repeats: warm topology/oracle caches
would mask a counter difference, and the ledger/heartbeat knobs are
environment variables read at import/run time.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def _run_table2(workdir: Path, bench_name: str, *, obs: bool) -> dict:
    workdir.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env["REPRO_KERNEL"] = "python"
    bench = workdir / bench_name
    cmd = [
        sys.executable, "-m", "repro.experiments.table2",
        "--scale", "tiny", "--modes", "link", "--jobs", "1",
        "--bench-json", str(bench),
    ]
    if obs:
        hb_dir = workdir / "hb"
        cmd += [
            "--obs",
            "--trace-jsonl", str(workdir / "trace.jsonl"),
            "--profile-out", str(workdir / "prof.collapsed"),
            "--mem",
            "--heartbeat-dir", str(hb_dir),
        ]
        env["REPRO_LEDGER"] = "1"
        env["REPRO_LEDGER_PATH"] = str(workdir / "ledger.jsonl")
    else:
        env["REPRO_LEDGER"] = "0"
        env.pop("REPRO_LEDGER_PATH", None)
        env.pop("REPRO_HEARTBEAT_DIR", None)
    proc = subprocess.run(
        cmd, cwd=workdir, env=env, capture_output=True, text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(bench.read_text())


def test_full_obs_does_not_perturb_rows_or_counters(tmp_path):
    bare = _run_table2(tmp_path / "bare", "BENCH_off.json", obs=False)
    # Separate workdir so obs side files can't collide with anything.
    full = _run_table2(tmp_path / "full", "BENCH_on.json", obs=True)

    dumps = lambda obj: json.dumps(obj, sort_keys=True)
    assert dumps(bare["rows"]) == dumps(full["rows"])
    assert dumps(bare["counters"]) == dumps(full["counters"])
    for key in ("name", "scale", "seed", "cases", "modes", "jobs"):
        assert bare[key] == full[key], key

    # The instruments did run in the obs process: side files exist and
    # the extras landed in the obs-only sections, not the payload.
    workdir = tmp_path / "full"
    assert (workdir / "trace.jsonl").is_file()
    assert (workdir / "prof.collapsed").is_file()
    assert (workdir / "ledger.jsonl").is_file()
    assert "metrics" in full and "metrics" not in bare
    assert full["memory"]["tracemalloc_peak_kb"] is not None
    assert bare["memory"]["tracemalloc_peak_kb"] is None
