"""Equivalence of the O(1) decomposition kernel with the reference code.

The kernel (``repro.core.decomp_kernel``) answers "is this sub-path a
base path?" with prefix-sum arithmetic against cached oracle rows; the
reference implementations answer it by allocating the sub-path and
walking its edges.  Every decomposition the pipeline computes must be
**piece-for-piece identical** between the two — these tests pin that on
random graphs (hypothesis), on the experiment topologies (fixed seeds),
and on every base-set flavor.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.base_paths import (
    AllShortestPathsBase,
    UniqueShortestPathsBase,
    unique_shortest_path_base,
)
from repro.core.decomp_kernel import PrefixSumProbe, SubpathProbe
from repro.core.decomposition import (
    greedy_decompose,
    greedy_decompose_reference,
    min_base_paths_decompose,
    min_base_paths_decompose_reference,
    min_pieces_decompose,
    min_pieces_decompose_reference,
)
from repro.exceptions import DecompositionError
from repro.failures.sampler import cases_for_pair, sample_pairs
from repro.graph.all_pairs import LazyDistanceOracle
from repro.graph.graph import Graph
from repro.graph.paths import Path
from repro.graph.shortest_paths import shortest_path
from repro.perf import COUNTERS


def random_connected_graph(seed: int, n: int = 20, extra: int = 12) -> Graph:
    rng = random.Random(seed)
    g = Graph()
    for i in range(1, n):
        g.add_edge(rng.randrange(i), i, weight=rng.choice([1, 1, 2, 3, 5, 10]))
    for _ in range(extra):
        u, v = rng.sample(range(n), 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v, weight=rng.choice([1, 1, 2, 3, 5, 10]))
    return g


def assert_same(d_new, d_ref):
    assert d_new.pieces == d_ref.pieces
    assert d_new.base_flags == d_ref.base_flags


def backup_paths(graph, seed: int, k_links: int = 1, limit: int = 12):
    """Deterministic (backup path, weighted) samples after random failures."""
    rng = random.Random(seed)
    nodes = sorted(graph.nodes)
    edges = sorted(graph.edges())
    out = []
    for _ in range(limit):
        s, t = rng.sample(nodes, 2)
        failed = rng.sample(edges, min(k_links, len(edges)))
        view = graph.without(edges=failed)
        try:
            out.append(shortest_path(view, s, t))
        except Exception:
            continue
    return out


class TestKernelEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 5_000), case_seed=st.integers(0, 5_000))
    def test_unique_base_random_graphs(self, seed, case_seed):
        g = random_connected_graph(seed)
        base = UniqueShortestPathsBase(g)
        for path in backup_paths(g, case_seed, limit=4):
            assert_same(
                min_pieces_decompose(path, base),
                min_pieces_decompose_reference(path, base),
            )
            assert_same(
                greedy_decompose(path, base),
                greedy_decompose_reference(path, base),
            )
            assert_same(
                min_base_paths_decompose(path, base, max_edges=2),
                min_base_paths_decompose_reference(path, base, max_edges=2),
            )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5_000), case_seed=st.integers(0, 5_000))
    def test_all_sp_base_random_graphs(self, seed, case_seed):
        g = random_connected_graph(seed)
        for include_all_edges in (True, False):
            base = AllShortestPathsBase(g, include_all_edges=include_all_edges)
            for path in backup_paths(g, case_seed, limit=3):
                try:
                    d_ref = min_pieces_decompose_reference(path, base)
                except DecompositionError:
                    with pytest.raises(DecompositionError):
                        min_pieces_decompose(path, base)
                    continue
                assert_same(min_pieces_decompose(path, base), d_ref)
                assert_same(
                    greedy_decompose(path, base),
                    greedy_decompose_reference(path, base),
                )

    def test_explicit_base_falls_back_and_matches(self):
        g = random_connected_graph(7)
        base = unique_shortest_path_base(g, seed=3)
        before = COUNTERS.snapshot()
        for path in backup_paths(g, 11, limit=6):
            assert_same(
                min_pieces_decompose(path, base),
                min_pieces_decompose_reference(path, base),
            )
        delta = COUNTERS.delta(before)
        # Explicit sets have no oracle: every probe takes the fallback.
        assert delta.o1_probes == 0
        assert delta.path_probes > 0

    def test_experiment_networks_fixed_seed(self):
        from repro.experiments.networks import suite

        for network in suite(scale="tiny", seed=1):
            g = network.graph
            base = UniqueShortestPathsBase(g)
            pairs = sample_pairs(g, 6, seed=5)
            for pair in pairs:
                primary = base.path_for(*pair)
                for case in cases_for_pair(pair, primary, "link"):
                    view = case.scenario.apply(g)
                    try:
                        backup = shortest_path(
                            view, *pair, weighted=network.weighted
                        )
                    except Exception:
                        continue
                    assert_same(
                        min_pieces_decompose(backup, base),
                        min_pieces_decompose_reference(backup, base),
                    )


class TestProbeMechanics:
    def test_valid_path_uses_o1_probes_only(self):
        g = random_connected_graph(3)
        base = UniqueShortestPathsBase(g)
        path = backup_paths(g, 5, limit=1)[0]
        assert isinstance(base.subpath_probe(path), PrefixSumProbe)
        before = COUNTERS.snapshot()
        min_pieces_decompose(path, base)
        delta = COUNTERS.delta(before)
        assert delta.probe_calls > 0
        assert delta.path_probes == 0
        assert delta.o1_probes == delta.probe_calls

    def test_invalid_path_gets_fallback_probe(self):
        g = random_connected_graph(3)
        base = UniqueShortestPathsBase(g)
        # A walk with a hop that is not an edge of the graph.
        nodes = sorted(g.nodes)
        non_edge = None
        for u in nodes:
            for v in nodes:
                if u != v and not g.has_edge(u, v):
                    non_edge = (u, v)
                    break
            if non_edge:
                break
        assert non_edge is not None
        probe = base.subpath_probe(Path(list(non_edge)))
        assert isinstance(probe, SubpathProbe)
        assert not isinstance(probe, PrefixSumProbe)

    def test_probe_matches_is_base_path_exhaustively(self):
        g = random_connected_graph(9)
        base = UniqueShortestPathsBase(g)
        for path in backup_paths(g, 2, limit=4):
            probe = base.subpath_probe(path)
            n = len(path.nodes)
            for j in range(n):
                for i in range(j + 1, n):
                    assert probe.is_base(j, i) == base.is_base_path(
                        path.subpath(j, i)
                    ), (j, i, path)


class TestTruncatedOracle:
    def test_truncated_rows_match_full_rows(self):
        g = random_connected_graph(21, n=40, extra=30)
        full = LazyDistanceOracle(g)
        pruned = LazyDistanceOracle(g)
        nodes = sorted(g.nodes)
        rng = random.Random(0)
        for _ in range(10):
            source = rng.choice(nodes)
            targets = rng.sample(nodes, 5)
            got = pruned.distances_from(source, targets)
            for t in targets:
                if t == source:
                    continue
                assert got[t] == full.distance(source, t)

    def test_promotion_answers_beyond_the_frontier(self):
        g = random_connected_graph(22, n=30, extra=20)
        oracle = LazyDistanceOracle(g)
        nodes = sorted(g.nodes)
        source = nodes[0]
        near = min(
            (n for n in nodes if n != source),
            key=lambda n: LazyDistanceOracle(g).distance(source, n),
        )
        before = COUNTERS.snapshot()
        oracle.warm(source, [near])
        # A far query outruns the truncated frontier and promotes.
        reference = LazyDistanceOracle(g)
        for t in nodes:
            if t != source:
                assert oracle.distance(source, t) == reference.distance(source, t)
        assert COUNTERS.delta(before).oracle_promotions >= 0

    def test_tie_free_full_rows_match_classic(self):
        from repro.core.base_paths import padded_graph

        g = padded_graph(random_connected_graph(23, n=30, extra=25), seed=1)
        classic = LazyDistanceOracle(g, tie_free=False)
        fast = LazyDistanceOracle(g, tie_free=True)
        nodes = sorted(g.nodes)
        for s in nodes[:5]:
            for t in nodes:
                if s == t:
                    continue
                assert classic.has_path(s, t) == fast.has_path(s, t)
                if classic.has_path(s, t):
                    assert classic.distance(s, t) == fast.distance(s, t)
                    assert classic.path(s, t) == fast.path(s, t)
