"""CSR snapshot + array-kernel equivalence vs. the dict implementations.

Two contracts are pinned here.  The **legacy audit mode**
(``dijkstra_csr(..., legacy=True)`` / ``bfs_csr(..., legacy=True)``)
still emulates the classic dict kernels exactly (settle order,
predecessor choices, ties included) — proving the canonical switch
changed the contract deliberately, not accidentally.  The **production
canonical kernels** (``dijkstra_csr_canonical``, and the default
``dijkstra_csr`` / ``bfs_csr`` which now route to the canonical tie
order) match the dict kernels wherever results are tie-invariant
(distances always; full trees on tie-free graphs) and are themselves
pinned by :mod:`tests.test_canonical_contract`.  Every topology family
in :mod:`repro.topology` is exercised.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import NodeNotFound
from repro.graph.csr import (
    INF,
    CsrGraph,
    CsrView,
    as_view,
    bfs_csr,
    dicts_from_arrays,
    dijkstra_csr,
    dijkstra_csr_canonical,
    mask_from_view,
    path_nodes,
    shared_csr,
)
from repro.graph.graph import Graph
from repro.perf import COUNTERS
from repro.topology import (
    comb_graph,
    complete_graph,
    cycle_graph,
    directed_counterexample,
    four_cycle,
    generate_as_graph,
    generate_internet_graph,
    generate_isp_topology,
    grid_graph,
    path_graph,
    preferential_attachment,
    two_level_star,
    weighted_comb_graph,
)
from repro.graph.shortest_paths import bfs_shortest_paths, dijkstra

TOPOLOGIES = {
    "path": lambda: path_graph(8),
    "cycle": lambda: cycle_graph(9),
    "four_cycle": lambda: four_cycle(),
    "complete": lambda: complete_graph(6),
    "grid": lambda: grid_graph(4, 5),
    "comb": lambda: comb_graph(4)[0],
    "weighted_comb": lambda: weighted_comb_graph(3)[0],
    "two_level_star": lambda: two_level_star(8)[0],
    "isp": lambda: generate_isp_topology(n=60, seed=7),
    "pref_attach": lambda: preferential_attachment(
        80, 2.3, seed=3, triad_probability=0.4
    ),
    "as_graph": lambda: generate_as_graph(n=120, seed=3),
    "internet": lambda: generate_internet_graph(n=150, seed=5),
    "directed": lambda: directed_counterexample(9)[0],
}


@pytest.fixture(params=sorted(TOPOLOGIES), scope="module")
def topo(request) -> Graph:
    return TOPOLOGIES[request.param]()


def sources_of(graph, k=6, seed=0):
    nodes = list(graph.nodes)
    rng = random.Random(seed)
    return nodes if len(nodes) <= k else rng.sample(nodes, k)


class TestSnapshotStructure:
    def test_round_trip_adjacency(self, topo):
        csr = CsrGraph(topo)
        assert csr.n == len(list(topo.nodes))
        for node in topo.nodes:
            i = csr.index[node]
            lo, hi = csr.indptr[i], csr.indptr[i + 1]
            got = [
                (csr.nodes[csr.indices[s]], csr.weights[s])
                for s in range(lo, hi)
            ]
            assert got == list(topo.adjacency(node))

    def test_buffers_are_zero_copy_memoryviews(self):
        csr = CsrGraph(path_graph(5))
        indptr, indices, weights = csr.buffers()
        assert indptr.obj is csr.indptr
        assert indices.obj is csr.indices
        assert weights.obj is csr.weights
        assert indices.format == "l" and weights.format == "d"

    def test_edge_slots_mask_both_directions(self):
        g = path_graph(4)
        csr = CsrGraph(g)
        slots = csr.edge_slots([(1, 2)])
        assert len(slots) == 2
        heads = {csr.nodes[csr.indices[s]] for s in slots}
        assert heads == {1, 2}

    def test_edge_slots_directed_masks_one_direction(self):
        g = directed_counterexample(9)[0]
        csr = CsrGraph(g)
        u, v, _ = next(iter(g.weighted_edges()))
        assert len(csr.edge_slots([(u, v)])) == 1

    def test_unknown_endpoints_ignored(self):
        csr = CsrGraph(path_graph(3))
        assert csr.edge_slots([("nope", 0)]) == frozenset()
        assert csr.node_indices(["nope"]) == frozenset()

    def test_with_edges_removed_shares_buffers(self):
        csr = CsrGraph(cycle_graph(6))
        view = csr.with_edges_removed([(0, 1)], [3])
        assert view.csr is csr
        assert view.dead_nodes == {csr.index[3]}
        stacked = view.without(edges=[(4, 5)])
        assert stacked.dead_edges > view.dead_edges
        assert stacked.csr is csr

    def test_build_counter(self):
        before = COUNTERS.csr_builds
        CsrGraph(path_graph(3))
        assert COUNTERS.csr_builds == before + 1


class TestSharedCsrCache:
    def test_same_snapshot_until_mutation(self):
        g = cycle_graph(5)
        first = shared_csr(g)
        assert shared_csr(g) is first
        g.add_edge(0, 2, 5.0)
        rebuilt = shared_csr(g)
        assert rebuilt is not first
        assert rebuilt.source_version == g.version

    def test_weight_update_also_invalidates(self):
        g = path_graph(4)
        first = shared_csr(g)
        g.add_edge(0, 1, 9.0)  # reweight an existing edge
        assert shared_csr(g) is not first

    def test_filtered_view_not_cached(self):
        g = cycle_graph(5)
        view = g.without(edges=[(0, 1)])
        csr = shared_csr(view)  # not weakref-able: fresh build, no cache
        assert csr.n == 5


class TestKernelEquivalence:
    def test_legacy_dijkstra_exact_match(self, topo):
        """legacy=True still reproduces the dict kernel byte-identically."""
        csr = CsrGraph(topo)
        view = as_view(csr)
        for src in sources_of(topo):
            dist_d, pred_d = dijkstra(topo, src)
            dist, pred = dijkstra_csr(view, csr.index[src], legacy=True)
            got_dist, got_pred = dicts_from_arrays(csr, dist, pred)
            assert got_dist == dist_d
            assert got_pred == pred_d

    def test_legacy_bfs_exact_match(self, topo):
        if topo.directed:
            pytest.skip("bfs_shortest_paths is undirected-only here")
        csr = CsrGraph(topo)
        view = as_view(csr)
        for src in sources_of(topo):
            dist_d, pred_d = bfs_shortest_paths(topo, src)
            dist, pred = bfs_csr(view, csr.index[src], legacy=True)
            got_dist, got_pred = dicts_from_arrays(csr, dist, pred)
            assert got_dist == dist_d
            assert got_pred == pred_d

    def test_default_dijkstra_is_canonical(self, topo):
        """The undecorated entry point routes to the canonical kernel."""
        csr = CsrGraph(topo)
        view = as_view(csr)
        for src in sources_of(topo, k=3):
            dist, pred = dijkstra_csr(view, csr.index[src])
            c_dist, c_pred, _ = dijkstra_csr_canonical(view, csr.index[src])
            assert dist == c_dist
            assert pred == c_pred

    def test_default_bfs_is_canonical(self, topo):
        """Default BFS picks the min-index parent one level up."""
        if topo.directed:
            pytest.skip("canonical BFS contract is for undirected graphs")
        csr = CsrGraph(topo)
        view = as_view(csr)
        indptr, indices = csr.indptr, csr.indices
        for src in sources_of(topo, k=3):
            dist, pred = bfs_csr(view, csr.index[src])
            for v in range(csr.n):
                if pred[v] < 0:
                    continue
                candidates = [
                    indices[s]
                    for s in range(indptr[v], indptr[v + 1])
                    if dist[indices[s]] == dist[v] - 1.0
                ]
                assert pred[v] == min(candidates)

    def test_canonical_distances_match(self, topo):
        csr = CsrGraph(topo)
        view = as_view(csr)
        for src in sources_of(topo):
            dist_d, _ = dijkstra(topo, src)
            dist, _, exhausted = dijkstra_csr_canonical(view, csr.index[src])
            assert exhausted
            assert dicts_from_arrays(csr, dist, [-1] * csr.n)[0] == dist_d

    def test_masked_view_matches_filtered_view(self, topo):
        if topo.directed:
            pytest.skip("failure masking mirrors undirected FilteredView")
        rng = random.Random(42)
        edges = [(u, v) for u, v, _ in topo.weighted_edges()]
        for _ in range(5):
            dead = rng.sample(edges, min(3, len(edges)))
            fv = topo.without(edges=dead)
            csr = CsrGraph(topo)
            view = mask_from_view(csr, fv)
            src = next(n for n in topo.nodes if fv.has_node(n))
            dist_d, _ = dijkstra(fv, src)
            dist, _ = dijkstra_csr(view, csr.index[src], legacy=True)
            assert dicts_from_arrays(csr, dist, [-1] * csr.n)[0] == dist_d
            c_dist, _ = dijkstra_csr(view, csr.index[src])
            assert dicts_from_arrays(csr, c_dist, [-1] * csr.n)[0] == dist_d

    def test_early_exit_settles_target_prefix(self):
        g = generate_isp_topology(n=60, seed=7)
        csr = CsrGraph(g)
        nodes = list(g.nodes)
        s, t = nodes[0], nodes[-1]
        full, full_pred = dijkstra_csr(as_view(csr), csr.index[s])
        part, part_pred = dijkstra_csr(
            as_view(csr), csr.index[s], target=csr.index[t]
        )
        it = csr.index[t]
        assert part[it] == full[it]
        assert path_nodes(csr, part_pred, csr.index[s], it) == path_nodes(
            csr, full_pred, csr.index[s], it
        )

    def test_dead_source_raises(self):
        csr = CsrGraph(path_graph(3))
        view = csr.with_edges_removed(nodes=[0])
        with pytest.raises(NodeNotFound):
            dijkstra_csr(view, csr.index[0])
        with pytest.raises(NodeNotFound):
            bfs_csr(view, csr.index[0])
        with pytest.raises(NodeNotFound):
            dijkstra_csr_canonical(view, csr.index[0])

    def test_canonical_targets_pruning(self):
        g = generate_isp_topology(n=60, seed=7)
        csr = CsrGraph(g)
        nodes = list(g.nodes)
        src = csr.index[nodes[0]]
        targets = [csr.index[n] for n in nodes[1:4]]
        dist, _, exhausted = dijkstra_csr_canonical(
            as_view(csr), src, targets=targets
        )
        full, _, _ = dijkstra_csr_canonical(as_view(csr), src)
        for t in targets:
            assert dist[t] == full[t]
        # A pruned run may stop early; settled targets are always final.
        if not exhausted:
            assert any(d == INF for d in dist)


class TestCounters:
    def test_kernels_report_csr_counters(self):
        g = cycle_graph(8)
        csr = CsrGraph(g)
        before_r = COUNTERS.csr_relaxations
        before_s = COUNTERS.csr_settled
        dijkstra_csr(as_view(csr), 0)
        assert COUNTERS.csr_relaxations > before_r
        assert COUNTERS.csr_settled >= before_s + 8

    def test_dict_counters_untouched_by_csr_kernels(self):
        g = cycle_graph(8)
        csr = CsrGraph(g)
        before = COUNTERS.dijkstra_relaxations
        dijkstra_csr(as_view(csr), 0)
        dijkstra_csr_canonical(CsrView(csr), 0)
        assert COUNTERS.dijkstra_relaxations == before
