"""Tests for the exception hierarchy and the public API surface."""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro
from repro import exceptions as exc


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        roots = [
            exc.GraphError,
            exc.MPLSError,
            exc.RestorationError,
            exc.RoutingError,
            exc.TopologyError,
        ]
        for error in roots:
            assert issubclass(error, exc.ReproError)

    def test_graph_family(self):
        for error in (
            exc.NodeNotFound,
            exc.EdgeNotFound,
            exc.NoPath,
            exc.InvalidPath,
            exc.NegativeWeight,
        ):
            assert issubclass(error, exc.GraphError)

    def test_mpls_family(self):
        for error in (
            exc.LabelSpaceExhausted,
            exc.LabelNotFound,
            exc.ForwardingLoop,
            exc.TTLExpired,
            exc.LSPNotFound,
            exc.SignalingError,
        ):
            assert issubclass(error, exc.MPLSError)

    def test_restoration_family(self):
        assert issubclass(exc.DecompositionError, exc.RestorationError)
        assert issubclass(exc.NoRestorationPath, exc.RestorationError)

    def test_one_except_clause_catches_all(self, diamond):
        from repro.graph.shortest_paths import shortest_path

        with pytest.raises(exc.ReproError):
            shortest_path(diamond, 1, 99)


def iter_repro_modules():
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield module_info.name


class TestApiSurface:
    def test_all_modules_import(self):
        names = list(iter_repro_modules())
        assert len(names) > 30
        for name in names:
            importlib.import_module(name)

    @pytest.mark.parametrize(
        "package",
        [
            "repro.graph",
            "repro.topology",
            "repro.mpls",
            "repro.routing",
            "repro.failures",
            "repro.core",
            "repro.sim",
            "repro.experiments",
        ],
    )
    def test_package_all_resolves(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} in __all__ but missing"

    @pytest.mark.parametrize(
        "package",
        [
            "repro.graph",
            "repro.topology",
            "repro.mpls",
            "repro.routing",
            "repro.failures",
            "repro.core",
            "repro.sim",
        ],
    )
    def test_all_is_sorted(self, package):
        module = importlib.import_module(package)
        assert list(module.__all__) == sorted(module.__all__)

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_public_items_have_docstrings(self):
        undocumented = []
        for package in ("repro.graph", "repro.mpls", "repro.core"):
            module = importlib.import_module(package)
            for name in module.__all__:
                item = getattr(module, name)
                if callable(item) and not (item.__doc__ or "").strip():
                    undocumented.append(f"{package}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"
