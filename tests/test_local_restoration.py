"""Tests for local RBPC: bypass paths, end-route and edge-bypass patches."""

from __future__ import annotations

import pytest

from repro.core.base_paths import AllShortestPathsBase, provision_base_set
from repro.core.local_restoration import (
    LocalRbpc,
    LocalStrategy,
    bypass_path,
    edge_bypass_route,
    end_route_route,
    upstream_router,
)
from repro.exceptions import NoRestorationPath
from repro.failures.models import FailureScenario
from repro.graph.graph import Graph
from repro.graph.paths import Path
from repro.graph.shortest_paths import shortest_path_length
from repro.mpls.network import ForwardingStatus, MplsNetwork


class TestUpstreamRouter:
    def test_finds_upstream_endpoint(self):
        p = Path([1, 2, 3, 4])
        assert upstream_router(p, (2, 3)) == 2
        assert upstream_router(p, (3, 2)) == 2
        assert upstream_router(p, (1, 2)) == 1

    def test_link_not_on_path_raises(self):
        with pytest.raises(ValueError):
            upstream_router(Path([1, 2]), (3, 4))


class TestBypassPath:
    def test_triangle_bypass_is_two_hops(self, triangle):
        bypass = bypass_path(triangle, 1, 2)
        assert bypass == Path([1, 3, 2])

    def test_bridge_raises(self, line5):
        with pytest.raises(NoRestorationPath):
            bypass_path(line5, 1, 2)

    def test_respects_extra_failures(self, diamond):
        extra = FailureScenario.link_set([(2, 3)])
        bypass = bypass_path(diamond, 1, 2, extra_failures=extra)
        assert bypass == Path([1, 3, 4, 2]) or bypass.hops >= 3

    def test_weighted_picks_min_cost(self, weighted_diamond):
        # Bypass of (1,2): 1-3-4-2 (cost 5) vs 1-3-2 via chord (2+5=7).
        bypass = bypass_path(weighted_diamond, 1, 2, weighted=True)
        assert bypass == Path([1, 3, 4, 2])


class TestPureRoutes:
    def test_end_route_goes_through_r1(self, square):
        primary = Path([1, 2, 3])
        route = end_route_route(square, primary, (2, 3), weighted=False)
        assert route.nodes[:2] == (1, 2)
        assert route.target == 3

    def test_edge_bypass_resumes_original(self, small_isp):
        base = AllShortestPathsBase(small_isp)
        nodes = sorted(small_isp.nodes, key=repr)
        primary = base.path_for(nodes[0], nodes[-1])
        if primary.hops < 2:
            pytest.skip("primary too short")
        failed = list(primary.edges())[primary.hops // 2]
        route = edge_bypass_route(small_isp, primary, failed)
        # The route contains the full original prefix and suffix.
        r1 = upstream_router(primary, failed)
        prefix = primary.subpath_between(primary.source, r1)
        assert route.nodes[: len(prefix.nodes)] == prefix.nodes
        assert route.target == primary.target
        assert route.is_valid_in(small_isp.without(edges=[failed]))

    def test_local_routes_never_beat_optimal(self, small_isp):
        base = AllShortestPathsBase(small_isp)
        nodes = sorted(small_isp.nodes, key=repr)
        checked = 0
        for s, t in [(nodes[0], nodes[30]), (nodes[5], nodes[50]), (nodes[2], nodes[40])]:
            primary = base.path_for(s, t)
            for failed in primary.edges():
                view = small_isp.without(edges=[failed])
                try:
                    optimal = shortest_path_length(view, s, t)
                except Exception:
                    continue
                for fn in (end_route_route, edge_bypass_route):
                    try:
                        route = fn(small_isp, primary, failed)
                    except NoRestorationPath:
                        continue
                    checked += 1
                    assert route.cost(small_isp) >= optimal - 1e-9
        assert checked > 0


@pytest.fixture
def patched_net(diamond):
    net = MplsNetwork(diamond)
    base = AllShortestPathsBase(diamond)
    registry = provision_base_set(net, base)
    local = LocalRbpc(net, base, registry)
    return net, base, registry, local


class TestLocalRbpcLive:
    def _setup_demand(self, net, base, registry, s, t):
        primary = base.path_for(s, t)
        lsp_id = registry[primary]
        net.set_fec(s, t, [lsp_id])
        return primary, lsp_id

    @pytest.mark.parametrize(
        "strategy", [LocalStrategy.END_ROUTE, LocalStrategy.EDGE_BYPASS]
    )
    def test_patch_restores_delivery(self, patched_net, strategy):
        net, base, registry, local = patched_net
        primary, lsp_id = self._setup_demand(net, base, registry, 1, 4)
        failed = list(primary.edges())[0]
        net.fail_link(*failed)
        assert not net.inject(1, 4).delivered
        local.patch(lsp_id, failed, strategy=strategy)
        result = net.inject(1, 4)
        assert result.delivered, result
        # Route must avoid the dead link.
        walk_edges = set(zip(result.walk, result.walk[1:]))
        assert failed not in walk_edges and tuple(reversed(failed)) not in walk_edges

    def test_patch_only_touches_r1(self, patched_net):
        net, base, registry, local = patched_net
        primary, lsp_id = self._setup_demand(net, base, registry, 1, 4)
        failed = list(primary.edges())[0]
        sizes_before = net.ilm_sizes()
        net.fail_link(*failed)
        patch = local.patch(lsp_id, failed, strategy=LocalStrategy.END_ROUTE)
        sizes_after = net.ilm_sizes()
        # ILM size may grow only at routers of on-demand pieces; entry
        # replacement at R1 does not change its table size.
        assert sizes_after[patch.router] >= sizes_before[patch.router]
        assert patch.router == upstream_router(primary, failed)

    def test_revert_restores_primary_behavior(self, patched_net):
        net, base, registry, local = patched_net
        primary, lsp_id = self._setup_demand(net, base, registry, 1, 4)
        failed = list(primary.edges())[0]
        net.fail_link(*failed)
        local.patch(lsp_id, failed)
        net.restore_link(*failed)
        local.revert(lsp_id)
        result = net.inject(1, 4)
        assert result.delivered
        assert result.walk == list(primary.nodes)

    def test_revert_unknown_is_noop(self, patched_net):
        _, _, _, local = patched_net
        local.revert(12345)  # must not raise

    def test_revert_all(self, patched_net):
        net, base, registry, local = patched_net
        primary, lsp_id = self._setup_demand(net, base, registry, 1, 4)
        failed = list(primary.edges())[0]
        net.fail_link(*failed)
        local.patch(lsp_id, failed)
        assert len(local.active_patches()) == 1
        local.revert_all()
        assert local.active_patches() == []

    def test_edge_bypass_resumes_lsp_mid_path(self, line5):
        # Line 0-1-2-3-4 plus a bypass 1-5-2 around link (1,2).
        g = line5.copy()
        g.add_edge(1, 5)
        g.add_edge(5, 2)
        net = MplsNetwork(g)
        base = AllShortestPathsBase(g)
        primary = Path([0, 1, 2, 3, 4])
        lsp = net.provision_lsp(primary)
        net.set_fec(0, 4, [lsp.lsp_id])
        net.fail_link(1, 2)
        local = LocalRbpc(net, base, lsp_registry={})
        local.patch(lsp.lsp_id, (1, 2), strategy=LocalStrategy.EDGE_BYPASS)
        result = net.inject(0, 4)
        assert result.delivered
        assert result.walk == [0, 1, 5, 2, 3, 4]

    def test_no_bypass_raises(self, line5):
        net = MplsNetwork(line5)
        base = AllShortestPathsBase(line5)
        lsp = net.provision_lsp(Path([0, 1, 2, 3, 4]))
        net.fail_link(1, 2)
        local = LocalRbpc(net, base)
        with pytest.raises(NoRestorationPath):
            local.patch(lsp.lsp_id, (1, 2), strategy=LocalStrategy.EDGE_BYPASS)
        with pytest.raises(NoRestorationPath):
            local.patch(lsp.lsp_id, (1, 2), strategy=LocalStrategy.END_ROUTE)

    def test_patch_records_ilm_update_not_signaling(self, patched_net):
        net, base, registry, local = patched_net
        primary, lsp_id = self._setup_demand(net, base, registry, 1, 4)
        failed = list(primary.edges())[0]
        net.fail_link(*failed)
        setups_before = net.ledger.count("lsp_setup")
        local.patch(lsp_id, failed, strategy=LocalStrategy.EDGE_BYPASS)
        assert net.ledger.count("ilm_update") >= 1
        # With a fully provisioned registry, no new LSPs are signaled.
        assert net.ledger.count("lsp_setup") == setups_before
