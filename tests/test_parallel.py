"""Determinism of the parallel experiment fan-out.

The contract: ``--jobs N`` is a wall-clock knob only.  Rows, rendered
tables and per-case results must be byte-identical to the sequential
run — chunk reassembly and deterministic case ordering are what make
that true, and these tests pin it.  The acceptance test additionally
re-implements the pre-optimization sequential pipeline (fresh base
set, reference decomposer, per-target multiplicity counting) and
checks the optimized ``evaluate_network`` reproduces its rows exactly.
"""

from __future__ import annotations

import pytest

from repro.core.base_paths import UniqueShortestPathsBase
from repro.core.decomposition import min_pieces_decompose_reference
from repro.exceptions import NoPath
from repro.experiments import table2
from repro.experiments.metrics import CaseResult, build_row
from repro.experiments.networks import cached_suite
from repro.experiments.parallel import chunk_bounds, resolve_jobs
from repro.failures.sampler import FAILURE_MODES, cases_for_pair, sample_pairs
from repro.graph.csr import (
    INF,
    CsrGraph,
    bfs_csr,
    dijkstra_csr_canonical,
    mask_from_view,
)
from repro.graph.paths import Path
from repro.graph.spt import ShortestPathDag


def reference_canonical_backup(csr: CsrGraph, view, s, t, weighted: bool) -> Path:
    """Independent re-derivation of a backup under the path contract:
    one from-scratch canonical run per case, no repair, no row cache."""
    cv = mask_from_view(csr, view)
    si, ti = csr.index[s], csr.index[t]
    if si in cv.dead_nodes or ti in cv.dead_nodes:
        raise NoPath(f"no path from {s!r} to {t!r}")
    if weighted:
        dist, pred, _ = dijkstra_csr_canonical(cv, si)
    else:
        dist, pred = bfs_csr(cv, si)
    if dist[ti] == INF:
        raise NoPath(f"no path from {s!r} to {t!r}")
    chain = [ti]
    x = ti
    while x != si:
        x = pred[x]
        chain.append(x)
    return Path([csr.nodes[i] for i in reversed(chain)])


class TestChunking:
    def test_chunk_bounds_partition_exactly(self):
        for n_items in (0, 1, 2, 7, 100, 1001):
            for jobs in (1, 2, 3, 8):
                bounds = chunk_bounds(n_items, jobs)
                covered = []
                last_end = 0
                for start, end in bounds:
                    assert start == last_end, "chunks must be contiguous"
                    assert start < end
                    covered.extend(range(start, end))
                    last_end = end
                assert covered == list(range(n_items))

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestParallelDeterminism:
    def test_table2_tiny_rows_identical_across_jobs(self):
        sequential = table2.run(scale="tiny", seed=1, jobs=1)
        parallel = table2.run(scale="tiny", seed=1, jobs=4)
        assert table2.render(parallel) == table2.render(sequential)
        for mode in sequential:
            assert parallel[mode] == sequential[mode]


class TestAcceptanceRowIdentity:
    """Optimized pipeline == pre-optimization pipeline, row for row."""

    def test_evaluate_network_matches_reference_pipeline(self):
        network = cached_suite(scale="tiny", seed=1)[0]
        graph = network.graph

        optimized = table2.evaluate_network(network, seed=1)

        # The reference pipeline: fresh (uncached) base set, per-target
        # multiplicity counting, Path-allocating decomposition, and a
        # from-scratch canonical search per backup (no repair).
        base = UniqueShortestPathsBase(graph)
        reference_csr = CsrGraph(graph)
        pairs = sample_pairs(graph, network.sample_pairs, seed=1)
        primaries = {pair: base.path_for(*pair) for pair in pairs}
        max_multiplicity = 0
        for source, _ in pairs:
            dag = ShortestPathDag.compute(graph, source)
            for target in dag.dist:
                if target != source:
                    max_multiplicity = max(
                        max_multiplicity, dag.count_paths_to(target)
                    )
        for mode in FAILURE_MODES:
            results = []
            for pair in pairs:
                for case in cases_for_pair(pair, primaries[pair], mode):
                    view = case.scenario.apply(graph)
                    primary_cost = case.primary_path.cost(graph)
                    try:
                        backup = reference_canonical_backup(
                            reference_csr,
                            view,
                            case.source,
                            case.destination,
                            network.weighted,
                        )
                    except NoPath:
                        results.append(
                            CaseResult(
                                source=case.source,
                                destination=case.destination,
                                scenario=case.scenario,
                                primary=case.primary_path,
                                primary_cost=primary_cost,
                                backup=None,
                                backup_cost=None,
                                decomposition=None,
                            )
                        )
                        continue
                    results.append(
                        CaseResult(
                            source=case.source,
                            destination=case.destination,
                            scenario=case.scenario,
                            primary=case.primary_path,
                            primary_cost=primary_cost,
                            backup=backup,
                            backup_cost=backup.cost(graph),
                            decomposition=min_pieces_decompose_reference(
                                backup, base, allow_edges=True
                            ),
                        )
                    )
            reference_row = build_row(
                network.name,
                mode,
                results,
                max_multiplicity=max_multiplicity if mode == "link" else None,
            )
            assert optimized[mode] == reference_row, mode
