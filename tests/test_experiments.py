"""Tests for the experiment machinery: metrics, drivers, reporting."""

from __future__ import annotations

import math

import pytest

from repro.core.base_paths import UniqueShortestPathsBase
from repro.core.decomposition import Decomposition
from repro.experiments import metrics
from repro.experiments.figure10 import STRETCH_EDGES, collect
from repro.experiments.networks import scales, suite
from repro.experiments.reporting import format_histogram, format_table, percent_histogram
from repro.experiments.table1 import PAPER_TABLE1, collect as collect_table1, render as render_table1
from repro.experiments.table2 import evaluate_network, run_case
from repro.experiments.table3 import bypass_distribution
from repro.experiments.theory_figures import figure2, figure3, figure4, figure5, run as run_theory
from repro.failures.models import FailureScenario
from repro.failures.sampler import FailureCase, link_failure_cases
from repro.graph.graph import Graph
from repro.graph.paths import Path


def make_result(
    primary_nodes,
    backup_nodes=None,
    primary_cost=None,
    backup_cost=None,
    pieces=None,
):
    primary = Path(primary_nodes)
    backup = Path(backup_nodes) if backup_nodes else None
    decomposition = None
    if backup is not None:
        if pieces is None:
            pieces = [backup]
        decomposition = Decomposition(
            pieces=tuple(pieces), base_flags=tuple(True for _ in pieces)
        )
    return metrics.CaseResult(
        source=primary.source,
        destination=primary.target,
        scenario=FailureScenario.single_link(*list(primary.edges())[0]),
        primary=primary,
        primary_cost=primary_cost if primary_cost is not None else float(primary.hops),
        backup=backup,
        backup_cost=backup_cost,
        decomposition=decomposition,
    )


class TestMetrics:
    def test_average_pc_length(self):
        results = [
            make_result([1, 2, 3], [1, 4, 3], backup_cost=2.0,
                        pieces=[Path([1, 4]), Path([4, 3])]),
            make_result([1, 2, 3], [1, 5, 3], backup_cost=2.0),
        ]
        assert metrics.average_pc_length(results) == 1.5

    def test_average_pc_length_empty_is_nan(self):
        assert math.isnan(metrics.average_pc_length([]))

    def test_unrestorable_excluded(self):
        results = [
            make_result([1, 2, 3], None),
            make_result([1, 2, 3], [1, 4, 3], backup_cost=2.0),
        ]
        assert metrics.average_pc_length(results) == 1.0

    def test_length_stretch(self):
        results = [
            make_result([1, 2, 3], [1, 4, 5, 3], backup_cost=3.0),  # 2 -> 3 hops
        ]
        assert metrics.length_stretch_factor(results) == pytest.approx(1.5)

    def test_redundancy(self):
        results = [
            make_result([1, 2, 3], [1, 4, 3], primary_cost=2.0, backup_cost=2.0),
            make_result([1, 2, 3], [1, 4, 5, 3], primary_cost=2.0, backup_cost=3.0),
        ]
        assert metrics.redundancy_percent(results) == 50.0

    def test_ilm_stretch_sharing_lowers_ratio(self):
        # Two demands restored by the SAME piece: base entries shared,
        # naive backups not.
        shared = [Path([1, 9]), Path([9, 3])]
        r1 = make_result([1, 2, 3], [1, 9, 3], backup_cost=2.0, pieces=shared)
        r2 = make_result([1, 2, 3], [1, 9, 3], backup_cost=2.0, pieces=shared)
        lone = [make_result([1, 2, 3], [1, 9, 3], backup_cost=2.0, pieces=shared)]
        min_two, avg_two = metrics.ilm_stretch_factors([r1, r2])
        min_one, avg_one = metrics.ilm_stretch_factors(lone)
        assert avg_two < avg_one

    def test_ilm_stretch_bounds(self):
        results = [make_result([1, 2, 3], [1, 9, 3], backup_cost=2.0)]
        min_sf, avg_sf = metrics.ilm_stretch_factors(results)
        assert 0 < min_sf <= avg_sf

    def test_build_row(self):
        results = [make_result([1, 2, 3], [1, 9, 3], primary_cost=2.0, backup_cost=2.0)]
        row = metrics.build_row("Net", "link", results, max_multiplicity=3)
        assert row.cases == 1 and row.restorable_cases == 1
        assert row.redundancy == 100.0
        assert row.max_multiplicity == 3
        assert "Net" in row.formatted()


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.50" in out and "3.25" in out

    def test_format_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_percent_histogram_buckets(self):
        buckets = percent_histogram([1.0, 1.05, 1.5, 2.5], [1.0, 1.1, 2.0])
        shares = dict(buckets)
        assert shares["[1.00,1.10)"] == 50.0
        assert shares["[1.10,2.00)"] == 25.0
        assert shares[">= 2.00"] == 25.0

    def test_percent_histogram_needs_two_edges(self):
        with pytest.raises(ValueError):
            percent_histogram([1.0], [1.0])

    def test_format_histogram_renders_bars(self):
        out = format_histogram([("a", 50.0), ("b", 100.0)], title="H", width=10)
        assert "##########" in out
        assert out.splitlines()[0] == "H"

    def test_format_histogram_empty(self):
        assert format_histogram([], title="E") == "E"


class TestSuite:
    def test_scales_listed(self):
        assert set(scales()) == {"tiny", "small", "paper"}

    def test_tiny_suite_shapes(self):
        networks = suite(scale="tiny")
        names = [n.name for n in networks]
        assert names == ["ISP, Weighted", "ISP, Unweighted", "Internet", "AS Graph"]
        isp_w, isp_u = networks[0], networks[1]
        assert sorted(isp_w.graph.edges()) == sorted(isp_u.graph.edges())
        assert isp_w.weighted and not isp_u.weighted

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            suite(scale="galactic")


class TestTable1:
    def test_collect_skips_duplicate_isp(self):
        stats = collect_table1(suite(scale="tiny"))
        names = [s.name for s in stats]
        assert names == ["ISP", "Internet", "AS Graph"]

    def test_render_includes_paper_values(self):
        out = render_table1(collect_table1(suite(scale="tiny")))
        assert "40,377" in out  # paper's Internet size
        assert "ISP" in out

    def test_paper_reference_table(self):
        assert PAPER_TABLE1["AS Graph"] == (4746, 9878, 4.16)


class TestTable2Driver:
    def test_run_case_restorable(self, diamond):
        base = UniqueShortestPathsBase(diamond)
        primary = base.path_for(1, 4)
        case = next(iter(link_failure_cases((1, 4), primary, k=1)))
        result = run_case(diamond, base, case, weighted=False)
        assert result.restorable
        assert result.backup is not None
        assert result.decomposition is not None

    def test_run_case_disconnected(self, line5):
        base = UniqueShortestPathsBase(line5)
        primary = base.path_for(0, 4)
        case = FailureCase(0, 4, primary, FailureScenario.single_link(1, 2))
        result = run_case(line5, base, case, weighted=False)
        assert not result.restorable

    def test_evaluate_network_rows(self):
        network = suite(scale="tiny")[0]
        rows = evaluate_network(network, modes=("link",), seed=1)
        row = rows["link"]
        assert row.cases > 0
        assert 1.0 <= row.avg_pc_length <= 3.0
        assert row.max_multiplicity is not None


class TestTable3Driver:
    def test_distribution_sums_to_100(self, small_isp):
        percents, bridge = bypass_distribution(small_isp, weighted=True)
        assert sum(percents.values()) + bridge == pytest.approx(100.0)

    def test_bridges_counted(self, line5):
        percents, bridge = bypass_distribution(line5, weighted=False)
        assert bridge == 100.0
        assert percents == {}

    def test_max_links_cap(self, small_isp):
        percents, bridge = bypass_distribution(small_isp, weighted=True, max_links=5)
        total = round((sum(percents.values()) + bridge))
        assert total == 100


class TestFigure10Driver:
    def test_collect_shapes(self, small_isp):
        samples = collect(small_isp, weighted=True, n_pairs=10, seed=1)
        assert set(samples) == {"edge-bypass", "end-route"}
        for data in samples.values():
            assert len(data.cost) == len(data.hopcount)
            assert all(v >= 1.0 - 1e-9 for v in data.cost)

    def test_stretch_edges_monotone(self):
        assert STRETCH_EDGES == sorted(STRETCH_EDGES)


class TestTheoryFigures:
    def test_all_checks_pass(self):
        results = run_theory(comb_ks=(1, 3), star_sizes=(12,), directed_sizes=(12,))
        assert all(r.matches for r in results)

    def test_individual_figures(self):
        assert figure2(2).pieces == 3
        f3 = figure3(2)
        assert (f3.base_paths, f3.extra_edges) == (3, 2)
        assert figure4(16).pieces >= 3
        assert figure5(16).pieces >= 4


class TestPcLengthHistogram:
    def test_percentages(self):
        from repro.experiments.metrics import pc_length_histogram

        results = [
            make_result([1, 2, 3], [1, 9, 3], backup_cost=2.0),
            make_result(
                [1, 2, 3], [1, 9, 3], backup_cost=2.0,
                pieces=[Path([1, 9]), Path([9, 3])],
            ),
            make_result([1, 2, 3], None),
        ]
        histogram = pc_length_histogram(results)
        assert histogram == {1: 50.0, 2: 50.0}

    def test_empty(self):
        from repro.experiments.metrics import pc_length_histogram

        assert pc_length_histogram([]) == {}
        assert pc_length_histogram([make_result([1, 2, 3], None)]) == {}

    def test_vast_majority_at_two_on_isp(self, small_isp):
        """The §4 claim measured on a live sample."""
        from repro.core.base_paths import UniqueShortestPathsBase
        from repro.experiments.metrics import pc_length_histogram
        from repro.experiments.table2 import run_case
        from repro.failures.sampler import link_failure_cases, sample_pairs

        base = UniqueShortestPathsBase(small_isp)
        results = []
        for pair in sample_pairs(small_isp, 15, seed=3):
            primary = base.path_for(*pair)
            for case in link_failure_cases(pair, primary, k=1):
                results.append(run_case(small_isp, base, case, weighted=True))
        histogram = pc_length_histogram(results)
        at_most_two = histogram.get(1, 0.0) + histogram.get(2, 0.0)
        assert at_most_two > 70.0
