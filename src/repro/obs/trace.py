"""Hierarchical span tracing — *what happened when*, not just totals.

The experiment pipeline used to answer "where did the time go?" with
:class:`~repro.experiments.bench.StageTimer`'s flat per-stage sums.
That hides the structure the perf work actually needs: one Table 2 run
nests ``experiments → per-network evaluation → per-mode case loops →
restoration → oracle/kernel calls``, and a regression in one leaf is
invisible in a flat sum.  The tracer records that nesting as a tree of
:class:`Span` objects and serializes it to JSONL for the
``python -m repro.obs tree`` renderer.

Design constraints, in order:

* **Near-zero overhead when disabled.**  ``TRACER.span(...)`` on a
  disabled tracer returns a shared no-op context manager — no ``Span``
  allocation, no clock read, no string formatting.  Hot paths may
  therefore call it unconditionally.
* **Exception-safe.**  A span raised through still records its end
  time and pops cleanly; partial timings are never lost.
* **Flat compatibility.**  :meth:`Tracer.stage_totals` folds the tree
  back into StageTimer-style per-name sums (outermost occurrence only,
  so re-entrant spans are not double-counted), which is what
  ``BENCH_*.json`` publishes.

>>> tracer = Tracer(enabled=True)
>>> with tracer.span("outer"):
...     with tracer.span("inner"):
...         pass
>>> [root.name for root in tracer.roots]
['outer']
>>> [child.name for child in tracer.roots[0].children]
['inner']
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional, Union

#: Versioned schema tag stamped on every serialized span record.
SPAN_SCHEMA = "repro.obs.span/1"


class Span:
    """One timed, named region; children are the spans opened inside it."""

    __slots__ = ("name", "start", "end", "children", "meta")

    def __init__(
        self, name: str, start: float, meta: Optional[dict[str, Any]] = None
    ) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.children: list[Span] = []
        self.meta = meta

    @property
    def duration(self) -> float:
        """Seconds spanned; still-open spans measure up to *now*."""
        return (self.end if self.end is not None else time.perf_counter()) - self.start

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return f"<Span {self.name!r} {self.duration * 1000:.3f}ms children={len(self.children)}>"


class _NullSpanContext:
    """The shared do-nothing context manager of a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


#: Singleton returned by ``span()`` while disabled — identity-stable so
#: tests can assert the disabled path allocates nothing.
NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager that opens/closes one span on its tracer's stack."""

    __slots__ = ("_tracer", "_name", "_meta", "_span")

    def __init__(self, tracer: "Tracer", name: str, meta: Optional[dict]) -> None:
        self._tracer = tracer
        self._name = name
        self._meta = meta
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = Span(self._name, time.perf_counter(), self._meta)
        if tracer._stack:
            tracer._stack[-1].children.append(span)
        else:
            tracer.roots.append(span)
        tracer._stack.append(span)
        self._span = span
        return span

    def __exit__(self, *exc: object) -> bool:
        span = self._span
        if span is not None:
            span.end = time.perf_counter()
            self._tracer._stack.pop()
        return False


class Tracer:
    """A process-local span collector with an explicit on/off switch."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.epoch = time.perf_counter()
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(
        self, name: str, **meta: Any
    ) -> Union[_SpanContext, _NullSpanContext]:
        """A context manager timing *name* nested under the current span.

        Disabled tracers return the shared :data:`NULL_SPAN` — callers
        never need their own ``if enabled`` guard.
        """
        if not self.enabled:
            return NULL_SPAN
        return _SpanContext(self, name, meta or None)

    def reset(self) -> None:
        """Drop all recorded spans (test isolation / fresh run)."""
        self.roots = []
        self._stack = []
        self.epoch = time.perf_counter()

    def iter_spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first in recording order."""
        for root in self.roots:
            yield from root.walk()

    def stage_totals(self) -> dict[str, float]:
        """Per-name wall-clock sums, StageTimer-compatible.

        Only the *outermost* occurrence of each name contributes, so a
        re-entrant span (``a`` inside ``a``) is counted once, not twice.
        """
        totals: dict[str, float] = {}

        def fold(span: Span, active: frozenset[str]) -> None:
            outermost = span.name not in active
            if outermost:
                totals[span.name] = totals.get(span.name, 0.0) + span.duration
                active = active | {span.name}
            for child in span.children:
                fold(child, active)

        for root in self.roots:
            fold(root, frozenset())
        return totals

    # -- serialization ---------------------------------------------------------

    def records(self, digits: int = 6) -> list[dict[str, Any]]:
        """Flattened span records (depth-first, ids link the tree).

        ``t0``/``t1`` are seconds relative to the tracer epoch so traces
        from different runs line up at zero.
        """
        out: list[dict[str, Any]] = []

        def emit(span: Span, parent_id: Optional[int], depth: int) -> None:
            span_id = len(out)
            record: dict[str, Any] = {
                "schema": SPAN_SCHEMA,
                "id": span_id,
                "parent": parent_id,
                "depth": depth,
                "name": span.name,
                "t0": round(span.start - self.epoch, digits),
                "t1": (
                    round(span.end - self.epoch, digits)
                    if span.end is not None
                    else None
                ),
            }
            if span.meta:
                record["meta"] = span.meta
            out.append(record)
            for child in span.children:
                emit(child, span_id, depth + 1)

        for root in self.roots:
            emit(root, None, 0)
        return out

    def to_jsonl(self) -> str:
        """One JSON object per line, one line per span."""
        return "".join(
            json.dumps(r, sort_keys=True, separators=(",", ":")) + "\n"
            for r in self.records()
        )

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Write the trace to *path*; returns the path written."""
        out = Path(path)
        out.write_text(self.to_jsonl())
        return out


def read_jsonl(source: Union[str, Path, Iterable[str]]) -> list[dict[str, Any]]:
    """Parse span records from a path or an iterable of JSONL lines."""
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    else:
        lines = source
    records = []
    for line in lines:
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


#: The process-wide tracer; disabled by default so library use is free.
TRACER = Tracer()
