"""Pluggable restoration policies and failure models.

* :mod:`repro.policies.base` — the :class:`RestorationPolicy` contract
  (``provision`` / ``restore`` / ``ilm_entries`` / ``name``) and the
  uniform :class:`RestorationOutcome` result shape.
* :mod:`repro.policies.registry` — string-keyed registries, the
  ``REPRO_POLICY`` / ``REPRO_FAILURE_MODEL`` selection (with the
  pre-fork env export the kernel backends use), and the
  ``--policy`` / ``--failure-model`` CLI plumbing.
* :mod:`repro.policies.schemes` — the built-ins: the paper's
  concatenation scheme, the related-work baselines, MRC
  (arXiv:1212.0311), and the do-not-restore floor.
* :mod:`repro.policies.bounds` — Bodwin–Wang (arXiv:2309.07964)
  concatenation-bound checking for the k >= 2 regime.

Failure models live with the sampling machinery in
:mod:`repro.failures.generators` and register here.  See
``docs/policies.md`` for the contract and how to add either kind.

The scheme implementations import core/experiment modules that
themselves import :mod:`repro.policies.base`, so this package imports
them lazily: the registries populate on first use
(:func:`~repro.policies.registry.ensure_registered`).
"""

from .base import RestorationOutcome, RestorationPolicy
from .registry import (
    DEFAULT_FAILURE_MODEL,
    DEFAULT_POLICY,
    FAILURE_MODELS,
    POLICIES,
    active_failure_model_name,
    active_policy_name,
    add_policy_arguments,
    apply_policy_arguments,
    ensure_registered,
    failure_model_names,
    make_failure_model,
    make_policy,
    policy_names,
    set_failure_model,
    set_policy,
)

__all__ = [
    "DEFAULT_FAILURE_MODEL",
    "DEFAULT_POLICY",
    "FAILURE_MODELS",
    "POLICIES",
    "RestorationOutcome",
    "RestorationPolicy",
    "active_failure_model_name",
    "active_policy_name",
    "add_policy_arguments",
    "apply_policy_arguments",
    "ensure_registered",
    "failure_model_names",
    "make_failure_model",
    "make_policy",
    "policy_names",
    "set_failure_model",
    "set_policy",
]
