"""Shared fixtures: small graphs with known shortest-path structure."""

from __future__ import annotations

import pytest

from repro.graph.graph import Graph
from repro.topology.isp import generate_isp_topology


@pytest.fixture(autouse=True)
def _no_ledger_or_heartbeats(monkeypatch):
    """Keep CLI-invoking tests from writing observability side effects.

    Many tests call experiment ``main()``s in-process; without this,
    each such call would append a manifest to the *committed* run
    ledger (``results/history/ledger.jsonl``) and, with a stray
    ``REPRO_HEARTBEAT_DIR`` in the environment, spray heartbeat files.
    Tests that exercise the ledger/heartbeats re-enable them
    explicitly via their own monkeypatching.
    """
    monkeypatch.setenv("REPRO_LEDGER", "0")
    monkeypatch.delenv("REPRO_HEARTBEAT_DIR", raising=False)


@pytest.fixture
def triangle() -> Graph:
    """3-cycle with unit weights."""
    return Graph.from_edges([(1, 2), (2, 3), (1, 3)])


@pytest.fixture
def square() -> Graph:
    """4-cycle 1-2-3-4-1 with unit weights."""
    return Graph.from_edges([(1, 2), (2, 3), (3, 4), (4, 1)])


@pytest.fixture
def diamond() -> Graph:
    """Two 2-hop routes 1-2-4 and 1-3-4 plus the chord 2-3."""
    return Graph.from_edges([(1, 2), (2, 4), (1, 3), (3, 4), (2, 3)])


@pytest.fixture
def weighted_diamond() -> Graph:
    """Diamond where the 1-2-4 route is strictly cheaper."""
    return Graph.from_edges(
        [(1, 2, 1.0), (2, 4, 1.0), (1, 3, 2.0), (3, 4, 2.0), (2, 3, 5.0)]
    )


@pytest.fixture
def line5() -> Graph:
    """Path 0-1-2-3-4."""
    return Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture(scope="session")
def small_isp() -> Graph:
    """A 60-node weighted ISP topology (deterministic)."""
    return generate_isp_topology(n=60, seed=7)
