"""Classic and adversarial topologies, including the paper's figures.

These small parametric families are used throughout the tests and the
theory benchmarks:

* :func:`comb_graph` — Figure 2: tightness of Theorem 1 (after ``k``
  failures the unique surviving path needs exactly ``k + 1`` original
  shortest paths).
* :func:`weighted_comb_graph` — Figure 3: tightness of Theorem 2 (the
  restoration path is an interleaving of ``k + 1`` base paths and ``k``
  non-base edges).
* :func:`two_level_star` — Figure 4: the router-failure pathology where
  one node failure forces :math:`\\Theta(n)` concatenations.
* :func:`directed_counterexample` — Figure 5: Theorem 1 fails on
  directed graphs; a single edge failure forces ``(n-2)/3`` pieces.
* :func:`four_cycle` — the Section 3 remark: with one base path per
  pair, some single failure needs three components.
* plus ordinary :func:`path_graph`, :func:`cycle_graph`,
  :func:`grid_graph`, :func:`complete_graph` building blocks.

The figures in the PODC paper are drawings; where a drawing leaves
freedom, the constructions below are chosen so the *stated* extremal
property provably holds (each docstring spells out the argument).
"""

from __future__ import annotations

from ..exceptions import TopologyError
from ..graph.graph import DiGraph, Edge, Graph, Node


def path_graph(n: int, weight: float = 1.0) -> Graph:
    """Simple path ``0 - 1 - ... - (n-1)``."""
    if n < 1:
        raise TopologyError("path_graph needs n >= 1")
    g = Graph()
    g.add_node(0)
    for i in range(n - 1):
        g.add_edge(i, i + 1, weight=weight)
    return g


def cycle_graph(n: int, weight: float = 1.0) -> Graph:
    """Simple cycle on nodes ``0 .. n-1``."""
    if n < 3:
        raise TopologyError("cycle_graph needs n >= 3")
    g = Graph()
    for i in range(n):
        g.add_edge(i, (i + 1) % n, weight=weight)
    return g


def four_cycle() -> Graph:
    """The 4-cycle of the Section 3 remark.

    With exactly one base shortest path per node pair, some single link
    failure always requires three components (two trivial base paths and
    an edge) to restore — no clever base-set choice avoids it.
    """
    return cycle_graph(4)


def complete_graph(n: int, weight: float = 1.0) -> Graph:
    """Complete graph on ``0 .. n-1``."""
    if n < 1:
        raise TopologyError("complete_graph needs n >= 1")
    g = Graph()
    g.add_node(0)
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j, weight=weight)
    return g


def grid_graph(rows: int, cols: int, weight: float = 1.0) -> Graph:
    """``rows x cols`` grid; nodes are ``(r, c)`` tuples."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid_graph needs rows, cols >= 1")
    g = Graph()
    g.add_node((0, 0))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c), weight=weight)
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1), weight=weight)
    return g


def comb_graph(k: int) -> tuple[Graph, list[Edge], Node, Node]:
    """Figure 2: the unweighted comb showing Theorem 1 is tight.

    Spine nodes ``("v", 0) .. ("v", k)`` joined by unit spine edges, and
    a tooth node ``("t", i)`` over each spine edge, joined to both its
    endpoints.  Returns ``(graph, spine_edges, s, t)`` where
    ``spine_edges`` is the failure set ``E_k`` and ``s, t`` are the
    endpoints of the extremal demand.

    Why the bound is tight: failing the ``k`` spine edges leaves the
    unique path ``v0, t0, v1, t1, ..., v_k`` of ``2k`` hops.  No tooth
    node is interior to any original shortest path except in the
    two-hop pieces ``t_{i-1}, v_i, t_i`` (distance between consecutive
    teeth is 2), and the first/last hops must stand alone, so every
    partition into original shortest paths has at least ``k + 1`` parts
    — and ``[v0 t0], [t0 v1 t1], ..., [t_{k-2} v_{k-1} t_{k-1}],
    [t_{k-1} v_k]`` achieves it.
    """
    if k < 1:
        raise TopologyError("comb_graph needs k >= 1")
    g = Graph()
    spine_edges: list[Edge] = []
    for i in range(k):
        v, v_next, tooth = ("v", i), ("v", i + 1), ("t", i)
        g.add_edge(v, v_next)
        g.add_edge(v, tooth)
        g.add_edge(tooth, v_next)
        spine_edges.append((v, v_next))
    return g, spine_edges, ("v", 0), ("v", k)


def weighted_comb_graph(
    k: int, segment_hops: int = 2, eps: float = 0.25
) -> tuple[Graph, list[Edge], Node, Node]:
    """Figure 3: the weighted comb showing Theorem 2 is tight.

    The graph alternates ``k + 1`` *segments* of unit-weight edges (these
    survive and are genuine shortest paths) with ``k`` *gadgets*.  Each
    gadget joins consecutive segment endpoints ``a, b`` two ways:

    * the cheap route ``a - ("f", i) - b`` with weights ``0.5 / 0.5``
      (total 1) — its first edge is the one that fails;
    * the direct edge ``(a, b)`` with weight ``1 + eps``.

    Before the failures the cheap route is the unique shortest a→b
    connection, so the ``1 + eps`` edge is *not* an original shortest
    path, and no shortest path crosses it (going around via the cheap
    route is always cheaper).  After failing the ``k`` cheap edges, the
    unique surviving s→t path interleaves the ``k + 1`` segments with
    the ``k`` expensive edges — exactly the ``k + 1`` base paths plus
    ``k`` extra edges of Theorem 2, and no decomposition can do better
    because each ``1 + eps`` edge belongs to no base path at all.

    Returns ``(graph, failed_edges, s, t)``.
    """
    if k < 1:
        raise TopologyError("weighted_comb_graph needs k >= 1")
    if segment_hops < 1:
        raise TopologyError("weighted_comb_graph needs segment_hops >= 1")
    if not 0 < eps < 0.5:
        raise TopologyError("eps must lie in (0, 0.5) to keep the gadget extremal")
    g = Graph()
    failed: list[Edge] = []
    node_id = 0

    def fresh() -> int:
        """Allocate the next node id."""
        nonlocal node_id
        node_id += 1
        return node_id - 1

    start = fresh()
    g.add_node(start)
    cursor = start
    for i in range(k + 1):
        # Segment of unit edges.
        for _ in range(segment_hops):
            nxt = fresh()
            g.add_edge(cursor, nxt, weight=1.0)
            cursor = nxt
        if i == k:
            break
        # Gadget between this segment's end and the next segment's start.
        after = fresh()
        detour = ("f", i)
        g.add_edge(cursor, detour, weight=0.5)
        g.add_edge(detour, after, weight=0.5)
        g.add_edge(cursor, after, weight=1.0 + eps)
        failed.append((cursor, detour))
        cursor = after
    return g, failed, start, cursor


def two_level_star(n: int) -> tuple[Graph, Node, Node, Node]:
    """Figure 4: hub-and-ring network where a router failure is Θ(n)-bad.

    A hub ``"v"`` is adjacent to every ring node ``0 .. n-2``, and the
    ring nodes form a cycle.  Every pair of non-adjacent routers is at
    distance 2 (via the hub), so every original shortest path has at
    most 2 hops.  When the hub fails, the surviving shortest path
    between antipodal ring nodes ``s = 0`` and ``t = (n-1)//2`` runs
    around the ring — ``(n-1)//2`` hops — and therefore needs at least
    ``(n-1)//4`` concatenated base paths.

    Returns ``(graph, hub, s, t)``.
    """
    if n < 6:
        raise TopologyError("two_level_star needs n >= 6")
    ring_size = n - 1
    g = Graph()
    hub: Node = "v"
    for i in range(ring_size):
        g.add_edge(i, (i + 1) % ring_size, weight=1.0)
        g.add_edge(hub, i, weight=1.0)
    return g, hub, 0, ring_size // 2


def directed_counterexample(n: int) -> tuple[DiGraph, Edge, Node, Node]:
    """Figure 5: Theorem 1 fails on directed graphs.

    Nodes: ``"a"``, ``"b"`` and a chain ``0 → 1 → ... → m-1`` with
    ``m = n - 2``.  Arcs: ``a → b``;  ``b → i`` and ``i → a`` for every
    chain node ``i``;  chain arcs ``i → i+1``.

    Every chain pair ``i → j`` with ``j - i > 3`` has its (unique)
    shortest path through ``a, b`` (3 hops), so original shortest paths
    along the chain have at most 3 hops.  Node ``a``'s only out-arc is
    ``a → b``; failing it forces the ``0 → m-1`` route onto the chain —
    ``m - 1`` hops that decompose into at least ``(m-1)/3 ≈ (n-2)/3``
    original shortest paths.

    Returns ``(graph, failed_edge, s, t)``.
    """
    if n < 8:
        raise TopologyError("directed_counterexample needs n >= 8")
    m = n - 2
    g = DiGraph()
    g.add_edge("a", "b", weight=1.0)
    for i in range(m):
        g.add_edge("b", i, weight=1.0)
        g.add_edge(i, "a", weight=1.0)
        if i + 1 < m:
            g.add_edge(i, i + 1, weight=1.0)
    return g, ("a", "b"), 0, m - 1
